"""Discrepancy vectors, objectives and SparsificationState bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SparsificationState,
    UncertainGraph,
    cut_discrepancy,
    d1_objective,
    degree_discrepancy_vector,
    delta_1,
)
from repro.datasets import flickr_like
from repro.exceptions import GraphError


def make_sparsified(graph, keep_fraction=0.5, new_p=None):
    edges = list(graph.edges())
    kept = edges[: max(1, int(len(edges) * keep_fraction))]
    if new_p is not None:
        kept = [(u, v, new_p) for u, v, _ in kept]
    return graph.subgraph_with_edges(kept)


def loop_degree_discrepancy(original, sparsified, relative=False):
    """The pre-vectorisation per-vertex reference implementation."""
    deltas = np.empty(original.number_of_vertices(), dtype=np.float64)
    for i, vertex in enumerate(original.vertices()):
        d_orig = original.expected_degree(vertex)
        d_new = sparsified.expected_degree(vertex)
        delta = d_orig - d_new
        if relative:
            delta = delta / d_orig if d_orig > 0 else 0.0
        deltas[i] = delta
    return deltas


class TestVectorizedDiscrepancy:
    """Seeded regression: the array version pins the old loop's output."""

    @pytest.mark.parametrize("seed", [0, 3, 9])
    @pytest.mark.parametrize("relative", [False, True])
    def test_matches_reference_loop(self, seed, relative):
        graph = flickr_like(n=50, avg_degree=10, seed=seed)
        sparsified = make_sparsified(graph, keep_fraction=0.4)
        fast = degree_discrepancy_vector(graph, sparsified, relative=relative)
        slow = loop_degree_discrepancy(graph, sparsified, relative=relative)
        assert np.allclose(fast, slow, rtol=1e-12, atol=1e-12)

    def test_reindexed_vertex_order(self, triangle):
        # Same vertex set, different insertion order: the slow mapping
        # branch must still align with the *original* indexer.
        shuffled = UncertainGraph(
            [("c", "b", 0.25), ("a", "b", 0.5)], vertices=["c", "b", "a"]
        )
        fast = degree_discrepancy_vector(triangle, shuffled)
        slow = loop_degree_discrepancy(triangle, shuffled)
        assert np.allclose(fast, slow, rtol=1e-12, atol=1e-12)

    def test_empty_sparsified(self, triangle):
        empty = UncertainGraph(vertices=triangle.vertices())
        fast = degree_discrepancy_vector(triangle, empty)
        assert np.allclose(fast, triangle.expected_degree_array())


class TestDiscrepancyFunctions:
    def test_identity_has_zero_discrepancy(self, triangle):
        deltas = degree_discrepancy_vector(triangle, triangle)
        assert np.allclose(deltas, 0.0)
        assert delta_1(triangle, triangle) == 0.0
        assert d1_objective(triangle, triangle) == 0.0

    def test_removing_edges_creates_positive_delta(self, triangle):
        sub = triangle.subgraph_with_edges([("a", "b", 0.5)])
        deltas = degree_discrepancy_vector(triangle, sub)
        assert np.all(deltas >= 0)
        assert delta_1(triangle, sub) == pytest.approx(2 * (0.25 + 1.0))

    def test_relative_variant_scales_by_degree(self, triangle):
        sub = triangle.subgraph_with_edges([("a", "b", 0.5)])
        absolute = degree_discrepancy_vector(triangle, sub)
        relative = degree_discrepancy_vector(triangle, sub, relative=True)
        indexer = triangle.vertex_indexer()
        for vertex, idx in indexer.items():
            d = triangle.expected_degree(vertex)
            assert relative[idx] == pytest.approx(absolute[idx] / d)

    def test_vertex_set_mismatch_raises(self, triangle):
        other = UncertainGraph([("a", "b", 0.5)])
        with pytest.raises(GraphError):
            degree_discrepancy_vector(triangle, other)

    def test_cut_discrepancy_singleton_is_degree_delta(self, triangle):
        sub = make_sparsified(triangle)
        expected = triangle.expected_degree("a") - sub.expected_degree("a")
        assert cut_discrepancy(triangle, sub, ["a"]) == pytest.approx(expected)

    def test_cut_discrepancy_relative(self, triangle):
        sub = make_sparsified(triangle)
        absolute = cut_discrepancy(triangle, sub, ["a", "b"])
        relative = cut_discrepancy(triangle, sub, ["a", "b"], relative=True)
        assert relative == pytest.approx(
            absolute / triangle.expected_cut_size(["a", "b"])
        )

    def test_d1_is_sum_of_squares(self, triangle):
        sub = make_sparsified(triangle)
        deltas = degree_discrepancy_vector(triangle, sub)
        assert d1_objective(triangle, sub) == pytest.approx(float(np.sum(deltas**2)))


class TestSparsificationState:
    def test_initial_state_all_missing(self, triangle):
        state = SparsificationState(triangle)
        assert state.edge_count() == 0
        assert np.allclose(state.delta, state.original_degrees)
        assert state.total_residual == pytest.approx(
            triangle.expected_number_of_edges()
        )

    def test_select_all_edges_zero_delta(self, triangle):
        state = SparsificationState(triangle)
        for eid in range(state.m):
            state.select_edge(eid)
        assert np.allclose(state.delta, 0.0)
        assert state.total_residual == pytest.approx(0.0)
        state.verify()

    def test_select_with_custom_probability(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0, probability=0.1)
        u, v = state.endpoints(0)
        assert state.delta[u] == pytest.approx(state.original_degrees[u] - 0.1)
        state.verify()

    def test_double_select_raises(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0)
        with pytest.raises(GraphError):
            state.select_edge(0)

    def test_deselect_returns_probability(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0, probability=0.4)
        assert state.deselect_edge(0) == pytest.approx(0.4)
        assert not state.selected[0]
        state.verify()

    def test_deselect_unselected_raises(self, triangle):
        state = SparsificationState(triangle)
        with pytest.raises(GraphError):
            state.deselect_edge(0)

    def test_set_probability_updates_delta(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0)
        u, v = state.endpoints(0)
        before_u = state.delta[u]
        old_p = state.phat[0]
        state.set_probability(0, 1.0)
        assert state.delta[u] == pytest.approx(before_u - (1.0 - old_p))
        state.verify()

    def test_set_probability_unselected_raises(self, triangle):
        state = SparsificationState(triangle)
        with pytest.raises(GraphError):
            state.set_probability(0, 0.5)

    def test_residual_excluding_matches_bruteforce(self, small_power_law):
        state = SparsificationState(small_power_law)
        rng = np.random.default_rng(3)
        chosen = rng.choice(state.m, size=state.m // 2, replace=False)
        for eid in chosen:
            state.select_edge(int(eid), probability=float(rng.uniform(0.1, 1.0)))
        for eid in [0, int(chosen[0]), state.m - 1]:
            u, v = state.endpoints(eid)
            brute = 0.0
            for other in range(state.m):
                ou, ov = state.endpoints(other)
                if ou in (u, v) or ov in (u, v):
                    continue
                brute += state.p_original[other] - state.phat[other]
            assert state.residual_excluding(eid) == pytest.approx(brute)

    def test_residual_excluding_edge_only(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0, probability=0.2)
        expected = state.total_residual - (state.p_original[0] - 0.2)
        assert state.residual_excluding_edge_only(0) == pytest.approx(expected)

    def test_d1_matches_function(self, small_power_law):
        state = SparsificationState(small_power_law)
        for eid in range(0, state.m, 2):
            state.select_edge(eid)
        built = state.build_graph()
        assert state.d1() == pytest.approx(
            d1_objective(small_power_law, built), rel=1e-6
        )

    def test_d1_relative_matches_function(self, small_power_law):
        state = SparsificationState(small_power_law)
        for eid in range(0, state.m, 3):
            state.select_edge(eid)
        built = state.build_graph()
        assert state.d1(relative=True) == pytest.approx(
            d1_objective(small_power_law, built, relative=True), rel=1e-6
        )

    def test_build_graph_budget(self, small_power_law):
        state = SparsificationState(small_power_law)
        ids = list(range(0, state.m, 4))
        for eid in ids:
            state.select_edge(eid)
        built = state.build_graph()
        assert built.number_of_edges() == len(ids)
        assert set(built.vertices()) == set(small_power_law.vertices())


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_state_invariants_after_random_ops(seed):
    graph = flickr_like(n=30, avg_degree=6, seed=seed % 7)
    state = SparsificationState(graph)
    rng = np.random.default_rng(seed)
    for _ in range(200):
        eid = int(rng.integers(0, state.m))
        if state.selected[eid]:
            if rng.random() < 0.5:
                state.deselect_edge(eid)
            else:
                state.set_probability(eid, float(rng.uniform(0, 1)))
        else:
            state.select_edge(eid, probability=float(rng.uniform(0, 1)))
        # The vectorised verify is cheap enough to run on every step of
        # every example.
        state.verify()


class TestCSRIncidence:
    def test_matches_bruteforce_incidence(self, small_power_law):
        state = SparsificationState(small_power_law)
        brute: dict[int, list[int]] = {v: [] for v in range(state.n)}
        for eid in range(state.m):
            u, v = state.endpoints(eid)
            brute[u].append(eid)
            brute[v].append(eid)
        for vertex in range(state.n):
            got = state.incident_edges(vertex).tolist()
            assert got == brute[vertex]  # ascending edge ids per vertex

    def test_indptr_shape_and_total(self, triangle):
        state = SparsificationState(triangle)
        assert len(state.inc_indptr) == state.n + 1
        assert state.inc_indptr[-1] == 2 * state.m
        assert len(state.inc_eids) == 2 * state.m

    def test_incidence_is_read_only(self, triangle):
        state = SparsificationState(triangle)
        with pytest.raises(ValueError):
            state.inc_eids[0] = 99


class TestBatchedPrimitives:
    def test_select_edges_matches_scalar_selects(self, small_power_law):
        batched = SparsificationState(small_power_law)
        scalar = SparsificationState(small_power_law)
        rng = np.random.default_rng(0)
        eids = rng.choice(batched.m, size=batched.m // 3, replace=False)
        batched.select_edges(eids)
        for eid in eids:
            scalar.select_edge(int(eid))
        assert np.array_equal(batched.selected, scalar.selected)
        assert np.allclose(batched.phat, scalar.phat, atol=0)
        assert np.allclose(batched.delta, scalar.delta, atol=1e-12)
        batched.verify()

    def test_select_edges_with_probabilities(self, triangle):
        state = SparsificationState(triangle)
        state.select_edges(np.array([0, 2]), probabilities=np.array([0.25, 0.75]))
        assert state.phat[0] == 0.25 and state.phat[2] == 0.75
        assert not state.selected[1]
        state.verify()

    def test_select_edges_rejects_shape_mismatch(self, triangle):
        state = SparsificationState(triangle)
        with pytest.raises(GraphError):
            state.select_edges(np.array([0, 1, 2]), probabilities=np.array([0.4]))

    def test_apply_probabilities_rejects_shape_mismatch(self, triangle):
        state = SparsificationState(triangle)
        state.select_edges(np.array([0, 1]))
        with pytest.raises(GraphError):
            state.apply_probabilities(np.array([0, 1]), np.array([0.5]))

    def test_select_edges_rejects_duplicates(self, triangle):
        state = SparsificationState(triangle)
        with pytest.raises(GraphError):
            state.select_edges(np.array([0, 0]))

    def test_select_edges_rejects_already_selected(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0)
        with pytest.raises(GraphError):
            state.select_edges(np.array([0, 1]))

    def test_apply_probabilities_matches_scalar(self, small_power_law):
        batched = SparsificationState(small_power_law)
        scalar = SparsificationState(small_power_law)
        rng = np.random.default_rng(1)
        eids = rng.choice(batched.m, size=batched.m // 2, replace=False)
        for state in (batched, scalar):
            state.select_edges(eids)
        # Strictly positive draws: apply_probabilities enforces the
        # (0, 1] edge-probability domain.
        new_ps = rng.uniform(0.01, 1.0, size=len(eids))
        batched.apply_probabilities(eids, new_ps)
        for eid, p in zip(eids, new_ps):
            scalar.set_probability(int(eid), float(p))
        assert np.allclose(batched.phat, scalar.phat, atol=0)
        assert np.allclose(batched.delta, scalar.delta, atol=1e-12)
        assert batched.total_residual == pytest.approx(scalar.total_residual)
        batched.verify()

    def test_apply_probabilities_rejects_unselected(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0)
        with pytest.raises(GraphError):
            state.apply_probabilities(np.array([0, 1]), np.array([0.5, 0.5]))

    def test_apply_probabilities_rejects_duplicates(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0)
        with pytest.raises(GraphError):
            state.apply_probabilities(np.array([0, 0]), np.array([0.5, 0.6]))

    def test_snapshot_restore_roundtrip(self, small_power_law):
        state = SparsificationState(small_power_law)
        state.select_edges(np.arange(0, state.m, 2))
        snap = state.snapshot()
        reference = (
            state.phat.copy(), state.selected.copy(), state.delta.copy(),
            state.total_residual, state.d1(),
        )
        state.apply_probabilities(
            np.arange(0, state.m, 2),
            np.full(len(np.arange(0, state.m, 2)), 0.5),
        )
        state.deselect_edge(0)
        state.restore(snap)
        assert np.array_equal(state.phat, reference[0])
        assert np.array_equal(state.selected, reference[1])
        assert np.array_equal(state.delta, reference[2])
        assert state.total_residual == reference[3]
        assert state.d1() == reference[4]
        state.verify()


class TestVerify:
    def test_verify_detects_delta_corruption(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0)
        state.delta[0] += 1.0
        with pytest.raises(AssertionError):
            state.verify()

    def test_verify_detects_residual_corruption(self, triangle):
        state = SparsificationState(triangle)
        state.select_edge(0)
        state.total_residual += 1.0
        with pytest.raises(AssertionError):
            state.verify()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_mixed_scalar_and_batched_ops(seed):
    """Randomised select/deselect/set_probability + batched updates keep
    the CSR state's invariants (verify() on every hypothesis example)."""
    graph = flickr_like(n=30, avg_degree=6, seed=seed % 5)
    state = SparsificationState(graph)
    rng = np.random.default_rng(seed)
    for _ in range(60):
        roll = rng.random()
        if roll < 0.5:
            eid = int(rng.integers(0, state.m))
            if state.selected[eid]:
                if rng.random() < 0.5:
                    state.deselect_edge(eid)
                else:
                    state.set_probability(eid, float(rng.uniform(0, 1)))
            else:
                state.select_edge(eid, probability=float(rng.uniform(0, 1)))
        elif roll < 0.75:
            unselected = np.flatnonzero(~state.selected)
            if len(unselected):
                take = rng.choice(
                    unselected,
                    size=int(rng.integers(1, min(8, len(unselected)) + 1)),
                    replace=False,
                )
                state.select_edges(take, probabilities=rng.uniform(0, 1, len(take)))
        else:
            selected = np.flatnonzero(state.selected)
            if len(selected):
                take = rng.choice(
                    selected,
                    size=int(rng.integers(1, min(8, len(selected)) + 1)),
                    replace=False,
                )
                state.apply_probabilities(take, rng.uniform(0.01, 1, len(take)))
    state.verify()
