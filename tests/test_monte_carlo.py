"""Monte-Carlo estimator framework against exact oracles."""

import numpy as np
import pytest

from repro.core import UncertainGraph
from repro.exceptions import EstimationError
from repro.queries import DegreeQuery, ReliabilityQuery
from repro.sampling import (
    EstimationResult,
    MonteCarloEstimator,
    exact_reliability,
    repeated_estimates,
    required_sample_ratio,
    unbiased_variance,
)


class TestEstimator:
    def test_invalid_sample_count(self, triangle):
        with pytest.raises(EstimationError):
            MonteCarloEstimator(triangle, n_samples=0)

    def test_outcome_matrix_shape(self, triangle):
        estimator = MonteCarloEstimator(triangle, n_samples=25)
        result = estimator.run(DegreeQuery(3), rng=0)
        assert result.outcomes.shape == (25, 3)
        assert result.n_samples == 25

    def test_degree_estimates_converge_to_expected(self, small_power_law):
        estimator = MonteCarloEstimator(small_power_law, n_samples=600)
        estimates = estimator.estimate(
            DegreeQuery(small_power_law.number_of_vertices()), rng=0
        )
        expected = small_power_law.expected_degree_array()
        assert np.abs(estimates - expected).mean() < 0.2

    def test_reliability_matches_exact(self):
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.4), (0, 2, 0.3)])
        estimator = MonteCarloEstimator(g, n_samples=4000)
        estimate = estimator.run(ReliabilityQuery([(0, 2)]), rng=1).scalar_estimate()
        exact = exact_reliability(g, 0, 2)
        assert estimate == pytest.approx(exact, abs=0.03)

    def test_deterministic_with_seed(self, triangle):
        estimator = MonteCarloEstimator(triangle, n_samples=10)
        a = estimator.run(DegreeQuery(3), rng=3).outcomes
        b = estimator.run(DegreeQuery(3), rng=3).outcomes
        assert np.array_equal(a, b)


class TestEstimationResult:
    def test_nan_units_excluded_from_scalar(self):
        outcomes = np.array([[1.0, np.nan], [3.0, np.nan]])
        result = EstimationResult(outcomes=outcomes)
        assert result.scalar_estimate() == pytest.approx(2.0)

    def test_all_nan_raises(self):
        result = EstimationResult(outcomes=np.full((3, 2), np.nan))
        with pytest.raises(EstimationError):
            result.scalar_estimate()

    def test_partial_nan_unit_mean(self):
        outcomes = np.array([[1.0], [np.nan], [3.0]])
        result = EstimationResult(outcomes=outcomes)
        assert result.unit_estimates()[0] == pytest.approx(2.0)

    def test_confidence_width_shrinks_with_samples(self, small_power_law):
        query = DegreeQuery(small_power_law.number_of_vertices())
        small = MonteCarloEstimator(small_power_law, n_samples=50).run(query, rng=0)
        large = MonteCarloEstimator(small_power_law, n_samples=800).run(query, rng=0)
        assert large.confidence_width() < small.confidence_width()

    def test_per_unit_confidence_width(self, triangle):
        result = MonteCarloEstimator(triangle, n_samples=100).run(
            DegreeQuery(3), rng=0
        )
        width = result.confidence_width(unit=0)
        assert width >= 0.0


class TestVarianceProtocol:
    def test_repeated_estimates_shape(self, triangle):
        estimates = repeated_estimates(
            triangle, DegreeQuery(3), runs=5, n_samples=20, rng=0
        )
        assert estimates.shape == (5,)

    def test_unbiased_variance_matches_numpy(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        assert unbiased_variance(data) == pytest.approx(np.var(data, ddof=1))

    def test_variance_needs_two_points(self):
        with pytest.raises(EstimationError):
            unbiased_variance(np.array([1.0]))

    def test_required_sample_ratio(self):
        assert required_sample_ratio(1.0, 4.0) == pytest.approx(0.25)
        assert required_sample_ratio(1.0, 0.0) == float("inf")
        assert required_sample_ratio(0.0, 0.0) == 1.0

    def test_deterministic_graph_zero_variance(self):
        g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0)])
        estimates = repeated_estimates(
            g, DegreeQuery(3), runs=4, n_samples=10, rng=0
        )
        assert unbiased_variance(estimates) == 0.0

    def test_lower_entropy_lower_variance(self):
        """The paper's core claim at micro scale: a near-deterministic
        graph yields a lower-variance estimator than a maximally
        uncertain one."""
        uncertain = UncertainGraph([(i, (i + 1) % 8, 0.5) for i in range(8)])
        confident = UncertainGraph([(i, (i + 1) % 8, 0.95) for i in range(8)])
        query = DegreeQuery(8)
        var_uncertain = unbiased_variance(
            repeated_estimates(uncertain, query, runs=12, n_samples=40, rng=1)
        )
        var_confident = unbiased_variance(
            repeated_estimates(confident, query, runs=12, n_samples=40, rng=1)
        )
        assert var_confident < var_uncertain
