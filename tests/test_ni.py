"""NI benchmark (Algorithm 4 + adaptation)."""

import numpy as np
import pytest

from repro.baselines.ni import integer_weights, ni_core, ni_sparsify
from repro.core import UncertainGraph
from repro.core.backbone import target_edge_count


class TestIntegerWeights:
    def test_min_probability_maps_to_one(self):
        probs = np.array([0.1, 0.2, 0.4])
        weights, scale = integer_weights(probs)
        assert weights[0] == 1
        assert scale == pytest.approx(0.1)

    def test_weights_proportional(self):
        probs = np.array([0.1, 0.2, 0.4])
        weights, _ = integer_weights(probs)
        assert list(weights) == [1, 2, 4]

    def test_scale_floor_caps_max_weight(self):
        probs = np.array([1e-6, 1.0])
        weights, scale = integer_weights(probs, max_weight=128)
        assert weights.max() <= 128
        assert scale >= 1.0 / 128

    def test_empty(self):
        weights, scale = integer_weights(np.zeros(0))
        assert len(weights) == 0 and scale == 1.0

    def test_all_weights_at_least_one(self):
        probs = np.array([0.5, 0.500001, 0.9999])
        weights, _ = integer_weights(probs)
        assert weights.min() >= 1


class TestNICore:
    def test_small_epsilon_keeps_everything(self, small_power_law):
        weights, _ = integer_weights(np.array(small_power_law.probability_array()))
        kept = ni_core(
            small_power_law.number_of_vertices(),
            small_power_law.edge_index_array(),
            weights,
            epsilon=1e-6,
            rng=np.random.default_rng(0),
        )
        assert len(kept) == small_power_law.number_of_edges()

    def test_large_epsilon_keeps_little(self, small_power_law):
        weights, _ = integer_weights(np.array(small_power_law.probability_array()))
        kept = ni_core(
            small_power_law.number_of_vertices(),
            small_power_law.edge_index_array(),
            weights,
            epsilon=100.0,
            rng=np.random.default_rng(0),
        )
        assert len(kept) < small_power_law.number_of_edges() / 2

    def test_sampled_weights_are_upscaled(self, small_power_law):
        weights, _ = integer_weights(np.array(small_power_law.probability_array()))
        kept = ni_core(
            small_power_law.number_of_vertices(),
            small_power_law.edge_index_array(),
            weights,
            epsilon=3.0,
            rng=np.random.default_rng(0),
        )
        for eid, w in kept.items():
            assert w >= weights[eid]  # 1/l_e >= 1


class TestNISparsify:
    def test_budget_met(self, small_power_law):
        out = ni_sparsify(small_power_law, 0.4, rng=0)
        assert out.number_of_edges() == target_edge_count(
            small_power_law.number_of_edges(), 0.4
        )

    def test_probabilities_capped_at_one(self, small_power_law):
        out = ni_sparsify(small_power_law, 0.4, rng=0)
        probs = np.array(out.probability_array())
        assert np.all(probs <= 1.0) and np.all(probs > 0.0)

    def test_edges_subset_of_original(self, small_power_law):
        out = ni_sparsify(small_power_law, 0.4, rng=0)
        for u, v, _ in out.edges():
            assert small_power_law.has_edge(u, v)

    def test_vertex_set_preserved(self, small_power_law):
        out = ni_sparsify(small_power_law, 0.4, rng=0)
        assert set(out.vertices()) == set(small_power_law.vertices())

    def test_various_alphas(self, small_power_law):
        for alpha in (0.15, 0.3, 0.6):
            out = ni_sparsify(small_power_law, alpha, rng=1)
            assert out.number_of_edges() == target_edge_count(
                small_power_law.number_of_edges(), alpha
            )

    def test_deterministic_graph_unit_weights(self):
        """Uniform probabilities: every edge has weight 1, one forest round
        per edge batch, and the top-up fills the budget."""
        g = UncertainGraph([(i, j, 0.5) for i in range(8) for j in range(i + 1, 8)])
        out = ni_sparsify(g, 0.5, rng=0)
        assert out.number_of_edges() == target_edge_count(g.number_of_edges(), 0.5)
