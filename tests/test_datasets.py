"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    barabasi_albert_uncertain,
    beta_probability_sampler,
    densify,
    erdos_renyi_uncertain,
    figure1_graph,
    figure1_sparsified,
    flickr_like,
    grid_uncertain,
    twitter_like,
)
from repro.utils.rng import ensure_rng


class TestBetaSampler:
    def test_mean_close_to_target(self):
        draw = beta_probability_sampler(0.09, ensure_rng(0))
        samples = draw(20_000)
        assert samples.mean() == pytest.approx(0.09, abs=0.01)

    def test_range(self):
        draw = beta_probability_sampler(0.5, ensure_rng(0))
        samples = draw(1000)
        assert samples.min() >= 1e-3 and samples.max() <= 1.0

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.2])
    def test_invalid_mean(self, p):
        with pytest.raises(ValueError):
            beta_probability_sampler(p, ensure_rng(0))


class TestErdosRenyi:
    def test_edge_count(self):
        g = erdos_renyi_uncertain(50, avg_degree=8, rng=0)
        assert g.number_of_edges() == 200  # 50 * 8 / 2
        assert g.number_of_vertices() == 50

    def test_capped_at_complete_graph(self):
        g = erdos_renyi_uncertain(5, avg_degree=100, rng=0)
        assert g.number_of_edges() == 10


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert_uncertain(60, attach=4, rng=0)
        assert g.number_of_vertices() == 60
        # seed clique C(5,2)=10 plus 4 per arrival
        assert g.number_of_edges() == 10 + 4 * 55

    def test_connected(self):
        assert barabasi_albert_uncertain(60, attach=3, rng=1).is_connected()

    def test_power_law_skew(self):
        """Hub degrees must far exceed the median (preferential attachment)."""
        g = barabasi_albert_uncertain(300, attach=3, rng=2)
        degrees = sorted(g.degree(v) for v in g.vertices())
        assert degrees[-1] > 4 * degrees[len(degrees) // 2]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert_uncertain(5, attach=0)
        with pytest.raises(ValueError):
            barabasi_albert_uncertain(3, attach=3)


class TestProxies:
    def test_flickr_probability_level(self):
        g = flickr_like(n=200, seed=0)
        probs = np.array(g.probability_array())
        assert probs.mean() == pytest.approx(0.09, abs=0.02)

    def test_twitter_probability_level(self):
        g = twitter_like(n=200, seed=0)
        probs = np.array(g.probability_array())
        assert probs.mean() == pytest.approx(0.15, abs=0.03)

    def test_flickr_denser_than_twitter(self):
        f = flickr_like(n=200, seed=0)
        t = twitter_like(n=200, seed=0)
        assert f.number_of_edges() > t.number_of_edges()

    def test_deterministic_given_seed(self):
        assert flickr_like(n=100, seed=3).isomorphic_probabilities(
            flickr_like(n=100, seed=3)
        )


class TestDensify:
    def test_reaches_target_density(self):
        base = flickr_like(n=50, avg_degree=6, seed=1)
        dense = densify(base, 0.5, rng=1)
        assert dense.density() == pytest.approx(0.5, abs=0.01)

    def test_keeps_original_edges(self):
        base = flickr_like(n=40, avg_degree=6, seed=1)
        relabeled, mapping = base.relabel_to_integers()
        dense = densify(base, 0.4, rng=1)
        for u, v, p in relabeled.edges():
            assert dense.has_edge(u, v)
            assert dense.probability(u, v) == pytest.approx(p)

    def test_density_below_current_rejected(self):
        base = flickr_like(n=30, avg_degree=20, seed=1)
        with pytest.raises(ValueError):
            densify(base, 0.01, rng=0)

    @pytest.mark.parametrize("density", [0.0, 1.5])
    def test_invalid_density(self, density):
        base = flickr_like(n=30, avg_degree=4, seed=1)
        with pytest.raises(ValueError):
            densify(base, density)


class TestGrid:
    def test_shape(self):
        g = grid_uncertain(4, 5, rng=0)
        assert g.number_of_vertices() == 20
        # 4-neighbour mesh: rows*(cols-1) + (rows-1)*cols
        assert g.number_of_edges() == 4 * 4 + 3 * 5

    def test_connected(self):
        assert grid_uncertain(6, 6, rng=0).is_connected()

    def test_high_reliability_probabilities(self):
        g = grid_uncertain(4, 4, p_mean=0.9, rng=0)
        probs = np.array(g.probability_array())
        assert probs.min() >= 0.8


class TestFigure1:
    def test_original_is_k4(self):
        g = figure1_graph()
        assert g.number_of_vertices() == 4
        assert g.number_of_edges() == 6
        assert all(p == 0.3 for _, _, p in g.edges())

    def test_sparsified_is_tree(self):
        g = figure1_sparsified()
        assert g.number_of_edges() == 3
        assert g.is_connected()
        assert all(p == 0.6 for _, _, p in g.edges())
