"""Binary edge-array dataset format: round trips, digests, corruption.

The contracts under test:

- text ↔ binary round trips are lossless for dense-integer-labelled
  graphs — same vertices, same undirected edges, bit-identical
  probabilities — and serialising a given graph is deterministic
  (same bytes every time, hence stable digests),
- ``mmap=True`` and in-memory loads expose bit-identical arrays,
- the header digest (``binary_digest``, O(header)) equals the payload
  hash, and every structural corruption — bad magic, version, dtypes,
  truncation, payload tampering — raises :class:`GraphError` instead of
  producing a wrong graph.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EdgeArrayGraph, UncertainGraph
from repro.datasets import (
    binary_digest,
    graph_digest,
    is_binary_file,
    read_binary,
    read_edge_list,
    read_header,
    write_binary,
    write_binary_arrays,
    write_edge_list,
)
from repro.datasets.binary_io import (
    HEADER_SIZE,
    MAGIC,
    _HEADER_STRUCT,
    BinaryHeader,
    is_binary_data,
    pack_header,
    parse_header,
)
from repro.exceptions import GraphError


def dense_graph(n, edges_with_probs, name="g"):
    return UncertainGraph(edges_with_probs, vertices=range(n), name=name)


@pytest.fixture
def sample(tmp_path):
    g = dense_graph(6, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0),
                        (0, 4, 0.125), (3, 4, 5e-324)])
    path = tmp_path / "g.bin"
    header = write_binary(g, path)
    return g, path, header


probabilities = st.floats(
    min_value=0.0, max_value=1.0, exclude_min=True,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def dense_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    pairs = draw(st.lists(
        st.sampled_from(possible), unique=True, max_size=min(len(possible), 30),
    )) if possible else []
    probs = draw(st.lists(
        probabilities, min_size=len(pairs), max_size=len(pairs),
    ))
    return dense_graph(n, [(u, v, p) for (u, v), p in zip(pairs, probs)])


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(dense_graphs())
    def test_text_binary_round_trip(self, tmp_path_factory, g):
        tmp = tmp_path_factory.mktemp("rt")
        binary = tmp / "g.bin"
        text = tmp / "g.txt"
        header = write_binary(g, binary)
        assert header.n_vertices == g.number_of_vertices()
        assert header.n_edges == g.number_of_edges()

        # binary → graph: identical content, identical digest
        for mmap in (False, True):
            loaded = read_binary(binary, mmap=mmap, verify=True)
            assert loaded.digest == header.digest
            view = loaded.graph()
            assert np.array_equal(view.edge_index_array(),
                                  g.edge_index_array())
            assert np.array_equal(view.probability_array(),
                                  g.probability_array())
            assert graph_digest(view.materialise()) == graph_digest(g)

        # mmap and in-memory loads expose the same bits
        a = read_binary(binary, mmap=True)
        b = read_binary(binary, mmap=False)
        assert np.array_equal(np.asarray(a.src), b.src)
        assert np.array_equal(np.asarray(a.dst), b.dst)
        assert np.array_equal(np.asarray(a.probabilities), b.probabilities)

        # text → graph → binary: content round trips exactly (labels
        # become numeric strings after the text hop; the dense-set
        # writer maps them back to the same integer ids, and repr keeps
        # every probability bit)
        write_edge_list(g, text)
        reparsed = read_edge_list(text)
        binary2 = tmp / "g2.bin"
        write_binary(reparsed, binary2)
        loaded2 = read_binary(binary2, verify=True)
        assert loaded2.n_vertices == g.number_of_vertices()
        original = {frozenset((u, v)): p for u, v, p in g.edges()}
        restored = {frozenset((int(u), int(v))): p
                    for u, v, p in loaded2.graph().materialise().edges()}
        assert restored == original

        # determinism: a given graph always serialises to the same bytes
        binary3 = tmp / "g3.bin"
        write_binary(reparsed, binary3)
        assert binary3.read_bytes() == binary2.read_bytes()
        assert binary_digest(binary3) == binary_digest(binary2)

    def test_empty_graph_round_trip(self, tmp_path):
        g = dense_graph(4, [])
        path = tmp_path / "empty.bin"
        write_binary(g, path)
        for mmap in (False, True):
            loaded = read_binary(path, mmap=mmap, verify=True)
            assert loaded.n_vertices == 4
            assert loaded.n_edges == 0
            assert loaded.graph().materialise().number_of_edges() == 0

    def test_mmap_arrays_are_lazy_views(self, sample):
        _g, path, _header = sample
        loaded = read_binary(path, mmap=True)
        assert isinstance(loaded.src, np.memmap)
        assert isinstance(loaded.probabilities, np.memmap)
        with pytest.raises((ValueError, OSError)):
            loaded.src[0] = 99  # read-only mapping

    def test_scrambled_dense_labels_are_lossless(self, tmp_path):
        # Vertices inserted in edge-creation order (the ER generator's
        # shape): the label *set* is dense, the iteration order is not.
        g = UncertainGraph([(3, 1, 0.5), (0, 2, 0.25), (1, 0, 0.75)])
        assert list(g.vertices()) != list(range(4))
        path = tmp_path / "scrambled.bin"
        write_binary(g, path)
        loaded = read_binary(path)
        restored = {frozenset((int(u), int(v))): p
                    for u, v, p in loaded.graph().materialise().edges()}
        assert restored == {frozenset(e): p for e, p in
                            [((3, 1), 0.5), ((0, 2), 0.25), ((1, 0), 0.75)]}

    def test_non_dense_labels_require_allow_relabel(self, tmp_path):
        g = UncertainGraph([("a", "b", 0.5), ("b", "c", 0.25)])
        path = tmp_path / "labels.bin"
        with pytest.raises(GraphError, match="allow_relabel"):
            write_binary(g, path)
        write_binary(g, path, allow_relabel=True)
        loaded = read_binary(path, verify=True)
        assert loaded.n_vertices == 3
        assert np.array_equal(loaded.src, [0, 1])
        assert np.array_equal(loaded.dst, [1, 2])

    def test_from_arrays_feeds_state_without_materialising(self, sample):
        from repro.core.discrepancy import SparsificationState

        _g, path, _header = sample
        view = read_binary(path, mmap=True).graph()
        state = SparsificationState(view)
        assert state.m == view.number_of_edges()
        reference = SparsificationState(view.materialise())
        assert np.array_equal(state.original_degrees,
                              reference.original_degrees)
        assert np.array_equal(state.edge_vertices, reference.edge_vertices)


class TestDigest:
    def test_binary_digest_is_header_digest(self, sample):
        _g, path, header = sample
        assert binary_digest(path) == header.digest
        assert read_binary(path).digest == header.digest

    def test_digest_tracks_content(self, tmp_path):
        a = write_binary_arrays(tmp_path / "a.bin", 3, [0, 1], [1, 2],
                                [0.5, 0.25])
        b = write_binary_arrays(tmp_path / "b.bin", 3, [0, 1], [1, 2],
                                [0.5, 0.25])
        c = write_binary_arrays(tmp_path / "c.bin", 3, [0, 1], [1, 2],
                                [0.5, 0.125])
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_sniffing(self, sample, tmp_path):
        _g, path, _header = sample
        assert is_binary_file(path)
        assert is_binary_data(path.read_bytes())
        text = tmp_path / "t.txt"
        text.write_text("a b 0.5\n")
        assert not is_binary_file(text)
        assert not is_binary_file(tmp_path / "missing.bin")


class TestCorruption:
    def test_payload_tampering_detected_by_verify(self, sample):
        _g, path, _header = sample
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        # O(header) reads still succeed — only verify re-hashes.
        read_header(path)
        with pytest.raises(GraphError, match="digest"):
            read_binary(path, verify=True)
        with pytest.raises(GraphError, match="digest"):
            read_binary(path, mmap=True).verify()

    def test_truncated_payload(self, sample):
        _g, path, _header = sample
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(GraphError, match="truncated or corrupt"):
            read_header(path)
        with pytest.raises(GraphError, match="truncated or corrupt"):
            read_binary(path)

    def test_oversized_file(self, sample):
        _g, path, _header = sample
        path.write_bytes(path.read_bytes() + b"\0" * 16)
        with pytest.raises(GraphError, match="truncated or corrupt"):
            read_binary(path)

    def test_truncated_header(self, sample):
        _g, path, _header = sample
        path.write_bytes(path.read_bytes()[:HEADER_SIZE - 10])
        with pytest.raises(GraphError, match="truncated"):
            read_header(path)

    def test_bad_magic(self, sample):
        _g, path, _header = sample
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphError, match="not a binary dataset"):
            read_binary(path)

    def test_unsupported_version(self, tmp_path):
        header = bytearray(pack_header(2, 0, b"\0" * 32))
        struct.pack_into("<H", header, 4, 99)
        path = tmp_path / "v99.bin"
        path.write_bytes(bytes(header))
        with pytest.raises(GraphError, match="version 99"):
            read_header(path)

    def test_unsupported_dtype_codes(self, tmp_path):
        header = bytearray(pack_header(2, 0, b"\0" * 32))
        header[24] = 7
        path = tmp_path / "dtype.bin"
        path.write_bytes(bytes(header))
        with pytest.raises(GraphError, match="dtype"):
            read_header(path)

    def test_parse_header_roundtrip(self):
        raw = pack_header(10, 3, b"\xab" * 32)
        header = parse_header(raw)
        assert header == BinaryHeader(n_vertices=10, n_edges=3,
                                      digest=("ab" * 32))
        assert header.file_size == HEADER_SIZE + 3 * 24
        assert _HEADER_STRUCT.size == HEADER_SIZE
        assert raw[:4] == MAGIC

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="cannot read"):
            read_header(tmp_path / "missing.bin")


class TestWriteValidation:
    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(GraphError):
            write_binary_arrays(tmp_path / "bad.bin", 3, [0, 1], [1],
                                [0.5, 0.25])

    def test_malformed_arrays_never_written_with_valid_digest(self, tmp_path):
        # validate=True runs the EdgeArrayGraph checks up front.
        with pytest.raises(Exception):
            write_binary_arrays(tmp_path / "bad.bin", 2, [0], [5], [0.5])

    def test_edge_array_graph_round_trip(self, tmp_path):
        view = EdgeArrayGraph(4, [0, 1, 2], [1, 2, 3], [0.5, 0.25, 1.0])
        path = tmp_path / "view.bin"
        write_binary(view, path)
        loaded = read_binary(path, verify=True).graph()
        assert np.array_equal(loaded.edge_index_array(),
                              view.edge_index_array())
        assert np.array_equal(loaded.probability_array(),
                              view.probability_array())
