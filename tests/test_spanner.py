"""Baswana–Sen spanner benchmark (Algorithm 5 + adaptation)."""

import numpy as np
import pytest

from repro.baselines.spanner import (
    _initial_stretch,
    baswana_sen_spanner,
    spanner_sparsify,
)
from repro.core import UncertainGraph
from repro.core.backbone import target_edge_count
from repro.datasets import flickr_like


class TestInitialStretch:
    def test_dense_budget_gives_small_t(self):
        # n=100, m=4000, alpha=0.64 -> budget 2560 >= 2 * 100^1.5 = 2000
        assert _initial_stretch(100, 4000, 0.64, t_max=24) == 2

    def test_tight_budget_gives_t_max(self):
        assert _initial_stretch(100, 300, 0.1, t_max=24) == 24


class TestBaswanaSen:
    def _spanner(self, graph, t, seed=0):
        weights = -np.log(np.array(graph.probability_array()))
        return baswana_sen_spanner(
            graph.number_of_vertices(),
            graph.edge_index_array(),
            weights,
            t,
            np.random.default_rng(seed),
        )

    def test_returns_valid_edge_ids(self, small_power_law):
        ids = self._spanner(small_power_law, 3)
        m = small_power_law.number_of_edges()
        assert all(0 <= e < m for e in ids)
        assert len(set(ids)) == len(ids)

    def test_spanner_smaller_than_graph(self, small_power_law):
        ids = self._spanner(small_power_law, 3)
        assert len(ids) < small_power_law.number_of_edges()

    def test_spanner_preserves_connectivity(self):
        g = flickr_like(n=40, avg_degree=12, seed=2)
        ids = self._spanner(g, 2)
        edge_list = g.edge_list()
        probs = g.probability_array()
        spanner = g.subgraph_with_edges(
            (edge_list[e][0], edge_list[e][1], float(probs[e])) for e in ids
        )
        # A (2t-1)-spanner of a connected graph is connected.
        assert spanner.is_connected()

    def test_stretch_bound_holds_on_small_graph(self):
        """distances in the spanner are at most (2t-1) x original."""
        import networkx as nx

        g = flickr_like(n=30, avg_degree=8, seed=3)
        t = 2
        ids = self._spanner(g, t)
        weights = -np.log(np.array(g.probability_array()))
        original = nx.Graph()
        spanner = nx.Graph()
        edge_list = g.edge_list()
        for eid, (u, v) in enumerate(edge_list):
            original.add_edge(u, v, weight=float(weights[eid]))
            if eid in set(ids):
                spanner.add_edge(u, v, weight=float(weights[eid]))
        spanner.add_nodes_from(original.nodes())
        dist_orig = dict(nx.all_pairs_dijkstra_path_length(original))
        dist_span = dict(nx.all_pairs_dijkstra_path_length(spanner))
        stretch = 2 * t - 1
        for u in original.nodes():
            for v, d in dist_orig[u].items():
                if u == v:
                    continue
                assert v in dist_span[u], "spanner disconnected a pair"
                assert dist_span[u][v] <= stretch * d + 1e-9


class TestSpannerSparsify:
    def test_budget_met(self, small_power_law):
        out = spanner_sparsify(small_power_law, 0.4, rng=0)
        assert out.number_of_edges() == target_edge_count(
            small_power_law.number_of_edges(), 0.4
        )

    def test_probabilities_unchanged(self, small_power_law):
        """Spanners never redistribute: kept edges keep original p."""
        out = spanner_sparsify(small_power_law, 0.4, rng=0)
        for u, v, p in out.edges():
            assert p == pytest.approx(small_power_law.probability(u, v))

    def test_vertex_set_preserved(self, small_power_law):
        out = spanner_sparsify(small_power_law, 0.4, rng=0)
        assert set(out.vertices()) == set(small_power_law.vertices())

    def test_small_budget_truncation_fallback(self, small_sparse):
        """Sparse graph + small alpha: the documented truncation path."""
        out = spanner_sparsify(small_sparse, 0.15, rng=0)
        assert out.number_of_edges() == target_edge_count(
            small_sparse.number_of_edges(), 0.15
        )
