"""ResultTable formatting edge cases (experiment table renderer)."""

import pytest

from repro.experiments.common import ResultTable, geometric_mean, timed


def test_zero_renders_bare():
    table = ResultTable(title="t", headers=["a"])
    table.add_row(0.0)
    assert table.format().splitlines()[-1].strip() == "0"


def test_large_values_scientific():
    table = ResultTable(title="t", headers=["a"])
    table.add_row(123456.0)
    assert "e+05" in table.format()


def test_small_values_scientific():
    table = ResultTable(title="t", headers=["a"])
    table.add_row(0.00012)
    assert "1.200e-04" in table.format()


def test_mid_range_fixed_point():
    table = ResultTable(title="t", headers=["a"])
    table.add_row(0.5)
    assert "0.5000" in table.format()


def test_strings_and_ints_pass_through():
    table = ResultTable(title="t", headers=["name", "count"])
    table.add_row("GDB", 42)
    text = table.format()
    assert "GDB" in text and "42" in text


def test_columns_aligned():
    table = ResultTable(title="t", headers=["method", "x"])
    table.add_row("short", 1.0)
    table.add_row("a-much-longer-name", 2.0)
    lines = table.format().splitlines()
    header_line = lines[2]
    # The x column starts at the same offset in every row.
    offset = header_line.index("x")
    for line in lines[3:]:
        value = line[offset:].strip().split()[0]
        assert value in ("1.0000", "2.0000")


def test_empty_table_formats():
    table = ResultTable(title="empty", headers=["h1", "h2"])
    text = table.format()
    assert "empty" in text and "h1" in text


def test_str_equals_format():
    table = ResultTable(title="t", headers=["a"])
    table.add_row(1.0)
    assert str(table) == table.format()


def test_timed_measures_positive_duration():
    import time

    _, seconds = timed(time.sleep, 0.01)
    assert seconds >= 0.009


def test_geometric_mean_ignores_nonpositive():
    assert geometric_mean([0.0, -1.0, 4.0, 1.0]) == pytest.approx(2.0)
