"""Backend conformance suite: the ``xp`` shim behind kernels and sweeps.

Three layers of assurance, all runnable on CPU-only CI:

- **Op conformance** — every backend's curated op surface (``OPS``)
  matches the NumPy reference semantics on adversarial little inputs
  (duplicate scatter columns, all-inf rows, empty selections).
- **Kernel equivalence** — the portable xp BFS / delta-stepping
  formulations reproduce the specialised host kernels: *exactly* for
  integer BFS levels (representation-independent), within ``1e-9`` for
  weighted distances.
- **Sweep equivalence** — :class:`~repro.core.sweep.DeviceSweep` under
  ``gdb_refine`` converges to the host engine's objective within
  ``1e-6``.

The instrumented backend (numpy-wrapping, call-recording, non-default
creation dtypes) and an array-API adapter over the NumPy namespace run
everywhere; ``array_api_strict`` / torch / CuPy parametrisations
auto-skip when the library is not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    OPS,
    ArrayAPIBackend,
    ArrayBackend,
    InstrumentedBackend,
    NumpyBackend,
    available_backends,
    resolve_backend,
)
from repro.core.backbone import build_backbone
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import GDBConfig, gdb_refine
from repro.datasets import flickr_like
from repro.exceptions import EstimationError
from repro.queries import ReliabilityQuery, ShortestPathQuery
from repro.sampling import MonteCarloEstimator, WorldSampler
from repro.sampling.batch import (
    BATCH_BYTES_ENV,
    DEFAULT_BATCH_BYTES,
    auto_batch_size,
    auto_chunk_size,
    kernel_world_bytes,
)

_OPTIONAL = ("array_api_strict", "torch", "torch:cuda", "cupy")


def _backend_params():
    """Every non-reference backend, optional ones marked for auto-skip."""
    avail = available_backends()
    params = [
        pytest.param("instrumented", id="instrumented"),
        pytest.param("numpy_api", id="numpy_api"),
    ]
    for name in _OPTIONAL:
        marks = ()
        if name not in avail:
            marks = (pytest.mark.skip(reason=f"backend {name!r} not installed"),)
        params.append(pytest.param(name, id=name.replace(":", "_"), marks=marks))
    return params


@pytest.fixture(params=_backend_params())
def xp(request) -> ArrayBackend:
    """A non-reference backend (the portable-kernel dispatch trigger)."""
    if request.param == "numpy_api":
        return ArrayAPIBackend(np, name="numpy_api")
    return resolve_backend(request.param)


@pytest.fixture
def sampler(small_power_law) -> WorldSampler:
    return WorldSampler(small_power_law)


# -- registry ----------------------------------------------------------------

class TestRegistry:
    def test_default_is_numpy_reference(self):
        backend = resolve_backend(None)
        assert isinstance(backend, NumpyBackend)
        assert backend.is_reference
        assert backend.key == "numpy:cpu"
        assert backend.spec == "numpy"

    def test_name_resolution_is_singleton(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")
        assert resolve_backend("instrumented") is resolve_backend("instrumented")

    def test_instance_passthrough(self):
        backend = InstrumentedBackend(label="mine")
        assert resolve_backend(backend) is backend

    def test_available_backends_always_offer_cpu_testables(self):
        avail = available_backends()
        assert "numpy" in avail
        assert "instrumented" in avail

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("not-a-backend")

    def test_non_string_raises(self):
        with pytest.raises(ValueError, match="must be None, a name"):
            resolve_backend(42)

    def test_unavailable_name_raises(self):
        missing = [n for n in _OPTIONAL if n not in available_backends()]
        if not missing:
            pytest.skip("every optional backend is installed here")
        with pytest.raises(ValueError, match="not available"):
            resolve_backend(missing[0])

    def test_spec_round_trips_for_registry_backends(self):
        for name in available_backends():
            backend = resolve_backend(name)
            assert resolve_backend(backend.spec) is backend

    def test_only_numpy_is_reference(self):
        for name in available_backends():
            backend = resolve_backend(name)
            assert backend.is_reference == (name == "numpy")


# -- op conformance ----------------------------------------------------------

class TestOpConformance:
    """Each op against the NumPy reference on small adversarial inputs."""

    def test_asarray_to_host_round_trip(self, xp):
        host = np.array([[1.5, -2.0, np.inf], [0.0, 3.25, -0.5]])
        back = np.asarray(xp.to_host(xp.asarray(host, xp.float64)), dtype=np.float64)
        np.testing.assert_array_equal(back, host)

    def test_creation_with_explicit_dtypes(self, xp):
        z = np.asarray(xp.to_host(xp.zeros((2, 3), xp.float64)), dtype=np.float64)
        np.testing.assert_array_equal(z, np.zeros((2, 3)))
        f = np.asarray(xp.to_host(xp.full((2, 2), np.inf, xp.float64)), dtype=np.float64)
        assert np.all(np.isinf(f))

    def test_elementwise_suite(self, xp):
        a = xp.asarray(np.array([[1.0, -4.0, np.inf], [0.25, 2.0, -1.5]]), xp.float64)
        b = xp.asarray(np.array([[0.5, -5.0, 3.0], [1.0, 1.0, 1.0]]), xp.float64)
        np.testing.assert_allclose(
            np.asarray(xp.to_host(xp.minimum(a, b)), dtype=np.float64),
            [[0.5, -5.0, 3.0], [0.25, 1.0, -1.5]],
        )
        np.testing.assert_array_equal(
            np.asarray(xp.to_host(xp.isfinite(a)), dtype=bool),
            [[True, True, False], [True, True, True]],
        )
        np.testing.assert_allclose(
            np.asarray(xp.to_host(xp.clip(b, 0.0, 1.0)), dtype=np.float64),
            [[0.5, 0.0, 1.0], [1.0, 1.0, 1.0]],
        )
        np.testing.assert_allclose(
            np.asarray(xp.to_host(xp.abs(b)), dtype=np.float64),
            [[0.5, 5.0, 3.0], [1.0, 1.0, 1.0]],
        )

    def test_where_accepts_python_scalars(self, xp):
        cond = xp.asarray(np.array([[True, False], [False, True]]), xp.bool_)
        vals = xp.asarray(np.array([[1.0, 2.0], [3.0, 4.0]]), xp.float64)
        out = np.asarray(xp.to_host(xp.where(cond, vals, np.inf)), dtype=np.float64)
        np.testing.assert_array_equal(out, [[1.0, np.inf], [np.inf, 4.0]])

    def test_take_gathers_along_both_axes(self, xp):
        a = xp.asarray(np.arange(12, dtype=np.float64).reshape(3, 4), xp.float64)
        idx = xp.asarray(np.array([3, 0, 0, 2]), xp.int64)
        out = np.asarray(xp.to_host(xp.take(a, idx, 1)), dtype=np.float64)
        np.testing.assert_array_equal(
            out, np.take(np.arange(12.0).reshape(3, 4), [3, 0, 0, 2], axis=1)
        )
        ridx = xp.asarray(np.array([2, 2, 1]), xp.int64)
        out0 = np.asarray(xp.to_host(xp.take(a, ridx, 0)), dtype=np.float64)
        np.testing.assert_array_equal(
            out0, np.take(np.arange(12.0).reshape(3, 4), [2, 2, 1], axis=0)
        )

    def test_expand_cols_broadcasts(self, xp):
        flat = xp.asarray(np.array([1.0, 2.0]), xp.float64)
        wide = xp.asarray(np.ones((2, 3)), xp.float64)
        out = np.asarray(xp.to_host(xp.expand_cols(flat) * wide), dtype=np.float64)
        np.testing.assert_array_equal(out, [[1.0] * 3, [2.0] * 3])

    def test_reductions_with_axis(self, xp):
        a = xp.asarray(np.array([[True, False], [False, False]]), xp.bool_)
        np.testing.assert_array_equal(
            np.asarray(xp.to_host(xp.any(a, axis=1)), dtype=bool), [True, False]
        )
        np.testing.assert_array_equal(
            np.asarray(xp.to_host(xp.all(a, axis=1)), dtype=bool), [False, False]
        )
        v = xp.asarray(np.array([[1.0, 2.0], [3.0, 4.0]]), xp.float64)
        assert xp.float_scalar(xp.sum(v)) == 10.0
        assert xp.float_scalar(xp.min(v)) == 1.0

    def test_scatter_min_cols_duplicates_and_inf(self, xp):
        # Two directed edges land in column 1 of row 0; row 1 is all-inf.
        col_idx = xp.asarray(np.array([1, 1, 0]), xp.int64)
        values = xp.asarray(
            np.array([[3.0, 2.0, np.inf], [np.inf, np.inf, np.inf]]), xp.float64
        )
        out = np.asarray(
            xp.to_host(xp.scatter_min_cols((2, 3), col_idx, values)),
            dtype=np.float64,
        )
        np.testing.assert_array_equal(
            out, [[np.inf, 2.0, np.inf], [np.inf, np.inf, np.inf]]
        )

    def test_scatter_or_cols_duplicates_and_empty(self, xp):
        col_idx = xp.asarray(np.array([2, 2, 0]), xp.int64)
        values = xp.asarray(
            np.array([[True, False, False], [False, False, False]]), xp.bool_
        )
        out = np.asarray(
            xp.to_host(xp.scatter_or_cols((2, 3), col_idx, values)), dtype=bool
        )
        np.testing.assert_array_equal(
            out, [[False, False, True], [False, False, False]]
        )
        empty = np.asarray(
            xp.to_host(
                xp.scatter_or_cols(
                    (2, 3), col_idx,
                    xp.asarray(np.zeros((2, 3), dtype=bool), xp.bool_),
                )
            ),
            dtype=bool,
        )
        assert not empty.any()

    def test_put_scatter_assign_unique_indices(self, xp):
        a = xp.asarray(np.zeros(5), xp.float64)
        idx = xp.asarray(np.array([4, 1]), xp.int64)
        vals = xp.asarray(np.array([9.0, -2.0]), xp.float64)
        a = xp.put(a, idx, vals)
        np.testing.assert_array_equal(
            np.asarray(xp.to_host(a), dtype=np.float64), [0.0, -2.0, 0.0, 0.0, 9.0]
        )

    def test_operators_are_part_of_the_contract(self, xp):
        a = xp.asarray(np.array([1.0, 2.0, 3.0]), xp.float64)
        b = xp.asarray(np.array([3.0, 2.0, 1.0]), xp.float64)
        np.testing.assert_array_equal(
            np.asarray(xp.to_host((a + b) * a - b / b), dtype=np.float64),
            [3.0, 7.0, 11.0],
        )
        lt = np.asarray(xp.to_host(a < b), dtype=bool)
        ge = np.asarray(xp.to_host(a >= b), dtype=bool)
        np.testing.assert_array_equal(lt, [True, False, False])
        np.testing.assert_array_equal(ge, [False, True, True])
        m = xp.asarray(np.array([True, False, True]), xp.bool_)
        n = xp.asarray(np.array([True, True, False]), xp.bool_)
        np.testing.assert_array_equal(
            np.asarray(xp.to_host((m & n) | ~n), dtype=bool), [True, False, True]
        )

    def test_identity_and_introspection(self, xp):
        assert xp.is_reference is False
        assert xp.key.startswith(f"{xp.name}:")
        assert xp.world_bytes(100, 50) > 0
        assert xp.world_bytes(0, 0) > 0
        xp.synchronize()  # must be harmless on every backend

    def test_ops_surface_is_complete(self, xp):
        for op in OPS:
            assert callable(getattr(xp, op)), op


# -- kernel equivalence ------------------------------------------------------

class TestKernelEquivalence:
    def test_bfs_distances_exact(self, sampler, xp):
        ref = sampler.sample_batch(24, rng=11)
        dev = sampler.sample_batch(24, rng=11, backend=xp)
        for source in (0, 7, sampler.n - 1):
            np.testing.assert_array_equal(
                dev.bfs_distances(source), ref.bfs_distances(source)
            )

    def test_bfs_distances_with_targets_exact(self, sampler, xp):
        ref = sampler.sample_batch(16, rng=3)
        dev = sampler.sample_batch(16, rng=3, backend=xp)
        targets = [1, 5, sampler.n - 2]
        got = dev.bfs_distances(0, targets=targets)
        want = ref.bfs_distances(0, targets=targets)
        # Early exit leaves non-target columns unspecified: compare the
        # target columns (the contract) against the host kernel.
        np.testing.assert_array_equal(got[:, targets], want[:, targets])

    def test_bfs_source_is_target_trivial_exit(self, sampler, xp):
        dev = sampler.sample_batch(4, rng=9, backend=xp)
        distances = dev.bfs_distances(2, targets=[2])
        np.testing.assert_array_equal(distances[:, 2], np.zeros(4, dtype=np.int64))

    def test_weighted_distances_tolerance(self, sampler, xp):
        ref = sampler.sample_batch(24, rng=11)
        dev = sampler.sample_batch(24, rng=11, backend=xp)
        for source in (0, 9):
            np.testing.assert_allclose(
                dev.weighted_distances(source),
                ref.weighted_distances(source),
                rtol=0.0, atol=1e-9,
            )

    def test_weighted_distances_with_targets(self, sampler, xp):
        ref = sampler.sample_batch(12, rng=4)
        dev = sampler.sample_batch(12, rng=4, backend=xp)
        targets = [3, 8]
        got = dev.weighted_distances(1, targets=targets)
        want = ref.weighted_distances(1, targets=targets)
        np.testing.assert_allclose(
            got[:, targets], want[:, targets], rtol=0.0, atol=1e-9
        )

    def test_numpy_backend_stays_bit_identical(self, sampler):
        ref = sampler.sample_batch(16, rng=2)
        via_name = sampler.sample_batch(16, rng=2, backend="numpy")
        np.testing.assert_array_equal(
            via_name.bfs_distances(0), ref.bfs_distances(0)
        )
        np.testing.assert_array_equal(
            via_name.weighted_distances(0), ref.weighted_distances(0)
        )

    def test_portable_kernels_on_reference_ops_match(self, sampler):
        """The xp formulations themselves, run on raw NumPy reference ops
        (via an adapter flagged non-reference), match the specialised
        kernels bit for bit — the shim adds no arithmetic of its own."""
        numpy_api = ArrayAPIBackend(np, name="numpy_api")
        ref = sampler.sample_batch(20, rng=7)
        dev = sampler.sample_batch(20, rng=7, backend=numpy_api)
        np.testing.assert_array_equal(dev.bfs_distances(3), ref.bfs_distances(3))
        np.testing.assert_array_equal(
            dev.weighted_distances(3), ref.weighted_distances(3)
        )


# -- sweep equivalence -------------------------------------------------------

class TestSweepEquivalence:
    @pytest.mark.parametrize("relative", [False, True])
    def test_gdb_refine_converged_objective(self, small_power_law, xp, relative):
        backbone = build_backbone(small_power_law, 0.4, method="bgi", rng=5)
        config = GDBConfig(relative=relative, max_sweeps=2000)

        host = SparsificationState(small_power_law)
        host.select_edges(backbone)
        host_sweeps = gdb_refine(host, config)

        dev = SparsificationState(small_power_law)
        dev.select_edges(backbone)
        dev_sweeps = gdb_refine(dev, config, backend=xp)

        assert host_sweeps < config.max_sweeps
        assert dev_sweeps < config.max_sweeps
        assert abs(host.d1(relative=relative) - dev.d1(relative=relative)) <= 1e-6
        dev.verify(tol=1e-8)

    def test_device_path_rebuilds_sequential_only_plan(self, small_power_law, xp):
        from repro.core.sweep import build_sweep_plan

        backbone = build_backbone(small_power_law, 0.4, method="bgi", rng=5)
        state = SparsificationState(small_power_law)
        state.select_edges(backbone)
        plan = build_sweep_plan(state, sequential_only=True)
        reference = SparsificationState(small_power_law)
        reference.select_edges(backbone)
        config = GDBConfig(max_sweeps=2000)
        gdb_refine(reference, config)
        gdb_refine(state, config, plan=plan, backend=xp)
        assert abs(state.d1() - reference.d1()) <= 1e-6


# -- instrumented backend specifics ------------------------------------------

class TestInstrumentedBackend:
    def test_records_every_kernel_call(self, sampler):
        backend = InstrumentedBackend(label="probe")
        batch = sampler.sample_batch(8, rng=1, backend=backend)
        batch.bfs_distances(0)
        assert backend.calls["scatter_or_cols"] > 0
        assert backend.calls["take"] > 0
        batch.weighted_distances(0)
        assert backend.calls["scatter_min_cols"] > 0
        assert backend.calls["where"] > 0

    def test_dtype_traps_default_to_narrow_dtypes(self):
        backend = InstrumentedBackend()
        assert backend.asarray(np.zeros(3)).dtype == np.float32
        assert backend.asarray(np.zeros(3, dtype=np.int64)).dtype == np.int32
        assert backend.zeros((2, 2)).dtype == np.float32
        assert backend.full((2, 2), 1.0).dtype == np.float32
        # Explicit dtypes pass through untouched — the trap only fires
        # on kernel code that *forgot* to pin its dtype.
        assert backend.asarray(np.zeros(3), np.float64).dtype == np.float64

    def test_labels_give_distinct_cache_keys(self):
        a = InstrumentedBackend(label="a")
        b = InstrumentedBackend(label="b")
        assert a.key != b.key
        assert resolve_backend("instrumented").key not in (a.key, b.key)


# -- per-batch device cache ---------------------------------------------------

class TestBatchBackendCache:
    def test_plan_cached_per_backend_key(self, sampler):
        backend = InstrumentedBackend(label="cache")
        batch = sampler.sample_batch(8, rng=1, backend=backend)
        batch.bfs_distances(0)
        uploads = backend.calls["asarray"]
        batch.bfs_distances(1)
        # The device plan (alive mask + endpoint columns) is reused, so
        # the second source re-uploads only per-source state.
        assert backend.calls["asarray"] < 2 * uploads
        assert batch._xp_plan[0] == backend.key

    def test_backend_swap_invalidates_stale_plan(self, sampler):
        first = InstrumentedBackend(label="first")
        second = InstrumentedBackend(label="second")
        ref = sampler.sample_batch(8, rng=1)
        batch = sampler.sample_batch(8, rng=1, backend=first)
        np.testing.assert_array_equal(
            batch.bfs_distances(0), ref.bfs_distances(0)
        )
        assert batch._xp_plan[0] == first.key
        batch.backend = second
        np.testing.assert_array_equal(
            batch.bfs_distances(0), ref.bfs_distances(0)
        )
        assert batch._xp_plan[0] == second.key
        assert second.calls["asarray"] > 0


# -- chunk autosizing (footprint model regression) ----------------------------

class TestChunkAutosizing:
    M, N = 10_000, 1_000  # packed/world = 72 kB, boolean/world = 352 kB

    def test_kernel_world_bytes_model(self):
        assert kernel_world_bytes(self.M, self.N, kernel="packed") == 72_000
        assert kernel_world_bytes(self.M, self.N, kernel="boolean") == 352_000
        # The default kernel is packed: the historical boolean model
        # overestimated it ~5x at this shape (8x asymptotically in m).
        assert kernel_world_bytes(self.M, self.N) == 72_000
        assert kernel_world_bytes(0, 0) > 0
        with pytest.raises(ValueError):
            kernel_world_bytes(self.M, self.N, kernel="not-a-kernel")

    def test_pinned_chunk_sizes_per_kernel(self):
        budget = 1_000_000
        assert auto_chunk_size(100, self.M, self.N, budget_bytes=budget,
                               kernel="packed") == 13
        assert auto_chunk_size(100, self.M, self.N, budget_bytes=budget,
                               kernel="boolean") == 2
        # Same budget, default kernel == packed.
        assert auto_chunk_size(100, self.M, self.N, budget_bytes=budget) == 13

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BATCH_BYTES_ENV, "352000")
        assert auto_chunk_size(100, self.M, self.N, kernel="boolean") == 1
        assert auto_chunk_size(100, self.M, self.N, kernel="packed") == 4
        # An explicit budget always beats the environment.
        assert auto_chunk_size(100, self.M, self.N, budget_bytes=1_000_000,
                               kernel="packed") == 13

    def test_default_budget(self, monkeypatch):
        monkeypatch.delenv(BATCH_BYTES_ENV, raising=False)
        assert auto_chunk_size(10**9, self.M, self.N, kernel="packed") == \
            DEFAULT_BATCH_BYTES // 72_000

    def test_backend_supplied_footprint(self):
        # Non-reference backends size by their own dense-kernel model:
        # 20*2m + 40n = 440 kB/world here.
        assert auto_chunk_size(100, self.M, self.N, budget_bytes=1_000_000,
                               backend="instrumented") == 2
        # The reference backend keeps the host kernel model.
        assert auto_chunk_size(100, self.M, self.N, budget_bytes=1_000_000,
                               backend="numpy") == 13

    def test_floors_and_caps(self):
        assert auto_chunk_size(500, 10**9, budget_bytes=1) == 1
        assert auto_chunk_size(500, 1, budget_bytes=2**40) == 500
        assert auto_chunk_size(0, 0) == 1
        assert auto_batch_size(7, 1, 1) == 7  # compat alias

    def test_alias_matches_auto_chunk_size(self):
        for kernel in (None, "packed", "boolean"):
            assert auto_batch_size(
                1000, self.M, self.N, budget_bytes=10**7, kernel=kernel
            ) == auto_chunk_size(
                1000, self.M, self.N, budget_bytes=10**7, kernel=kernel
            )


# -- estimator integration ----------------------------------------------------

class TestEstimatorIntegration:
    def test_outcomes_bit_identical_for_hop_queries(self, small_power_law, xp):
        pairs = [(0, 10), (3, 40), (7, 22)]
        query = ShortestPathQuery(pairs)
        ref = MonteCarloEstimator(small_power_law, n_samples=40)
        dev = MonteCarloEstimator(small_power_law, n_samples=40, backend=xp)
        np.testing.assert_array_equal(
            dev.run(query, rng=5).outcomes, ref.run(query, rng=5).outcomes
        )

    def test_reliability_unchanged(self, small_power_law, xp):
        query = ReliabilityQuery([(0, 10), (3, 40)])
        ref = MonteCarloEstimator(small_power_law, n_samples=40)
        dev = MonteCarloEstimator(small_power_law, n_samples=40, backend=xp)
        np.testing.assert_array_equal(
            dev.run(query, rng=5).outcomes, ref.run(query, rng=5).outcomes
        )

    def test_legacy_loop_rejects_non_reference_backend(self, small_power_law):
        with pytest.raises(EstimationError, match="batched"):
            MonteCarloEstimator(
                small_power_law, n_samples=10, batched=False,
                backend="instrumented",
            )

    def test_numpy_backend_estimator_is_bit_identical(self, small_power_law):
        query = ShortestPathQuery([(0, 10), (3, 40)], weighted=True)
        ref = MonteCarloEstimator(small_power_law, n_samples=30)
        named = MonteCarloEstimator(small_power_law, n_samples=30, backend="numpy")
        np.testing.assert_array_equal(
            named.run(query, rng=9).outcomes, ref.run(query, rng=9).outcomes
        )
