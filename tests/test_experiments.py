"""Experiment harness: smoke runs at micro scale + shape assertions."""

import pytest

from repro.experiments import (
    ExperimentScale,
    run_fig01,
    run_fig05,
    run_table2,
)
from repro.experiments.common import (
    ResultTable,
    geometric_mean,
    make_flickr_proxy,
    make_flickr_reduced,
    make_twitter_proxy,
    timed,
)

MICRO = ExperimentScale(
    name="micro",
    flickr_n=50, flickr_avg_degree=30, twitter_n=50, twitter_avg_degree=26,
    reduced_n=40, mc_samples=20, query_pairs=10, variance_runs=4,
    variance_samples=15, cut_samples_per_k=8, density_base_n=90,
    alphas=(0.16, 0.5),
)


class TestResultTable:
    def test_add_row_and_column(self):
        table = ResultTable(title="t", headers=["a", "b"])
        table.add_row("x", 1.0)
        table.add_row("y", 2.0)
        assert table.column("b") == [1.0, 2.0]
        assert table.cell("x", "b") == 1.0

    def test_cell_missing_key(self):
        table = ResultTable(title="t", headers=["a"])
        with pytest.raises(KeyError):
            table.cell("nope", "a")

    def test_format_renders_all_rows(self):
        table = ResultTable(title="Title", headers=["h1", "h2"], notes="note!")
        table.add_row("r", 0.5)
        text = table.format()
        assert "Title" in text and "h1" in text and "note!" in text
        assert "0.5" in text

    def test_format_scientific_for_small_values(self):
        table = ResultTable(title="t", headers=["a"])
        table.add_row(1e-8)
        assert "e-08" in table.format()


class TestScales:
    def test_scale_guard_rejects_too_sparse(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", flickr_n=100, flickr_avg_degree=4,
                twitter_n=100, twitter_avg_degree=4,
            )

    def test_proxy_sizes(self):
        g = make_flickr_proxy(MICRO)
        assert g.number_of_vertices() == 50
        t = make_twitter_proxy(MICRO)
        assert t.number_of_vertices() == 50

    def test_reduced_is_smaller(self):
        reduced = make_flickr_reduced(MICRO)
        assert reduced.number_of_vertices() == MICRO.reduced_n

    def test_timed_returns_value_and_seconds(self):
        value, seconds = timed(lambda: 42)
        assert value == 42 and seconds >= 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) != geometric_mean([])  # nan


class TestFig01:
    def test_exact_values_match_paper(self):
        table = run_fig01()
        assert table.cell("figure1a", "Pr[connected]") == pytest.approx(
            0.219, abs=5e-4
        )
        assert table.cell("figure1b", "Pr[connected]") == pytest.approx(
            0.216, abs=1e-9
        )

    def test_sparsified_has_half_edges(self):
        table = run_fig01()
        assert table.cell("figure1b", "|E|") == 3
        assert table.cell("figure1a", "|E|") == 6


class TestTable2Micro:
    def test_rows_and_columns(self):
        table = run_table2(MICRO, variants=("LP", "GDB^A", "GDB^A_n"))
        assert len(table.rows) == 3
        assert len(table.headers) == 1 + len(MICRO.alphas)

    def test_gdb_n_is_worst_at_large_alpha(self):
        table = run_table2(MICRO, variants=("GDB^A", "GDB^A_n"))
        last = table.headers[-1]
        assert table.cell("GDB^A_n", last) > table.cell("GDB^A", last)

    def test_error_decreases_with_alpha(self):
        table = run_table2(MICRO, variants=("GDB^A",))
        row = table.rows[0][1:]
        assert row[-1] <= row[0]


class TestFig05Micro:
    def test_h_tradeoff_shape(self):
        mae, entropy = run_fig05(MICRO, h_values=(0.0, 1.0))
        last = mae.headers[-1]
        # h=1 at least as accurate as h=0; h=0 lowest entropy.
        assert mae.cell(1.0, last) <= mae.cell(0.0, last) + 1e-12
        assert entropy.cell(0.0, last) <= entropy.cell(1.0, last) + 1e-12
