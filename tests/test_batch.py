"""Batched world-ensemble engine: seeded equivalence with the legacy path.

The batch kernels promise *bit-identical* results to evaluating each
world through the per-world protocol.  These tests hold every built-in
query to that contract on random graphs, and check that the estimator
layers (Monte-Carlo, adaptive, stratified) are invariant to batching
and chunk size under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph
from repro.datasets import erdos_renyi_uncertain
from repro.exceptions import EstimationError
from repro.queries import (
    ClusteringCoefficientQuery,
    ComponentCountQuery,
    ConnectivityQuery,
    DegreeQuery,
    PageRankQuery,
    ReliabilityQuery,
    ShortestPathQuery,
    SourceDistanceQuery,
    evaluate_query_batch,
    sample_vertex_pairs,
)
from repro.sampling import (
    MonteCarloEstimator,
    StratifiedEstimator,
    WorldBatch,
    WorldSampler,
    adaptive_estimate,
    auto_batch_size,
)


def all_queries(graph: UncertainGraph, seed: int = 7) -> list:
    """One instance of every built-in query class for ``graph``."""
    n = graph.number_of_vertices()
    queries = [
        DegreeQuery(n),
        ConnectivityQuery(),
        ComponentCountQuery(),
        ClusteringCoefficientQuery(n),
        PageRankQuery(n),
        SourceDistanceQuery(0, n),
    ]
    if n >= 2:
        pairs = sample_vertex_pairs(graph, min(6, n * (n - 1) // 2), rng=seed)
        queries.append(ReliabilityQuery(pairs))
        queries.append(ShortestPathQuery(pairs))
    return queries


def assert_batch_matches_legacy(graph: UncertainGraph, masks: np.ndarray) -> None:
    sampler = WorldSampler(graph)
    batch = sampler.batch_from_masks(masks)
    for query in all_queries(graph):
        batched = evaluate_query_batch(query, batch)
        legacy = np.stack([query.evaluate(w) for w in batch.iter_worlds()])
        assert batched.shape == (batch.n_worlds, query.unit_count())
        assert np.array_equal(batched, legacy, equal_nan=True), (
            f"{type(query).__name__} batched != per-world"
        )


class TestKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=18),
        avg_degree=st.integers(min_value=1, max_value=6),
        graph_seed=st.integers(min_value=0, max_value=10_000),
        mask_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_every_query_class_matches_per_world(
        self, n, avg_degree, graph_seed, mask_seed
    ):
        graph = erdos_renyi_uncertain(
            n, avg_degree=min(avg_degree, n - 1), rng=graph_seed
        )
        m = graph.number_of_edges()
        rng = np.random.default_rng(mask_seed)
        masks = rng.random((12, max(m, 0))) < rng.random(max(m, 0))
        assert_batch_matches_legacy(graph, masks)

    def test_extreme_masks_and_fragments(self):
        graph = UncertainGraph(
            [(0, 1, 0.5), (2, 3, 0.9), (4, 5, 0.3), (5, 6, 0.7), (4, 6, 0.6)],
            vertices=[7, 8],
        )
        m = graph.number_of_edges()
        rng = np.random.default_rng(0)
        masks = rng.random((16, m)) < 0.5
        masks[0] = False  # the empty world
        masks[1] = True   # the full world
        assert_batch_matches_legacy(graph, masks)

    def test_dense_graph_with_triangles(self):
        graph = erdos_renyi_uncertain(20, avg_degree=10, rng=1)
        masks = np.random.default_rng(2).random(
            (10, graph.number_of_edges())
        ) < 0.6
        assert_batch_matches_legacy(graph, masks)

    def test_structural_kernels_match_world(self, small_power_law):
        sampler = WorldSampler(small_power_law)
        batch = sampler.sample_batch(8, rng=3)
        worlds = list(batch.iter_worlds())
        assert np.array_equal(
            batch.degrees(), np.stack([w.degrees() for w in worlds])
        )
        assert np.array_equal(
            batch.edge_counts(), [w.number_of_edges() for w in worlds]
        )
        assert np.array_equal(
            batch.bfs_distances(0), np.stack([w.bfs_distances(0) for w in worlds])
        )
        assert np.array_equal(
            batch.is_connected(), [w.is_connected() for w in worlds]
        )
        assert np.array_equal(
            batch.connected_component_count(),
            [w.connected_component_count() for w in worlds],
        )
        assert np.array_equal(
            batch.clustering_coefficients(),
            np.stack([w.clustering_coefficients() for w in worlds]),
        )

    def test_fallback_adapter_for_plain_queries(self, triangle):
        class EdgeCountQuery:
            name = "M"

            def unit_count(self):
                return 1

            def evaluate(self, world):
                return np.array([float(world.number_of_edges())])

        sampler = WorldSampler(triangle)
        batch = sampler.sample_batch(10, rng=5)
        outcomes = evaluate_query_batch(EdgeCountQuery(), batch)
        assert np.array_equal(outcomes[:, 0], batch.edge_counts())


class TestSampling:
    def test_mask_matrix_matches_sequential_stream(self, small_power_law):
        sampler = WorldSampler(small_power_law)
        matrix = sampler.sample_mask_matrix(9, rng=123)
        sequential_rng = np.random.default_rng(123)
        sequential = np.stack(
            [sampler.sample_mask(sequential_rng) for _ in range(9)]
        )
        assert np.array_equal(matrix, sequential)

    def test_batch_shares_topology_across_chunks(self, triangle):
        sampler = WorldSampler(triangle)
        a = sampler.sample_batch(3, rng=0)
        b = sampler.sample_batch(3, rng=1)
        assert a.topology is b.topology

    def test_mask_shape_validated(self, triangle):
        sampler = WorldSampler(triangle)
        with pytest.raises(ValueError):
            sampler.batch_from_masks(np.ones((4, 5), dtype=bool))
        with pytest.raises(ValueError):
            WorldBatch(3, sampler.edge_vertices, np.ones(3, dtype=bool))


class TestEstimatorEquivalence:
    def test_chunked_equals_single_batch_equals_legacy(self, small_power_law):
        pairs = sample_vertex_pairs(small_power_law, 8, rng=5)
        for query in (
            ReliabilityQuery(pairs),
            ShortestPathQuery(pairs),
            PageRankQuery(small_power_law.number_of_vertices()),
        ):
            legacy = MonteCarloEstimator(
                small_power_law, n_samples=30, batched=False
            ).run(query, rng=9).outcomes
            one_batch = MonteCarloEstimator(
                small_power_law, n_samples=30, batch_size=30
            ).run(query, rng=9).outcomes
            chunked = MonteCarloEstimator(
                small_power_law, n_samples=30, batch_size=7
            ).run(query, rng=9).outcomes
            assert np.array_equal(legacy, one_batch, equal_nan=True)
            assert np.array_equal(legacy, chunked, equal_nan=True)

    def test_invalid_batch_size(self, triangle):
        with pytest.raises(EstimationError):
            MonteCarloEstimator(triangle, n_samples=5, batch_size=0)

    def test_auto_batch_size_bounds(self):
        assert auto_batch_size(500, 2000) >= 1
        assert auto_batch_size(10, 2000) <= 10
        assert auto_batch_size(500, 0, n_vertices=0) <= 500
        # A huge graph must still get a positive chunk.
        assert auto_batch_size(500, 10**9) == 1

    def test_adaptive_equivalence(self, small_power_law):
        query = ReliabilityQuery(sample_vertex_pairs(small_power_law, 5, rng=2))
        batched = adaptive_estimate(
            small_power_law, query, target_width=0.1, rng=11
        )
        legacy = adaptive_estimate(
            small_power_law, query, target_width=0.1, rng=11, batched=False
        )
        assert batched == legacy

    def test_stratified_equivalence(self, small_power_law):
        query = ReliabilityQuery(sample_vertex_pairs(small_power_law, 5, rng=2))
        estimator = StratifiedEstimator(small_power_law, n_samples=48, r=3)
        assert estimator.run(query, rng=13) == estimator.run(
            query, rng=13, batched=False
        )


class TestConfidenceWidth:
    def test_vectorized_width_matches_row_loop(self):
        rng = np.random.default_rng(4)
        outcomes = rng.random((40, 6))
        outcomes[rng.random((40, 6)) < 0.2] = np.nan
        from repro.sampling import EstimationResult

        result = EstimationResult(outcomes=outcomes)
        per_sample = np.array([float(np.nanmean(row)) for row in outcomes])
        expected = 3.92 * float(np.nanstd(per_sample, ddof=1)) / np.sqrt(40)
        assert result.confidence_width() == expected
