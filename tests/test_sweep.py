"""Sweep engines: coloring, loop-vs-vector equivalence, grid driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GDBConfig,
    SparsificationState,
    build_sweep_plan,
    d1_objective,
    gdb,
    gdb_grid,
    gdb_refine,
    greedy_edge_coloring,
)
from repro.core.backbone import bgi_backbone, random_backbone
from repro.core.sweep import colored_sweep, fused_sweep
from repro.core.rules import degree_step_absolute, degree_step_absolute_array
from repro.datasets import erdos_renyi_uncertain, flickr_like

#: Loop-vs-vector contract: converged objectives agree to this gate
#: when both engines run to tight convergence.
TOL = 1e-6

def converged_pair(graph, backbone_ids, max_chunks=30, **config_kwargs):
    """Converged D1 of both engines from the same backbone.

    Convergence is chunked: 1000 forced sweeps at a time until the
    objective stops changing *exactly* (the descent reaches a true fixed
    point — per-sweep-improvement thresholds can trigger prematurely on
    plateaus, because the entropy guard makes the convergence rate
    non-monotone around p = 0.5 crossings).
    """
    relative = config_kwargs.get("relative", False)
    chunk = GDBConfig(**{**config_kwargs, "tau": 0.0, "max_sweeps": 1000})
    results = {}
    for engine in ("loop", "vector"):
        state = SparsificationState(graph)
        for eid in backbone_ids:
            state.select_edge(eid)
        objectives = [state.d1(relative=relative)]
        one_sweep = GDBConfig(**{**config_kwargs, "tau": 0.0, "max_sweeps": 1})
        for _ in range(25):
            gdb_refine(state, one_sweep, engine=engine)
            objectives.append(state.d1(relative=relative))
        previous = objectives[-1]
        for _ in range(max_chunks):
            gdb_refine(state, chunk, engine=engine)
            current = state.d1(relative=relative)
            if current == previous:
                break
            previous = current
        state.verify()
        results[engine] = (state.d1(relative=relative), objectives)
    return results


class TestColoring:
    def test_proper_coloring_on_fixtures(self, small_power_law, small_sparse):
        for graph in (small_power_law, small_sparse):
            state = SparsificationState(graph)
            eids = np.arange(state.m)
            colors = greedy_edge_coloring(state.edge_vertices[eids])
            # No two edges of one color share an endpoint.
            for color in range(int(colors.max()) + 1):
                uv = state.edge_vertices[eids[colors == color]]
                flat = uv.reshape(-1)
                assert len(np.unique(flat)) == len(flat)

    def test_color_count_bounded_by_2_delta(self, small_power_law):
        state = SparsificationState(small_power_law)
        colors = greedy_edge_coloring(state.edge_vertices)
        degrees = np.bincount(state.edge_vertices.reshape(-1))
        assert int(colors.max()) + 1 <= 2 * int(degrees.max()) - 1

    def test_empty_edge_set(self, triangle):
        state = SparsificationState(triangle)
        plan = build_sweep_plan(state)
        assert len(plan.eids) == 0
        assert plan.n_colors == 0


class TestPlan:
    def test_plan_partitions_selected_edges(self, small_power_law):
        state = SparsificationState(small_power_law)
        ids = bgi_backbone(small_power_law, 0.4, rng=1)
        for eid in ids:
            state.select_edge(eid)
        plan = build_sweep_plan(state)
        block_eids = [e for eids, _, _ in plan.blocks for e in eids.tolist()]
        covered = sorted(block_eids + list(plan.tail_eids))
        assert covered == sorted(int(e) for e in ids)
        assert plan.seq_eids == sorted(int(e) for e in ids)

    def test_sequential_only_plan_skips_coloring(self, small_power_law):
        state = SparsificationState(small_power_law)
        for eid in range(0, state.m, 2):
            state.select_edge(eid)
        plan = build_sweep_plan(state, sequential_only=True)
        assert plan.n_colors == 0 and not plan.blocks
        assert plan.seq_eids == [int(e) for e in state.selected_edge_ids()]

    def test_colored_sweep_matches_loop_order_objective(self, small_power_law):
        """One colored sweep is a valid coordinate-descent pass: the
        objective drops, and delta bookkeeping stays exact."""
        state = SparsificationState(small_power_law)
        for eid in bgi_backbone(small_power_law, 0.4, rng=2):
            state.select_edge(eid)
        plan = build_sweep_plan(state)
        before = state.d1()
        colored_sweep(
            state, plan, degree_step_absolute_array, degree_step_absolute, 0.05
        )
        assert state.d1() <= before + 1e-12
        state.verify()


@pytest.mark.parametrize("backbone_fn", [bgi_backbone, random_backbone])
@pytest.mark.parametrize(
    "config_kwargs",
    [
        dict(h=0.05, k=1, relative=False),
        dict(h=1.0, k=1, relative=False),
        dict(h=0.05, k=1, relative=True),
        dict(h=0.05, k=2, relative=False),
        dict(h=0.05, k="n", relative=False),
    ],
    ids=["abs", "abs-h1", "rel", "k2", "kn"],
)
class TestEngineEquivalence:
    """Loop and vector engines reach the same converged objective.

    ``k = 1``: the colored order differs from the loop order, but
    coordinate descent on the convex D1 objective converges to the same
    value (gated at 1e-6).  ``k >= 2`` / ``"n"``: the vector engine runs
    the fused sequential path in the loop's order — results are exactly
    equal.  Per-sweep monotone descent of D1 is asserted for the k = 1
    rules (the k >= 2 rules minimise D_k, not D1).
    """

    def test_fixture_topologies(self, small_power_law, small_sparse,
                                backbone_fn, config_kwargs):
        for graph in (small_power_law, small_sparse):
            ids = backbone_fn(graph, 0.35, rng=3)
            results = converged_pair(graph, list(ids), **config_kwargs)
            loop_obj, loop_traj = results["loop"]
            vec_obj, vec_traj = results["vector"]
            assert vec_obj == pytest.approx(loop_obj, rel=TOL, abs=TOL)
            if config_kwargs["k"] == 1:
                for trajectory in (loop_traj, vec_traj):
                    assert all(
                        b <= a + 1e-9
                        for a, b in zip(trajectory, trajectory[1:])
                    )
            else:
                # Fused path: bit-identical trajectory to the loop.
                assert vec_traj == loop_traj
                assert vec_obj == loop_obj

    def test_small_fixtures(self, triangle, path4, figure1, backbone_fn,
                            config_kwargs):
        for graph in (triangle, path4, figure1):
            m = graph.number_of_edges()
            ids = list(range(0, m, 2)) or [0]
            results = converged_pair(graph, ids, **config_kwargs)
            assert results["vector"][0] == pytest.approx(
                results["loop"][0], rel=TOL, abs=TOL
            )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_engines_agree_on_er_graphs(seed):
    """Hypothesis ER graphs: loop and vector GDB converge together."""
    rng = np.random.default_rng(seed)
    graph = erdos_renyi_uncertain(30, avg_degree=8, rng=seed % 101)
    m = graph.number_of_edges()
    ids = rng.choice(m, size=max(1, m // 2), replace=False).tolist()
    relative = bool(seed % 2)
    results = converged_pair(
        graph, ids, h=0.05, k=1, relative=relative
    )
    assert results["vector"][0] == pytest.approx(
        results["loop"][0], rel=TOL, abs=TOL
    )


class TestGdbFacade:
    def test_invalid_engine_rejected(self, small_power_law):
        with pytest.raises(ValueError):
            gdb(small_power_law, alpha=0.4, rng=0, engine="gpu")

    def test_fused_is_refine_only(self, small_power_law):
        # The facade rejects "fused"; gdb_refine accepts it (EMD's
        # M-phase path) and matches the loop engine bit for bit.
        with pytest.raises(ValueError):
            gdb(small_power_law, alpha=0.4, rng=0, engine="fused")
        states = []
        for _ in range(2):
            state = SparsificationState(small_power_law)
            for eid in bgi_backbone(small_power_law, 0.3, rng=8):
                state.select_edge(eid)
            states.append(state)
        config = GDBConfig(h=0.05, tau=0.0, max_sweeps=5)
        gdb_refine(states[0], config, engine="loop")
        gdb_refine(states[1], config, engine="fused")
        assert np.array_equal(states[0].phat, states[1].phat)

    def test_vector_is_default_and_budget_holds(self, small_power_law):
        out = gdb(small_power_law, alpha=0.4, rng=0)
        explicit = gdb(small_power_law, alpha=0.4, rng=0, engine="vector")
        assert out.isomorphic_probabilities(explicit)

    def test_loop_engine_still_selectable(self, small_power_law):
        out = gdb(small_power_law, alpha=0.4, rng=0, engine="loop")
        assert out.number_of_edges() == gdb(
            small_power_law, alpha=0.4, rng=0
        ).number_of_edges()

    def test_relative_k2_rejected_by_both_engines(self, small_power_law):
        for engine in ("loop", "vector"):
            with pytest.raises(ValueError):
                gdb(
                    small_power_law, alpha=0.4, rng=0, engine=engine,
                    config=GDBConfig(k=2, relative=True),
                )


class TestFusedSweep:
    def test_fused_equals_loop_single_sweep(self, small_power_law):
        """One fused sweep reproduces one loop sweep bit for bit."""
        for k in (1, 2, "n"):
            states = []
            for _ in range(2):
                state = SparsificationState(small_power_law)
                for eid in bgi_backbone(small_power_law, 0.3, rng=4):
                    state.select_edge(eid)
                states.append(state)
            config = GDBConfig(h=0.05, k=k, tau=0.0, max_sweeps=1)
            gdb_refine(states[0], config, engine="loop")
            plan = build_sweep_plan(states[1], sequential_only=True)
            fused_sweep(states[1], plan, k, False, 0.05)
            assert np.array_equal(states[0].phat, states[1].phat)
            assert np.array_equal(states[0].delta, states[1].delta)


class TestGridDriver:
    def test_cells_match_independent_runs(self, small_power_law):
        alphas = (0.3, 0.5)
        h_values = (0.0, 0.05)
        cells = gdb_grid(
            small_power_law, alphas=alphas, h_values=h_values, rng=9
        )
        assert set(cells) == {(a, h) for a in alphas for h in h_values}
        for (alpha, h), cell in cells.items():
            ids = bgi_backbone(small_power_law, alpha, rng=9)
            direct = gdb(
                small_power_law, backbone_ids=list(ids),
                config=GDBConfig(h=h), engine="vector",
            )
            assert cell.graph.number_of_edges() == direct.number_of_edges()
            assert cell.objective == pytest.approx(
                d1_objective(small_power_law, direct), rel=1e-6, abs=1e-9
            )

    def test_consume_reduces_cells(self, small_power_law):
        budget = round(0.4 * small_power_law.number_of_edges())
        cells = gdb_grid(
            small_power_law, alphas=(0.4,), h_values=(0.0, 1.0), rng=4,
            consume=lambda cell: (cell.h, cell.graph.number_of_edges()),
        )
        for (alpha, h), value in cells.items():
            assert value == (h, budget)  # reduced value stored, not the cell

    def test_build_graphs_false_skips_materialisation(self, small_power_law):
        cells = gdb_grid(
            small_power_law, alphas=(0.4,), h_values=(0.05,), rng=1,
            build_graphs=False,
        )
        cell = cells[(0.4, 0.05)]
        assert cell.graph is None and cell.sweeps >= 1
        assert np.isfinite(cell.objective)

    def test_loop_engine_grid(self, small_power_law):
        vector = gdb_grid(
            small_power_law, alphas=(0.4,), h_values=(0.05,), rng=2,
            engine="vector", build_graphs=False, tau=0.0, max_sweeps=2000,
        )
        loop = gdb_grid(
            small_power_law, alphas=(0.4,), h_values=(0.05,), rng=2,
            engine="loop", build_graphs=False, tau=0.0, max_sweeps=2000,
        )
        assert vector[(0.4, 0.05)].objective == pytest.approx(
            loop[(0.4, 0.05)].objective, rel=TOL, abs=TOL
        )

    def test_relative_and_k_variants(self, small_power_law):
        for kwargs in (dict(relative=True), dict(k=2), dict(k="n")):
            cells = gdb_grid(
                small_power_law, alphas=(0.4,), h_values=(0.05,), rng=3,
                build_graphs=False, **kwargs,
            )
            assert np.isfinite(cells[(0.4, 0.05)].objective)
