"""``POST /update``: delta pushes against registered datasets.

The contracts under test:

- an update re-registers the drifted graph under its own content digest
  and overlays the dataset path, so the next request sees the new graph;
- only the superseded digest's cached artifacts are invalidated — other
  datasets stay hot — and the invalidation is visible in ``/metrics``;
- the refreshed artifact equals a direct library call on the drifted
  graph (the overlay is transparent);
- ``resparsify`` queues a background refresh that warms the cache;
- malformed requests fail loudly (unknown params, binary datasets,
  missing edges/vertices).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core import sparsify
from repro.core.delta import EdgeDeltaBatch, apply_delta
from repro.datasets import read_edge_list, twitter_like, write_edge_list
from repro.exceptions import ServerError
from repro.server import ServerConfig, SparsifierService, start_server

SPARSIFY = dict(alpha=0.4, variant="GDB^A", seed=0)


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("update") / "graph.txt"
    write_edge_list(twitter_like(n=60, avg_degree=10, seed=1), path)
    return str(path)


@pytest.fixture(scope="module")
def other_dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("update") / "other.txt"
    write_edge_list(twitter_like(n=50, avg_degree=8, seed=2), path)
    return str(path)


@pytest.fixture()
def service():
    with SparsifierService(ServerConfig(workers=2)) as svc:
        yield svc


def _first_edge(dataset):
    graph = read_edge_list(dataset)
    u, v, p = next(iter(graph.edges()))
    return graph, u, v, p


class TestUpdateSemantics:
    def test_update_overlays_and_reports(self, service, dataset):
        graph, u, v, p = _first_edge(dataset)
        new_p = 0.5 * p if p > 0.5 else min(1.0, p + 0.25)
        out = service.update({
            "dataset": dataset, "updates": [[u, v, new_p]],
        })
        assert out["updates"] == 1
        assert out["inserts"] == out["deletes"] == 0
        assert not out["structural"]
        assert out["digest"] != out["old_digest"]
        # Overlay digest resolution: the artifact now equals a direct
        # library call on the drifted graph.
        body, _ = service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        batch = EdgeDeltaBatch.from_pairs(graph, updates=[(u, v, new_p)])
        drifted = apply_delta(graph, batch, in_place=False).graph
        direct = sparsify(drifted, SPARSIFY["alpha"], SPARSIFY["variant"],
                          rng=SPARSIFY["seed"])
        assert json.loads(body)["edges"] == direct.number_of_edges()

    def test_invalidation_is_targeted(self, service, dataset, other_dataset):
        service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        service.handle("sparsify", {"dataset": other_dataset, **SPARSIFY})
        graph, u, v, _ = _first_edge(dataset)
        out = service.update({
            "dataset": dataset, "updates": [[u, v, 0.123]],
        })
        assert out["invalidated"] >= 1
        assert service.cache.stats()["invalidations"] >= 1
        # The untouched dataset's artifact is still hot ...
        _, hit = service.handle(
            "sparsify", {"dataset": other_dataset, **SPARSIFY}
        )
        assert hit
        # ... while the drifted one recomputes.
        _, hit = service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        assert not hit

    def test_structural_update_repairs_plan(self, service, dataset):
        service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        graph, u, v, _ = _first_edge(dataset)
        out = service.update({
            "dataset": dataset, "deletes": [[u, v]],
        })
        assert out["structural"] and out["deletes"] == 1
        assert out["plan_repaired"]
        body, _ = service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        assert json.loads(body)["edges"] > 0

    def test_resparsify_warms_the_cache(self, service, dataset):
        graph, u, v, _ = _first_edge(dataset)
        out = service.update({
            "dataset": dataset, "updates": [[u, v, 0.777]],
            "resparsify": SPARSIFY,
        })
        assert out["refresh_queued"]
        deadline = time.monotonic() + 30.0
        hit = False
        while time.monotonic() < deadline and not hit:
            _, hit = service.handle(
                "sparsify", {"dataset": dataset, **SPARSIFY}
            )
            if not hit:
                time.sleep(0.05)
        assert hit, "background drift_refresh never warmed the cache"

    def test_unknown_parameters_rejected(self, service, dataset):
        with pytest.raises(ServerError, match="unknown parameters"):
            service.update({"dataset": dataset, "bogus": 1})
        with pytest.raises(ServerError, match="'dataset'"):
            service.update({"updates": [[0, 1, 0.5]]})
        with pytest.raises(ServerError, match="resparsify"):
            service.update({"dataset": dataset, "resparsify": "yes"})

    def test_binary_datasets_are_immutable(self, service, dataset,
                                           tmp_path_factory):
        from repro.datasets import write_binary

        path = tmp_path_factory.mktemp("update") / "graph.npz"
        write_binary(read_edge_list(dataset), path)
        with pytest.raises(ServerError, match="binary"):
            service.update({
                "dataset": str(path), "updates": [[0, 1, 0.5]],
            })


class TestUpdateHTTP:
    def _post(self, port, path, document):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read())

    def test_update_round_trip(self, dataset):
        _, u, v, _ = _first_edge(dataset)
        with start_server(ServerConfig(port=0, workers=2)) as server:
            out = self._post(server.port, "/update", {
                "dataset": dataset, "updates": [[u, v, 0.321]],
            })
            assert out["endpoint"] == "update"
            assert out["updates"] == 1 and not out["structural"]
            metrics = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/metrics", timeout=30
                ).read()
            )
            assert "invalidations" in metrics["cache"]

    def test_update_error_is_client_error(self, dataset):
        with start_server(ServerConfig(port=0, workers=2)) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(server.port, "/update", {
                    "dataset": dataset, "updates": [["no-such", "vertex", 0.5]],
                })
            assert 400 <= excinfo.value.code < 500
