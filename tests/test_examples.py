"""Examples stay present, compile, and expose a main() entry point.

The examples run multi-minute Monte-Carlo demos, so executing them here
would dominate the suite; instead this compiles each one and checks its
structure, plus executes the cheapest (quickstart) logic at toy size by
reusing its building blocks.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXPECTED = [
    "quickstart.py",
    "router_network_reliability.py",
    "social_network_analysis.py",
    "protein_interaction_paths.py",
    "knn_friend_suggestions.py",
]


def test_all_expected_examples_exist():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    for name in EXPECTED:
        assert name in present, name


@pytest.mark.parametrize("name", EXPECTED)
def test_example_compiles(name):
    source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
    compile(source, name, "exec")


@pytest.mark.parametrize("name", EXPECTED)
def test_example_has_docstring_and_main(name):
    tree = ast.parse((EXAMPLES_DIR / name).read_text(encoding="utf-8"))
    assert ast.get_docstring(tree), f"{name} missing module docstring"
    functions = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{name} missing main()"


@pytest.mark.parametrize("name", EXPECTED)
def test_example_only_uses_public_api(name):
    """Examples must not reach into underscore-private modules."""
    tree = ast.parse((EXAMPLES_DIR / name).read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            assert not any(part.startswith("_") for part in node.module.split(".")), (
                f"{name} imports private module {node.module}"
            )
            for alias in node.names:
                assert not alias.name.startswith("_"), (
                    f"{name} imports private name {alias.name}"
                )


def test_quickstart_pipeline_at_toy_size():
    """The quickstart's exact call sequence, shrunk to run in seconds."""
    from repro import datasets, graph_entropy, sparsify
    from repro.metrics import degree_discrepancy_mae, relative_entropy
    from repro.queries import ReliabilityQuery, sample_vertex_pairs
    from repro.sampling import MonteCarloEstimator

    from repro.core import BackbonePlan

    graph = datasets.twitter_like(n=60, avg_degree=16, seed=7)
    plan = BackbonePlan(graph)
    for alpha in (0.3, 0.5):
        ladder = sparsify(graph, alpha, variant="GDB^A-t", rng=7,
                          backbone_plan=plan)
        assert degree_discrepancy_mae(graph, ladder) < 0.5
    sparse = sparsify(graph, alpha=0.3, variant="EMD^R-t", rng=7)
    assert graph_entropy(sparse) < graph_entropy(graph)
    assert relative_entropy(sparse, graph) < 1.0
    assert degree_discrepancy_mae(graph, sparse) < 0.5
    pairs = sample_vertex_pairs(graph, 5, rng=1)
    estimate = MonteCarloEstimator(sparse, n_samples=40).run(
        ReliabilityQuery(pairs), rng=2
    ).scalar_estimate()
    assert 0.0 <= estimate <= 1.0
