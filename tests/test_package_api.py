"""Public API surface: exports resolve, docstrings exist, version sane."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.baselines",
    "repro.sampling",
    "repro.queries",
    "repro.metrics",
    "repro.datasets",
    "repro.experiments",
    "repro.utils",
]


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} missing docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_callables_documented(module_name):
    """Every public class/function exported by a subpackage has a docstring."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} missing docstring"


def test_exceptions_hierarchy():
    from repro.exceptions import (
        CalibrationError,
        EstimationError,
        GraphError,
        NotConnectedError,
        ProbabilityError,
        ReproError,
        SparsificationError,
    )

    assert issubclass(GraphError, ReproError)
    assert issubclass(ProbabilityError, GraphError)
    assert issubclass(NotConnectedError, GraphError)
    assert issubclass(CalibrationError, SparsificationError)
    assert issubclass(SparsificationError, ReproError)
    assert issubclass(EstimationError, ReproError)


def test_quickstart_docstring_example_runs():
    """The package docstring's example must stay true."""
    from repro import datasets, sparsify
    from repro.metrics import degree_discrepancy_mae

    g = datasets.twitter_like(n=200, seed=1)
    g_sparse = sparsify(g, alpha=0.3, variant="EMD^R-t", rng=1)
    assert degree_discrepancy_mae(g, g_sparse) < 0.5
