"""Adaptive sample-size determination."""

import numpy as np
import pytest

from repro.core import UncertainGraph, sparsify
from repro.exceptions import EstimationError
from repro.queries import DegreeQuery, ReliabilityQuery
from repro.queries.shortest_path import sample_vertex_pairs
from repro.sampling.adaptive import adaptive_estimate, samples_to_width


@pytest.fixture
def noisy_graph():
    return UncertainGraph([(i, (i + 1) % 12, 0.5) for i in range(12)])


def test_invalid_parameters(noisy_graph):
    query = DegreeQuery(12)
    with pytest.raises(EstimationError):
        adaptive_estimate(noisy_graph, query, target_width=0.0)
    with pytest.raises(EstimationError):
        adaptive_estimate(noisy_graph, query, 0.1, min_samples=1)
    with pytest.raises(EstimationError):
        adaptive_estimate(noisy_graph, query, 0.1, min_samples=50, max_samples=10)


def test_deterministic_graph_converges_immediately():
    g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0)])
    result = adaptive_estimate(g, DegreeQuery(3), target_width=0.01, rng=0)
    assert result.converged
    assert result.samples_used == 30  # the minimum batch suffices
    assert result.confidence_width == pytest.approx(0.0, abs=1e-12)


def test_estimate_is_accurate(noisy_graph):
    result = adaptive_estimate(
        noisy_graph, DegreeQuery(12), target_width=0.02, rng=1
    )
    assert result.converged
    # E[mean degree] = 2 * 0.5 = 1.0
    assert result.estimate == pytest.approx(1.0, abs=0.05)
    assert result.confidence_width <= 0.02


def test_tighter_width_needs_more_samples(noisy_graph):
    query = DegreeQuery(12)
    loose = samples_to_width(noisy_graph, query, 0.1, rng=2)
    tight = samples_to_width(noisy_graph, query, 0.02, rng=2)
    assert tight > loose


def test_cap_reported_as_not_converged(noisy_graph):
    result = adaptive_estimate(
        noisy_graph, DegreeQuery(12), target_width=1e-6,
        rng=3, max_samples=100,
    )
    assert not result.converged
    assert result.samples_used == 100


def test_sparsified_graph_needs_fewer_samples():
    """The paper's N'/N claim, measured: the low-entropy sparsified
    graph reaches the same confidence width with fewer worlds."""
    from repro.datasets import twitter_like

    graph = twitter_like(n=60, avg_degree=14, seed=5)
    sparsified = sparsify(graph, 0.12, variant="GDB^A", rng=5)
    pairs = sample_vertex_pairs(graph, 10, rng=1)
    query = ReliabilityQuery(pairs)
    n_original = samples_to_width(graph, query, 0.05, rng=7, max_samples=5000)
    n_sparse = samples_to_width(sparsified, query, 0.05, rng=7, max_samples=5000)
    assert n_sparse < n_original
