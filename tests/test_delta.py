"""Edge-delta batches, plan repair and warm maintenance under drift.

Property tests for the streaming stack (ROADMAP item 3): random delta
batches must round-trip through :func:`apply_delta` with a consistent
id map, :meth:`BackbonePlan.repair` must reproduce a fresh plan
bit-for-bit, :meth:`SparsificationState.apply_delta` must keep the
bookkeeping invariants, and the warm-started maintainer must land on the
cold rebuild's selection and objective.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backbone import BackbonePlan
from repro.core.delta import EdgeDeltaBatch, apply_delta
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import GDBConfig, gdb_refine
from repro.core.maintain import IncrementalSparsifier
from repro.core.sweep import apply_probability_vector, build_sweep_plan
from repro.core.uncertain_graph import UncertainGraph
from repro.datasets import flickr_like
from repro.datasets.drift import DriftWorkload
from repro.exceptions import GraphError, ProbabilityError, SparsificationError

#: Shared read-only base graph for the property tests; every example
#: works on a copy (or applies out of place) so examples stay
#: independent.
GRAPH = flickr_like(n=60, avg_degree=12, seed=5)
M = GRAPH.number_of_edges()
N = GRAPH.number_of_vertices()
_EXISTING = {
    (int(a), int(b))
    for a, b in np.sort(GRAPH.edge_index_array(), axis=1).tolist()
}
NON_EDGES = [
    (a, b) for a in range(N) for b in range(a + 1, N)
    if (a, b) not in _EXISTING
]

probabilities = st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)


@st.composite
def delta_batches(draw, structural=True):
    update_eids = draw(
        st.lists(st.integers(0, M - 1), unique=True, max_size=10)
    )
    update_ps = [draw(probabilities) for _ in update_eids]
    delete_eids, inserts, insert_ps = [], [], []
    if structural:
        candidates = sorted(set(range(M)) - set(update_eids))
        if candidates:
            delete_eids = draw(
                st.lists(st.sampled_from(candidates), unique=True, max_size=4)
            )
        picks = draw(
            st.lists(st.integers(0, len(NON_EDGES) - 1), unique=True,
                     max_size=4)
        )
        inserts = [NON_EDGES[i] for i in picks]
        insert_ps = [draw(probabilities) for _ in inserts]
    return EdgeDeltaBatch(
        update_eids=np.array(update_eids, dtype=np.int64),
        update_ps=np.array(update_ps, dtype=np.float64),
        delete_eids=np.array(delete_eids, dtype=np.int64),
        insert_endpoints=np.array(inserts, dtype=np.int64).reshape(-1, 2),
        insert_ps=np.array(insert_ps, dtype=np.float64),
    )


class TestApplyDelta:
    """The id map and post-delta graph are mutually consistent."""

    @settings(max_examples=30, deadline=None)
    @given(batch=delta_batches())
    def test_id_map_round_trip(self, batch):
        applied = apply_delta(GRAPH, batch, in_place=False)
        assert applied.old_m == M
        assert applied.new_m == M - len(batch.delete_eids) + len(batch.insert_ps)
        assert applied.graph.number_of_edges() == applied.new_m
        # Deleted ids map to -1, survivors keep their relative order.
        assert np.all(applied.id_map[batch.delete_eids] == -1)
        survivors = applied.id_map[applied.id_map >= 0]
        assert len(survivors) == M - len(batch.delete_eids)
        assert np.all(np.diff(survivors) > 0) or len(survivors) < 2
        # Updated / inserted probabilities land where the map says.
        new_ps = np.asarray(applied.graph.probability_array())
        assert np.allclose(new_ps[applied.update_eids_new()], batch.update_ps)
        assert np.allclose(new_ps[applied.insert_eids], batch.insert_ps)
        new_index = np.sort(
            np.asarray(applied.graph.edge_index_array()), axis=1
        )
        assert np.array_equal(
            new_index[applied.insert_eids], batch.insert_endpoints
        )
        # Surviving endpoints carried across unchanged.
        old_index = np.sort(GRAPH.edge_index_array(), axis=1)
        alive = applied.id_map >= 0
        assert np.array_equal(
            new_index[applied.id_map[alive]], old_index[alive]
        )

    def test_empty_batch_is_identity(self):
        batch = EdgeDeltaBatch()
        assert batch.is_empty and not batch.is_structural and batch.size == 0
        applied = apply_delta(GRAPH, batch, in_place=False)
        assert not applied.structural
        assert np.array_equal(applied.id_map, np.arange(M))
        assert len(applied.dirty_vertices()) == 0

    def test_delete_then_reinsert_same_pair(self):
        u, v = sorted(int(x) for x in GRAPH.edge_index_array()[0])
        batch = EdgeDeltaBatch(
            delete_eids=np.array([0]),
            insert_endpoints=np.array([[u, v]]),
            insert_ps=np.array([0.5]),
        )
        applied = apply_delta(GRAPH, batch, in_place=False)
        assert applied.new_m == M
        eid = int(applied.insert_eids[0])
        assert applied.graph.probability_array()[eid] == 0.5


class TestBatchValidation:
    def test_duplicate_updates(self):
        with pytest.raises(GraphError, match="duplicate"):
            EdgeDeltaBatch(update_eids=[1, 1], update_ps=[0.5, 0.6])

    def test_update_and_delete_conflict(self):
        with pytest.raises(GraphError, match="updated and deleted"):
            EdgeDeltaBatch(update_eids=[2], update_ps=[0.5], delete_eids=[2])

    def test_negative_ids(self):
        with pytest.raises(GraphError, match="negative"):
            EdgeDeltaBatch(delete_eids=[-1])

    def test_length_mismatch(self):
        with pytest.raises(GraphError, match="mismatch"):
            EdgeDeltaBatch(update_eids=[1, 2], update_ps=[0.5])

    @pytest.mark.parametrize("bad", [0.0, -0.25, 1.5, float("nan")])
    def test_out_of_domain_probability(self, bad):
        with pytest.raises(ProbabilityError, match=r"\(0, 1\]"):
            EdgeDeltaBatch(update_eids=[0], update_ps=[bad])

    def test_self_loop_insert(self):
        with pytest.raises(GraphError, match="self-loop"):
            EdgeDeltaBatch(insert_endpoints=[[3, 3]], insert_ps=[0.5])

    def test_duplicate_insert_pairs(self):
        with pytest.raises(GraphError, match="duplicate endpoint"):
            EdgeDeltaBatch(insert_endpoints=[[1, 2], [2, 1]],
                           insert_ps=[0.5, 0.6])

    def test_out_of_range_ids_rejected_on_apply(self):
        with pytest.raises(GraphError, match="out of range"):
            apply_delta(
                GRAPH, EdgeDeltaBatch(update_eids=[M], update_ps=[0.5]),
                in_place=False,
            )

    def test_insert_outside_vertex_range(self):
        with pytest.raises(GraphError, match="vertex range"):
            apply_delta(
                GRAPH,
                EdgeDeltaBatch(insert_endpoints=[[0, N]], insert_ps=[0.5]),
                in_place=False,
            )

    def test_insert_of_existing_edge(self):
        u, v = sorted(int(x) for x in GRAPH.edge_index_array()[0])
        with pytest.raises(GraphError, match="existing edge"):
            apply_delta(
                GRAPH,
                EdgeDeltaBatch(insert_endpoints=[[u, v]], insert_ps=[0.5]),
                in_place=False,
            )


class TestFromPairs:
    @pytest.fixture
    def labelled(self):
        g = UncertainGraph(name="labelled")
        g.add_edge("0", "1", 0.9)
        g.add_edge("1", "2", 0.8)
        g.add_edge("0", "2", 0.7)
        return g

    def test_string_label_fallback(self, labelled):
        # JSON clients send bare ints against parsed (string-labelled)
        # edge lists; the indexer falls back to the string form.
        batch = EdgeDeltaBatch.from_pairs(labelled, updates=[(0, 1, 0.5)])
        assert len(batch.update_eids) == 1
        applied = apply_delta(labelled, batch, in_place=False)
        eid = int(batch.update_eids[0])
        assert applied.graph.probability_array()[eid] == 0.5

    def test_unknown_vertex(self, labelled):
        with pytest.raises(GraphError, match="not in graph"):
            EdgeDeltaBatch.from_pairs(labelled, updates=[("0", "9", 0.5)])

    def test_update_of_missing_edge(self, labelled):
        g = labelled
        g.add_vertex("3")
        with pytest.raises(GraphError, match="edge not in graph"):
            EdgeDeltaBatch.from_pairs(g, updates=[("0", "3", 0.5)])

    def test_insert_of_existing_edge(self, labelled):
        with pytest.raises(GraphError, match="insert of an existing"):
            EdgeDeltaBatch.from_pairs(labelled, inserts=[("0", "1", 0.5)])

    def test_self_loop(self, labelled):
        with pytest.raises(GraphError, match="self-loop"):
            EdgeDeltaBatch.from_pairs(labelled, deletes=[("1", "1")])


class TestPlanRepair:
    """Repair reproduces a fresh plan on the drifted graph, bit for bit."""

    @settings(max_examples=15, deadline=None)
    @given(batch=delta_batches())
    @pytest.mark.parametrize("top_up", ["stable", "mc"])
    def test_repair_matches_fresh(self, batch, top_up):
        graph = GRAPH.copy()
        plan = BackbonePlan(graph)
        plan.backbone(0.4, rng=3, top_up=top_up)  # warm the forests first
        applied = apply_delta(graph, batch, in_place=True)
        plan.repair(applied)
        fresh = BackbonePlan(applied.graph)
        assert np.array_equal(
            plan.backbone(0.4, rng=3, top_up=top_up),
            fresh.backbone(0.4, rng=3, top_up=top_up),
        )
        k = min(plan.forests_computed, fresh.forests_computed)
        assert k >= 1
        for i in range(k):
            assert np.array_equal(plan.forest(i), fresh.forest(i))
        pr, fr = plan.peel_rank, fresh.peel_rank
        assert np.array_equal(
            np.where(pr <= k, pr, 0), np.where(fr <= k, fr, 0)
        )

    def test_stable_top_up_is_deterministic(self):
        a = BackbonePlan(GRAPH).backbone(0.4, rng=7, top_up="stable")
        b = BackbonePlan(GRAPH).backbone(0.4, rng=7, top_up="stable")
        assert np.array_equal(a, b)


class TestStateApplyDelta:
    @settings(max_examples=20, deadline=None)
    @given(batch=delta_batches())
    def test_rekey_keeps_invariants(self, batch):
        graph = GRAPH.copy()
        state = SparsificationState(graph)
        ids = BackbonePlan(graph).backbone(0.4, rng=3, top_up="stable")
        state.select_edges(ids)
        old_phat = state.phat.copy()
        old_selected = state.selected.copy()
        applied = apply_delta(graph, batch, in_place=True)
        state.apply_delta(applied)
        state.verify()
        # Surviving edges carry their phat and membership across the map.
        alive = applied.id_map >= 0
        assert np.allclose(state.phat[applied.id_map[alive]], old_phat[alive])
        assert np.array_equal(
            state.selected[applied.id_map[alive]], old_selected[alive]
        )

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_apply_probability_vector_bookkeeping(self, data):
        graph = GRAPH.copy()
        state = SparsificationState(graph)
        ids = BackbonePlan(graph).backbone(0.5, rng=1, top_up="stable")
        state.select_edges(ids)
        k = data.draw(st.integers(1, min(8, len(ids))))
        picks = data.draw(
            st.lists(st.sampled_from(sorted(int(i) for i in ids)),
                     unique=True, min_size=k, max_size=k)
        )
        values = np.array(
            [data.draw(st.floats(-0.5, 1.5)) for _ in picks]
        )
        apply_probability_vector(state, np.array(picks), values)
        assert np.all((state.phat[picks] >= 0.0) & (state.phat[picks] <= 1.0))
        state.verify()


class TestSnapshotRestore:
    def test_partial_matches_full(self):
        graph = GRAPH.copy()
        state = SparsificationState(graph)
        ids = BackbonePlan(graph).backbone(0.4, rng=3, top_up="stable")
        state.select_edges(ids)
        dirty = np.asarray(ids[:5], dtype=np.int64)
        full = state.snapshot()
        partial = state.snapshot(dirty)
        state.apply_probabilities(
            dirty, np.linspace(0.2, 0.9, len(dirty))
        )
        state.restore(partial)
        phat, selected, delta, total_residual = full
        assert np.array_equal(state.phat, phat)
        assert np.array_equal(state.selected, selected)
        assert np.array_equal(state.delta, delta)
        assert state.total_residual == total_residual
        state.verify()

    def test_apply_probabilities_rejects_out_of_domain(self):
        graph = GRAPH.copy()
        state = SparsificationState(graph)
        ids = BackbonePlan(graph).backbone(0.4, rng=3, top_up="stable")
        state.select_edges(ids)
        eid = int(ids[0])
        for bad in (0.0, -0.1, 1.0 + 1e-9, float("nan")):
            with pytest.raises(GraphError, match=rf"edge {eid}"):
                state.apply_probabilities(
                    np.array([eid]), np.array([bad])
                )


class TestDriftWorkload:
    def test_replay_is_deterministic(self):
        def stream():
            graph = GRAPH.copy()
            workload = DriftWorkload(
                graph, edge_fraction=0.1, smoothing=5.0,
                insert_rate=0.3, delete_rate=0.3, seed=42,
            )
            out = []
            for _ in range(3):
                batch = workload.next_batch(graph)
                out.append(batch)
                apply_delta(graph, batch, in_place=True)
            return out

        for a, b in zip(stream(), stream()):
            assert np.array_equal(a.update_eids, b.update_eids)
            assert np.array_equal(a.update_ps, b.update_ps)
            assert np.array_equal(a.delete_eids, b.delete_eids)
            assert np.array_equal(a.insert_endpoints, b.insert_endpoints)
            assert np.array_equal(a.insert_ps, b.insert_ps)


class TestIncrementalSparsifier:
    def test_requires_gdb_variant(self):
        with pytest.raises(SparsificationError, match="GDB variant"):
            IncrementalSparsifier(GRAPH.copy(), 0.4, variant="EMD^R-t")

    def test_requires_integer_seed(self):
        with pytest.raises(ValueError, match="integer seed"):
            IncrementalSparsifier(
                GRAPH.copy(), 0.4, rng=np.random.default_rng(0)
            )

    def test_rejects_unknown_top_up(self):
        with pytest.raises(ValueError, match="top_up"):
            IncrementalSparsifier(GRAPH.copy(), 0.4, top_up="bogus")

    def test_maintained_matches_cold_rebuild(self):
        maintainer = IncrementalSparsifier(
            GRAPH.copy(), 0.4, rng=11, tau=1e-9, max_sweeps=2000,
        )
        workload = DriftWorkload(
            maintainer.graph, edge_fraction=0.05, smoothing=8.0,
            insert_rate=0.2, delete_rate=0.2, seed=9,
        )
        for _ in range(3):
            report = maintainer.apply(workload.next_batch(maintainer.graph))
            assert report.sweeps >= 0
            plan = BackbonePlan(maintainer.graph)
            ids = plan.backbone(0.4, method="bgi", rng=11, top_up="stable")
            cold = SparsificationState(maintainer.graph)
            cold.select_edges(ids)
            sweeps = gdb_refine(
                cold, maintainer.config, engine="vector",
                plan=build_sweep_plan(cold),
            )
            assert sweeps < maintainer.config.max_sweeps
            assert np.array_equal(maintainer.state.selected, cold.selected)
            cold_d1 = cold.d1()
            assert maintainer.d1() <= cold_d1 + 1e-6 * max(1.0, cold_d1)
            maintainer.state.verify()

    def test_probability_drift_keeps_selection_local(self):
        maintainer = IncrementalSparsifier(GRAPH.copy(), 0.4, rng=11)
        workload = DriftWorkload(
            maintainer.graph, edge_fraction=0.02, smoothing=8.0, seed=3,
        )
        batch = workload.next_batch(maintainer.graph)
        report = maintainer.apply(batch)
        assert not report.structural
        # Stable top-up: a small probability batch moves the selection by
        # O(|batch|) edges, not a wholesale reshuffle.
        assert report.removed + report.added <= 8 * max(1, batch.size)
