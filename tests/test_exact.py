"""Exact enumeration (Eq. 1) including the paper's Fig. 1 values."""

import pytest

from repro.core import UncertainGraph
from repro.datasets import figure1_graph, figure1_sparsified
from repro.exceptions import EstimationError
from repro.sampling import (
    exact_connectivity_probability,
    exact_expectation,
    exact_query_probability,
    exact_reliability,
    iter_worlds,
)


def test_world_probabilities_sum_to_one(triangle):
    total = sum(p for _, p in iter_worlds(triangle))
    assert total == pytest.approx(1.0)


def test_world_count(path4):
    # p < 1 on all three edges: all 8 worlds have positive probability
    assert sum(1 for _ in iter_worlds(path4)) == 8


def test_deterministic_edge_halves_world_count(triangle):
    # (a, c) has p = 1, so worlds without it have probability 0
    worlds = list(iter_worlds(triangle))
    assert len(worlds) == 4


def test_too_many_edges_rejected():
    g = UncertainGraph([(i, j, 0.5) for i in range(9) for j in range(i + 1, 9)])
    assert g.number_of_edges() == 36
    with pytest.raises(EstimationError):
        list(iter_worlds(g))


class TestFigure1:
    def test_original_connectivity(self):
        """Paper: Pr[G connected] = 0.219 for K4 at p = 0.3."""
        assert exact_connectivity_probability(figure1_graph()) == pytest.approx(
            0.219, abs=5e-4
        )

    def test_sparsified_connectivity(self):
        """Paper: Pr[G' connected] = 0.216 = 0.6^3."""
        assert exact_connectivity_probability(
            figure1_sparsified()
        ) == pytest.approx(0.216, abs=1e-9)


def test_two_edge_path_reliability():
    g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.4)])
    assert exact_reliability(g, 0, 2) == pytest.approx(0.2)


def test_parallel_paths_reliability():
    # 0-1 direct (0.5) or 0-2-1 (0.5 * 0.5): 1 - (1-0.5)(1-0.25) = 0.625
    g = UncertainGraph([(0, 1, 0.5), (0, 2, 0.5), (2, 1, 0.5)])
    assert exact_reliability(g, 0, 1) == pytest.approx(0.625)


def test_exact_expectation_edge_count(triangle):
    expected = exact_expectation(triangle, lambda w: float(w.number_of_edges()))
    assert expected == pytest.approx(triangle.expected_number_of_edges())


def test_exact_query_probability_predicate(path4):
    # Pr[vertex 0 isolated] = 1 - p(0,1) = 0.1
    prob = exact_query_probability(path4, lambda w: w.degrees()[0] == 0)
    assert prob == pytest.approx(0.1)
