"""Variant parsing and the unified sparsify() front-end."""

import pytest

from repro.core import (
    available_variants,
    check_budget,
    parse_variant,
    sparsify,
    target_edge_count,
)


class TestParse:
    def test_simple_methods(self):
        assert parse_variant("GDB").method == "gdb"
        assert parse_variant("EMD").method == "emd"
        assert parse_variant("LP").method == "lp"
        assert parse_variant("NI").method == "ni"
        assert parse_variant("SP").method == "sp"
        assert parse_variant("SS").method == "sp"  # paper uses both names
        assert parse_variant("RANDOM").method == "random"

    def test_discrepancy_superscripts(self):
        assert parse_variant("GDB^A").relative is False
        assert parse_variant("GDB^R").relative is True
        assert parse_variant("EMD").relative is False  # default absolute

    def test_k_subscripts(self):
        assert parse_variant("GDB^A_2").k == 2
        assert parse_variant("GDB^A_5").k == 5
        assert parse_variant("GDB^A_n").k == "n"
        assert parse_variant("GDB^A").k == 1

    def test_backbone_suffix(self):
        assert parse_variant("EMD^R-t").bgi_backbone is True
        assert parse_variant("EMD^R").bgi_backbone is False

    def test_case_insensitive(self):
        spec = parse_variant("emd^r-t")
        assert spec.method == "emd" and spec.relative and spec.bgi_backbone

    def test_canonical_name_roundtrip(self):
        for name in ("GDB^A", "GDB^R-t", "GDB^A_2", "GDB^A_n", "EMD^R-t"):
            assert parse_variant(name).canonical_name == name

    @pytest.mark.parametrize("bad", ["", "XYZ", "GDB^Q", "GDB_", "GDB--t"])
    def test_invalid_variants(self, bad):
        with pytest.raises(ValueError):
            parse_variant(bad)


class TestDispatch:
    @pytest.mark.parametrize(
        "variant",
        ["GDB^A", "GDB^R-t", "GDB^A_2", "GDB^A_n", "EMD^A", "EMD^R-t",
         "LP", "LP-t", "NI", "SP", "RANDOM"],
    )
    def test_every_variant_meets_budget(self, small_power_law, variant):
        sparsified = sparsify(small_power_law, 0.4, variant=variant, rng=0)
        assert check_budget(small_power_law, sparsified, 0.4)
        assert set(sparsified.vertices()) == set(small_power_law.vertices())

    def test_emd_with_k_rejected(self, small_power_law):
        with pytest.raises(ValueError):
            sparsify(small_power_law, 0.4, variant="EMD^A_2")

    def test_alpha_out_of_range(self, small_power_law):
        with pytest.raises(ValueError):
            sparsify(small_power_law, 1.5, variant="GDB^A")

    def test_name_override(self, small_power_law):
        out = sparsify(small_power_law, 0.4, variant="GDB^A", rng=0, name="custom")
        assert out.name == "custom"

    def test_default_name_mentions_variant(self, small_power_law):
        out = sparsify(small_power_law, 0.4, variant="GDB^A", rng=0)
        assert "GDB^A" in out.name

    def test_available_variants_all_parse(self):
        for variant in available_variants():
            parse_variant(variant)

    def test_deterministic_with_seed(self, small_power_law):
        a = sparsify(small_power_law, 0.3, variant="EMD^R-t", rng=5)
        b = sparsify(small_power_law, 0.3, variant="EMD^R-t", rng=5)
        assert a.isomorphic_probabilities(b)


class TestEngineKnob:
    @pytest.mark.parametrize(
        "variant", ["GDB^A", "GDB^R-t", "GDB^A_2", "GDB^A_n", "EMD^R-t"]
    )
    def test_loop_engine_meets_budget_too(self, small_power_law, variant):
        sparsified = sparsify(
            small_power_law, 0.4, variant=variant, rng=0, engine="loop"
        )
        assert check_budget(small_power_law, sparsified, 0.4)

    def test_vector_is_default(self, small_power_law):
        default = sparsify(small_power_law, 0.4, variant="EMD^R-t", rng=3)
        vector = sparsify(
            small_power_law, 0.4, variant="EMD^R-t", rng=3, engine="vector"
        )
        assert default.isomorphic_probabilities(vector)

    def test_engine_ignored_by_baselines(self, small_power_law):
        a = sparsify(small_power_law, 0.4, variant="NI", rng=0, engine="loop")
        b = sparsify(small_power_law, 0.4, variant="NI", rng=0, engine="vector")
        assert a.isomorphic_probabilities(b)

    def test_invalid_engine_rejected(self, small_power_law):
        with pytest.raises(ValueError):
            sparsify(small_power_law, 0.4, variant="GDB^A", rng=0, engine="fast")

    def test_fused_not_a_public_engine(self, small_power_law):
        # "fused" is the internal M-phase path, not a sparsify() knob.
        with pytest.raises(ValueError):
            sparsify(small_power_law, 0.4, variant="GDB^A", rng=0, engine="fused")


def test_check_budget_detects_mismatch(small_power_law):
    sparsified = sparsify(small_power_law, 0.4, variant="GDB^A", rng=0)
    assert check_budget(small_power_law, sparsified, 0.4)
    assert not check_budget(small_power_law, sparsified, 0.7)
    assert target_edge_count(10, 0.5) == 5
