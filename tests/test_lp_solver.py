"""Optimisation layer: pdp LP solver, lazy EMD mode, NI-on-peels.

Three equivalence contracts introduced by the solver-grade layer:

- ``solver="pdp"`` reaches the HiGHS objective within its duality-gap
  tolerance and always returns a feasible point (Lemma 1 holds);
- ``emd_mode="lazy"`` reaches the eager reference's converged objective
  (``D_1`` agreement, not bit-identity — heap tie-breaking differs);
- ``peeler="plan"`` NI is bit-identical to the legacy scalar peeler and
  memoises its peel structure on a shared :class:`BackbonePlan`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ni import (
    integer_weights,
    ni_peel_structure,
    ni_sparsify,
)
from repro.core import UncertainGraph, delta_1, lp_assign_probabilities, sparsify
from repro.core.backbone import BackbonePlan, bgi_backbone, target_edge_count
from repro.core.emd_sparsifier import EMDConfig, emd
from repro.core.lp import (
    LP_SOLVERS,
    PDPDiagnostics,
    backbone_incidence,
    lp_sparsify,
    solve_pdp,
)
from repro.datasets import erdos_renyi_uncertain, figure1_graph, flickr_like

#: The pdp default relative duality-gap tolerance (see repro.core.lp).
PDP_TOL = 1e-3


# ----------------------------------------------------------------------
# pdp vs HiGHS: objective agreement, feasibility, diagnostics
# ----------------------------------------------------------------------
def _objectives(graph, alpha, seed=0, **pdp_kwargs):
    ids = bgi_backbone(graph, alpha, rng=seed)
    via_highs = lp_assign_probabilities(graph, ids, solver="highs")
    via_pdp = lp_assign_probabilities(graph, ids, solver="pdp", **pdp_kwargs)
    return ids, float(via_highs.sum()), via_pdp


def _assert_feasible(graph, backbone_ids, probabilities):
    assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)
    incidence = backbone_incidence(graph, np.asarray(backbone_ids))
    products = incidence @ probabilities
    assert np.all(products <= graph.expected_degree_array() + 1e-9)


def test_pdp_matches_highs_objective(small_power_law):
    ids, highs_obj, pdp = _objectives(small_power_law, 0.4)
    pdp_obj = float(pdp.sum())
    # pdp stops at a relative duality gap; it can only undershoot, and
    # by at most the tolerance (the dual bound dominates the optimum).
    assert pdp_obj <= highs_obj + 1e-6
    assert pdp_obj >= highs_obj - 3 * PDP_TOL * max(1.0, highs_obj)
    _assert_feasible(small_power_law, ids, pdp)


def test_pdp_matches_highs_on_sparse_proxy(small_sparse):
    ids, highs_obj, pdp = _objectives(small_sparse, 0.5, seed=3)
    assert float(pdp.sum()) == pytest.approx(
        highs_obj, rel=3 * PDP_TOL, abs=1e-6
    )
    _assert_feasible(small_sparse, ids, pdp)


def test_pdp_feasible_via_lemma1_degrees(small_power_law):
    """Sparsified expected degrees never exceed the originals (Lemma 1)."""
    sparsified = lp_sparsify(
        small_power_law, alpha=0.4, rng=0, solver="pdp"
    )
    for vertex in small_power_law.vertices():
        assert sparsified.expected_degree(vertex) <= (
            small_power_law.expected_degree(vertex) + 1e-6
        )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    alpha=st.floats(min_value=0.3, max_value=0.7),
)
def test_property_pdp_agrees_with_highs_on_er(seed, alpha):
    graph = erdos_renyi_uncertain(36, avg_degree=10, rng=seed % 5)
    ids, highs_obj, pdp = _objectives(graph, alpha, seed=seed)
    assert float(pdp.sum()) == pytest.approx(
        highs_obj, rel=3 * PDP_TOL, abs=1e-6
    )
    _assert_feasible(graph, ids, pdp)


def test_pdp_duality_gap_monotone(small_power_law):
    """best_primal never decreases, best_dual/gap never increase."""
    diagnostics = PDPDiagnostics()
    lp_assign_probabilities(
        small_power_law,
        bgi_backbone(small_power_law, 0.4, rng=0),
        solver="pdp",
        diagnostics=diagnostics,
    )
    assert diagnostics.converged
    assert diagnostics.iterations > 0
    assert len(diagnostics.history) >= 2
    iterations, primals, duals, gaps = zip(*diagnostics.history)
    assert list(iterations) == sorted(iterations)
    assert all(b >= a - 1e-12 for a, b in zip(primals, primals[1:]))
    assert all(b <= a + 1e-12 for a, b in zip(duals, duals[1:]))
    assert all(b <= a + 1e-12 for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] == pytest.approx(diagnostics.gap)
    assert diagnostics.gap <= PDP_TOL * max(
        1.0, abs(diagnostics.dual_objective)
    )


def test_pdp_warm_start_invariance(small_power_law):
    """Warm and cold starts land on the same converged objective."""
    ids = bgi_backbone(small_power_law, 0.4, rng=0)
    warm = lp_assign_probabilities(
        small_power_law, ids, solver="pdp", warm_start=True
    )
    cold = lp_assign_probabilities(
        small_power_law, ids, solver="pdp", warm_start=False
    )
    # Each is within the gap tolerance of the optimum, hence of the other.
    assert float(warm.sum()) == pytest.approx(
        float(cold.sum()), rel=3 * PDP_TOL, abs=1e-6
    )
    _assert_feasible(small_power_law, ids, warm)
    _assert_feasible(small_power_law, ids, cold)


def test_solve_pdp_empty_backbone():
    from scipy import sparse

    empty = sparse.csr_matrix((4, 0), dtype=np.float64)
    result = solve_pdp(
        empty, np.ones(4), np.zeros((0, 2), dtype=np.int64)
    )
    assert result.shape == (0,)


def test_unknown_solver_rejected(small_power_law):
    assert LP_SOLVERS == ("highs", "pdp")
    with pytest.raises(ValueError, match="unknown LP solver"):
        lp_assign_probabilities(small_power_law, [0], solver="simplex")
    with pytest.raises(ValueError, match="unknown LP solver"):
        lp_sparsify(small_power_law, alpha=0.4, rng=0, solver="simplex")
    with pytest.raises(ValueError, match="unknown LP solver"):
        sparsify(small_power_law, 0.4, variant="LP-t", rng=0,
                 lp_solver="simplex")


def test_backbone_incidence_structure(path4):
    incidence = backbone_incidence(path4, np.array([0, 2]))
    assert incidence.shape == (4, 2)
    dense = incidence.toarray()
    # Each column has exactly two unit entries at the edge's endpoints.
    assert np.all(dense.sum(axis=0) == 2.0)
    edges = path4.edge_index_array()
    for j, eid in enumerate((0, 2)):
        assert dense[edges[eid, 0], j] == 1.0
        assert dense[edges[eid, 1], j] == 1.0


# ----------------------------------------------------------------------
# min_probability: the (0, 1] contract and the edge budget
# ----------------------------------------------------------------------
def _path_backbone_ids(graph):
    """Edge ids of the path u1-u2-u3-u4 inside the K4 figure-1 graph."""
    wanted = [
        frozenset(("u1", "u2")),
        frozenset(("u2", "u3")),
        frozenset(("u3", "u4")),
    ]
    by_pair = {
        frozenset(edge[:2]): eid for eid, edge in enumerate(graph.edge_list())
    }
    return [by_pair[pair] for pair in wanted]


@pytest.mark.parametrize("solver", LP_SOLVERS)
def test_zero_probability_edges_survive_at_floor(solver):
    """On K4(0.3) with a path backbone the LP forces the middle edge to
    zero (end edges saturate both shared vertices); the floor keeps it in
    the output so the budget stays exact."""
    graph = figure1_graph()
    ids = _path_backbone_ids(graph)
    probabilities = lp_assign_probabilities(graph, ids, solver=solver)
    assert float(probabilities.sum()) == pytest.approx(1.8, abs=5e-3)
    assert probabilities.min() <= 5e-3  # the squeezed middle edge

    sparsified = lp_sparsify(graph, backbone_ids=ids, solver=solver)
    assert sparsified.number_of_edges() == len(ids)
    for _, _, p in sparsified.edges():
        assert p >= 1e-9


def test_min_probability_floor_applied(small_power_law):
    floor = 0.37
    sparsified = lp_sparsify(
        small_power_law, alpha=0.4, rng=0, min_probability=floor
    )
    assert sparsified.number_of_edges() == target_edge_count(
        small_power_law.number_of_edges(), 0.4
    )
    assert all(p >= floor for _, _, p in sparsified.edges())


@pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
def test_min_probability_validated(small_power_law, bad):
    with pytest.raises(ValueError, match="min_probability"):
        lp_sparsify(
            small_power_law, alpha=0.4, rng=0, min_probability=bad
        )


# ----------------------------------------------------------------------
# lazy vs eager EMD: converged-objective equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backbone_method", ["bgi", "random"])
@pytest.mark.parametrize("relative", [False, True])
@pytest.mark.parametrize("eager_engine", ["vector", "loop"])
def test_lazy_emd_matches_eager_converged_d1(
    backbone_method, relative, eager_engine
):
    graph = flickr_like(n=80, avg_degree=14, seed=9)
    config = EMDConfig(relative=relative)
    eager = emd(
        graph, alpha=0.35, config=config, backbone_method=backbone_method,
        rng=11, engine=eager_engine, emd_mode="eager",
    )
    lazy = emd(
        graph, alpha=0.35, config=config, backbone_method=backbone_method,
        rng=11, engine="vector", emd_mode="lazy",
    )
    assert lazy.number_of_edges() == eager.number_of_edges()
    d1_eager = delta_1(graph, eager, relative=relative)
    d1_lazy = delta_1(graph, lazy, relative=relative)
    assert abs(d1_lazy - d1_eager) <= 1e-6 * max(1.0, d1_eager)


def test_lazy_emd_through_sparsify_facade(small_power_law):
    eager = sparsify(
        small_power_law, 0.3, variant="EMD^R-t", rng=5, emd_mode="eager"
    )
    lazy = sparsify(
        small_power_law, 0.3, variant="EMD^R-t", rng=5, emd_mode="lazy"
    )
    assert lazy.number_of_edges() == eager.number_of_edges()
    d1_eager = delta_1(small_power_law, eager, relative=True)
    d1_lazy = delta_1(small_power_law, lazy, relative=True)
    assert abs(d1_lazy - d1_eager) <= 1e-6 * max(1.0, d1_eager)
    for _, _, p in lazy.edges():
        assert 0.0 < p <= 1.0


def test_lazy_mode_rejects_loop_engine(small_power_law):
    with pytest.raises(ValueError, match="vector engine"):
        emd(small_power_law, alpha=0.3, rng=0, engine="loop",
            emd_mode="lazy")


def test_unknown_emd_mode_rejected(small_power_law):
    with pytest.raises(ValueError, match="unknown emd_mode"):
        emd(small_power_law, alpha=0.3, rng=0, emd_mode="eagerly")
    with pytest.raises(ValueError, match="unknown emd_mode"):
        sparsify(small_power_law, 0.3, variant="EMD^A", rng=0,
                 emd_mode="eagerly")


# ----------------------------------------------------------------------
# NI on peels: bit-identity with the legacy peeler + plan memoisation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("alpha", [0.25, 0.5])
@pytest.mark.parametrize("seed", [1, 42])
def test_ni_plan_bit_identical_to_legacy(small_power_law, alpha, seed):
    legacy = ni_sparsify(small_power_law, alpha, rng=seed, peeler="legacy")
    planned = ni_sparsify(small_power_law, alpha, rng=seed, peeler="plan")
    assert sorted(planned.edges()) == sorted(legacy.edges())


def test_ni_memoises_peel_structure_on_plan(small_power_law):
    plan = BackbonePlan(small_power_law)
    first = ni_sparsify(small_power_law, 0.4, rng=7, backbone_plan=plan)
    key = ("ni_peel", 128)
    assert key in plan._cache
    structure = plan._cache[key]
    second = ni_sparsify(small_power_law, 0.5, rng=7, backbone_plan=plan)
    # The second alpha reuses the memoised structure object untouched.
    assert plan._cache[key] is structure
    assert first.number_of_edges() < second.number_of_edges()


def test_ni_plan_seed_stream_matches_planless(small_power_law):
    """Passing a plan must not change the output for a given seed."""
    plan = BackbonePlan(small_power_law)
    with_plan = ni_sparsify(
        small_power_law, 0.4, rng=3, backbone_plan=plan
    )
    without = ni_sparsify(small_power_law, 0.4, rng=3)
    assert sorted(with_plan.edges()) == sorted(without.edges())


def test_ni_rejects_bad_peeler_and_foreign_plan(small_power_law, small_sparse):
    with pytest.raises(ValueError, match="unknown peeler"):
        ni_sparsify(small_power_law, 0.4, rng=0, peeler="recursive")
    with pytest.raises(ValueError, match="different graph"):
        ni_sparsify(
            small_power_law, 0.4, rng=0,
            backbone_plan=BackbonePlan(small_sparse),
        )


def test_ni_peel_structure_covers_every_edge(small_sparse):
    edge_vertices = small_sparse.edge_index_array()
    weights, _ = integer_weights(
        np.array(small_sparse.probability_array()), max_weight=32
    )
    order, rounds = ni_peel_structure(
        small_sparse.number_of_vertices(), edge_vertices, weights
    )
    m = small_sparse.number_of_edges()
    # Every edge exhausts exactly once, in non-decreasing round order,
    # and never before its quantised weight allows.
    assert sorted(order.tolist()) == list(range(m))
    assert np.all(np.diff(rounds) >= 0)
    assert np.all(rounds >= weights[order])
    assert not order.flags.writeable and not rounds.flags.writeable


def test_ni_peel_structure_trivial_graphs():
    lone = UncertainGraph([(0, 1, 0.5)])
    weights, _ = integer_weights(
        np.array(lone.probability_array()), max_weight=8
    )
    order, rounds = ni_peel_structure(2, lone.edge_index_array(), weights)
    assert order.tolist() == [0]
    assert rounds.tolist() == [int(weights[0])]


def test_sparsify_facade_accepts_plan_for_ni(small_power_law):
    plan = BackbonePlan(small_power_law)
    out = sparsify(
        small_power_law, 0.4, variant="NI", rng=2, backbone_plan=plan
    )
    assert out.number_of_edges() == target_edge_count(
        small_power_law.number_of_edges(), 0.4
    )
    assert ("ni_peel", 128) in plan._cache
    # SP/ER/RANDOM still refuse a plan.
    with pytest.raises(ValueError, match="backbone plan"):
        sparsify(small_power_law, 0.4, variant="SP", rng=2,
                 backbone_plan=plan)
