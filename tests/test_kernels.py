"""Ensemble traversal kernels: packed BFS and batched weighted distances.

Two contracts, both seeded:

- the bit-packed BFS kernel must return **bit-identical** distance
  matrices to the boolean-frontier kernel — on every topology fixture,
  with and without the ``targets`` early exit, and for every built-in
  query class end to end;
- the batched delta-stepping kernel must match the per-world
  binary-heap Dijkstra reference within float tolerance, including
  unreachable targets and ``w = inf`` (zero-probability) edges, and be
  invariant to the worker count of :class:`ParallelBatchExecutor`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph
from repro.datasets import erdos_renyi_uncertain, flickr_like
from repro.queries import (
    ClusteringCoefficientQuery,
    ComponentCountQuery,
    ConnectivityQuery,
    DegreeQuery,
    PageRankQuery,
    ReliabilityQuery,
    ShortestPathQuery,
    SourceDistanceQuery,
    evaluate_query_batch,
    sample_vertex_pairs,
)
from repro.sampling import (
    BFS_KERNELS,
    DEFAULT_BFS_KERNEL,
    MonteCarloEstimator,
    WorldBatch,
    WorldSampler,
    most_probable_path_weights,
)
from repro.sampling.kernels import default_bucket_width

TOPOLOGY_FIXTURES = ("triangle", "path4", "figure1", "small_power_law", "small_sparse")

#: World counts straddling the uint64 word boundary.
WORLD_COUNTS = (1, 63, 64, 65)


def kernel_batches(graph: UncertainGraph, n_worlds: int, seed: int):
    """The same seeded mask matrix wrapped once per BFS kernel."""
    sampler = WorldSampler(graph)
    masks = sampler.sample_mask_matrix(n_worlds, rng=seed)
    return {
        name: WorldBatch(
            sampler.n, sampler.edge_vertices, masks,
            edge_weights=sampler.edge_weights, bfs_kernel=name,
        )
        for name in BFS_KERNELS
    }


def all_query_classes(graph: UncertainGraph, seed: int = 7) -> list:
    n = graph.number_of_vertices()
    queries = [
        DegreeQuery(n),
        ConnectivityQuery(),
        ComponentCountQuery(),
        ClusteringCoefficientQuery(n),
        PageRankQuery(n),
        SourceDistanceQuery(0, n),
        SourceDistanceQuery(0, n, weighted=True),
    ]
    if n >= 2:
        pairs = sample_vertex_pairs(graph, min(6, n * (n - 1) // 2), rng=seed)
        queries.append(ReliabilityQuery(pairs))
        queries.append(ShortestPathQuery(pairs))
        queries.append(ShortestPathQuery(pairs, weighted=True))
    return queries


class TestPackedBFS:
    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("n_worlds", WORLD_COUNTS)
    def test_bit_identical_on_every_fixture(self, fixture, n_worlds, request):
        graph = request.getfixturevalue(fixture)
        seed = TOPOLOGY_FIXTURES.index(fixture) + 31
        batches = kernel_batches(graph, n_worlds, seed=seed)
        n = graph.number_of_vertices()
        for source in {0, n // 2, n - 1}:
            expected = batches["boolean"].bfs_distances(source)
            actual = batches["packed"].bfs_distances(source)
            assert np.array_equal(expected, actual)

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_bit_identical_with_targets_early_exit(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        n = graph.number_of_vertices()
        batches = kernel_batches(graph, 70, seed=11)
        for targets in ([0], [n - 1], [0, n - 1, n // 2]):
            expected = batches["boolean"].bfs_distances(0, targets=targets)
            actual = batches["packed"].bfs_distances(0, targets=targets)
            assert np.array_equal(expected, actual), targets

    def test_fragmented_graph_with_isolated_vertices(self):
        graph = UncertainGraph(
            [(0, 1, 0.5), (2, 3, 0.9), (4, 5, 0.3), (5, 6, 0.7), (4, 6, 0.6)],
            vertices=[7, 8],
        )
        batches = kernel_batches(graph, 130, seed=2)
        for source in range(graph.number_of_vertices()):
            assert np.array_equal(
                batches["boolean"].bfs_distances(source),
                batches["packed"].bfs_distances(source),
            )

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=18),
        avg_degree=st.integers(min_value=1, max_value=6),
        graph_seed=st.integers(min_value=0, max_value=10_000),
        n_worlds=st.integers(min_value=1, max_value=80),
        source=st.integers(min_value=0, max_value=17),
    )
    def test_property_random_graphs(self, n, avg_degree, graph_seed, n_worlds, source):
        graph = erdos_renyi_uncertain(
            n, avg_degree=min(avg_degree, n - 1), rng=graph_seed
        )
        source = source % n
        batches = kernel_batches(graph, n_worlds, seed=graph_seed + 1)
        assert np.array_equal(
            batches["boolean"].bfs_distances(source),
            batches["packed"].bfs_distances(source),
        )
        targets = [source, (source + 1) % n]
        assert np.array_equal(
            batches["boolean"].bfs_distances(source, targets=targets),
            batches["packed"].bfs_distances(source, targets=targets),
        )

    def test_every_query_class_identical_across_kernels(self, small_power_law):
        batches = kernel_batches(small_power_law, 40, seed=9)
        for query in all_query_classes(small_power_law):
            results = {
                name: evaluate_query_batch(query, batch)
                for name, batch in batches.items()
            }
            assert np.array_equal(
                results["boolean"], results["packed"], equal_nan=True
            ), type(query).__name__

    def test_default_kernel_is_packed(self, triangle):
        assert DEFAULT_BFS_KERNEL == "packed"
        batch = WorldSampler(triangle).sample_batch(5, rng=0)
        assert batch.bfs_kernel is None  # falls through to the default
        assert np.array_equal(
            batch.bfs_distances(0), batch.bfs_distances(0, kernel="boolean")
        )

    def test_unknown_kernel_rejected(self, triangle):
        sampler = WorldSampler(triangle)
        batch = sampler.sample_batch(3, rng=0)
        with pytest.raises(ValueError):
            batch.bfs_distances(0, kernel="quantum")
        with pytest.raises(ValueError):
            WorldBatch(
                sampler.n, sampler.edge_vertices, batch.masks,
                bfs_kernel="quantum",
            )


class TestWeightTransform:
    def test_most_probable_path_weights(self):
        p = np.array([1.0, 0.5, 1e-12, 0.0, 2.0])
        w = most_probable_path_weights(p)
        assert w[0] == 0.0 and not np.signbit(w[0])
        assert w[1] == pytest.approx(np.log(2.0))
        assert w[2] == pytest.approx(-np.log(1e-12))
        assert np.isinf(w[3])
        assert w[4] == 0.0  # clipped over-unit probability
        assert (w >= 0).all()

    def test_sampler_attaches_weights_everywhere(self, triangle):
        sampler = WorldSampler(triangle)
        expected = most_probable_path_weights(sampler.probabilities)
        assert np.array_equal(sampler.edge_weights, expected)
        batch = sampler.sample_batch(4, rng=1)
        assert np.array_equal(batch.edge_weights, expected)
        world = sampler.sample(rng=1)
        assert world.edge_weights is not None
        assert np.isfinite(world.weighted_distances(0)[0])

    def test_default_bucket_width_positive(self):
        assert default_bucket_width(np.zeros(4)) == 1.0
        assert default_bucket_width(np.array([np.inf])) == 1.0
        assert default_bucket_width(np.array([0.5, 2.0])) == 2.0


class TestDeltaStepping:
    def dijkstra_reference(self, batch, source):
        return np.stack(
            [world.weighted_distances(source) for world in batch.iter_worlds()]
        )

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("n_worlds", (1, 65))
    def test_matches_dijkstra_on_every_fixture(self, fixture, n_worlds, request):
        graph = request.getfixturevalue(fixture)
        batch = WorldSampler(graph).sample_batch(n_worlds, rng=5)
        n = graph.number_of_vertices()
        for source in {0, n - 1}:
            batched = batch.weighted_distances(source)
            reference = self.dijkstra_reference(batch, source)
            assert np.allclose(batched, reference, rtol=1e-9, atol=1e-12)

    def test_unreachable_targets_stay_inf(self):
        graph = UncertainGraph(
            [(0, 1, 0.5), (2, 3, 0.9), (4, 5, 0.3), (5, 6, 0.7), (4, 6, 0.6)],
            vertices=[7, 8],
        )
        batch = WorldSampler(graph).sample_batch(90, rng=4)
        for source in range(graph.number_of_vertices()):
            batched = batch.weighted_distances(source)
            reference = self.dijkstra_reference(batch, source)
            assert np.allclose(batched, reference, rtol=1e-9, atol=1e-12)
            # cross-component entries are inf in both
            assert np.array_equal(np.isinf(batched), np.isinf(reference))

    def test_zero_probability_edges_never_used(self, path4):
        # w = inf is the -log image of p = 0: the edge exists in the
        # mask but no shortest path may cross it.
        sampler = WorldSampler(path4)
        batch = sampler.sample_batch(64, rng=8)
        weights = sampler.edge_weights.copy()
        weights[1] = np.inf  # cut the middle edge 1-2 weight-wise
        batched = batch.weighted_distances(0, weights=weights)
        assert np.isinf(batched[:, 2]).all() and np.isinf(batched[:, 3]).all()
        from repro.sampling import World

        reference = np.stack([
            World(
                sampler.n, sampler.edge_vertices, mask, edge_weights=weights
            ).weighted_distances(0)
            for mask in batch.masks
        ])
        assert np.allclose(batched, reference, rtol=1e-9, atol=1e-12)

    def test_targets_early_exit_matches_target_columns(self, small_power_law):
        batch = WorldSampler(small_power_law).sample_batch(33, rng=6)
        targets = [3, 17, 40]
        full = batch.weighted_distances(0)
        early = batch.weighted_distances(0, targets=targets)
        assert np.allclose(early[:, targets], full[:, targets], rtol=1e-9)

    def test_bucket_width_invariance(self, small_sparse):
        batch = WorldSampler(small_sparse).sample_batch(20, rng=7)
        base = batch.weighted_distances(0, delta=0.1)
        for delta in (0.03, 0.7, 5.0, 100.0):
            assert np.allclose(
                base, batch.weighted_distances(0, delta=delta), rtol=1e-9
            )

    def test_weight_validation(self, triangle):
        batch = WorldSampler(triangle).sample_batch(3, rng=0)
        with pytest.raises(ValueError):
            batch.weighted_distances(0, weights=np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            batch.weighted_distances(0, weights=np.array([0.1, -0.2, 0.3]))
        with pytest.raises(ValueError):
            batch.weighted_distances(0, delta=0.0)
        bare = WorldBatch(3, batch.topology.edge_vertices, batch.masks)
        with pytest.raises(ValueError):
            bare.weighted_distances(0)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=14),
        avg_degree=st.integers(min_value=1, max_value=5),
        graph_seed=st.integers(min_value=0, max_value=10_000),
        mask_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_random_graphs(self, n, avg_degree, graph_seed, mask_seed):
        graph = erdos_renyi_uncertain(
            n, avg_degree=min(avg_degree, n - 1), rng=graph_seed
        )
        sampler = WorldSampler(graph)
        batch = sampler.batch_from_masks(sampler.sample_mask_matrix(10, rng=mask_seed))
        batched = batch.weighted_distances(0)
        reference = self.dijkstra_reference(batch, 0)
        assert np.allclose(batched, reference, rtol=1e-9, atol=1e-12)
        assert np.array_equal(np.isinf(batched), np.isinf(reference))


class TestWeightedQueries:
    def test_weighted_query_names(self):
        pairs = [(0, 1)]
        assert ShortestPathQuery(pairs).name == "SP"
        assert ShortestPathQuery(pairs, weighted=True).name == "WSP"
        assert SourceDistanceQuery(0, 3).name == "KNN"
        assert SourceDistanceQuery(0, 3, weighted=True).name == "WKNN"

    def test_batched_matches_legacy_estimator(self, small_power_law):
        pairs = sample_vertex_pairs(small_power_law, 8, rng=5)
        n = small_power_law.number_of_vertices()
        for query in (
            ShortestPathQuery(pairs, weighted=True),
            SourceDistanceQuery(0, n, weighted=True),
        ):
            legacy = MonteCarloEstimator(
                small_power_law, n_samples=24, batched=False
            ).run(query, rng=9).outcomes
            batched = MonteCarloEstimator(
                small_power_law, n_samples=24, batch_size=7
            ).run(query, rng=9).outcomes
            assert np.allclose(legacy, batched, rtol=1e-9, equal_nan=True)

    def test_weighted_sp_certain_path_is_log_product(self):
        # On an all-certain path the most probable path has probability
        # 1 on every edge, so the weighted distance is exactly 0.
        graph = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0)])
        query = ShortestPathQuery([(0, 2)], weighted=True)
        out = MonteCarloEstimator(graph, n_samples=4).run(query, rng=0)
        assert np.allclose(out.outcomes, 0.0)

    def test_weighted_sp_value_is_minus_log_path_probability(self):
        # Two routes 0-2: direct (p=0.1) vs 0-1-2 (0.9 * 0.9): the
        # two-hop route is more probable and must win when both exist.
        graph = UncertainGraph([(0, 2, 0.1), (0, 1, 0.9), (1, 2, 0.9)])
        sampler = WorldSampler(graph)
        batch = sampler.batch_from_masks(np.ones((1, 3), dtype=bool))
        dist = batch.weighted_distances(0)
        target = graph.vertex_indexer()[2]
        assert dist[0, target] == pytest.approx(-2 * np.log(0.9))


@pytest.mark.parametrize("workers", [2, 4])
class TestWeightedWorkerInvariance:
    """Acceptance gate: weighted results identical for workers 1/2/4."""

    def queries(self, graph):
        pairs = sample_vertex_pairs(graph, 6, rng=7)
        n = graph.number_of_vertices()
        return [
            ShortestPathQuery(pairs, weighted=True),
            SourceDistanceQuery(0, n, weighted=True),
        ]

    def test_outcomes_bit_identical(self, workers):
        graph = flickr_like(n=40, avg_degree=8, seed=5)
        for query in self.queries(graph):
            serial = MonteCarloEstimator(
                graph, n_samples=18, batch_size=5, workers=1
            ).run(query, rng=3).outcomes
            estimator = MonteCarloEstimator(
                graph, n_samples=18, batch_size=5, workers=workers
            )
            try:
                pooled = estimator.run(query, rng=3).outcomes
            finally:
                estimator.close()
            assert np.array_equal(serial, pooled, equal_nan=True), query.name
