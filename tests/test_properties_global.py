"""Cross-module property-based tests (hypothesis).

These encode the *contract* every sparsifier must satisfy regardless of
variant, seed, or graph shape: exact edge budget, vertex preservation,
edge-subset property, valid probabilities, and entropy never exceeding
the original's.  Plus distributional invariants of the sampling stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import graph_entropy, sparsify, target_edge_count
from repro.datasets import flickr_like, twitter_like
from repro.metrics import earth_movers_distance
from repro.queries import DegreeQuery
from repro.sampling import MonteCarloEstimator, WorldSampler

VARIANTS = ("GDB^A", "GDB^R-t", "GDB^A_2", "EMD^A", "EMD^R-t", "LP-t",
            "NI", "SP", "ER", "RANDOM")


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    alpha=st.floats(min_value=0.25, max_value=0.8),
    variant=st.sampled_from(VARIANTS),
)
def test_property_sparsifier_contract(seed, alpha, variant):
    graph = flickr_like(n=40, avg_degree=12, seed=seed % 4)
    sparsified = sparsify(graph, alpha, variant=variant, rng=seed)

    # 1. Exact budget.
    assert sparsified.number_of_edges() == target_edge_count(
        graph.number_of_edges(), alpha
    )
    # 2. Full vertex set.
    assert set(sparsified.vertices()) == set(graph.vertices())
    # 3. Edge subset of the original.
    for u, v, p in sparsified.edges():
        assert graph.has_edge(u, v)
        # 4. Valid probabilities.
        assert 0.0 < p <= 1.0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    alpha=st.floats(min_value=0.25, max_value=0.6),
)
def test_property_proposed_methods_reduce_entropy(seed, alpha):
    graph = twitter_like(n=40, avg_degree=12, seed=seed % 4)
    for variant in ("GDB^A-t", "EMD^A-t"):
        sparsified = sparsify(graph, alpha, variant=variant, rng=seed)
        assert graph_entropy(sparsified) <= graph_entropy(graph) + 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_expected_degrees_are_mc_means(seed):
    """E[deg] from the analytic formula = mean of sampled world degrees
    (law of large numbers at 4-sigma tolerance)."""
    graph = flickr_like(n=30, avg_degree=8, seed=seed % 3)
    sampler = WorldSampler(graph)
    rng = np.random.default_rng(seed)
    trials = 300
    total = np.zeros(graph.number_of_vertices())
    for _ in range(trials):
        total += sampler.sample(rng).degrees()
    mean_degree = total / trials
    expected = graph.expected_degree_array()
    sigma = np.sqrt(np.maximum(expected, 0.1) / trials)
    assert np.all(np.abs(mean_degree - expected) < 5 * sigma + 0.15)


@settings(max_examples=15, deadline=None)
@given(
    data=st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=30),
    shift=st.floats(min_value=-3, max_value=3),
)
def test_property_emd_translation_equivariant(data, shift):
    a = np.array(data)
    assert earth_movers_distance(a, a + shift) == pytest.approx(
        abs(shift), abs=1e-9
    )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000), n_samples=st.integers(5, 40))
def test_property_estimator_outcomes_bounded_by_query_range(seed, n_samples):
    graph = flickr_like(n=25, avg_degree=6, seed=seed % 3)
    estimator = MonteCarloEstimator(graph, n_samples=n_samples)
    outcomes = estimator.run(
        DegreeQuery(graph.number_of_vertices()), rng=seed
    ).outcomes
    assert outcomes.shape == (n_samples, graph.number_of_vertices())
    assert outcomes.min() >= 0
    # A vertex's sampled degree never exceeds its topological degree.
    degrees = np.array([graph.degree(v) for v in graph.vertices()])
    assert np.all(outcomes.max(axis=0) <= degrees)
