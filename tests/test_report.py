"""Report driver assembly (experiment functions stubbed for speed)."""

import pytest

import repro.experiments.report as report_module
from repro.experiments.common import ResultTable


@pytest.fixture
def stubbed(monkeypatch):
    """Replace every run_* with an instant stub returning tiny tables."""

    def table(title):
        t = ResultTable(title=title, headers=["m", "8%", "16%"])
        t.add_row("GDB", 1.0, 0.5)
        t.add_row("EMD", 0.8, 0.25)
        return t

    monkeypatch.setattr(report_module, "run_fig01", lambda: table("fig1"))
    monkeypatch.setattr(report_module, "run_table2", lambda s: table("t2"))
    monkeypatch.setattr(
        report_module, "run_fig04", lambda s: (table("4a"), table("4b"))
    )
    monkeypatch.setattr(
        report_module, "run_fig05", lambda s: (table("5a"), table("5b"))
    )
    monkeypatch.setattr(
        report_module, "run_fig06",
        lambda s: {"flickr": (table("6d"), table("6c"))},
    )
    monkeypatch.setattr(
        report_module, "run_fig07", lambda s: (table("7d"), table("7c"))
    )
    monkeypatch.setattr(
        report_module, "run_fig08", lambda s: {"flickr": table("8")}
    )
    monkeypatch.setattr(
        report_module, "run_fig09", lambda s: {"flickr": table("9")}
    )
    monkeypatch.setattr(
        report_module, "run_fig10", lambda s: {"flickr": {"PR": table("10")}}
    )
    monkeypatch.setattr(
        report_module, "run_fig11", lambda s: {"PR": table("11")}
    )
    monkeypatch.setattr(
        report_module, "run_fig12",
        lambda s, alphas=None: {"flickr": {"PR": table("12")}},
    )
    monkeypatch.setattr(
        report_module, "run_sample_budget", lambda s: table("budget")
    )
    return report_module


def test_report_contains_every_section(stubbed):
    text = stubbed.generate_report()
    for fragment in (
        "Fig. 1", "Table 2", "Fig. 4(a)", "Fig. 4(b)", "Fig. 5",
        "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
        "Fig. 12",
    ):
        assert fragment in text, fragment


def test_report_includes_charts(stubbed):
    text = stubbed.generate_report(chart=True)
    assert "o=GDB" in text  # chart legend
    flat = stubbed.generate_report(chart=False)
    assert "o=GDB" not in flat


def test_main_writes_file(stubbed, tmp_path, capsys):
    out = tmp_path / "report.txt"
    assert stubbed.main(["tiny", str(out)]) == 0
    assert "Table 2" in out.read_text()
    assert "Table 2" in capsys.readouterr().out


def test_main_defaults_to_tiny(stubbed, capsys):
    assert stubbed.main([]) == 0
    assert "scale=tiny" in capsys.readouterr().out
