"""Forest Fire subgraph sampling."""

import pytest

from repro.datasets import flickr_like, forest_fire_sample


def test_target_vertex_count():
    g = flickr_like(n=120, avg_degree=10, seed=0)
    sample = forest_fire_sample(g, 50, rng=0)
    assert sample.number_of_vertices() == 50


def test_target_capped_at_graph_size():
    g = flickr_like(n=30, avg_degree=6, seed=0)
    sample = forest_fire_sample(g, 500, rng=0)
    assert sample.number_of_vertices() == 30


def test_is_induced_subgraph():
    g = flickr_like(n=80, avg_degree=8, seed=1)
    sample = forest_fire_sample(g, 40, rng=1)
    kept = set(sample.vertices())
    for u, v, p in sample.edges():
        assert g.has_edge(u, v)
        assert g.probability(u, v) == pytest.approx(p)
    # Induced: every original edge between kept vertices must be present.
    for u, v, _ in g.edges():
        if u in kept and v in kept:
            assert sample.has_edge(u, v)


def test_deterministic_given_seed():
    g = flickr_like(n=60, avg_degree=8, seed=2)
    a = forest_fire_sample(g, 30, rng=5)
    b = forest_fire_sample(g, 30, rng=5)
    assert a.isomorphic_probabilities(b)


def test_invalid_forward_probability():
    g = flickr_like(n=30, avg_degree=6, seed=0)
    with pytest.raises(ValueError):
        forest_fire_sample(g, 10, forward_probability=1.0)
    with pytest.raises(ValueError):
        forest_fire_sample(g, 10, forward_probability=0.0)


def test_sample_denser_than_uniform():
    """Forest Fire burns communities: samples keep more edges than a
    uniform random vertex subset of the same size (in expectation)."""
    import numpy as np

    g = flickr_like(n=150, avg_degree=10, seed=3)
    rng = np.random.default_rng(4)
    ff_edges = []
    uniform_edges = []
    vertices = g.vertices()
    for seed in range(5):
        ff = forest_fire_sample(g, 50, rng=seed)
        ff_edges.append(ff.number_of_edges())
        picks = rng.choice(len(vertices), size=50, replace=False)
        uniform = g.induced_subgraph([vertices[i] for i in picks])
        uniform_edges.append(uniform.number_of_edges())
    assert np.mean(ff_edges) > np.mean(uniform_edges)
