"""Deterministic sharding: worker-count-invariant grid and MC execution.

The Bobpp rule under test: work is partitioned by a deterministic key
(grid position, world-block index) — never by arrival order or pool
schedule — and stitched in canonical order, so results are bit-identical
for ``workers ∈ {1, 2, 4}``, whether the workers rebuild the graph from
pickled arrays or mmap a binary dataset file.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import gdb_grid
from repro.core.shard import (
    DEFAULT_H_BLOCK,
    GridShard,
    grid_shards,
    sharded_gdb_grid,
)
from repro.datasets import flickr_like, write_binary
from repro.exceptions import EstimationError
from repro.queries import DegreeQuery, ReliabilityQuery, sample_vertex_pairs
from repro.sampling import MonteCarloEstimator

ALPHAS = [0.4, 0.7]
HS = [0.25, 0.5, 1.0]
SEED = 3


@pytest.fixture(scope="module")
def graph():
    return flickr_like(n=40, avg_degree=8, seed=5)


@pytest.fixture(scope="module")
def dataset(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("shard") / "graph.bin"
    write_binary(graph, path)
    return path


def grid_objectives(results):
    return [(alpha, h, cell.objective, cell.sweeps)
            for (alpha, h), cell in sorted(results.items())]


class TestGridShards:
    def test_covers_every_cell_exactly_once(self):
        shards = grid_shards(3, 7, h_block=2)
        cells = [(s.alpha_index, h)
                 for s in shards for h in range(s.h_start, s.h_stop)]
        assert sorted(cells) == [(a, h) for a in range(3) for h in range(7)]
        assert len(cells) == len(set(cells))

    def test_canonical_order_and_stability(self):
        # The layout is a pure function of the grid shape — repeated
        # calls agree, and shards are ordered (alpha_index, h_start).
        a = grid_shards(2, 9)
        b = grid_shards(2, 9)
        assert a == b
        assert a == sorted(a, key=lambda s: (s.alpha_index, s.h_start))
        assert all(isinstance(s, GridShard) for s in a)
        assert all(s.h_stop - s.h_start <= DEFAULT_H_BLOCK for s in a)

    def test_block_size_changes_layout_not_coverage(self):
        for h_block in (1, 2, 5, 100):
            shards = grid_shards(2, 5, h_block=h_block)
            cells = [(s.alpha_index, h)
                     for s in shards for h in range(s.h_start, s.h_stop)]
            assert sorted(cells) == [(a, h)
                                     for a in range(2) for h in range(5)]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_shards(0, 3)
        with pytest.raises(ValueError):
            grid_shards(3, 0)
        with pytest.raises(ValueError):
            grid_shards(2, 2, h_block=0)


class TestShardedGrid:
    @pytest.fixture(scope="class")
    def serial(self, graph):
        return gdb_grid(graph, ALPHAS, HS, build_graphs=False, rng=SEED)

    def test_worker_counts_bit_identical(self, graph, serial):
        reference = grid_objectives(serial)
        for workers in (1, 2, 4):
            sharded = sharded_gdb_grid(
                graph, ALPHAS, HS, workers=workers, rng=SEED,
            )
            assert grid_objectives(sharded) == reference, (
                f"workers={workers} diverged from the serial grid"
            )

    def test_binary_dataset_payload_bit_identical(self, graph, serial,
                                                  dataset):
        sharded = sharded_gdb_grid(
            graph, ALPHAS, HS, workers=2, rng=SEED, dataset=dataset,
        )
        assert grid_objectives(sharded) == grid_objectives(serial)

    def test_backbones_stitched_per_alpha(self, graph, serial):
        sharded = sharded_gdb_grid(graph, ALPHAS, HS, workers=2, rng=SEED)
        for (alpha, h), cell in sharded.items():
            assert np.array_equal(cell.backbone, serial[(alpha, h)].backbone)

    def test_gdb_grid_workers_delegates(self, graph, serial):
        via_grid = gdb_grid(
            graph, ALPHAS, HS, build_graphs=False, rng=SEED, workers=2,
        )
        assert grid_objectives(via_grid) == grid_objectives(serial)

    def test_h_block_invariance(self, graph, serial):
        for h_block in (1, 3):
            sharded = sharded_gdb_grid(
                graph, ALPHAS, HS, workers=2, rng=SEED, h_block=h_block,
            )
            assert grid_objectives(sharded) == grid_objectives(serial)

    def test_seed_required(self, graph):
        with pytest.raises(ValueError, match="seed"):
            sharded_gdb_grid(graph, ALPHAS, HS, workers=2, rng=None)
        with pytest.raises(ValueError, match="seed"):
            sharded_gdb_grid(
                graph, ALPHAS, HS, workers=2,
                rng=np.random.default_rng(1),
            )

    def test_local_degree_backbone_needs_no_seed(self, graph):
        serial = gdb_grid(
            graph, ALPHAS, HS, build_graphs=False,
            backbone_method="local_degree",
        )
        sharded = sharded_gdb_grid(
            graph, ALPHAS, HS, workers=2, backbone_method="local_degree",
        )
        assert grid_objectives(sharded) == grid_objectives(serial)

    def test_objective_only_contract(self, graph):
        with pytest.raises(ValueError, match="objective-only"):
            gdb_grid(graph, ALPHAS, HS, rng=SEED, workers=2,
                     build_graphs=True)
        with pytest.raises(ValueError):
            gdb_grid(graph, ALPHAS, HS, build_graphs=False, rng=SEED,
                     workers=2, consume=lambda cell: cell)

    def test_dataset_requires_workers(self, graph, dataset):
        with pytest.raises(ValueError, match="workers"):
            gdb_grid(graph, ALPHAS, HS, build_graphs=False, rng=SEED,
                     dataset=dataset)

    def test_dataset_graph_mismatch_rejected(self, graph, tmp_path):
        other = flickr_like(n=30, avg_degree=6, seed=9)
        path = tmp_path / "other.bin"
        write_binary(other, path)
        with pytest.raises(ValueError, match="match"):
            sharded_gdb_grid(graph, ALPHAS, HS, workers=2, rng=SEED,
                             dataset=path)


class TestShardedEstimates:
    def test_mc_worker_counts_bit_identical(self, graph, dataset):
        pairs = sample_vertex_pairs(graph, 6, rng=4)
        for query in (DegreeQuery(graph.number_of_vertices()),
                      ReliabilityQuery(pairs)):
            reference = None
            for workers in (1, 2, 4):
                estimator = MonteCarloEstimator(
                    graph, n_samples=18, batch_size=5, workers=workers,
                    dataset=dataset if workers > 1 else None,
                )
                try:
                    with warnings.catch_warnings():
                        # A silent fall back to in-process execution
                        # would make this test vacuous — fail instead.
                        warnings.simplefilter("error")
                        outcomes = estimator.run(query, rng=7).outcomes
                finally:
                    estimator.close()
                if reference is None:
                    reference = outcomes
                else:
                    assert np.array_equal(reference, outcomes,
                                          equal_nan=True), (
                        f"{type(query).__name__}: workers={workers} "
                        f"diverged under dataset mmap"
                    )

    def test_mismatched_dataset_rejected(self, graph, tmp_path):
        other = flickr_like(n=30, avg_degree=6, seed=9)
        path = tmp_path / "other.bin"
        write_binary(other, path)
        with pytest.raises(EstimationError):
            MonteCarloEstimator(
                graph, n_samples=8, workers=2, dataset=path,
            ).run(DegreeQuery(graph.number_of_vertices()), rng=1)
