"""Sparsification diagnostics report."""

import pytest

from repro.core import UncertainGraph, sparsify
from repro.core.diagnostics import analyze_sparsification


def test_identity_report(small_power_law):
    report = analyze_sparsification(small_power_law, small_power_law)
    assert report.edge_ratio == pytest.approx(1.0)
    assert report.entropy_ratio == pytest.approx(1.0)
    assert report.mass_ratio == pytest.approx(1.0)
    assert report.degree_mae == 0.0
    assert report.largest_component_fraction == 1.0


def test_edge_ratio_matches_alpha(small_power_law):
    sparsified = sparsify(small_power_law, 0.4, variant="GDB^A-t", rng=0)
    report = analyze_sparsification(small_power_law, sparsified)
    assert report.edge_ratio == pytest.approx(0.4, abs=0.01)


def test_gdb_saturates_more_edges_than_spanner(small_sparse):
    """The paper's 6.3 observation: at a budget below the expected edge
    count, redistribution drives many GDB edges to probability 1; SP
    keeps the original (low) probabilities."""
    # alpha = 0.1 < E[p] = 0.15: the missing mass exceeds the budget.
    via_gdb = sparsify(small_sparse, 0.1, variant="GDB^A", rng=0)
    via_sp = sparsify(small_sparse, 0.1, variant="SP", rng=0)
    gdb_report = analyze_sparsification(small_sparse, via_gdb)
    sp_report = analyze_sparsification(small_sparse, via_sp)
    assert gdb_report.saturated_fraction > 0.5
    assert gdb_report.saturated_fraction > sp_report.saturated_fraction
    assert gdb_report.entropy_ratio < sp_report.entropy_ratio


def test_mass_ratio_reflects_redistribution(small_power_law):
    """GDB recovers (nearly) all probability mass at moderate alpha; the
    random baseline keeps only ~alpha of it."""
    via_gdb = sparsify(small_power_law, 0.5, variant="GDB^A-t", rng=0)
    via_random = sparsify(small_power_law, 0.5, variant="RANDOM", rng=0)
    gdb_report = analyze_sparsification(small_power_law, via_gdb)
    random_report = analyze_sparsification(small_power_law, via_random)
    assert gdb_report.mass_ratio > 0.95
    assert random_report.mass_ratio < 0.85


def test_near_zero_fraction():
    g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.5)])
    shrunk = g.subgraph_with_edges([(0, 1, 1e-12), (1, 2, 0.9)])
    report = analyze_sparsification(g, shrunk)
    assert report.near_zero_fraction == pytest.approx(0.5)


def test_format_contains_every_line(small_power_law):
    sparsified = sparsify(small_power_law, 0.4, variant="EMD^R-t", rng=0)
    text = analyze_sparsification(small_power_law, sparsified).format()
    for fragment in ("edge ratio", "saturated", "entropy ratio",
                     "degree MAE", "largest component"):
        assert fragment in text
