"""Random sparsifier and representative-instance baselines."""

import numpy as np
import pytest

from repro.baselines import random_sparsify, representative_instance
from repro.core import UncertainGraph
from repro.core.backbone import target_edge_count


class TestRandomSparsify:
    def test_budget(self, small_power_law):
        out = random_sparsify(small_power_law, 0.3, rng=0)
        assert out.number_of_edges() == target_edge_count(
            small_power_law.number_of_edges(), 0.3
        )

    def test_probabilities_unchanged(self, small_power_law):
        out = random_sparsify(small_power_law, 0.3, rng=0)
        for u, v, p in out.edges():
            assert p == pytest.approx(small_power_law.probability(u, v))

    def test_different_seeds_differ(self, small_power_law):
        a = random_sparsify(small_power_law, 0.3, rng=0)
        b = random_sparsify(small_power_law, 0.3, rng=1)
        assert not a.isomorphic_probabilities(b)


class TestRepresentative:
    def test_zero_entropy(self, small_power_law):
        from repro.core import graph_entropy

        rep = representative_instance(small_power_law)
        assert graph_entropy(rep) == 0.0

    def test_all_probabilities_one(self, small_power_law):
        rep = representative_instance(small_power_law)
        assert all(p == 1.0 for _, _, p in rep.edges())

    def test_preserves_expected_degrees_approximately(self, small_power_law):
        """The greedy rounding lands within ~1 of each expected degree."""
        rep = representative_instance(small_power_law)
        errors = [
            abs(small_power_law.expected_degree(v) - rep.expected_degree(v))
            for v in small_power_law.vertices()
        ]
        assert float(np.mean(errors)) < 1.0

    def test_representative_smaller_than_original(self, small_power_law):
        rep = representative_instance(small_power_law)
        assert rep.number_of_edges() < small_power_law.number_of_edges()

    def test_deterministic(self, small_power_law):
        a = representative_instance(small_power_law)
        b = representative_instance(small_power_law)
        assert a.isomorphic_probabilities(b)

    def test_high_probability_graph_keeps_most_edges(self):
        g = UncertainGraph([(i, (i + 1) % 10, 0.95) for i in range(10)])
        rep = representative_instance(g)
        assert rep.number_of_edges() >= 8
