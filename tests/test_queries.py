"""Query implementations against analytic and networkx oracles."""

import numpy as np
import pytest

from repro.core import UncertainGraph
from repro.datasets import flickr_like
from repro.queries import (
    ClusteringCoefficientQuery,
    ComponentCountQuery,
    ConnectivityQuery,
    DegreeQuery,
    PageRankQuery,
    ReliabilityQuery,
    ShortestPathQuery,
    sample_vertex_pairs,
    world_pagerank,
)
from repro.sampling import MonteCarloEstimator, WorldSampler


def full_world(graph):
    sampler = WorldSampler(graph)
    return sampler.world_from_mask(np.ones(sampler.m, dtype=bool))


class TestPageRank:
    def test_sums_to_one(self, small_power_law):
        pr = world_pagerank(full_world(small_power_law))
        assert pr.sum() == pytest.approx(1.0, abs=1e-6)

    def test_uniform_on_cycle(self):
        g = UncertainGraph([(i, (i + 1) % 6, 1.0) for i in range(6)])
        pr = world_pagerank(full_world(g))
        assert np.allclose(pr, 1 / 6, atol=1e-8)

    def test_matches_networkx(self):
        import networkx as nx

        g = flickr_like(n=40, avg_degree=8, seed=2)
        world = full_world(g)
        pr = world_pagerank(world, damping=0.85)
        nx_graph = nx.Graph(list((u, v) for u, v, _ in g.edges()))
        nx_graph.add_nodes_from(g.vertices())
        expected = nx.pagerank(nx_graph, alpha=0.85, tol=1e-12, max_iter=200)
        indexer = g.vertex_indexer()
        for vertex, value in expected.items():
            assert pr[indexer[vertex]] == pytest.approx(value, abs=1e-6)

    def test_dangling_vertices_handled(self):
        g = UncertainGraph([(0, 1, 1.0)], vertices=[2])
        pr = world_pagerank(full_world(g))
        assert pr.sum() == pytest.approx(1.0, abs=1e-6)
        assert pr[2] > 0

    def test_query_protocol(self, small_power_law):
        query = PageRankQuery(small_power_law.number_of_vertices())
        assert query.unit_count() == small_power_law.number_of_vertices()
        out = query.evaluate(full_world(small_power_law))
        assert out.shape == (query.unit_count(),)


class TestShortestPath:
    def test_distances_on_path(self, path4):
        query = ShortestPathQuery([(0, 3), (1, 2)])
        out = query.evaluate(full_world(path4))
        assert list(out) == [3.0, 1.0]

    def test_disconnected_pair_is_nan(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        query = ShortestPathQuery([(0, 2)])
        out = query.evaluate(full_world(g))
        assert np.isnan(out[0])

    def test_pairs_grouped_by_source(self, path4):
        query = ShortestPathQuery([(0, 1), (0, 2), (0, 3)])
        out = query.evaluate(full_world(path4))
        assert list(out) == [1.0, 2.0, 3.0]

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            ShortestPathQuery([])

    def test_expected_distance_excludes_disconnecting_worlds(self):
        """SP protocol: average over connected worlds only."""
        g = UncertainGraph([(0, 1, 0.5)])
        estimator = MonteCarloEstimator(g, n_samples=500)
        result = estimator.run(ShortestPathQuery([(0, 1)]), rng=0)
        assert result.unit_estimates()[0] == pytest.approx(1.0)


class TestReliability:
    def test_deterministic_path(self, path4):
        query = ReliabilityQuery([(0, 3)])
        out = query.evaluate(full_world(path4))
        assert out[0] == 1.0

    def test_disconnected(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        query = ReliabilityQuery([(0, 3)])
        assert query.evaluate(full_world(g))[0] == 0.0

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityQuery([])


class TestClusteringAndConnectivity:
    def test_cc_query(self, triangle):
        query = ClusteringCoefficientQuery(3)
        assert np.allclose(query.evaluate(full_world(triangle)), 1.0)

    def test_connectivity_query(self, path4):
        assert ConnectivityQuery().evaluate(full_world(path4))[0] == 1.0

    def test_component_count_query(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        assert ComponentCountQuery().evaluate(full_world(g))[0] == 2.0

    def test_degree_query_matches_world(self, small_power_law):
        world = full_world(small_power_law)
        query = DegreeQuery(small_power_law.number_of_vertices())
        assert np.array_equal(query.evaluate(world), world.degrees())


class TestPairSampling:
    def test_count_and_distinctness(self, small_power_law):
        pairs = sample_vertex_pairs(small_power_law, 20, rng=0)
        assert len(pairs) == 20
        assert len(set(pairs)) == 20
        for u, v in pairs:
            assert u != v
            assert u < v  # canonical order

    def test_capped_at_max_pairs(self):
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.5)])
        pairs = sample_vertex_pairs(g, 100, rng=0)
        assert len(pairs) == 3  # C(3, 2)

    def test_needs_two_vertices(self):
        with pytest.raises(ValueError):
            sample_vertex_pairs(UncertainGraph(vertices=[0]), 1, rng=0)

    def test_deterministic(self, small_power_law):
        assert sample_vertex_pairs(small_power_law, 10, rng=3) == (
            sample_vertex_pairs(small_power_law, 10, rng=3)
        )
