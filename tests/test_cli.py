"""CLI: sparsify / info / compare / variants subcommands."""

import pytest

from repro.cli import main
from repro.datasets import read_edge_list, twitter_like, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(twitter_like(n=60, avg_degree=10, seed=1), path)
    return path


def test_sparsify_writes_output(graph_file, tmp_path, capsys):
    out = tmp_path / "sparse.txt"
    code = main([
        "sparsify", str(graph_file), str(out),
        "--alpha", "0.4", "--variant", "GDB^A", "--seed", "0",
    ])
    assert code == 0
    sparsified = read_edge_list(out)
    original = read_edge_list(graph_file)
    assert sparsified.number_of_edges() == round(0.4 * original.number_of_edges())
    assert "H ratio" in capsys.readouterr().out


def test_sparsify_default_variant(graph_file, tmp_path):
    out = tmp_path / "sparse.txt"
    assert main(["sparsify", str(graph_file), str(out), "--alpha", "0.3"]) == 0


def test_sparsify_engine_flag(graph_file, tmp_path):
    loop_out = tmp_path / "loop.txt"
    vector_out = tmp_path / "vector.txt"
    for engine, path in (("loop", loop_out), ("vector", vector_out)):
        code = main([
            "sparsify", str(graph_file), str(path),
            "--alpha", "0.4", "--variant", "EMD^A", "--seed", "0",
            "--engine", engine,
        ])
        assert code == 0
    # EMD's engines are bit-identical, so the files describe one graph.
    assert read_edge_list(loop_out).isomorphic_probabilities(
        read_edge_list(vector_out)
    )


def test_sparsify_engine_flag_rejects_unknown(graph_file, tmp_path, capsys):
    with pytest.raises(SystemExit):
        main([
            "sparsify", str(graph_file), str(tmp_path / "x.txt"),
            "--alpha", "0.4", "--engine", "warp",
        ])


def test_sparsify_bad_variant_fails(graph_file, tmp_path, capsys):
    out = tmp_path / "sparse.txt"
    with pytest.raises(ValueError):
        main([
            "sparsify", str(graph_file), str(out),
            "--alpha", "0.4", "--variant", "NOPE",
        ])


class TestBackbonePlanFlag:
    def test_plan_output_identical_to_direct(self, graph_file, tmp_path):
        direct = tmp_path / "direct.txt"
        planned = tmp_path / "planned.txt"
        base = ["--alpha", "0.4", "--variant", "GDB^A-t", "--seed", "3"]
        assert main(["sparsify", str(graph_file), str(direct)] + base) == 0
        assert main(
            ["sparsify", str(graph_file), str(planned)] + base
            + ["--backbone-plan"]
        ) == 0
        assert direct.read_text() == planned.read_text()

    def test_alpha_ladder_with_template(self, graph_file, tmp_path, capsys):
        template = tmp_path / "out-{alpha}.txt"
        code = main([
            "sparsify", str(graph_file), str(template),
            "--alpha", "0.3,0.5", "--variant", "GDB^A-t", "--seed", "3",
            "--backbone-plan",
        ])
        assert code == 0
        original = read_edge_list(graph_file)
        for alpha in (0.3, 0.5):
            out = tmp_path / f"out-{alpha:g}.txt"
            assert read_edge_list(out).number_of_edges() == round(
                alpha * original.number_of_edges()
            )
        assert capsys.readouterr().out.count("H ratio") == 2

    def test_ladder_outputs_match_per_alpha_runs(self, graph_file, tmp_path):
        template = tmp_path / "ladder-{alpha}.txt"
        main([
            "sparsify", str(graph_file), str(template),
            "--alpha", "0.3,0.5", "--variant", "GDB^A-t", "--seed", "5",
            "--backbone-plan",
        ])
        for alpha in ("0.3", "0.5"):
            single = tmp_path / f"single-{alpha}.txt"
            main([
                "sparsify", str(graph_file), str(single),
                "--alpha", alpha, "--variant", "GDB^A-t", "--seed", "5",
            ])
            ladder = tmp_path / f"ladder-{alpha}.txt"
            assert ladder.read_text() == single.read_text()

    def test_multi_alpha_requires_template(self, graph_file, tmp_path, capsys):
        assert main([
            "sparsify", str(graph_file), str(tmp_path / "out.txt"),
            "--alpha", "0.3,0.5",
        ]) == 1
        assert "{alpha}" in capsys.readouterr().err

    def test_bad_alpha_list(self, graph_file, tmp_path, capsys):
        assert main([
            "sparsify", str(graph_file), str(tmp_path / "out.txt"),
            "--alpha", "0.2,oops",
        ]) == 1
        assert "invalid --alpha" in capsys.readouterr().err

    def test_plan_rejected_for_benchmark_variants(self, graph_file, tmp_path,
                                                  capsys):
        # NI accepts a plan (memoised peel structure); SP still refuses.
        assert main([
            "sparsify", str(graph_file), str(tmp_path / "out.txt"),
            "--alpha", "0.4", "--variant", "SP", "--backbone-plan",
        ]) == 1
        assert "--backbone-plan only applies" in capsys.readouterr().err

    def test_plan_accepted_for_ni(self, graph_file, tmp_path, capsys):
        out = tmp_path / "out-ni.txt"
        assert main([
            "sparsify", str(graph_file), str(out),
            "--alpha", "0.4", "--variant", "NI", "--seed", "3",
            "--backbone-plan",
        ]) == 0
        assert out.exists()


def test_info(graph_file, capsys):
    assert main(["info", str(graph_file)]) == 0
    output = capsys.readouterr().out
    assert "vertices:" in output
    assert "entropy (bits):" in output


def test_info_missing_file_returns_error(tmp_path, capsys):
    assert main(["info", str(tmp_path / "missing.txt")]) == 1
    assert "error:" in capsys.readouterr().err


def test_compare(graph_file, tmp_path, capsys):
    out = tmp_path / "sparse.txt"
    main(["sparsify", str(graph_file), str(out), "--alpha", "0.4", "--seed", "1"])
    capsys.readouterr()
    assert main(["compare", str(graph_file), str(out)]) == 0
    output = capsys.readouterr().out
    assert "degree MAE" in output
    assert "relative entropy" in output


def test_variants_lists_all(capsys):
    assert main(["variants"]) == 0
    output = capsys.readouterr().out
    assert "EMD^R-t" in output
    assert "NI" in output


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])


class TestGenerate:
    @pytest.mark.parametrize("family", ["flickr", "twitter", "grid", "er"])
    def test_families(self, family, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert main(["generate", family, str(out), "--n", "50", "--seed", "1"]) == 0
        graph = read_edge_list(out)
        assert graph.number_of_edges() > 0
        assert "wrote" in capsys.readouterr().out

    def test_custom_avg_degree(self, tmp_path):
        out = tmp_path / "g.txt"
        main(["generate", "er", str(out), "--n", "40", "--avg-degree", "10",
              "--seed", "2"])
        assert read_edge_list(out).number_of_edges() == 200

    def test_deterministic_seed(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", "twitter", str(a), "--n", "40", "--seed", "9"])
        main(["generate", "twitter", str(b), "--n", "40", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestEstimate:
    @pytest.mark.parametrize(
        "query", ["reliability", "distance", "pagerank", "clustering",
                  "connectivity"],
    )
    def test_queries(self, query, graph_file, capsys):
        code = main([
            "estimate", str(graph_file), "--query", query,
            "--samples", "30", "--pairs", "10",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "scalar estimate:" in output
        assert "CI width" in output

    def test_reliability_on_deterministic_path(self, tmp_path, capsys):
        path = tmp_path / "p.txt"
        path.write_text("a b 1.0\nb c 1.0\n")
        main(["estimate", str(path), "--query", "reliability",
              "--samples", "20", "--pairs", "3"])
        output = capsys.readouterr().out
        assert "scalar estimate:  1.000000" in output

    def test_weighted_distance(self, graph_file, capsys):
        code = main([
            "estimate", str(graph_file), "--query", "distance", "--weighted",
            "--samples", "30", "--pairs", "10",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "distance (weighted -log p)" in output
        assert "scalar estimate:" in output

    def test_weighted_distance_on_certain_path_is_zero(self, tmp_path, capsys):
        path = tmp_path / "p.txt"
        path.write_text("a b 1.0\nb c 1.0\n")
        main(["estimate", str(path), "--query", "distance", "--weighted",
              "--samples", "20", "--pairs", "3"])
        output = capsys.readouterr().out
        assert "scalar estimate:  0.000000" in output

    def test_weighted_rejected_for_other_queries(self, graph_file, capsys):
        assert main([
            "estimate", str(graph_file), "--query", "pagerank", "--weighted",
        ]) == 1
        assert "--weighted only applies" in capsys.readouterr().err


class TestDiagnose:
    def test_diagnose_output(self, graph_file, tmp_path, capsys):
        out = tmp_path / "sparse.txt"
        main(["sparsify", str(graph_file), str(out), "--alpha", "0.4",
              "--seed", "0"])
        capsys.readouterr()
        assert main(["diagnose", str(graph_file), str(out)]) == 0
        output = capsys.readouterr().out
        assert "saturated edges" in output
        assert "entropy ratio" in output

    def test_diagnose_missing_file(self, graph_file, tmp_path, capsys):
        assert main(["diagnose", str(graph_file),
                     str(tmp_path / "none.txt")]) == 1
        assert "error:" in capsys.readouterr().err


class TestConvert:
    def test_text_to_binary_and_back(self, graph_file, tmp_path, capsys):
        from repro.datasets import is_binary_file

        binary = tmp_path / "graph.bin"
        assert main(["convert", str(graph_file), str(binary)]) == 0
        assert is_binary_file(binary)
        assert "digest" in capsys.readouterr().out

        text = tmp_path / "back.txt"
        assert main(["convert", str(binary), str(text)]) == 0
        assert "digest verified" in capsys.readouterr().out
        original = read_edge_list(graph_file)
        back = read_edge_list(text)
        assert back.number_of_edges() == original.number_of_edges()
        restored = {frozenset((int(u), int(v))): p for u, v, p in back.edges()}
        assert restored == {frozenset((int(u), int(v))): p
                            for u, v, p in original.edges()}

    def test_same_format_rejected(self, graph_file, tmp_path, capsys):
        code = main(["convert", str(graph_file), str(tmp_path / "o.txt"),
                     "--to", "text"])
        assert code != 0
        assert "already" in capsys.readouterr().err

    def test_non_dense_labels_need_allow_relabel(self, tmp_path, capsys):
        source = tmp_path / "named.txt"
        source.write_text("alice bob 0.5\nbob carol 0.25\n")
        binary = tmp_path / "named.bin"
        assert main(["convert", str(source), str(binary)]) != 0
        assert "allow_relabel" in capsys.readouterr().err
        assert main(["convert", str(source), str(binary),
                     "--allow-relabel"]) == 0
        assert "relabelled" in capsys.readouterr().out


class TestGrid:
    args = ["--alphas", "0.3,0.5", "--h-values", "0.1,0.4", "--seed", "2"]

    def test_table_output(self, graph_file, capsys):
        assert main(["grid", str(graph_file)] + self.args) == 0
        out = capsys.readouterr().out
        assert "objective" in out
        assert out.count("\n") == 5  # header + 4 cells

    def test_json_matches_library(self, graph_file, tmp_path, capsys):
        import json

        from repro.core import gdb_grid, objective_rows

        out = tmp_path / "rows.json"
        assert main(["grid", str(graph_file)] + self.args +
                    ["--output", str(out)]) == 0
        rows = json.loads(out.read_text())
        expected = objective_rows(gdb_grid(
            read_edge_list(graph_file), [0.3, 0.5], [0.1, 0.4],
            rng=2, build_graphs=False,
        ))
        assert rows == expected

    def test_workers_bit_identical_from_binary(self, graph_file, tmp_path,
                                               capsys):
        binary = tmp_path / "graph.bin"
        assert main(["convert", str(graph_file), str(binary)]) == 0
        outputs = []
        for workers in (1, 2):
            out = tmp_path / f"rows{workers}.json"
            assert main(["grid", str(binary)] + self.args +
                        ["--workers", str(workers), "--output", str(out)]) == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]

    def test_bad_h_values_rejected(self, graph_file, capsys):
        code = main(["grid", str(graph_file), "--alphas", "0.3",
                     "--h-values", "nope"])
        assert code != 0
        assert "--h-values" in capsys.readouterr().err


class TestBinaryInputs:
    @pytest.fixture
    def binary_file(self, graph_file, tmp_path):
        path = tmp_path / "graph.bin"
        assert main(["convert", str(graph_file), str(path)]) == 0
        return path

    def test_sparsify_gdb_from_binary(self, binary_file, tmp_path, capsys):
        out = tmp_path / "sparse.txt"
        code = main(["sparsify", str(binary_file), str(out),
                     "--alpha", "0.4", "--variant", "GDB^A", "--seed", "0"])
        assert code == 0
        assert out.exists()

    def test_sparsify_ni_rejected_on_binary(self, binary_file, tmp_path,
                                            capsys):
        code = main(["sparsify", str(binary_file), str(tmp_path / "o.txt"),
                     "--alpha", "0.4", "--variant", "NI", "--seed", "0"])
        assert code != 0

    def test_estimate_from_binary(self, binary_file, capsys):
        code = main(["estimate", str(binary_file), "--query", "connectivity",
                     "--samples", "20", "--seed", "1"])
        assert code == 0
        assert capsys.readouterr().out
