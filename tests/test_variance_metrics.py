"""Variance comparison protocol (Fig. 12's metric)."""

import pytest

from repro.core import UncertainGraph, sparsify
from repro.metrics import VarianceComparison, relative_variance
from repro.queries import DegreeQuery, ReliabilityQuery
from repro.queries.shortest_path import sample_vertex_pairs


class TestVarianceComparison:
    def test_relative_ratio(self):
        c = VarianceComparison(variance_original=4.0, variance_sparsified=1.0)
        assert c.relative == pytest.approx(0.25)
        assert c.sample_ratio == pytest.approx(0.25)

    def test_zero_original_variance(self):
        assert VarianceComparison(0.0, 1.0).relative == float("inf")
        assert VarianceComparison(0.0, 0.0).relative == 1.0


def test_protocol_runs_and_is_finite(small_power_law):
    sparsified = sparsify(small_power_law, 0.3, variant="GDB^A-t", rng=0)
    query = DegreeQuery(small_power_law.number_of_vertices())
    comparison = relative_variance(
        small_power_law, sparsified, query, runs=6, n_samples=30, rng=0
    )
    assert comparison.variance_original >= 0.0
    assert comparison.variance_sparsified >= 0.0


def test_gdb_reduces_reliability_variance(small_power_law):
    """The paper's core systems claim on a small instance: GDB's
    redistribution (many p = 1 edges) shrinks the RL estimator variance."""
    sparsified = sparsify(small_power_law, 0.2, variant="GDB^A-t", rng=0)
    pairs = sample_vertex_pairs(small_power_law, 15, rng=1)
    query = ReliabilityQuery(pairs)
    comparison = relative_variance(
        small_power_law, sparsified, query, runs=10, n_samples=50, rng=2
    )
    assert comparison.relative < 1.0
