"""Stratified estimator: unbiasedness and variance reduction."""

import numpy as np
import pytest

from repro.core import UncertainGraph
from repro.exceptions import EstimationError
from repro.queries import DegreeQuery, ReliabilityQuery
from repro.sampling import StratifiedEstimator, exact_reliability
from repro.sampling.monte_carlo import repeated_estimates, unbiased_variance
from repro.utils.rng import spawn_rngs


@pytest.fixture
def diamond():
    return UncertainGraph(
        [(0, 1, 0.5), (1, 3, 0.5), (0, 2, 0.5), (2, 3, 0.5), (0, 3, 0.2)]
    )


def test_invalid_r(triangle):
    with pytest.raises(EstimationError):
        StratifiedEstimator(triangle, n_samples=100, r=-1)
    with pytest.raises(EstimationError):
        StratifiedEstimator(triangle, n_samples=100, r=13)


def test_budget_must_cover_strata(triangle):
    with pytest.raises(EstimationError):
        StratifiedEstimator(triangle, n_samples=3, r=2)


def test_conditions_highest_entropy_edges(diamond):
    est = StratifiedEstimator(diamond, n_samples=64, r=2)
    probs = est.sampler.probabilities[est.conditioned]
    # The 0.5 edges have maximal entropy; the 0.2 edge must not be chosen.
    assert np.all(np.abs(probs - 0.5) < 1e-9)


def test_r_zero_reduces_to_plain_mc(diamond):
    est = StratifiedEstimator(diamond, n_samples=200, r=0)
    value = est.run(ReliabilityQuery([(0, 3)]), rng=0)
    assert 0.0 <= value <= 1.0


def test_estimate_close_to_exact(diamond):
    exact = exact_reliability(diamond, 0, 3)
    est = StratifiedEstimator(diamond, n_samples=2000, r=3)
    value = est.run(ReliabilityQuery([(0, 3)]), rng=0)
    assert value == pytest.approx(exact, abs=0.05)


def test_variance_not_worse_than_plain_mc(diamond):
    """Stratification should not increase estimator variance."""
    query = DegreeQuery(4)
    plain = unbiased_variance(
        repeated_estimates(diamond, query, runs=30, n_samples=64, rng=5)
    )
    stratified_estimates = [
        StratifiedEstimator(diamond, n_samples=64, r=3).run(query, rng=g)
        for g in spawn_rngs(5, 30)
    ]
    stratified = unbiased_variance(np.array(stratified_estimates))
    assert stratified <= plain * 1.5  # generous: both are noisy at this budget
