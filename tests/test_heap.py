"""Max-heaps: eager indexed and lazy deferred-update variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heap import IndexedMaxHeap, LazyMaxHeap


def test_empty_heap_is_falsy():
    heap = IndexedMaxHeap()
    assert not heap
    assert len(heap) == 0


def test_peek_and_pop_return_maximum():
    heap = IndexedMaxHeap({"a": 1.0, "b": 5.0, "c": 3.0})
    assert heap.peek() == ("b", 5.0)
    assert heap.pop() == ("b", 5.0)
    assert heap.pop() == ("c", 3.0)
    assert heap.pop() == ("a", 1.0)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        IndexedMaxHeap().pop()


def test_peek_empty_raises():
    with pytest.raises(IndexError):
        IndexedMaxHeap().peek()


def test_push_duplicate_raises():
    heap = IndexedMaxHeap({"x": 1.0})
    with pytest.raises(ValueError):
        heap.push("x", 2.0)


def test_bulk_build_rejects_duplicates():
    # dict keys are unique, so exercise push-after-build duplication
    heap = IndexedMaxHeap({1: 1.0, 2: 2.0})
    with pytest.raises(ValueError):
        heap.push(2, 3.0)


def test_update_increases_priority():
    heap = IndexedMaxHeap({"a": 1.0, "b": 2.0})
    heap.update("a", 10.0)
    assert heap.peek() == ("a", 10.0)


def test_update_decreases_priority():
    heap = IndexedMaxHeap({"a": 5.0, "b": 2.0})
    heap.update("a", 0.5)
    assert heap.peek() == ("b", 2.0)


def test_update_missing_item_pushes():
    heap = IndexedMaxHeap({"a": 1.0})
    heap.update("z", 9.0)
    assert heap.peek() == ("z", 9.0)


def test_remove_arbitrary_item():
    heap = IndexedMaxHeap({"a": 1.0, "b": 2.0, "c": 3.0})
    assert heap.remove("b") == 2.0
    assert "b" not in heap
    assert heap.pop() == ("c", 3.0)
    assert heap.pop() == ("a", 1.0)


def test_remove_missing_raises_keyerror():
    with pytest.raises(KeyError):
        IndexedMaxHeap({"a": 1.0}).remove("b")


def test_priority_lookup():
    heap = IndexedMaxHeap({"a": 1.5})
    assert heap.priority("a") == 1.5


def test_contains_and_iter():
    heap = IndexedMaxHeap({"a": 1.0, "b": 2.0})
    assert "a" in heap and "b" in heap and "c" not in heap
    assert sorted(heap) == ["a", "b"]


def test_heapsort_agrees_with_sorted():
    values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0]
    heap = IndexedMaxHeap({i: v for i, v in enumerate(values)})
    drained = [heap.pop()[1] for _ in range(len(values))]
    assert drained == sorted(values, reverse=True)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=80))
def test_property_pop_order_is_descending(priorities):
    heap = IndexedMaxHeap({i: p for i, p in enumerate(priorities)})
    heap.validate()
    drained = [heap.pop()[1] for _ in range(len(priorities))]
    assert drained == sorted(priorities, reverse=True)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.floats(min_value=-100, max_value=100)),
        min_size=1,
        max_size=120,
    )
)
def test_property_interleaved_updates_keep_invariant(operations):
    heap = IndexedMaxHeap()
    reference: dict[int, float] = {}
    for item, priority in operations:
        heap.update(item, priority)
        reference[item] = priority
        heap.validate()
    drained = {}
    while heap:
        item, priority = heap.pop()
        drained[item] = priority
    assert drained == reference


def test_random_stress_against_reference(rng=np.random.default_rng(7)):
    heap = IndexedMaxHeap()
    reference: dict[int, float] = {}
    for _ in range(500):
        op = rng.integers(0, 3)
        if op == 0 or not reference:
            item = int(rng.integers(0, 50))
            priority = float(rng.normal())
            heap.update(item, priority)
            reference[item] = priority
        elif op == 1:
            item, priority = heap.pop()
            assert priority == max(reference.values())
            del reference[item]
        else:
            item = list(reference)[int(rng.integers(0, len(reference)))]
            priority = float(rng.normal())
            heap.update(item, priority)
            reference[item] = priority
        heap.validate()


# ----------------------------------------------------------------------
# LazyMaxHeap: live-array view, deferred updates, magnitude ordering
# ----------------------------------------------------------------------
def _assert_peek_is_argmax(heap, values):
    top = heap.peek()
    assert abs(float(values[top])) == float(np.abs(values).max())


def test_lazy_peek_returns_max_magnitude():
    values = np.array([1.0, -5.0, 3.0, 4.5])
    heap = LazyMaxHeap(values)
    assert len(heap) == 4
    assert heap.peek() == 1  # |-5| dominates
    heap.validate()


def test_lazy_sees_inplace_mutations_after_defer():
    values = np.array([1.0, 2.0, 3.0])
    heap = LazyMaxHeap(values)
    values[0] = -10.0  # mutate the live view, then announce it
    heap.defer(0)
    assert heap.peek() == 0
    heap.validate()


def test_lazy_decrease_repairs_without_defer():
    """Decreases leave stale upper bounds; peek lazily repairs them."""
    values = np.array([9.0, 2.0, 8.0])
    heap = LazyMaxHeap(values)
    values[0] = 0.5
    # No defer needed: bounds only ever overestimate, so peek re-checks.
    assert heap.peek() == 2
    heap.validate()


def test_lazy_bulk_defer_takes_vector_path():
    rng = np.random.default_rng(3)
    values = rng.normal(size=200)
    heap = LazyMaxHeap(values)
    values[:100] = rng.normal(size=100) * 10
    heap.defer(*range(100))  # > 32 pending: vectorised flush
    _assert_peek_is_argmax(heap, values)
    heap.validate()


def test_lazy_duplicate_defers_are_harmless():
    values = np.array([1.0, 2.0])
    heap = LazyMaxHeap(values)
    values[1] = 7.0
    heap.defer(1, 1, 1)
    assert heap.peek() == 1
    heap.validate()


@settings(max_examples=40, deadline=None)
@given(
    initial=st.lists(
        st.floats(min_value=-100, max_value=100), min_size=1, max_size=40
    ),
    mutations=st.lists(
        st.tuples(st.integers(0, 39), st.floats(min_value=-100, max_value=100)),
        max_size=60,
    ),
)
def test_property_lazy_peek_tracks_reference(initial, mutations):
    values = np.array(initial, dtype=np.float64)
    heap = LazyMaxHeap(values)
    _assert_peek_is_argmax(heap, values)
    for item, new_value in mutations:
        item %= len(values)
        values[item] = new_value
        heap.defer(item)
        _assert_peek_is_argmax(heap, values)
        heap.validate()


def test_lazy_stress_against_reference():
    rng = np.random.default_rng(11)
    values = rng.normal(size=60)
    heap = LazyMaxHeap(values)
    for _ in range(400):
        batch = rng.integers(0, 60, size=int(rng.integers(1, 50)))
        values[batch] = rng.normal(size=len(batch)) * rng.uniform(0.1, 10)
        heap.defer(*batch.tolist())
        _assert_peek_is_argmax(heap, values)
    heap.validate()
