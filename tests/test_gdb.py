"""GDB (Algorithm 2): convergence, clamping, entropy guard, variants."""

import numpy as np
import pytest

from repro.core import (
    GDBConfig,
    SparsificationState,
    UncertainGraph,
    d1_objective,
    gdb,
    gdb_refine,
    graph_entropy,
)
from repro.core.backbone import bgi_backbone, target_edge_count
from repro.metrics import degree_discrepancy_mae


class TestConfig:
    @pytest.mark.parametrize("h", [-0.1, 1.5])
    def test_invalid_h(self, h):
        with pytest.raises(ValueError):
            GDBConfig(h=h)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            GDBConfig(tau=-1)

    def test_invalid_sweeps(self):
        with pytest.raises(ValueError):
            GDBConfig(max_sweeps=0)


class TestInterface:
    def test_requires_exactly_one_of_alpha_backbone(self, small_power_law):
        with pytest.raises(ValueError):
            gdb(small_power_law)
        with pytest.raises(ValueError):
            gdb(small_power_law, alpha=0.5, backbone_ids=[0, 1])

    def test_budget_respected(self, small_power_law):
        sparsified = gdb(small_power_law, alpha=0.5, rng=0)
        assert sparsified.number_of_edges() == target_edge_count(
            small_power_law.number_of_edges(), 0.5
        )

    def test_vertex_set_preserved(self, small_power_law):
        sparsified = gdb(small_power_law, alpha=0.5, rng=0)
        assert set(sparsified.vertices()) == set(small_power_law.vertices())

    def test_edges_subset_of_original(self, small_power_law):
        sparsified = gdb(small_power_law, alpha=0.5, rng=0)
        for u, v, _ in sparsified.edges():
            assert small_power_law.has_edge(u, v)

    def test_probabilities_in_unit_interval(self, small_power_law):
        sparsified = gdb(small_power_law, alpha=0.5, rng=0)
        probs = np.array(sparsified.probability_array())
        assert np.all(probs > 0.0)
        assert np.all(probs <= 1.0)

    def test_name_label(self, small_power_law):
        assert gdb(small_power_law, alpha=0.5, rng=0, name="xyz").name == "xyz"


class TestOptimisation:
    def test_improves_backbone_objective(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.4, rng=1)
        edge_list = small_power_law.edge_list()
        probs = small_power_law.probability_array()
        raw = small_power_law.subgraph_with_edges(
            (edge_list[e][0], edge_list[e][1], float(probs[e])) for e in ids
        )
        refined = gdb(small_power_law, backbone_ids=ids)
        assert d1_objective(small_power_law, refined) < d1_objective(
            small_power_law, raw
        )

    def test_gdb_refine_monotone_objective(self, small_power_law):
        state = SparsificationState(small_power_law)
        for eid in bgi_backbone(small_power_law, 0.4, rng=1):
            state.select_edge(eid)
        objectives = [state.d1()]
        config = GDBConfig(max_sweeps=1, tau=0.0)
        for _ in range(10):
            gdb_refine(state, config)
            objectives.append(state.d1())
        assert all(b <= a + 1e-9 for a, b in zip(objectives, objectives[1:]))

    def test_h_one_beats_h_zero_on_degree_mae(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.3, rng=1)
        loose = gdb(small_power_law, backbone_ids=list(ids), config=GDBConfig(h=1.0))
        frozen = gdb(small_power_law, backbone_ids=list(ids), config=GDBConfig(h=0.0))
        assert degree_discrepancy_mae(small_power_law, loose) <= (
            degree_discrepancy_mae(small_power_law, frozen)
        )

    def test_h_zero_keeps_entropy_lowest(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.3, rng=1)
        loose = gdb(small_power_law, backbone_ids=list(ids), config=GDBConfig(h=1.0))
        frozen = gdb(small_power_law, backbone_ids=list(ids), config=GDBConfig(h=0.0))
        assert graph_entropy(frozen) <= graph_entropy(loose)

    def test_large_alpha_recovers_degrees_exactly(self, small_power_law):
        sparsified = gdb(
            small_power_law, alpha=0.8, rng=0, config=GDBConfig(h=1.0)
        )
        assert degree_discrepancy_mae(small_power_law, sparsified) < 1e-3

    def test_entropy_reduced_versus_original(self, small_power_law):
        sparsified = gdb(small_power_law, alpha=0.3, rng=0)
        assert graph_entropy(sparsified) < graph_entropy(small_power_law)


class TestVariants:
    def test_relative_variant_runs(self, small_power_law):
        sparsified = gdb(
            small_power_law, alpha=0.4, rng=0, config=GDBConfig(relative=True)
        )
        assert degree_discrepancy_mae(
            small_power_law, sparsified, relative=True
        ) < 0.5

    def test_k2_variant_runs(self, small_power_law):
        sparsified = gdb(small_power_law, alpha=0.4, rng=0, config=GDBConfig(k=2))
        assert degree_discrepancy_mae(small_power_law, sparsified) < 0.5

    def test_kn_saturates_probabilities_at_small_alpha(self, small_power_law):
        """Eq. 16 pushes the full residual onto every edge: expect p = 1."""
        sparsified = gdb(
            small_power_law, alpha=0.1, rng=0, config=GDBConfig(k="n", h=1.0),
            backbone_method="random",
        )
        probs = np.array(sparsified.probability_array())
        # Most edges saturate at 1; the residual may drive a few to 0
        # once the missing mass is fully absorbed.
        assert np.mean(probs > 0.99) > 0.75

    def test_worked_example_figure2(self):
        """GDB on the paper's Fig. 2(a) backbone improves D1 and entropy.

        The paper reports D1: 0.56 -> 0.36 and entropy 3.85 -> 2.60 with
        h = 1 (the exact outcome depends on the sweep order; we check
        the direction and magnitudes).
        """
        g = UncertainGraph(
            [("u1", "u2", 0.4), ("u2", "u3", 0.2), ("u3", "u4", 0.4),
             ("u4", "u1", 0.2), ("u1", "u3", 0.1)]
        )
        # Backbone: the three edges incident to u4-side of the figure.
        backbone_edges = [("u4", "u1"), ("u2", "u3"), ("u3", "u4")]
        edge_list = g.edge_list()
        ids = [edge_list.index(e) if e in edge_list else
               edge_list.index((e[1], e[0])) for e in backbone_edges]
        out = gdb(g, backbone_ids=ids, config=GDBConfig(h=1.0))
        assert d1_objective(g, out) < d1_objective(
            g, g.subgraph_with_edges(
                (u, v, g.probability(u, v)) for u, v in backbone_edges
            )
        )
        assert graph_entropy(out) < graph_entropy(g)
