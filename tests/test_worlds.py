"""Possible worlds: CSR construction, BFS, connectivity, clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph
from repro.datasets import flickr_like
from repro.sampling import World, WorldSampler


def full_world(graph):
    sampler = WorldSampler(graph)
    return sampler.world_from_mask(np.ones(sampler.m, dtype=bool))


class TestWorldStructure:
    def test_full_world_edge_count(self, triangle):
        world = full_world(triangle)
        assert world.number_of_edges() == 3

    def test_empty_world(self, triangle):
        sampler = WorldSampler(triangle)
        world = sampler.world_from_mask(np.zeros(3, dtype=bool))
        assert world.number_of_edges() == 0
        assert np.all(world.degrees() == 0)

    def test_degrees_match_adjacency(self, small_power_law):
        world = full_world(small_power_law)
        indexer = small_power_law.vertex_indexer()
        for vertex, idx in indexer.items():
            assert world.degrees()[idx] == small_power_law.degree(vertex)

    def test_neighbors_symmetric(self, path4):
        world = full_world(path4)
        assert 1 in world.neighbors(0)
        assert 0 in world.neighbors(1)

    def test_mask_shape_validated(self, triangle):
        sampler = WorldSampler(triangle)
        with pytest.raises(ValueError):
            sampler.world_from_mask(np.ones(5, dtype=bool))


class TestTraversal:
    def test_bfs_distances_on_path(self, path4):
        world = full_world(path4)
        dist = world.bfs_distances(0)
        assert list(dist) == [0, 1, 2, 3]

    def test_bfs_unreachable_is_minus_one(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        world = full_world(g)
        dist = world.bfs_distances(0)
        assert dist[1] == 1 and dist[2] == -1 and dist[3] == -1

    def test_bfs_matches_networkx(self):
        import networkx as nx

        g = flickr_like(n=50, avg_degree=8, seed=4)
        world = full_world(g)
        nx_graph = nx.Graph(list((u, v) for u, v, _ in g.edges()))
        indexer = g.vertex_indexer()
        source_vertex = g.vertices()[0]
        expected = nx.single_source_shortest_path_length(nx_graph, source_vertex)
        dist = world.bfs_distances(indexer[source_vertex])
        for vertex, d in expected.items():
            assert dist[indexer[vertex]] == d

    def test_reachable_from(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        world = full_world(g)
        reach = world.reachable_from(0)
        assert list(reach) == [True, True, False, False]

    def test_connectivity(self, path4):
        assert full_world(path4).is_connected()

    def test_component_count(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)], vertices=[4])
        world = full_world(g)
        assert not world.is_connected()
        assert world.connected_component_count() == 3

    def test_single_vertex_world_connected(self):
        g = UncertainGraph(vertices=[0])
        sampler = WorldSampler(g)
        assert sampler.world_from_mask(np.zeros(0, dtype=bool)).is_connected()


class TestClustering:
    def test_triangle_coefficients_are_one(self, triangle):
        world = full_world(triangle)
        assert np.allclose(world.clustering_coefficients(), 1.0)

    def test_path_coefficients_are_zero(self, path4):
        world = full_world(path4)
        assert np.allclose(world.clustering_coefficients(), 0.0)

    def test_matches_networkx(self):
        import networkx as nx

        g = flickr_like(n=40, avg_degree=10, seed=9)
        world = full_world(g)
        nx_graph = nx.Graph(list((u, v) for u, v, _ in g.edges()))
        nx_graph.add_nodes_from(g.vertices())
        expected = nx.clustering(nx_graph)
        coefficients = world.clustering_coefficients()
        indexer = g.vertex_indexer()
        for vertex, cc in expected.items():
            assert coefficients[indexer[vertex]] == pytest.approx(cc)


class TestSampler:
    def test_deterministic_edges_always_present(self):
        g = UncertainGraph([(0, 1, 1.0), (1, 2, 0.5)])
        sampler = WorldSampler(g)
        rng = np.random.default_rng(0)
        for _ in range(20):
            mask = sampler.sample_mask(rng)
            assert mask[0]  # p = 1 edge must exist in every world

    def test_sampling_frequency_matches_probability(self, small_power_law):
        sampler = WorldSampler(small_power_law)
        rng = np.random.default_rng(1)
        counts = np.zeros(sampler.m)
        trials = 400
        for _ in range(trials):
            counts += sampler.sample_mask(rng)
        freq = counts / trials
        # 4-sigma tolerance per edge
        sigma = np.sqrt(sampler.probabilities * (1 - sampler.probabilities) / trials)
        assert np.all(np.abs(freq - sampler.probabilities) < 4 * sigma + 0.02)

    def test_sample_many_count(self, triangle):
        sampler = WorldSampler(triangle)
        worlds = list(sampler.sample_many(7, rng=0))
        assert len(worlds) == 7

    def test_log_world_probability(self):
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.25), (0, 2, 0.8)])
        sampler = WorldSampler(g)
        mask = np.array([True, False, True])
        p = sampler.probabilities
        expected = np.log(p[0]) + np.log(1 - p[1]) + np.log(p[2])
        assert sampler.log_world_probability(mask) == pytest.approx(expected)

    def test_log_world_probability_impossible_world(self, triangle):
        """Dropping a p = 1 edge yields log-probability -inf."""
        sampler = WorldSampler(triangle)
        probs = sampler.probabilities
        mask = probs < 1.0  # drop exactly the deterministic edge(s)
        assert sampler.log_world_probability(mask) == float("-inf")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_world_edges_subset_and_counts(seed):
    g = flickr_like(n=25, avg_degree=6, seed=seed % 3)
    sampler = WorldSampler(g)
    world = sampler.sample(rng=seed)
    degrees = world.degrees()
    assert degrees.sum() == 2 * world.number_of_edges()
    assert world.number_of_edges() <= g.number_of_edges()
