"""Entropy: edge entropy, graph entropy, the paper's worked values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph, edge_entropy, graph_entropy, relative_entropy
from repro.core.entropy import entropy_array, entropy_increases


def test_deterministic_edges_have_zero_entropy():
    assert edge_entropy(1.0) == 0.0
    assert edge_entropy(0.0) == 0.0


def test_maximum_at_half():
    assert edge_entropy(0.5) == pytest.approx(1.0)


def test_symmetry():
    assert edge_entropy(0.3) == pytest.approx(edge_entropy(0.7))


def test_known_value():
    # H2(0.3) = 0.88129...
    assert edge_entropy(0.3) == pytest.approx(0.881290899, abs=1e-8)


def test_paper_figure2_entropy():
    """The paper reports H = 3.85 for edges {0.4, 0.2, 0.4, 0.2, 0.1}."""
    g = UncertainGraph(
        [(0, 1, 0.4), (1, 2, 0.2), (2, 3, 0.4), (3, 0, 0.2), (0, 2, 0.1)]
    )
    assert graph_entropy(g) == pytest.approx(3.85, abs=0.01)


def test_entropy_array_matches_scalar():
    probs = np.array([0.1, 0.5, 0.99, 1.0])
    arr = entropy_array(probs)
    for p, h in zip(probs, arr):
        assert h == pytest.approx(edge_entropy(float(p)))


def test_graph_entropy_additive(triangle):
    expected = sum(edge_entropy(p) for _, _, p in triangle.edges())
    assert graph_entropy(triangle) == pytest.approx(expected)


def test_relative_entropy_of_subgraph_below_one(small_power_law):
    edges = list(small_power_law.edges())[: small_power_law.number_of_edges() // 2]
    sub = small_power_law.subgraph_with_edges(edges)
    assert 0.0 < relative_entropy(sub, small_power_law) < 1.0


def test_relative_entropy_zero_entropy_original():
    g = UncertainGraph([(0, 1, 1.0)])
    sub = g.subgraph_with_edges([(0, 1, 1.0)])
    assert relative_entropy(sub, g) == 0.0


def test_relative_entropy_identity(small_power_law):
    assert relative_entropy(small_power_law, small_power_law) == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=1e-9, max_value=1 - 1e-9))
def test_property_entropy_in_unit_interval(p):
    h = edge_entropy(p)
    assert 0.0 <= h <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=1e-6, max_value=0.5 - 1e-6))
def test_property_entropy_monotone_below_half(p):
    assert edge_entropy(p) < edge_entropy(p + 1e-6)


class TestEntropyIncreasesClosedForm:
    """The |p - 0.5| monotonicity test is exactly the entropy comparison.

    This pins the closed form the sweep engines use in place of two
    ``edge_entropy`` calls per step: ``H(p') > H(p) <=> |p' - 0.5| <
    |p - 0.5|``.  The grid is dyadic (k / 128) so every value, every
    mirror ``1 - p``, and every ``p - 0.5`` is an exact double — the
    float comparisons then realise the mathematical predicate exactly,
    mirror-pair ties included.
    """

    GRID = np.arange(129) / 128.0

    def test_full_grid_equivalence(self):
        grid = self.GRID
        for a in grid:
            ha = edge_entropy(float(a))
            for b in grid:
                expected = edge_entropy(float(b)) > ha
                assert bool(entropy_increases(a, b)) == expected, (a, b)

    def test_vectorised_over_pairs(self):
        grid = self.GRID
        current, proposed = np.meshgrid(grid, grid)
        got = entropy_increases(current.ravel(), proposed.ravel())
        want = np.array(
            [
                edge_entropy(float(p)) > edge_entropy(float(c))
                for c, p in zip(current.ravel(), proposed.ravel())
            ]
        )
        assert np.array_equal(got, want)

    def test_mirror_pairs_are_ties(self):
        for p in self.GRID:
            assert not entropy_increases(p, 1.0 - p)
            assert not entropy_increases(1.0 - p, p)

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_random_pairs(self, current, proposed):
        # Away from exact |.|-ties the closed form must agree with the
        # log-based comparison; at float-level near-ties the log path
        # itself rounds, so only the closed form is authoritative there.
        gap = abs(abs(current - 0.5) - abs(proposed - 0.5))
        if gap > 1e-12:
            assert bool(entropy_increases(current, proposed)) == (
                edge_entropy(proposed) > edge_entropy(current)
            )
