"""EMD (Algorithm 3): budget invariants, swap behaviour, quality."""

import numpy as np
import pytest

from repro.core import EMDConfig, GDBConfig, emd, gdb, graph_entropy
from repro.core.backbone import bgi_backbone, random_backbone, target_edge_count
from repro.metrics import degree_discrepancy_mae


class TestConfig:
    @pytest.mark.parametrize("h", [-0.01, 1.01])
    def test_invalid_h(self, h):
        with pytest.raises(ValueError):
            EMDConfig(h=h)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            EMDConfig(max_iterations=0)


class TestInterface:
    def test_requires_exactly_one_of_alpha_backbone(self, small_power_law):
        with pytest.raises(ValueError):
            emd(small_power_law)
        with pytest.raises(ValueError):
            emd(small_power_law, alpha=0.5, backbone_ids=[0])

    def test_budget_respected(self, small_power_law):
        sparsified = emd(small_power_law, alpha=0.4, rng=0)
        assert sparsified.number_of_edges() == target_edge_count(
            small_power_law.number_of_edges(), 0.4
        )

    def test_vertex_set_preserved(self, small_power_law):
        sparsified = emd(small_power_law, alpha=0.4, rng=0)
        assert set(sparsified.vertices()) == set(small_power_law.vertices())

    def test_edges_subset_of_original(self, small_power_law):
        sparsified = emd(small_power_law, alpha=0.4, rng=0)
        for u, v, _ in sparsified.edges():
            assert small_power_law.has_edge(u, v)

    def test_probabilities_valid(self, small_power_law):
        probs = np.array(emd(small_power_law, alpha=0.4, rng=0).probability_array())
        assert np.all(probs > 0.0) and np.all(probs <= 1.0)


class TestQuality:
    def test_beats_gdb_on_random_backbone(self, small_power_law):
        """Restructuring must pay off when the backbone is random (6.1)."""
        ids = random_backbone(small_power_law, 0.25, rng=3)
        via_emd = emd(small_power_law, backbone_ids=list(ids))
        via_gdb = gdb(small_power_law, backbone_ids=list(ids))
        assert degree_discrepancy_mae(small_power_law, via_emd) <= (
            degree_discrepancy_mae(small_power_law, via_gdb) + 1e-9
        )

    def test_swaps_edges_relative_to_backbone(self, small_power_law):
        """E-phase must actually restructure a random backbone."""
        ids = random_backbone(small_power_law, 0.25, rng=3)
        sparsified = emd(small_power_law, backbone_ids=list(ids))
        edge_list = small_power_law.edge_list()
        backbone_edges = {frozenset(edge_list[e]) for e in ids}
        kept = {frozenset((u, v)) for u, v, _ in sparsified.edges()}
        assert kept != backbone_edges

    def test_reduces_entropy(self, small_power_law):
        sparsified = emd(small_power_law, alpha=0.3, rng=0)
        assert graph_entropy(sparsified) < graph_entropy(small_power_law)

    def test_large_alpha_near_exact_degrees(self, small_power_law):
        sparsified = emd(small_power_law, alpha=0.8, rng=0)
        assert degree_discrepancy_mae(small_power_law, sparsified) < 1e-2

    def test_relative_variant(self, small_power_law):
        sparsified = emd(
            small_power_law, alpha=0.4, rng=0, config=EMDConfig(relative=True)
        )
        assert degree_discrepancy_mae(
            small_power_law, sparsified, relative=True
        ) < 0.3

    def test_bgi_backbone_stays_connected_after_emd(self, small_power_law):
        # EMD may swap tree edges, so strict connectivity is not
        # guaranteed — but the graph should remain nearly connected.
        ids = bgi_backbone(small_power_law, 0.4, rng=0)
        sparsified = emd(small_power_law, backbone_ids=list(ids))
        components = sparsified.connected_components()
        assert max(len(c) for c in components) >= (
            0.9 * small_power_law.number_of_vertices()
        )

    def test_deterministic_given_backbone(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.3, rng=7)
        a = emd(small_power_law, backbone_ids=list(ids))
        b = emd(small_power_law, backbone_ids=list(ids))
        assert a.isomorphic_probabilities(b)


class TestEngines:
    """Vector EMD = vectorised E-phase scan + fused M-phase.

    The candidate scan preserves the loop's candidate order and strict
    tie-breaking, and the fused M-phase is bit-identical to the loop's,
    so the two engines must agree swap for swap: same edge set, same
    probabilities (exact), for every config variant and backbone.
    """

    @pytest.mark.parametrize("relative", [False, True])
    @pytest.mark.parametrize("backbone_fn", [bgi_backbone, random_backbone])
    def test_engines_bit_identical(self, small_power_law, small_sparse,
                                   relative, backbone_fn):
        for graph in (small_power_law, small_sparse):
            ids = backbone_fn(graph, 0.3, rng=11)
            config = EMDConfig(relative=relative)
            loop = emd(graph, backbone_ids=list(ids), config=config,
                       engine="loop")
            vector = emd(graph, backbone_ids=list(ids), config=config,
                         engine="vector")
            assert {frozenset(e[:2]) for e in loop.edges()} == (
                {frozenset(e[:2]) for e in vector.edges()}
            )
            assert loop.isomorphic_probabilities(vector, tol=0.0)

    def test_engines_same_objective(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.4, rng=2)
        loop = emd(small_power_law, backbone_ids=list(ids), engine="loop")
        vector = emd(small_power_law, backbone_ids=list(ids), engine="vector")
        assert degree_discrepancy_mae(small_power_law, vector) == (
            pytest.approx(degree_discrepancy_mae(small_power_law, loop),
                          rel=1e-12, abs=1e-15)
        )

    def test_vector_is_default(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.3, rng=5)
        default = emd(small_power_law, backbone_ids=list(ids))
        explicit = emd(small_power_law, backbone_ids=list(ids), engine="vector")
        assert default.isomorphic_probabilities(explicit, tol=0.0)

    def test_invalid_engine_rejected(self, small_power_law):
        with pytest.raises(ValueError):
            emd(small_power_law, alpha=0.3, rng=0, engine="turbo")

    def test_fused_not_a_public_engine(self, small_power_law):
        # "fused" is the gdb_refine-internal M-phase path only.
        with pytest.raises(ValueError):
            emd(small_power_law, alpha=0.3, rng=0, engine="fused")
