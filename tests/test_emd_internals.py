"""EMD internals: insertion probability (Eq. 9) and gain (Eq. 10)."""

import numpy as np
import pytest

from repro.core import SparsificationState, UncertainGraph
from repro.core.emd_sparsifier import _best_probability, _gain


@pytest.fixture
def state():
    g = UncertainGraph(
        [(0, 1, 0.4), (1, 2, 0.2), (2, 3, 0.4), (3, 0, 0.2), (0, 2, 0.1)]
    )
    return SparsificationState(g)


def test_gain_formula_by_hand(state):
    """g = du^2 - (du - w)^2 + dv^2 - (dv - w)^2 at the current deltas."""
    eid = 0
    u, v = state.endpoints(eid)
    du, dv = float(state.delta[u]), float(state.delta[v])
    w = 0.3
    expected = du**2 - (du - w) ** 2 + dv**2 - (dv - w) ** 2
    assert _gain(state, eid, w) == pytest.approx(expected)


def test_gain_zero_probability_is_zero(state):
    assert _gain(state, 0, 0.0) == 0.0


def test_gain_positive_when_demand_exists(state):
    # All edges absent: every endpoint has positive delta, so inserting
    # any edge at a moderate probability improves D1.
    assert _gain(state, 0, 0.2) > 0.0


def test_gain_negative_when_oversatisfied(state):
    # Saturate vertex 0's edges, making its delta negative.
    for eid in range(state.m):
        u, v = state.endpoints(eid)
        if 0 in (u, v):
            state.select_edge(eid, probability=1.0)
    remaining = [e for e in range(state.m) if not state.selected[e]]
    # Pick a remaining edge and force it onto vertex 0? None touch 0 now;
    # instead deselect one and re-insert at a probability far above demand.
    eid = int(state.incident_edges(0)[0])
    state.deselect_edge(eid)
    assert _gain(state, eid, 1.0) < _gain(state, eid, 0.1)


def test_best_probability_is_clamped(state):
    for eid in range(state.m):
        w = _best_probability(state, eid, h=0.05, relative=False)
        assert 0.0 <= w <= 1.0


def test_best_probability_zero_when_no_demand(state):
    """Negative step (oversatisfied endpoints) clamps to zero."""
    for eid in range(state.m):
        state.select_edge(eid, probability=1.0)
    eid = 0
    state.deselect_edge(eid)
    u, v = state.endpoints(eid)
    # Both endpoints now carry more probability than their targets
    # (edges saturated at 1 vs original p <= 0.4), so delta < 0 and the
    # optimal insertion probability is 0.
    assert state.delta[u] < 0 and state.delta[v] < 0
    assert _best_probability(state, eid, h=1.0, relative=False) == 0.0


def test_best_probability_entropy_guard_uses_original(state):
    """An insertion landing at higher entropy than the edge's original
    probability restarts from the original with an h-scaled step."""
    eid = 0  # original p = 0.4
    original = float(state.p_original[eid])
    # Current deltas are the full expected degrees -> large step -> the
    # optimum exceeds H(0.4)'s entropy region or clamps at 1.
    full = _best_probability(state, eid, h=1.0, relative=False)
    damped = _best_probability(state, eid, h=0.0, relative=False)
    if full < 1.0:
        # With h = 0 the guard (if triggered) pins the value at the
        # original probability.
        assert damped in (pytest.approx(original), pytest.approx(full))


def test_relative_flag_changes_step(state):
    # Select one edge so deltas differ between endpoints of others.
    state.select_edge(1, probability=0.9)
    absolute = _best_probability(state, 0, h=1.0, relative=False)
    relative = _best_probability(state, 0, h=1.0, relative=True)
    # Different pi-weights -> generally different insertion probability.
    assert absolute != pytest.approx(relative) or absolute in (0.0, 1.0)
