"""Earth mover's distance (Eq. 17) vs scipy's Wasserstein distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import wasserstein_distance

from repro.metrics import earth_movers_distance, mean_earth_movers_distance


class TestScalarEMD:
    def test_identical_samples_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        assert earth_movers_distance(x, x) == 0.0

    def test_constant_shift(self):
        a = np.array([0.0, 1.0, 2.0])
        b = a + 5.0
        assert earth_movers_distance(a, b) == pytest.approx(5.0)

    def test_symmetry(self):
        a = np.array([0.0, 1.0, 4.0])
        b = np.array([2.0, 2.0, 5.0])
        assert earth_movers_distance(a, b) == pytest.approx(
            earth_movers_distance(b, a)
        )

    def test_single_point_masses(self):
        assert earth_movers_distance([0.0], [3.0]) == pytest.approx(3.0)

    def test_degenerate_identical_support(self):
        assert earth_movers_distance([2.0, 2.0], [2.0]) == 0.0

    def test_nan_entries_dropped(self):
        a = np.array([1.0, np.nan, 3.0])
        b = np.array([1.0, 3.0])
        assert earth_movers_distance(a, b) == pytest.approx(
            earth_movers_distance([1.0, 3.0], b)
        )

    def test_all_nan_gives_nan(self):
        assert np.isnan(earth_movers_distance([np.nan], [1.0]))

    def test_bernoulli_distance_is_mean_gap(self):
        """For 0/1 outcomes (RL query) D_em = |p1 - p2|."""
        a = np.array([1.0] * 7 + [0.0] * 3)
        b = np.array([1.0] * 4 + [0.0] * 6)
        assert earth_movers_distance(a, b) == pytest.approx(0.3)

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=40),
        b=st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=40),
    )
    def test_property_matches_scipy(self, a, b):
        ours = earth_movers_distance(np.array(a), np.array(b))
        scipy_value = wasserstein_distance(a, b)
        assert ours == pytest.approx(scipy_value, abs=1e-9, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=20),
        b=st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=20),
        c=st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=20),
    )
    def test_property_triangle_inequality(self, a, b, c):
        ab = earth_movers_distance(np.array(a), np.array(b))
        bc = earth_movers_distance(np.array(b), np.array(c))
        ac = earth_movers_distance(np.array(a), np.array(c))
        assert ac <= ab + bc + 1e-6


class TestMatrixEMD:
    def test_per_unit_average(self):
        a = np.array([[0.0, 0.0], [1.0, 2.0]])
        b = np.array([[0.0, 1.0], [1.0, 3.0]])
        expected = (
            earth_movers_distance(a[:, 0], b[:, 0])
            + earth_movers_distance(a[:, 1], b[:, 1])
        ) / 2
        assert mean_earth_movers_distance(a, b) == pytest.approx(expected)

    def test_all_nan_unit_skipped(self):
        a = np.array([[0.0, np.nan], [1.0, np.nan]])
        b = np.array([[0.0, 1.0], [1.0, 2.0]])
        assert mean_earth_movers_distance(a, b) == pytest.approx(
            earth_movers_distance(a[:, 0], b[:, 0])
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_earth_movers_distance(np.zeros((3, 2)), np.zeros((3, 4)))

    def test_different_sample_counts_allowed(self):
        a = np.zeros((10, 2))
        b = np.ones((5, 2))
        assert mean_earth_movers_distance(a, b) == pytest.approx(1.0)
