"""End-to-end integration tests across subsystems.

These exercise the full pipeline the paper describes: generate an
uncertain graph, sparsify it, and verify by exact enumeration or MC that
queries on the sparsified graph approximate the original — plus the
entropy/variance story that motivates the whole system.
"""

import numpy as np
import pytest

from repro import datasets, graph_entropy, sparsify
from repro.core import UncertainGraph
from repro.metrics import (
    degree_discrepancy_mae,
    mean_earth_movers_distance,
    relative_entropy,
)
from repro.queries import (
    DegreeQuery,
    PageRankQuery,
    ReliabilityQuery,
    sample_vertex_pairs,
)
from repro.sampling import (
    MonteCarloEstimator,
    exact_connectivity_probability,
    repeated_estimates,
    unbiased_variance,
)


class TestFigure1Pipeline:
    """The paper's introductory example, end to end."""

    def test_gdb_on_figure1_preserves_connectivity_order(self):
        original = datasets.figure1_graph()
        sparsified = sparsify(original, 0.5, variant="GDB^A-t", rng=1, h=1.0)
        assert sparsified.number_of_edges() == 3
        p_orig = exact_connectivity_probability(original)
        p_sparse = exact_connectivity_probability(sparsified)
        # Both small and of the same order (paper: 0.219 vs 0.216 for the
        # hand-tuned instance; GDB optimises degrees so it lands lower).
        assert 0.0 < p_sparse < 2 * p_orig

    def test_entropy_halves(self):
        original = datasets.figure1_graph()
        sparsified = sparsify(original, 0.5, variant="GDB^A-t", rng=1)
        assert graph_entropy(sparsified) < 0.75 * graph_entropy(original)


class TestDegreePreservationEndToEnd:
    def test_mc_degrees_on_sparsified_match_original(self):
        """Expected degrees estimated by MC on G' ~ analytic degrees of G."""
        graph = datasets.flickr_like(n=80, avg_degree=20, seed=3)
        sparsified = sparsify(graph, 0.4, variant="EMD^R-t", rng=3)
        estimator = MonteCarloEstimator(sparsified, n_samples=400)
        estimated = estimator.estimate(
            DegreeQuery(graph.number_of_vertices()), rng=0
        )
        analytic = graph.expected_degree_array()
        assert np.abs(estimated - analytic).mean() < 0.3

    def test_every_proposed_variant_beats_random_baseline(self):
        graph = datasets.flickr_like(n=80, avg_degree=20, seed=4)
        baseline = degree_discrepancy_mae(
            graph, sparsify(graph, 0.3, variant="RANDOM", rng=4)
        )
        for variant in ("GDB^A", "GDB^R-t", "EMD^A", "EMD^R-t", "LP-t"):
            mae = degree_discrepancy_mae(
                graph, sparsify(graph, 0.3, variant=variant, rng=4)
            )
            assert mae < baseline, variant


class TestQueryQualityEndToEnd:
    def test_pagerank_distributions_close(self):
        graph = datasets.flickr_like(n=80, avg_degree=20, seed=5)
        sparsified = sparsify(graph, 0.4, variant="EMD^R-t", rng=5)
        query = PageRankQuery(graph.number_of_vertices())
        a = MonteCarloEstimator(graph, n_samples=80).run(query, rng=1).outcomes
        b = MonteCarloEstimator(sparsified, n_samples=80).run(query, rng=2).outcomes
        random_graph = sparsify(graph, 0.4, variant="RANDOM", rng=5)
        c = MonteCarloEstimator(random_graph, n_samples=80).run(query, rng=3).outcomes
        # The proposed sparsifier's PR distributions are closer to the
        # original's than the naive baseline's.
        assert mean_earth_movers_distance(a, b) < mean_earth_movers_distance(a, c)

    def test_reliability_close_on_dense_graph(self):
        graph = datasets.flickr_like(n=60, avg_degree=24, seed=6)
        sparsified = sparsify(graph, 0.5, variant="GDB^A-t", rng=6)
        pairs = sample_vertex_pairs(graph, 15, rng=0)
        query = ReliabilityQuery(pairs)
        a = MonteCarloEstimator(graph, n_samples=300).run(query, rng=1)
        b = MonteCarloEstimator(sparsified, n_samples=300).run(query, rng=2)
        assert abs(a.scalar_estimate() - b.scalar_estimate()) < 0.15


class TestEntropyVarianceStory:
    def test_sparsification_reduces_entropy_and_variance_together(self):
        """The paper's thesis in one test: lower entropy -> lower MC
        variance on the sparsified graph."""
        graph = datasets.twitter_like(n=80, avg_degree=26, seed=7)
        sparsified = sparsify(graph, 0.2, variant="GDB^A-t", rng=7)
        assert relative_entropy(sparsified, graph) < 0.5

        pairs = sample_vertex_pairs(graph, 10, rng=1)
        query = ReliabilityQuery(pairs)
        var_orig = unbiased_variance(
            repeated_estimates(graph, query, runs=10, n_samples=60, rng=2)
        )
        var_sparse = unbiased_variance(
            repeated_estimates(sparsified, query, runs=10, n_samples=60, rng=2)
        )
        assert var_sparse < var_orig

    def test_spanner_keeps_entropy_high(self):
        """SP performs no redistribution: its relative entropy stays at
        roughly alpha (it keeps a random-ish alpha-fraction of entropy),
        far above GDB's at the same budget."""
        graph = datasets.flickr_like(n=80, avg_degree=20, seed=8)
        via_sp = sparsify(graph, 0.3, variant="SP", rng=8)
        via_gdb = sparsify(graph, 0.3, variant="GDB^A-t", rng=8)
        assert relative_entropy(via_gdb, graph) < relative_entropy(via_sp, graph)


class TestFileRoundTripPipeline:
    def test_sparsify_written_graph(self, tmp_path):
        from repro.datasets import read_edge_list, write_edge_list

        graph = datasets.twitter_like(n=60, avg_degree=10, seed=9)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        sparsified = sparsify(loaded, 0.4, variant="GDB^A", rng=9)
        assert sparsified.number_of_edges() == round(
            0.4 * graph.number_of_edges()
        )
