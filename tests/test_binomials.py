"""Sigma-binomial enumeration function and the Eq. 14 coefficients."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.binomials import (
    binomial_prefix_sum,
    cut_rule_coefficients,
    log_binomial,
)


def test_negative_k_is_zero():
    assert binomial_prefix_sum(10, -1) == 0
    assert binomial_prefix_sum(10, -5) == 0


def test_k_zero_is_one():
    assert binomial_prefix_sum(10, 0) == 1


def test_small_values_by_hand():
    # sum_{i<=2} C(5, i) = 1 + 5 + 10
    assert binomial_prefix_sum(5, 2) == 16
    assert binomial_prefix_sum(4, 1) == 5
    assert binomial_prefix_sum(3, 3) == 8  # 2^3


def test_full_sum_is_power_of_two():
    for n in (1, 5, 12, 30):
        assert binomial_prefix_sum(n, n) == 2 ** n


def test_k_beyond_n_truncates():
    assert binomial_prefix_sum(4, 100) == 16


def test_negative_n_rejected():
    with pytest.raises(ValueError):
        binomial_prefix_sum(-1, 2)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 60), st.integers(0, 60))
def test_property_matches_direct_sum(n, k):
    expected = sum(math.comb(n, i) for i in range(min(k, n) + 1))
    assert binomial_prefix_sum(n, k) == expected


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 50), st.integers(0, 50))
def test_property_monotone_in_k(n, k):
    assert binomial_prefix_sum(n, k + 1) >= binomial_prefix_sum(n, k)


def test_cut_rule_k1_reduces_to_equation_9():
    degree_coeff, global_coeff = cut_rule_coefficients(100, 1)
    assert degree_coeff == pytest.approx(0.5)
    assert global_coeff == 0.0


def test_cut_rule_k2_reduces_to_equation_15():
    n = 37
    degree_coeff, global_coeff = cut_rule_coefficients(n, 2)
    assert degree_coeff == pytest.approx((n - 2) / (2 * n - 2))
    assert global_coeff == pytest.approx(4 / (2 * n - 2))


def test_cut_rule_large_n_no_overflow():
    degree_coeff, global_coeff = cut_rule_coefficients(100_000, 50)
    assert 0.0 < degree_coeff <= 0.5
    assert 0.0 <= global_coeff < 1.0


def test_cut_rule_requires_three_vertices():
    with pytest.raises(ValueError):
        cut_rule_coefficients(2, 1)


def test_cut_rule_requires_positive_k():
    with pytest.raises(ValueError):
        cut_rule_coefficients(10, 0)


def test_log_binomial_matches_math_comb():
    assert log_binomial(20, 7) == pytest.approx(math.log(math.comb(20, 7)))
    assert log_binomial(5, -1) == float("-inf")
    assert log_binomial(5, 6) == float("-inf")
