"""t-bundle backbone (footnote 8 / Koutis [21])."""

import pytest

from repro.core.backbone import build_backbone, target_edge_count
from repro.core.tbundle import t_bundle_backbone
from repro.datasets import flickr_like


@pytest.fixture
def dense_graph():
    return flickr_like(n=60, avg_degree=20, seed=8)


def test_budget_met(dense_graph):
    ids = t_bundle_backbone(dense_graph, 0.4, rng=0)
    assert len(ids) == target_edge_count(dense_graph.number_of_edges(), 0.4)
    assert len(set(ids)) == len(ids)


def test_valid_edge_ids(dense_graph):
    m = dense_graph.number_of_edges()
    ids = t_bundle_backbone(dense_graph, 0.4, rng=0)
    assert all(0 <= e < m for e in ids)


def test_first_layer_preserves_connectivity(dense_graph):
    """If one full spanner layer fits, the backbone is connected."""
    ids = t_bundle_backbone(dense_graph, 0.6, rng=0)
    edge_list = dense_graph.edge_list()
    probs = dense_graph.probability_array()
    backbone = dense_graph.subgraph_with_edges(
        (edge_list[e][0], edge_list[e][1], float(probs[e])) for e in ids
    )
    assert backbone.is_connected()


def test_small_budget_truncates_layer(dense_graph):
    """Budget below one spanner layer: lightest edges kept, budget exact."""
    tiny_alpha = (dense_graph.number_of_vertices() - 1) / (
        dense_graph.number_of_edges()
    ) * 1.05
    ids = t_bundle_backbone(dense_graph, tiny_alpha, rng=0)
    assert len(ids) == target_edge_count(
        dense_graph.number_of_edges(), tiny_alpha
    )


def test_dispatch_through_build_backbone(dense_graph):
    ids = build_backbone(dense_graph, 0.4, method="t_bundle", rng=1)
    assert len(ids) == target_edge_count(dense_graph.number_of_edges(), 0.4)


def test_stretch_parameter(dense_graph):
    narrow = t_bundle_backbone(dense_graph, 0.5, rng=0, stretch=2)
    wide = t_bundle_backbone(dense_graph, 0.5, rng=0, stretch=4)
    assert len(narrow) == len(wide)  # same budget either way
