"""Parallel batch executor: seeded determinism across worker counts.

The contract under test (the deterministic-partitioning idea): an
estimation run is split on fixed chunk boundaries and stitched back in
submission order, so the outcome matrix is a pure function of
``(seed, boundaries)`` — never of the pool schedule or worker count.

- sequential mode must be *bit-identical* to the serial batched path
  (and hence the legacy per-world loop) for every query class,
- spawn mode must be invariant to ``workers`` (though its stream
  intentionally differs from the sequential one),
- a pool that cannot start (or breaks mid-run) must fall back
  in-process with a single warning and the exact same answer.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph
from repro.datasets import flickr_like
from repro.exceptions import EstimationError
from repro.queries import (
    ClusteringCoefficientQuery,
    ComponentCountQuery,
    ConnectivityQuery,
    DegreeQuery,
    PageRankQuery,
    ReliabilityQuery,
    ShortestPathQuery,
    SourceDistanceQuery,
    sample_vertex_pairs,
)
from repro.sampling import (
    MonteCarloEstimator,
    ParallelBatchExecutor,
    StratifiedEstimator,
    adaptive_estimate,
    auto_batch_size,
    chunk_counts,
    repeated_estimates,
    resolve_workers,
)
import repro.sampling.parallel as parallel_module

N_SAMPLES = 18  # deliberately not a multiple of the chunk sizes below
CHUNK = 5


@pytest.fixture(scope="module")
def graph() -> UncertainGraph:
    return flickr_like(n=40, avg_degree=8, seed=5)


def all_query_classes(graph: UncertainGraph, seed: int = 7) -> list:
    """One instance of every built-in query class (the batch-test roster)."""
    n = graph.number_of_vertices()
    pairs = sample_vertex_pairs(graph, 6, rng=seed)
    return [
        DegreeQuery(n),
        ConnectivityQuery(),
        ComponentCountQuery(),
        ClusteringCoefficientQuery(n),
        PageRankQuery(n),
        SourceDistanceQuery(0, n),
        ReliabilityQuery(pairs),
        ShortestPathQuery(pairs),
    ]


def run_outcomes(graph, query, workers, batch_size=CHUNK, n_samples=N_SAMPLES):
    estimator = MonteCarloEstimator(
        graph, n_samples=n_samples, batch_size=batch_size, workers=workers
    )
    try:
        return estimator.run(query, rng=7).outcomes
    finally:
        estimator.close()


class TestSeededDeterminism:
    """workers=1 ≡ workers=2 ≡ workers=4 ≡ PR-1 batched ≡ legacy, bit for bit."""

    def test_every_query_class_identical_across_worker_counts(self, graph):
        for query in all_query_classes(graph):
            serial = run_outcomes(graph, query, workers=1)
            legacy = MonteCarloEstimator(
                graph, n_samples=N_SAMPLES, batched=False
            ).run(query, rng=7).outcomes
            assert np.array_equal(serial, legacy, equal_nan=True), (
                f"{type(query).__name__}: serial executor != legacy per-world"
            )
            for workers in (2, 4):
                pooled = run_outcomes(graph, query, workers=workers)
                assert np.array_equal(serial, pooled, equal_nan=True), (
                    f"{type(query).__name__}: workers={workers} != workers=1"
                )

    def test_chunk_size_not_dividing_n_samples(self, graph):
        """Ragged final chunks (18 = 3*5+3 = 2*7+4) cannot change results."""
        query = ShortestPathQuery(sample_vertex_pairs(graph, 5, rng=3))
        baseline = run_outcomes(graph, query, workers=1, batch_size=N_SAMPLES)
        for batch_size in (5, 7, None):
            pooled = run_outcomes(graph, query, workers=2, batch_size=batch_size)
            assert np.array_equal(baseline, pooled, equal_nan=True), (
                f"batch_size={batch_size} changed the outcome matrix"
            )

    def test_executor_matches_pr1_batched_estimator(self, graph):
        """The executor itself reproduces the PR-1 chunked batched path."""
        query = ReliabilityQuery(sample_vertex_pairs(graph, 6, rng=4))
        pr1 = MonteCarloEstimator(
            graph, n_samples=N_SAMPLES, batch_size=CHUNK
        ).run(query, rng=9).outcomes
        with ParallelBatchExecutor(
            graph, query, workers=2, chunk_size=CHUNK
        ) as executor:
            assert np.array_equal(executor.run(N_SAMPLES, rng=9), pr1)


class TestSpawnMode:
    def test_worker_count_invariant(self, graph):
        query = PageRankQuery(graph.number_of_vertices())
        results = []
        for workers in (1, 4):
            with ParallelBatchExecutor(
                graph, query, workers=workers, chunk_size=CHUNK, rng_mode="spawn"
            ) as executor:
                results.append(executor.run(N_SAMPLES, rng=21))
        assert np.array_equal(results[0], results[1], equal_nan=True)

    def test_deterministic_under_fixed_seed(self, graph):
        query = DegreeQuery(graph.number_of_vertices())
        runs = []
        for _ in range(2):
            with ParallelBatchExecutor(
                graph, query, workers=1, chunk_size=CHUNK, rng_mode="spawn"
            ) as executor:
                runs.append(executor.run(N_SAMPLES, rng=33))
        assert np.array_equal(runs[0], runs[1])

    def test_independent_streams_differ_from_sequential(self, graph):
        """Spawned chunk streams are not the single sequential stream."""
        query = DegreeQuery(graph.number_of_vertices())
        with ParallelBatchExecutor(
            graph, query, workers=1, chunk_size=CHUNK, rng_mode="spawn"
        ) as executor:
            spawned = executor.run(N_SAMPLES, rng=7)
        sequential = run_outcomes(graph, query, workers=1)
        assert not np.array_equal(spawned, sequential, equal_nan=True)


class TestEstimatorLayers:
    """Every estimator entry point is invariant to the workers knob."""

    def test_adaptive_estimate(self, graph):
        query = ReliabilityQuery(sample_vertex_pairs(graph, 5, rng=2))
        serial = adaptive_estimate(graph, query, target_width=0.1, rng=11)
        pooled = adaptive_estimate(
            graph, query, target_width=0.1, rng=11, workers=3
        )
        assert serial == pooled

    def test_stratified(self, graph):
        query = ReliabilityQuery(sample_vertex_pairs(graph, 5, rng=2))
        estimator = StratifiedEstimator(graph, n_samples=48, r=3)
        try:
            serial = estimator.run(query, rng=13)
            pooled = estimator.run(query, rng=13, workers=3)
            repeat = estimator.run(query, rng=13, workers=3)  # reuses the pool
            legacy = estimator.run(query, rng=13, batched=False)
        finally:
            estimator.close()
        assert serial == pooled == repeat == legacy

    def test_repeated_estimates(self, graph):
        query = DegreeQuery(graph.number_of_vertices())
        serial = repeated_estimates(
            graph, query, runs=4, n_samples=12, rng=5, batch_size=CHUNK
        )
        pooled = repeated_estimates(
            graph, query, runs=4, n_samples=12, rng=5, batch_size=CHUNK,
            workers=2,
        )
        assert np.array_equal(serial, pooled)

    def test_estimator_reuses_executor_across_runs(self, graph):
        query = DegreeQuery(graph.number_of_vertices())
        estimator = MonteCarloEstimator(
            graph, n_samples=6, batch_size=3, workers=2
        )
        try:
            estimator.run(query, rng=0)
            first = estimator._executor
            estimator.run(query, rng=1)
            assert estimator._executor is first
        finally:
            estimator.close()
        assert estimator._executor is None


class TestPoolFailureFallback:
    def test_pool_start_failure_warns_once_and_matches(self, graph, monkeypatch):
        query = ShortestPathQuery(sample_vertex_pairs(graph, 5, rng=3))
        expected = run_outcomes(graph, query, workers=1)

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("fork refused")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", ExplodingPool)
        with pytest.warns(RuntimeWarning, match="process pool unavailable") as record:
            fallback = run_outcomes(graph, query, workers=4)
        assert len(record) == 1
        assert np.array_equal(expected, fallback, equal_nan=True)

    def test_submit_failure_mid_run_falls_back(self, graph, monkeypatch):
        query = ReliabilityQuery(sample_vertex_pairs(graph, 5, rng=3))
        expected = run_outcomes(graph, query, workers=1)

        class BrokenSubmitPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise RuntimeError("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", BrokenSubmitPool
        )
        with pytest.warns(RuntimeWarning, match="process pool unavailable") as record:
            fallback = run_outcomes(graph, query, workers=4)
        assert len(record) == 1
        assert np.array_equal(expected, fallback, equal_nan=True)

    def test_serial_executor_never_builds_a_pool(self, graph, monkeypatch):
        query = DegreeQuery(graph.number_of_vertices())

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("workers<=1 must not touch the pool")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", forbidden)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_outcomes(graph, query, workers=1)
            run_outcomes(graph, query, workers=0)


class TestAutoBatchSizeProperties:
    """Edge-case boundaries of the chunk sizing shared by both paths."""

    @settings(max_examples=200, deadline=None)
    @given(
        n_samples=st.integers(min_value=0, max_value=10_000),
        n_edges=st.integers(min_value=0, max_value=10**7),
        n_vertices=st.integers(min_value=0, max_value=10**6),
        budget=st.integers(min_value=1, max_value=2**40),
    )
    def test_always_a_positive_chunk_within_the_run(
        self, n_samples, n_edges, n_vertices, budget
    ):
        chunk = auto_batch_size(
            n_samples, n_edges, n_vertices=n_vertices, budget_bytes=budget
        )
        assert 1 <= chunk <= max(1, n_samples)

    @settings(max_examples=100, deadline=None)
    @given(
        n_samples=st.integers(min_value=1, max_value=10_000),
        n_edges=st.integers(min_value=0, max_value=10**5),
        n_vertices=st.integers(min_value=0, max_value=10**5),
    )
    def test_monotone_in_budget(self, n_samples, n_edges, n_vertices):
        small = auto_batch_size(
            n_samples, n_edges, n_vertices=n_vertices, budget_bytes=1
        )
        large = auto_batch_size(
            n_samples, n_edges, n_vertices=n_vertices, budget_bytes=2**40
        )
        assert small <= large
        assert small == 1  # budget below one world still yields a chunk
        assert large == n_samples  # unbounded budget takes the whole run

    def test_empty_and_tiny_graphs(self):
        assert auto_batch_size(100, 0, n_vertices=0) == 100
        assert auto_batch_size(0, 0, n_vertices=0) == 1
        assert auto_batch_size(7, 1, n_vertices=1) == 7
        # A world bigger than the whole budget still gets a chunk of 1.
        assert auto_batch_size(500, 10**9, budget_bytes=1) == 1


class TestChunkCounts:
    @settings(max_examples=200, deadline=None)
    @given(
        n_samples=st.integers(min_value=0, max_value=10_000),
        chunk=st.integers(min_value=1, max_value=10_000),
    )
    def test_partition_covers_run_exactly(self, n_samples, chunk):
        counts = chunk_counts(n_samples, chunk)
        assert sum(counts) == n_samples
        assert all(1 <= c <= chunk for c in counts)
        assert all(c == chunk for c in counts[:-1])

    def test_rejects_bad_arguments(self):
        with pytest.raises(EstimationError):
            chunk_counts(-1, 4)
        with pytest.raises(EstimationError):
            chunk_counts(10, 0)


class TestValidationAndEdges:
    def test_invalid_rng_mode(self, graph):
        with pytest.raises(EstimationError):
            ParallelBatchExecutor(graph, ConnectivityQuery(), rng_mode="magic")

    def test_invalid_chunk_size(self, graph):
        with pytest.raises(EstimationError):
            ParallelBatchExecutor(graph, ConnectivityQuery(), chunk_size=0)

    def test_invalid_workers_on_estimator(self, graph):
        with pytest.raises(EstimationError):
            MonteCarloEstimator(graph, n_samples=5, workers=-1)

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_zero_samples_and_empty_mask_stream(self, graph):
        query = ConnectivityQuery()
        with ParallelBatchExecutor(graph, query, workers=1) as executor:
            assert executor.run(0, rng=0).shape == (0, 1)
            assert executor.map_masks([]).shape == (0, 1)
            with pytest.raises(EstimationError):
                executor.run(-1, rng=0)

    def test_map_masks_stitches_in_chunk_order(self, graph):
        """map_masks must return rows in submission order, pool or not."""
        query = DegreeQuery(graph.number_of_vertices())
        sampler_masks = np.random.default_rng(0).random(
            (12, graph.number_of_edges())
        ) < 0.5
        chunks = [sampler_masks[0:5], sampler_masks[5:10], sampler_masks[10:12]]
        with ParallelBatchExecutor(graph, query, workers=1) as serial:
            expected = serial.map_masks(chunks)
        with ParallelBatchExecutor(graph, query, workers=3) as pooled:
            stitched = pooled.map_masks(chunks)
        assert np.array_equal(expected, stitched, equal_nan=True)


class TestStratumWeightCache:
    def test_weights_pinned_and_cached(self, triangle):
        """Regression: triangle probabilities (0.5, 0.25, 1.0), r=2 conditions
        the two highest-entropy edges (0.5 then 0.25)."""
        estimator = StratifiedEstimator(triangle, n_samples=16, r=2)
        conditioned_p = estimator.sampler.probabilities[estimator.conditioned]
        assert np.allclose(sorted(conditioned_p), [0.25, 0.5])
        weights = estimator.stratum_weights()
        assert weights == pytest.approx([0.375, 0.125, 0.375, 0.125])
        assert weights.sum() == pytest.approx(1.0)
        # All 2^r weights are memoised after one sweep, and a second
        # sweep returns the same values without recomputation.
        assert len(estimator._weights) == 4
        cached = dict(estimator._weights)
        assert np.array_equal(estimator.stratum_weights(), weights)
        assert estimator._weights == cached

    def test_r_zero_single_stratum(self, triangle):
        estimator = StratifiedEstimator(triangle, n_samples=8, r=0)
        assert estimator.stratum_weights() == pytest.approx([1.0])


class TestExecutorLifecycle:
    """No process pool outlives a completed job batch (the server contract)."""

    def test_close_reaps_pool(self, graph):
        import multiprocessing

        baseline = parallel_module.active_pool_count()
        children_before = set(multiprocessing.active_children())
        query = DegreeQuery(graph.number_of_vertices())
        with ParallelBatchExecutor(
            graph, query, workers=2, chunk_size=CHUNK
        ) as executor:
            executor.run(N_SAMPLES, rng=0)
            assert parallel_module.active_pool_count() == baseline + 1
        assert parallel_module.active_pool_count() == baseline
        assert executor._pool is None
        # close(wait=True) reaps the worker processes themselves, not
        # just the executor handle.
        assert set(multiprocessing.active_children()) <= children_before

    def test_estimator_context_manager_reaps_pool(self, graph):
        baseline = parallel_module.active_pool_count()
        query = DegreeQuery(graph.number_of_vertices())
        with MonteCarloEstimator(
            graph, n_samples=N_SAMPLES, batch_size=CHUNK, workers=2
        ) as estimator:
            estimator.run(query, rng=0)
            assert parallel_module.active_pool_count() == baseline + 1
        assert estimator._executor is None
        assert parallel_module.active_pool_count() == baseline

    def test_close_is_idempotent_and_reusable(self, graph):
        query = DegreeQuery(graph.number_of_vertices())
        executor = ParallelBatchExecutor(graph, query, workers=2, chunk_size=CHUNK)
        first = executor.run(N_SAMPLES, rng=4)
        executor.close()
        executor.close()
        # A closed executor lazily rebuilds its pool on the next run.
        again = executor.run(N_SAMPLES, rng=4)
        executor.close()
        assert np.array_equal(first, again, equal_nan=True)

    def test_serial_executor_registers_no_pool(self, graph):
        baseline = parallel_module.active_pool_count()
        query = DegreeQuery(graph.number_of_vertices())
        with ParallelBatchExecutor(graph, query, workers=1) as executor:
            executor.run(N_SAMPLES, rng=0)
            assert parallel_module.active_pool_count() == baseline
