"""k-NN in uncertain graphs (majority / median distances, [32])."""

import numpy as np
import pytest

from repro.core import UncertainGraph
from repro.queries import (
    SourceDistanceQuery,
    k_nearest_neighbors,
    majority_distances,
    median_distances,
)
from repro.sampling import MonteCarloEstimator, WorldSampler


def full_world(graph):
    sampler = WorldSampler(graph)
    return sampler.world_from_mask(np.ones(sampler.m, dtype=bool))


class TestSourceDistanceQuery:
    def test_deterministic_path(self, path4):
        query = SourceDistanceQuery(0, 4)
        out = query.evaluate(full_world(path4))
        assert list(out) == [0.0, 1.0, 2.0, 3.0]

    def test_unreachable_is_inf(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        out = SourceDistanceQuery(0, 4).evaluate(full_world(g))
        assert out[2] == np.inf and out[3] == np.inf

    def test_unit_count(self):
        assert SourceDistanceQuery(0, 7).unit_count() == 7

    def test_weighted_distances_are_minus_log_path_probability(self, path4):
        query = SourceDistanceQuery(0, 4, weighted=True)
        out = query.evaluate(full_world(path4))
        # path4 probabilities: 0.9, 0.8, 0.7 along the line
        expected = [0.0, -np.log(0.9), -np.log(0.9 * 0.8), -np.log(0.9 * 0.8 * 0.7)]
        assert np.allclose(out, expected)

    def test_weighted_unreachable_is_inf(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        out = SourceDistanceQuery(0, 4, weighted=True).evaluate(full_world(g))
        assert out[2] == np.inf and out[3] == np.inf


class TestAggregates:
    def test_majority_takes_mode(self):
        outcomes = np.array([[1.0], [1.0], [2.0]])
        assert majority_distances(outcomes)[0] == 1.0

    def test_majority_tie_takes_smallest(self):
        outcomes = np.array([[1.0], [2.0]])
        assert majority_distances(outcomes)[0] == 1.0

    def test_majority_handles_inf(self):
        outcomes = np.array([[np.inf], [np.inf], [3.0]])
        assert majority_distances(outcomes)[0] == np.inf

    def test_median(self):
        outcomes = np.array([[1.0, 5.0], [3.0, 5.0], [2.0, np.inf]])
        med = median_distances(outcomes)
        assert med[0] == 2.0 and med[1] == 5.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_majority_matches_unique_loop(self, seed):
        # Regression for the sort-based vectorisation: exact equality
        # with the old per-column np.unique mode, ties and infs included.
        rng = np.random.default_rng(seed)
        outcomes = rng.integers(0, 4, size=(25, 12)).astype(np.float64)
        outcomes[rng.random((25, 12)) < 0.25] = np.inf
        expected = np.empty(12)
        for j in range(12):
            values, counts = np.unique(outcomes[:, j], return_counts=True)
            expected[j] = values[np.argmax(counts)]
        assert np.array_equal(majority_distances(outcomes), expected)

    def test_majority_single_sample_and_column(self):
        assert majority_distances(np.array([[4.0]]))[0] == 4.0
        assert majority_distances(np.empty((3, 0))).shape == (0,)

    def test_majority_pools_nans_like_unique(self):
        # Distances never produce nan, but the public helper keeps
        # np.unique's equal-nan pooling for arbitrary outcome matrices.
        outcomes = np.array([[np.nan, np.nan], [np.nan, 1.0], [1.0, 1.0]])
        result = majority_distances(outcomes)
        assert np.isnan(result[0]) and result[1] == 1.0


class TestKNN:
    def test_deterministic_line(self, path4):
        query = SourceDistanceQuery(0, 4)
        outcomes = np.vstack([query.evaluate(full_world(path4))] * 5)
        assert k_nearest_neighbors(outcomes, source=0, k=2) == [1, 2]

    def test_excludes_source(self, path4):
        query = SourceDistanceQuery(0, 4)
        outcomes = np.vstack([query.evaluate(full_world(path4))] * 3)
        assert 0 not in k_nearest_neighbors(outcomes, source=0, k=4)

    def test_unreachable_never_returned(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        query = SourceDistanceQuery(0, 4)
        outcomes = np.vstack([query.evaluate(full_world(g))] * 3)
        assert k_nearest_neighbors(outcomes, source=0, k=3) == [1]

    def test_invalid_aggregate(self):
        with pytest.raises(ValueError):
            k_nearest_neighbors(np.zeros((2, 3)), 0, 1, aggregate="mean")

    def test_probabilistic_knn_prefers_reliable_neighbor(self):
        """Vertex reachable with p=0.9 at distance 2 beats one at
        distance 1 with p=0.1 under the majority distance."""
        g = UncertainGraph([(0, 1, 0.1), (0, 2, 0.9), (2, 3, 0.9)])
        query = SourceDistanceQuery(0, 4)
        outcomes = MonteCarloEstimator(g, n_samples=400).run(query, rng=0).outcomes
        ranked = k_nearest_neighbors(outcomes, source=0, k=3, aggregate="majority")
        # Vertex 2 must rank first; vertex 1's majority distance is
        # infinite (reachable in only ~10% of worlds) so it is either
        # excluded or ranked after 2.
        assert ranked[0] == 2
        assert 1 not in ranked or ranked.index(1) > ranked.index(2)
