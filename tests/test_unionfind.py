"""Union-find: unions, finds, component counts, reset."""

import pytest

from repro.utils.unionfind import UnionFind


def test_initial_state_is_singletons():
    uf = UnionFind(5)
    assert uf.components == 5
    assert all(uf.find(i) == i for i in range(5))


def test_union_merges_components():
    uf = UnionFind(4)
    assert uf.union(0, 1) is True
    assert uf.components == 3
    assert uf.connected(0, 1)
    assert not uf.connected(0, 2)


def test_union_same_set_returns_false():
    uf = UnionFind(3)
    uf.union(0, 1)
    assert uf.union(1, 0) is False
    assert uf.components == 2


def test_transitive_connectivity():
    uf = UnionFind(6)
    uf.union(0, 1)
    uf.union(1, 2)
    uf.union(3, 4)
    assert uf.connected(0, 2)
    assert not uf.connected(2, 3)
    uf.union(2, 3)
    assert uf.connected(0, 4)


def test_chain_of_unions_single_component():
    n = 100
    uf = UnionFind(n)
    for i in range(n - 1):
        uf.union(i, i + 1)
    assert uf.components == 1
    assert uf.connected(0, n - 1)


def test_reset_restores_singletons():
    uf = UnionFind(4)
    uf.union(0, 1)
    uf.union(2, 3)
    uf.reset()
    assert uf.components == 4
    assert not uf.connected(0, 1)


def test_len_reports_universe_size():
    assert len(UnionFind(7)) == 7


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        UnionFind(-1)


def test_zero_size_allowed():
    uf = UnionFind(0)
    assert uf.components == 0
