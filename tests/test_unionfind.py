"""Union-find: unions, finds, component counts, reset — scalar and array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.unionfind import ArrayUnionFind, UnionFind


def test_initial_state_is_singletons():
    uf = UnionFind(5)
    assert uf.components == 5
    assert all(uf.find(i) == i for i in range(5))


def test_union_merges_components():
    uf = UnionFind(4)
    assert uf.union(0, 1) is True
    assert uf.components == 3
    assert uf.connected(0, 1)
    assert not uf.connected(0, 2)


def test_union_same_set_returns_false():
    uf = UnionFind(3)
    uf.union(0, 1)
    assert uf.union(1, 0) is False
    assert uf.components == 2


def test_transitive_connectivity():
    uf = UnionFind(6)
    uf.union(0, 1)
    uf.union(1, 2)
    uf.union(3, 4)
    assert uf.connected(0, 2)
    assert not uf.connected(2, 3)
    uf.union(2, 3)
    assert uf.connected(0, 4)


def test_chain_of_unions_single_component():
    n = 100
    uf = UnionFind(n)
    for i in range(n - 1):
        uf.union(i, i + 1)
    assert uf.components == 1
    assert uf.connected(0, n - 1)


def test_reset_restores_singletons():
    uf = UnionFind(4)
    uf.union(0, 1)
    uf.union(2, 3)
    uf.reset()
    assert uf.components == 4
    assert not uf.connected(0, 1)


def test_len_reports_universe_size():
    assert len(UnionFind(7)) == 7


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        UnionFind(-1)


def test_zero_size_allowed():
    uf = UnionFind(0)
    assert uf.components == 0


class TestArrayUnionFind:
    def test_scalar_api_matches_reference(self):
        auf, ref = ArrayUnionFind(6), UnionFind(6)
        for x, y in [(0, 1), (1, 2), (3, 4), (1, 0), (2, 3)]:
            assert auf.union(x, y) == ref.union(x, y)
            assert auf.components == ref.components
        for x in range(6):
            for y in range(6):
                assert auf.connected(x, y) == ref.connected(x, y)

    def test_find_many_returns_roots_and_compresses(self):
        auf = ArrayUnionFind(8)
        for i in range(6):
            auf.union(i, i + 1)
        roots = auf.find_many(np.arange(8))
        assert len(set(roots[:7].tolist())) == 1
        assert roots[7] == 7
        # Compression: every queried element now points at its root.
        assert np.array_equal(auf._parent[np.arange(7)],
                              np.full(7, roots[0]))

    def test_union_batch_respects_index_order(self):
        # Duplicate pair: the first occurrence merges, the second does not
        # (exactly what sequential unions would do).
        auf = ArrayUnionFind(4)
        merged = auf.union_batch([0, 0, 2], [1, 1, 3])
        assert merged.tolist() == [True, False, True]
        assert auf.components == 2

    def test_union_batch_triangle(self):
        # (0-1), (1-2), (0-2): the cycle-closing last edge must lose.
        auf = ArrayUnionFind(3)
        merged = auf.union_batch([0, 1, 0], [1, 2, 2])
        assert merged.tolist() == [True, True, False]

    def test_union_batch_chain(self):
        # A path forces dependencies across hooking rounds (O(log n) of
        # them) yet every pair must merge.
        n = 300
        auf = ArrayUnionFind(n)
        merged = auf.union_batch(np.arange(n - 1), np.arange(1, n))
        assert merged.all()
        assert auf.components == 1

    def test_union_batch_self_pairs_never_merge(self):
        auf = ArrayUnionFind(3)
        merged = auf.union_batch([1, 0], [1, 2])
        assert merged.tolist() == [False, True]

    def test_union_batch_shape_mismatch(self):
        with pytest.raises(ValueError):
            ArrayUnionFind(3).union_batch([0, 1], [1])

    def test_union_batch_empty(self):
        auf = ArrayUnionFind(3)
        assert auf.union_batch([], []).tolist() == []
        assert auf.components == 3

    def test_reset(self):
        auf = ArrayUnionFind(4)
        auf.union_batch([0, 2], [1, 3])
        auf.reset()
        assert auf.components == 4
        assert not auf.connected(0, 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ArrayUnionFind(-1)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    pairs=st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=120
    ),
)
def test_property_union_batch_matches_sequential_reference(n, pairs):
    """union_batch == scalar unions in index order, on any pair sequence."""
    pairs = [(u % n, v % n) for u, v in pairs]
    ref = UnionFind(n)
    expected = [ref.union(u, v) for u, v in pairs]
    auf = ArrayUnionFind(n)
    us = np.array([u for u, _ in pairs], dtype=np.int64)
    vs = np.array([v for _, v in pairs], dtype=np.int64)
    merged = auf.union_batch(us, vs)
    assert merged.tolist() == expected
    assert auf.components == ref.components
    # Same partition afterwards.
    ref_roots = [ref.find(x) for x in range(n)]
    arr_roots = auf.find_many(np.arange(n))
    for x in range(n):
        for y in range(n):
            assert (ref_roots[x] == ref_roots[y]) == (arr_roots[x] == arr_roots[y])


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    pairs=st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80
    ),
    queries=st.lists(st.integers(0, 39), max_size=40),
)
def test_property_find_many_matches_scalar_find(n, pairs, queries):
    ref = UnionFind(n)
    auf = ArrayUnionFind(n)
    for u, v in pairs:
        ref.union(u % n, v % n)
        auf.union(u % n, v % n)
    queries = np.array([q % n for q in queries], dtype=np.int64)
    roots = auf.find_many(queries)
    for q, r in zip(queries, roots):
        # Roots may differ representative-wise only if the heuristics
        # diverge — they don't: the rank/linking rule is identical.
        assert ref.find(int(q)) == int(r) or ref.connected(int(q), int(r))
        assert auf.connected(int(q), int(r))
