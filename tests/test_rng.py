"""RNG normalisation helpers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


def test_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_int_seed_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.array_equal(a, b)


def test_generator_passthrough():
    g = np.random.default_rng(0)
    assert ensure_rng(g) is g


def test_numpy_integer_seed_accepted():
    seed = np.int64(7)
    a = ensure_rng(seed).random(3)
    b = ensure_rng(7).random(3)
    assert np.array_equal(a, b)


def test_invalid_type_rejected():
    with pytest.raises(TypeError):
        ensure_rng("not-a-seed")


def test_spawn_count_and_independence():
    children = spawn_rngs(3, 4)
    assert len(children) == 4
    draws = [c.random() for c in children]
    assert len(set(draws)) == 4  # astronomically unlikely to collide


def test_spawn_is_deterministic_given_seed():
    a = [g.random() for g in spawn_rngs(9, 3)]
    b = [g.random() for g in spawn_rngs(9, 3)]
    assert a == b


def test_spawn_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_zero_is_empty():
    assert spawn_rngs(0, 0) == []
