"""BackbonePlan: nested peels, seeded bit-identity, plan threading."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GDBConfig, UncertainGraph, gdb, gdb_grid, sparsify
from repro.core.backbone import (
    BackbonePlan,
    backbone_as_list,
    bgi_backbone,
    bgi_backbone_legacy,
    build_backbone,
    local_degree_backbone,
    random_backbone,
    target_edge_count,
)
from repro.core.emd_sparsifier import emd
from repro.core.lp import lp_sparsify
from repro.datasets import flickr_like, twitter_like
from repro.utils.unionfind import UnionFind

ALPHAS = (0.3, 0.45, 0.6, 0.85)


@pytest.fixture
def graph():
    return flickr_like(n=70, avg_degree=12, seed=4)


@pytest.fixture
def plan(graph):
    return BackbonePlan(graph)


class TestSeededEquivalence:
    """Plan-based construction is bit-identical to the legacy builder."""

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_bgi_matches_legacy(self, graph, plan, alpha, seed):
        legacy = bgi_backbone_legacy(graph, alpha, rng=seed)
        assert np.array_equal(plan.backbone(alpha, rng=seed), legacy)
        assert np.array_equal(bgi_backbone(graph, alpha, rng=seed), legacy)

    def test_reuse_does_not_perturb_draws(self, graph, plan):
        # Warm the plan with other alphas/seeds first: the MC top-up for
        # a given (alpha, seed) must not depend on plan history.
        for alpha in ALPHAS:
            plan.backbone(alpha, rng=99)
        for seed in (0, 7):
            for alpha in ALPHAS:
                assert np.array_equal(
                    plan.backbone(alpha, rng=seed),
                    bgi_backbone_legacy(graph, alpha, rng=seed),
                )

    def test_generator_rng_draws_sequentially(self, graph, plan):
        seq_plan = [
            plan.backbone(a, rng=rng)
            for rng in [np.random.default_rng(3)]
            for a in ALPHAS
        ]
        rng = np.random.default_rng(3)
        seq_legacy = [bgi_backbone_legacy(graph, a, rng=rng) for a in ALPHAS]
        for got, want in zip(seq_plan, seq_legacy):
            assert np.array_equal(got, want)

    def test_spanning_knobs_forwarded(self, graph, plan):
        for kwargs in (
            dict(spanning_fraction=0.0),
            dict(max_forests=1),
            dict(spanning_fraction=0.9, max_forests=3),
        ):
            assert np.array_equal(
                bgi_backbone(graph, 0.5, rng=2, plan=plan, **kwargs),
                bgi_backbone_legacy(graph, 0.5, rng=2, **kwargs),
            )

    def test_concurrent_sharing_is_serially_equivalent(self, graph):
        # One plan shared by many threads (the job server's workers)
        # must produce bit-identical backbones to a serial plan: the
        # lazy peel/memo state is lock-protected, so no interleaving
        # can corrupt peel ranks.
        import threading

        reference = BackbonePlan(graph)
        expected = {
            (alpha, seed): reference.backbone(alpha, rng=seed)
            for alpha in ALPHAS for seed in (0, 7)
        }
        for trial in range(3):
            shared = BackbonePlan(graph)
            results: dict = {}
            barrier = threading.Barrier(len(expected))

            def build(alpha, seed, plan=shared, out=results, gate=barrier):
                gate.wait()
                out[(alpha, seed)] = plan.backbone(alpha, rng=seed)

            threads = [
                threading.Thread(target=build, args=key) for key in expected
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            for key, want in expected.items():
                assert np.array_equal(results[key], want), key
            assert np.array_equal(shared.peel_rank, reference.peel_rank)

    def test_random_and_local_degree_ride_the_plan(self, graph, plan):
        for alpha in (0.25, 0.6):
            assert np.array_equal(
                plan.backbone(alpha, method="random", rng=11),
                random_backbone(graph, alpha, rng=11),
            )
            assert np.array_equal(
                plan.backbone(alpha, method="local_degree"),
                local_degree_backbone(graph, alpha),
            )

    def test_t_bundle_falls_back(self, graph, plan):
        via_plan = build_backbone(graph, 0.4, method="t_bundle", rng=5,
                                  plan=plan)
        direct = build_backbone(graph, 0.4, method="t_bundle", rng=5)
        assert np.array_equal(via_plan, direct)

    def test_int_seed_backbones_memoised(self, graph, plan):
        a = plan.backbone(0.4, rng=8)
        b = plan.backbone(0.4, rng=8)
        assert a is b
        assert plan.backbone(0.4, rng=9) is not a


class TestNestedInvariants:
    def test_forest_prefix_nested_across_alphas(self, plan):
        prev = plan.forest_prefix(ALPHAS[0])
        for alpha in ALPHAS[1:]:
            cur = plan.forest_prefix(alpha)
            assert len(cur) >= len(prev)
            assert np.array_equal(cur[: len(prev)], prev)
            prev = cur

    def test_smaller_alpha_prefix_within_larger_backbone_ranks(self, plan):
        # The alpha_1 forest prefix lands inside the alpha_2 backbone,
        # and every prefix edge carries a forest-peel rank.
        small = plan.forest_prefix(ALPHAS[0])
        big = set(plan.backbone(ALPHAS[-1], rng=0).tolist())
        assert set(small.tolist()) <= big
        assert (plan.peel_rank[small] > 0).all()

    def test_peel_ranks_label_forests(self, graph, plan):
        plan.ensure_forests(3)
        for index in range(plan.forests_computed):
            forest = plan.forest(index)
            assert (plan.peel_rank[forest] == index + 1).all()
        # Ranks partition: computed forests are disjoint.
        labelled = np.flatnonzero(plan.peel_rank)
        forests = np.concatenate(
            [plan.forest(i) for i in range(plan.forests_computed)]
        )
        assert sorted(forests.tolist()) == sorted(labelled.tolist())
        assert len(np.unique(forests)) == len(forests)

    def test_each_peel_is_a_maximal_spanning_forest(self, graph, plan):
        """Connectivity guarantee per peel: forest k spans every component
        of the residual graph (all edges minus peels 1..k-1), acyclically."""
        plan.ensure_forests(4)
        edge_vertices = plan.edge_vertices
        residual = np.arange(plan.m)
        for index in range(plan.forests_computed):
            forest = plan.forest(index)
            # Acyclic: every forest edge merges two components.
            uf = UnionFind(plan.n)
            for eid in forest:
                u, v = edge_vertices[eid]
                assert uf.union(int(u), int(v))
            # Maximal: adding any other residual edge closes a cycle.
            rest = np.setdiff1d(residual, forest, assume_unique=True)
            for eid in rest:
                u, v = edge_vertices[eid]
                assert uf.connected(int(u), int(v))
            residual = rest

    def test_peel_one_keeps_backbone_connected(self, graph, plan):
        ids = plan.backbone(0.4, rng=0)
        edge_list = graph.edge_list()
        probs = graph.probability_array()
        sub = graph.subgraph_with_edges(
            (edge_list[e][0], edge_list[e][1], float(probs[e])) for e in ids
        )
        assert sub.is_connected()

    def test_full_decomposition_assigns_every_edge(self, plan):
        plan.ensure_forests(plan.m)  # decompose to exhaustion
        assert (plan.peel_rank > 0).all()
        sizes = [len(plan.forest(i)) for i in range(plan.forests_computed)]
        assert sum(sizes) == plan.m
        # Peels shrink (weakly): later residual graphs are sparser.
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestNormalisedReturns:
    def test_builders_return_read_only_int64(self, graph, plan):
        results = [
            bgi_backbone(graph, 0.4, rng=0),
            bgi_backbone_legacy(graph, 0.4, rng=0),
            random_backbone(graph, 0.4, rng=0),
            local_degree_backbone(graph, 0.4),
            build_backbone(graph, 0.4, method="t_bundle", rng=0),
            plan.backbone(0.4, rng=0),
            plan.forest_prefix(0.4),
        ]
        for ids in results:
            assert isinstance(ids, np.ndarray)
            assert ids.dtype == np.int64
            assert not ids.flags.writeable

    def test_backbone_as_list_shim_warns(self, graph):
        ids = bgi_backbone(graph, 0.4, rng=0)
        with pytest.warns(DeprecationWarning):
            as_list = backbone_as_list(ids)
        assert as_list == [int(e) for e in ids]
        assert all(type(e) is int for e in as_list)


class TestPlanThreading:
    def test_gdb_emd_lp_accept_plan(self, graph, plan):
        for fn in (gdb, emd, lp_sparsify):
            direct = fn(graph, alpha=0.4, rng=6)
            planned = fn(graph, alpha=0.4, rng=6, backbone_plan=plan)
            assert planned.isomorphic_probabilities(direct, tol=0.0)

    def test_sparsify_accepts_plan(self, graph, plan):
        for variant in ("GDB^A-t", "EMD^R-t", "GDB^R", "LP-t"):
            direct = sparsify(graph, 0.4, variant=variant, rng=6)
            planned = sparsify(graph, 0.4, variant=variant, rng=6,
                               backbone_plan=plan)
            assert planned.isomorphic_probabilities(direct, tol=0.0)

    def test_sparsify_precomputed_backbone(self, graph, plan):
        ids = plan.backbone(0.4, rng=6)
        direct = sparsify(graph, 0.4, variant="GDB^A-t", rng=6)
        seeded = sparsify(graph, 0.4, variant="GDB^A-t", rng=6, backbone=ids)
        assert seeded.isomorphic_probabilities(direct, tol=0.0)

    def test_sparsify_rejects_plan_for_benchmarks(self, graph, plan):
        # NI accepts a plan since it memoises its peel structure there;
        # the remaining benchmark methods still refuse one.
        with pytest.raises(ValueError):
            sparsify(graph, 0.4, variant="SP", rng=0, backbone_plan=plan)
        with pytest.raises(ValueError):
            sparsify(graph, 0.4, variant="RANDOM", rng=0,
                     backbone=np.arange(3))

    def test_sparsify_rejects_backbone_plus_plan(self, graph, plan):
        with pytest.raises(ValueError):
            sparsify(graph, 0.4, variant="GDB^A", rng=0,
                     backbone_plan=plan, backbone=np.arange(3))

    def test_plan_for_other_graph_rejected(self, graph):
        other = twitter_like(n=50, avg_degree=8, seed=1)
        stale = BackbonePlan(other)
        with pytest.raises(ValueError):
            gdb(graph, alpha=0.4, rng=0, backbone_plan=stale)
        with pytest.raises(ValueError):
            build_backbone(graph, 0.4, rng=0, plan=stale)
        with pytest.raises(ValueError):
            gdb_grid(graph, alphas=(0.4,), h_values=(0.05,), rng=0,
                     backbone_plan=stale)

    def test_plan_with_explicit_backbone_ids_rejected(self, graph, plan):
        ids = plan.backbone(0.4, rng=0)
        with pytest.raises(ValueError):
            gdb(graph, backbone_ids=ids, backbone_plan=plan)


class TestGridLadder:
    def test_grid_backbones_bit_identical_to_independent_builds(self, graph):
        alphas = (0.35, 0.5)
        h_values = (0.0, 0.05, 1.0)
        cells = gdb_grid(
            graph, alphas=alphas, h_values=h_values, rng=9,
            build_graphs=False,
        )
        for (alpha, h), cell in cells.items():
            assert np.array_equal(
                cell.backbone, bgi_backbone_legacy(graph, alpha, rng=9)
            )

    def test_one_plan_serves_whole_ladder(self, graph, plan):
        alphas = (0.35, 0.5)
        cells = gdb_grid(
            graph, alphas=alphas, h_values=(0.05,), rng=9,
            build_graphs=False, backbone_plan=plan,
        )
        # The plan memoises per (alpha, seed): grid backbones are the
        # exact arrays the plan hands to direct calls.
        for (alpha, h), cell in cells.items():
            assert cell.backbone is plan.backbone(alpha, rng=9)

    def test_consume_receives_backbone_ids(self, graph):
        seen = {}

        def consume(cell):
            seen[(cell.alpha, cell.h)] = cell.backbone
            return cell.objective

        gdb_grid(
            graph, alphas=(0.4,), h_values=(0.0, 1.0), rng=4,
            build_graphs=False, consume=consume,
        )
        expected = bgi_backbone_legacy(graph, 0.4, rng=4)
        for ids in seen.values():
            assert np.array_equal(ids, expected)

    def test_grid_cells_match_plain_gdb_with_plan_backbone(self, graph, plan):
        cells = gdb_grid(
            graph, alphas=(0.5,), h_values=(0.05,), rng=2,
            backbone_plan=plan,
        )
        cell = cells[(0.5, 0.05)]
        direct = gdb(
            graph, backbone_ids=cell.backbone, config=GDBConfig(h=0.05),
        )
        assert cell.graph.isomorphic_probabilities(direct, tol=0.0)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 500),
    alpha=st.floats(min_value=0.3, max_value=0.9),
)
def test_property_plan_matches_legacy(seed, alpha):
    graph = flickr_like(n=40, avg_degree=10, seed=seed % 4)
    plan = BackbonePlan(graph)
    assert np.array_equal(
        plan.backbone(alpha, rng=seed),
        bgi_backbone_legacy(graph, alpha, rng=seed),
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 200),
    lo=st.floats(min_value=0.3, max_value=0.55),
    hi=st.floats(min_value=0.6, max_value=0.95),
)
def test_property_forest_prefix_nesting(seed, lo, hi):
    graph = twitter_like(n=40, avg_degree=10, seed=seed % 3)
    plan = BackbonePlan(graph)
    small = plan.forest_prefix(lo)
    big = plan.forest_prefix(hi)
    assert np.array_equal(big[: len(small)], small)
    assert len(small) <= target_edge_count(graph.number_of_edges(), lo)
