"""Effective-resistance (spectral) sparsifier baseline."""

import numpy as np
import pytest

from repro.baselines import effective_resistance_sparsify, effective_resistances
from repro.core import UncertainGraph, sparsify
from repro.core.backbone import target_edge_count
from repro.datasets import flickr_like


class TestEffectiveResistances:
    def test_single_edge_is_inverse_weight(self):
        g = UncertainGraph([(0, 1, 0.5)])
        r = effective_resistances(g)
        assert r[0] == pytest.approx(1 / 0.5)

    def test_series_resistors_add(self):
        # Path 0-1-2 with conductances 0.5 and 0.25: R(0,1) = 2, R(1,2) = 4.
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.25)])
        r = effective_resistances(g)
        by_edge = {frozenset(e): v for e, v in zip(g.edge_list(), r)}
        assert by_edge[frozenset((0, 1))] == pytest.approx(2.0)
        assert by_edge[frozenset((1, 2))] == pytest.approx(4.0)

    def test_parallel_paths_reduce_resistance(self):
        # Triangle of unit conductances: R_eff of each edge = 2/3 < 1.
        g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        r = effective_resistances(g)
        assert np.allclose(r, 2.0 / 3.0)

    def test_tree_edges_have_unit_leverage(self):
        """w_e * R_eff(e) = 1 for every bridge (irreplaceable edge)."""
        g = UncertainGraph([(0, 1, 0.3), (1, 2, 0.7), (2, 3, 0.9)])
        r = effective_resistances(g)
        leverage = np.array(g.probability_array()) * r
        assert np.allclose(leverage, 1.0)

    def test_leverage_sums_to_n_minus_components(self):
        """Foster's theorem: sum of leverage scores = n - #components."""
        g = flickr_like(n=40, avg_degree=10, seed=1)
        leverage = np.array(g.probability_array()) * effective_resistances(g)
        assert leverage.sum() == pytest.approx(g.number_of_vertices() - 1, abs=1e-6)


class TestSparsifier:
    def test_budget(self):
        g = flickr_like(n=50, avg_degree=14, seed=2)
        out = effective_resistance_sparsify(g, 0.4, rng=0)
        assert out.number_of_edges() == target_edge_count(g.number_of_edges(), 0.4)

    def test_probabilities_valid(self):
        g = flickr_like(n=50, avg_degree=14, seed=2)
        out = effective_resistance_sparsify(g, 0.4, rng=0)
        probs = np.array(out.probability_array())
        assert np.all(probs > 0.0) and np.all(probs <= 1.0)

    def test_bridges_always_kept(self):
        """Leverage-1 edges are sampled with probability ~1 at any budget
        that admits them."""
        # Barbell: two triangles joined by a bridge.
        g = UncertainGraph(
            [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9),
             (3, 4, 0.9), (4, 5, 0.9), (3, 5, 0.9),
             (2, 3, 0.9)]
        )
        kept_bridge = 0
        for seed in range(10):
            out = effective_resistance_sparsify(g, 0.6, rng=seed)
            if out.has_edge(2, 3):
                kept_bridge += 1
        assert kept_bridge >= 8

    def test_variant_string_dispatch(self):
        g = flickr_like(n=50, avg_degree=14, seed=3)
        out = sparsify(g, 0.4, variant="ER", rng=3)
        assert out.number_of_edges() == target_edge_count(g.number_of_edges(), 0.4)
        assert "ER" in out.name
