"""UncertainGraph: construction, mutation, views, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph
from repro.exceptions import GraphError, ProbabilityError


class TestConstruction:
    def test_empty(self):
        g = UncertainGraph()
        assert g.number_of_vertices() == 0
        assert g.number_of_edges() == 0

    def test_from_triples(self, triangle):
        assert triangle.number_of_vertices() == 3
        assert triangle.number_of_edges() == 3

    def test_isolated_vertices(self):
        g = UncertainGraph(vertices=["x", "y"])
        assert g.number_of_vertices() == 2
        assert g.number_of_edges() == 0

    def test_repr_contains_counts(self, triangle):
        assert "|V|=3" in repr(triangle)
        assert "|E|=3" in repr(triangle)


class TestEdges:
    def test_add_edge_registers_vertices(self):
        g = UncertainGraph()
        g.add_edge(1, 2, 0.5)
        assert 1 in g and 2 in g

    def test_probability_symmetric(self, triangle):
        assert triangle.probability("a", "b") == triangle.probability("b", "a")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            UncertainGraph([(1, 1, 0.5)])

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.1, float("nan")])
    def test_invalid_probability_rejected(self, p):
        with pytest.raises(ProbabilityError):
            UncertainGraph([(1, 2, p)])

    def test_probability_one_allowed(self):
        g = UncertainGraph([(1, 2, 1.0)])
        assert g.probability(1, 2) == 1.0

    def test_set_probability(self, triangle):
        triangle.set_probability("a", "b", 0.9)
        assert triangle.probability("a", "b") == 0.9
        assert triangle.probability("b", "a") == 0.9

    def test_set_probability_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.set_probability("a", "zzz", 0.5)

    def test_remove_edge_returns_probability(self, triangle):
        assert triangle.remove_edge("a", "b") == 0.5
        assert not triangle.has_edge("a", "b")
        assert triangle.number_of_edges() == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge("a", "nope")

    def test_remove_vertex_removes_incident_edges(self, triangle):
        triangle.remove_vertex("b")
        assert triangle.number_of_edges() == 1
        assert "b" not in triangle

    def test_edges_iterates_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        keys = {frozenset((u, v)) for u, v, _ in edges}
        assert len(keys) == 3


class TestDegrees:
    def test_expected_degree(self, triangle):
        assert triangle.expected_degree("a") == pytest.approx(1.5)
        assert triangle.expected_degree("b") == pytest.approx(0.75)

    def test_expected_degrees_map(self, triangle):
        degrees = triangle.expected_degrees()
        assert degrees["c"] == pytest.approx(1.25)

    def test_degree_counts_edges(self, triangle):
        assert triangle.degree("a") == 2

    def test_missing_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.expected_degree("missing")

    def test_sum_expected_degrees_is_twice_mass(self, small_power_law):
        total = sum(small_power_law.expected_degrees().values())
        assert total == pytest.approx(2 * small_power_law.expected_number_of_edges())


class TestVectorViews:
    def test_probability_array_aligned_with_edge_list(self, triangle):
        edges = triangle.edge_list()
        probs = triangle.probability_array()
        for (u, v), p in zip(edges, probs):
            assert triangle.probability(u, v) == p

    def test_probability_array_is_readonly(self, triangle):
        arr = triangle.probability_array()
        with pytest.raises(ValueError):
            arr[0] = 0.1

    def test_cache_invalidated_on_mutation(self, triangle):
        before = len(triangle.edge_list())
        triangle.remove_edge("a", "b")
        assert len(triangle.edge_list()) == before - 1

    def test_edge_index_array_shape(self, small_power_law):
        arr = small_power_law.edge_index_array()
        assert arr.shape == (small_power_law.number_of_edges(), 2)
        assert arr.min() >= 0
        assert arr.max() < small_power_law.number_of_vertices()

    def test_expected_degree_array_matches_map(self, small_power_law):
        array = small_power_law.expected_degree_array()
        indexer = small_power_law.vertex_indexer()
        for vertex, idx in indexer.items():
            assert array[idx] == pytest.approx(
                small_power_law.expected_degree(vertex)
            )


class TestStructure:
    def test_connected(self, path4):
        assert path4.is_connected()

    def test_disconnected(self):
        g = UncertainGraph([(0, 1, 0.5), (2, 3, 0.5)])
        assert not g.is_connected()
        components = g.connected_components()
        assert sorted(len(c) for c in components) == [2, 2]

    def test_single_vertex_is_connected(self):
        assert UncertainGraph(vertices=[0]).is_connected()

    def test_density_triangle(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_expected_cut_size_singleton_is_degree(self, triangle):
        assert triangle.expected_cut_size(["a"]) == pytest.approx(
            triangle.expected_degree("a")
        )

    def test_expected_cut_size_pair(self, triangle):
        # S = {a, b}: crossing edges are (a,c)=1.0 and (b,c)=0.25
        assert triangle.expected_cut_size(["a", "b"]) == pytest.approx(1.25)

    def test_expected_cut_full_set_is_zero(self, triangle):
        assert triangle.expected_cut_size(["a", "b", "c"]) == 0.0

    def test_cut_unknown_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.expected_cut_size(["nope"])


class TestCopiesAndConversions:
    def test_copy_is_deep(self, triangle):
        clone = triangle.copy()
        clone.set_probability("a", "b", 0.99)
        assert triangle.probability("a", "b") == 0.5

    def test_subgraph_with_edges_keeps_vertices(self, triangle):
        sub = triangle.subgraph_with_edges([("a", "b", 0.7)])
        assert sub.number_of_vertices() == 3
        assert sub.number_of_edges() == 1
        assert sub.probability("a", "b") == 0.7

    def test_subgraph_with_foreign_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.subgraph_with_edges([("a", "zzz", 0.5)])

    def test_induced_subgraph(self, triangle):
        sub = triangle.induced_subgraph(["a", "b"])
        assert sub.number_of_vertices() == 2
        assert sub.number_of_edges() == 1

    def test_relabel_to_integers_isomorphic(self, triangle):
        relabeled, mapping = triangle.relabel_to_integers()
        assert set(mapping.values()) == {0, 1, 2}
        assert relabeled.number_of_edges() == 3
        assert relabeled.probability(mapping["a"], mapping["b"]) == 0.5

    def test_networkx_roundtrip(self, triangle):
        nx_graph = triangle.to_networkx()
        back = UncertainGraph.from_networkx(nx_graph)
        assert back.isomorphic_probabilities(triangle)

    def test_from_networkx_missing_attr_raises(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 2)
        with pytest.raises(GraphError):
            UncertainGraph.from_networkx(g)

    def test_isomorphic_probabilities_tolerance(self, triangle):
        other = triangle.copy()
        other.set_probability("a", "b", 0.5 + 1e-12)
        assert triangle.isomorphic_probabilities(other)
        other.set_probability("a", "b", 0.6)
        assert not triangle.isomorphic_probabilities(other)


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 15),
            st.integers(0, 15),
            st.floats(min_value=0.01, max_value=1.0),
        ),
        max_size=60,
    )
)
def test_property_edge_count_consistent(edges):
    g = UncertainGraph()
    expected = {}
    for u, v, p in edges:
        if u == v:
            continue
        g.add_edge(u, v, p)
        expected[frozenset((u, v))] = p
    assert g.number_of_edges() == len(expected)
    for key, p in expected.items():
        u, v = tuple(key)
        assert g.probability(u, v) == pytest.approx(p)
    # Total expected degree equals twice the probability mass.
    assert sum(g.expected_degrees().values()) == pytest.approx(
        2 * sum(expected.values())
    )


class TestReadOnlyViews:
    def test_neighbors_is_read_only(self, triangle):
        nbrs = triangle.neighbors("a")
        with pytest.raises(TypeError):
            nbrs["b"] = 0.1
        with pytest.raises(TypeError):
            del nbrs["b"]
        # The view is live: graph mutations show through it.
        triangle.set_probability("a", "b", 0.75)
        assert nbrs["b"] == 0.75

    def test_neighbors_missing_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors("zzz")

    def test_vertex_indexer_cached_until_mutation(self, triangle):
        first = triangle.vertex_indexer()
        assert triangle.vertex_indexer() is first
        triangle.add_vertex("d")
        second = triangle.vertex_indexer()
        assert second is not first
        assert second["d"] == 3

    def test_edge_index_array_cached_and_read_only(self, triangle):
        first = triangle.edge_index_array()
        assert triangle.edge_index_array() is first
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = 99
        triangle.add_edge("a", "d", 0.5)
        second = triangle.edge_index_array()
        assert second is not first
        assert len(second) == 4


class TestFromEdgeArrays:
    def make_arrays(self):
        vertices = ["a", "b", "c", "d"]
        endpoints = np.array([[0, 1], [1, 2], [2, 3], [0, 2]])
        probabilities = np.array([0.5, 0.25, 1.0, 0.1])
        return vertices, endpoints, probabilities

    def test_matches_incremental_construction(self):
        vertices, endpoints, probabilities = self.make_arrays()
        bulk = UncertainGraph.from_edge_arrays(vertices, endpoints, probabilities)
        incremental = UncertainGraph(vertices=vertices)
        for (u, v), p in zip(endpoints, probabilities):
            incremental.add_edge(vertices[u], vertices[v], float(p))
        assert bulk.isomorphic_probabilities(incremental)
        assert bulk.vertices() == incremental.vertices()

    def test_preseeded_views_for_canonical_order(self):
        # Rows (u, v) with u < v sorted by u — the order build_graph
        # supplies — pre-seed the caches verbatim.
        vertices = ["a", "b", "c", "d"]
        endpoints = np.array([[0, 1], [0, 2], [1, 2], [2, 3]])
        probabilities = np.array([0.5, 0.1, 0.25, 1.0])
        g = UncertainGraph.from_edge_arrays(
            vertices, endpoints, probabilities, name="bulk"
        )
        assert g.name == "bulk"
        assert g.edge_list() == [("a", "b"), ("a", "c"), ("b", "c"), ("c", "d")]
        assert np.array_equal(g.probability_array(), probabilities)
        assert np.array_equal(g.edge_index_array(), endpoints)
        assert g.vertex_indexer() == {"a": 0, "b": 1, "c": 2, "d": 3}
        assert not g.edge_index_array().flags.writeable

    def test_non_canonical_order_gets_canonical_views(self):
        # Arbitrary input order is accepted, but the views are built
        # lazily in the order edges() reproduces from the adjacency —
        # so edge ids stay stable across later cache invalidations.
        vertices, endpoints, probabilities = self.make_arrays()
        g = UncertainGraph.from_edge_arrays(vertices, endpoints, probabilities)
        before = list(g.edge_list())
        assert before == [("a", "b"), ("a", "c"), ("b", "c"), ("c", "d")]
        g.add_vertex("z")  # invalidates caches, edge set unchanged
        assert g.edge_list() == before  # same ids for the same edges

    def test_views_rebuild_after_mutation(self):
        vertices, endpoints, probabilities = self.make_arrays()
        g = UncertainGraph.from_edge_arrays(vertices, endpoints, probabilities)
        g.add_edge("b", "d", 0.9)
        assert g.number_of_edges() == 5
        assert len(g.edge_list()) == 5
        assert g.probability("b", "d") == 0.9

    def test_input_arrays_are_not_aliased(self):
        vertices, endpoints, probabilities = self.make_arrays()
        g = UncertainGraph.from_edge_arrays(vertices, endpoints, probabilities)
        probabilities[0] = 0.9  # caller's arrays stay caller-owned
        endpoints[0, 0] = 3
        assert g.probability("a", "b") == 0.5
        assert g.edge_index_array()[0, 0] == 0

    def test_empty_edge_set(self):
        g = UncertainGraph.from_edge_arrays(
            ["x", "y"], np.empty((0, 2), dtype=np.int64), np.empty(0)
        )
        assert g.number_of_vertices() == 2
        assert g.number_of_edges() == 0

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError):
            UncertainGraph.from_edge_arrays(
                ["a", "b"], np.array([[0, 0]]), np.array([0.5])
            )

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(GraphError):
            UncertainGraph.from_edge_arrays(
                ["a", "b"], np.array([[0, 2]]), np.array([0.5])
            )

    def test_rejects_bad_probabilities(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ProbabilityError):
                UncertainGraph.from_edge_arrays(
                    ["a", "b"], np.array([[0, 1]]), np.array([bad])
                )

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphError):
            UncertainGraph.from_edge_arrays(
                ["a", "b", "c"],
                np.array([[0, 1], [1, 0]]),
                np.array([0.5, 0.5]),
            )

    def test_rejects_duplicate_vertices(self):
        with pytest.raises(GraphError):
            UncertainGraph.from_edge_arrays(
                ["a", "a"], np.empty((0, 2), dtype=np.int64), np.empty(0)
            )

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphError):
            UncertainGraph.from_edge_arrays(
                ["a", "b"], np.array([[0, 1]]), np.array([0.5, 0.6])
            )
