"""Structural metrics: degree / cut MAE, cut sampling."""

import numpy as np
import pytest

from repro.core import UncertainGraph, sparsify
from repro.metrics import (
    degree_discrepancy_mae,
    sample_cut_sets,
    sampled_cut_discrepancy_mae,
)


def test_identity_has_zero_mae(small_power_law):
    assert degree_discrepancy_mae(small_power_law, small_power_law) == 0.0
    assert sampled_cut_discrepancy_mae(
        small_power_law, small_power_law, rng=0
    ) == pytest.approx(0.0)


def test_degree_mae_hand_computed(triangle):
    sub = triangle.subgraph_with_edges([("a", "b", 0.5)])
    # deltas: a: 1.0, b: 0.25, c: 1.25 -> MAE = 2.5 / 3
    assert degree_discrepancy_mae(triangle, sub) == pytest.approx(2.5 / 3)


def test_degree_mae_relative(triangle):
    sub = triangle.subgraph_with_edges([("a", "b", 0.5)])
    absolute = [1.0 / 1.5, 0.25 / 0.75, 1.25 / 1.25]
    assert degree_discrepancy_mae(triangle, sub, relative=True) == pytest.approx(
        float(np.mean(absolute))
    )


class TestCutSampling:
    def test_geometric_ladder_default(self):
        sets = sample_cut_sets(64, samples_per_k=5, rng=0)
        sizes = sorted({len(s) for s in sets})
        assert sizes == [1, 2, 4, 8, 16, 32]
        assert len(sets) == 6 * 5

    def test_explicit_cardinalities(self):
        sets = sample_cut_sets(10, cardinalities=[1, 3], samples_per_k=4, rng=0)
        assert len(sets) == 8
        assert {len(s) for s in sets} == {1, 3}

    def test_members_are_valid_and_distinct(self):
        for subset in sample_cut_sets(20, samples_per_k=3, rng=1):
            assert len(set(subset.tolist())) == len(subset)
            assert subset.min() >= 0 and subset.max() < 20

    def test_cardinality_clamped_to_n_minus_one(self):
        sets = sample_cut_sets(5, cardinalities=[100], samples_per_k=2, rng=0)
        assert all(len(s) == 4 for s in sets)


class TestCutMAE:
    def test_matches_bruteforce(self, small_power_law):
        sparsified = sparsify(small_power_law, 0.4, variant="GDB^A", rng=0)
        cut_sets = sample_cut_sets(
            small_power_law.number_of_vertices(), samples_per_k=5, rng=2
        )
        fast = sampled_cut_discrepancy_mae(
            small_power_law, sparsified, cut_sets=cut_sets
        )
        vertex_of = small_power_law.vertices()
        brute = np.mean(
            [
                abs(
                    small_power_law.expected_cut_size(
                        [vertex_of[i] for i in subset]
                    )
                    - sparsified.expected_cut_size([vertex_of[i] for i in subset])
                )
                for subset in cut_sets
            ]
        )
        assert fast == pytest.approx(float(brute))

    def test_relative_variant(self, small_power_law):
        sparsified = sparsify(small_power_law, 0.4, variant="GDB^A", rng=0)
        relative = sampled_cut_discrepancy_mae(
            small_power_law, sparsified, rng=3, relative=True
        )
        assert relative >= 0.0

    def test_good_sparsifier_beats_naive(self, small_power_law):
        """GDB must preserve cuts better than raw random edge deletion."""
        good = sparsify(small_power_law, 0.4, variant="GDB^A-t", rng=0)
        naive = sparsify(small_power_law, 0.4, variant="RANDOM", rng=0)
        cut_sets = sample_cut_sets(
            small_power_law.number_of_vertices(), samples_per_k=10, rng=4
        )
        assert sampled_cut_discrepancy_mae(
            small_power_law, good, cut_sets=cut_sets
        ) < sampled_cut_discrepancy_mae(
            small_power_law, naive, cut_sets=cut_sets
        )
