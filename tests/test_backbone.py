"""Backbone construction: spanning forests, BGI, random, local-degree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph
from repro.core.backbone import (
    bgi_backbone,
    build_backbone,
    local_degree_backbone,
    maximum_spanning_forest,
    random_backbone,
    target_edge_count,
)
from repro.datasets import flickr_like
from repro.exceptions import SparsificationError
from repro.utils.unionfind import UnionFind


def backbone_graph(graph, ids):
    edge_list = graph.edge_list()
    probs = graph.probability_array()
    return graph.subgraph_with_edges(
        (edge_list[e][0], edge_list[e][1], float(probs[e])) for e in ids
    )


class TestTargetEdgeCount:
    def test_rounding(self):
        assert target_edge_count(100, 0.5) == 50
        assert target_edge_count(10, 0.25) == 2  # round(2.5) banker's -> 2
        assert target_edge_count(3, 0.1) == 1  # floor to at least 1

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            target_edge_count(100, alpha)

    def test_no_edges(self):
        with pytest.raises(SparsificationError):
            target_edge_count(0, 0.5)


class TestMaximumSpanningForest:
    def test_tree_on_connected_graph(self, small_power_law):
        n = small_power_law.number_of_vertices()
        m = small_power_law.number_of_edges()
        forest = maximum_spanning_forest(
            n,
            np.arange(m),
            small_power_law.edge_index_array(),
            np.array(small_power_law.probability_array()),
        )
        assert len(forest) == n - 1

    def test_forest_is_acyclic_and_maximum(self):
        # Square with a heavy diagonal: max spanning tree must take it.
        g = UncertainGraph(
            [(0, 1, 0.1), (1, 2, 0.2), (2, 3, 0.3), (3, 0, 0.4), (0, 2, 0.9)]
        )
        forest = maximum_spanning_forest(
            4, np.arange(5), g.edge_index_array(), np.array(g.probability_array())
        )
        assert len(forest) == 3
        edge_list = g.edge_list()
        chosen = {frozenset(edge_list[e]) for e in forest}
        assert frozenset((0, 2)) in chosen
        uf = UnionFind(4)
        for eid in forest:
            u, v = g.edge_index_array()[eid]
            assert uf.union(int(u), int(v))  # acyclic

    def test_disconnected_graph_gives_forest(self):
        g = UncertainGraph([(0, 1, 0.5), (2, 3, 0.5)])
        forest = maximum_spanning_forest(
            4, np.arange(2), g.edge_index_array(), np.array(g.probability_array())
        )
        assert len(forest) == 2


class TestBGI:
    def test_budget_met(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.4, rng=0)
        assert len(ids) == target_edge_count(small_power_law.number_of_edges(), 0.4)
        assert len(set(ids)) == len(ids)

    def test_connectivity_preserved(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.4, rng=0)
        assert backbone_graph(small_power_law, ids).is_connected()

    def test_alpha_below_spanning_threshold_raises(self, small_power_law):
        n = small_power_law.number_of_vertices()
        m = small_power_law.number_of_edges()
        alpha = (n - 2) / m / 2  # clearly below (n-1)/m
        with pytest.raises(SparsificationError):
            bgi_backbone(small_power_law, alpha, rng=0)

    def test_deterministic_given_seed(self, small_power_law):
        a = bgi_backbone(small_power_law, 0.3, rng=42)
        b = bgi_backbone(small_power_law, 0.3, rng=42)
        assert np.array_equal(a, b)

    def test_spanning_fraction_zero_still_builds_tree(self, small_power_law):
        ids = bgi_backbone(small_power_law, 0.4, rng=0, spanning_fraction=0.0)
        assert backbone_graph(small_power_law, ids).is_connected()

    def test_max_forests_limits_spanning_edges(self, small_power_law):
        few = bgi_backbone(small_power_law, 0.6, rng=1, max_forests=1)
        assert len(few) == target_edge_count(small_power_law.number_of_edges(), 0.6)


class TestRandomBackbone:
    def test_budget_met(self, small_power_law):
        ids = random_backbone(small_power_law, 0.3, rng=0)
        assert len(ids) == target_edge_count(small_power_law.number_of_edges(), 0.3)
        assert len(set(ids)) == len(ids)

    def test_high_probability_edges_preferred(self):
        edges = [(0, i + 1, 0.99) for i in range(10)]
        edges += [(1, i + 2, 0.01) for i in range(9)]
        g = UncertainGraph(edges)
        counts = np.zeros(g.number_of_edges())
        for seed in range(30):
            for eid in random_backbone(g, 0.5, rng=seed):
                counts[eid] += 1
        probs = g.probability_array()
        high = counts[np.array(probs) > 0.5].mean()
        low = counts[np.array(probs) < 0.5].mean()
        assert high > low


class TestLocalDegree:
    def test_budget_and_determinism(self, small_power_law):
        a = local_degree_backbone(small_power_law, 0.3)
        b = local_degree_backbone(small_power_law, 0.3)
        assert np.array_equal(a, b)
        assert len(a) == target_edge_count(small_power_law.number_of_edges(), 0.3)

    def test_hub_edges_kept(self):
        # Star plus a pendant chain: star edges rank first.
        edges = [(0, i, 0.5) for i in range(1, 8)]
        edges += [(7, 8, 0.5), (8, 9, 0.5)]
        g = UncertainGraph(edges)
        ids = local_degree_backbone(g, 0.5)
        edge_list = g.edge_list()
        chosen = {frozenset(edge_list[e]) for e in ids}
        hub_edges = sum(1 for pair in chosen if 0 in pair)
        assert hub_edges >= len(chosen) - 2


class TestDispatch:
    def test_build_backbone_methods(self, small_power_law):
        for method in ("bgi", "random", "local_degree"):
            ids = build_backbone(small_power_law, 0.3, method=method, rng=0)
            assert len(ids) == target_edge_count(
                small_power_law.number_of_edges(), 0.3
            )

    def test_unknown_method(self, small_power_law):
        with pytest.raises(ValueError):
            build_backbone(small_power_law, 0.3, method="magic")


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    alpha=st.floats(min_value=0.3, max_value=0.9),
)
def test_property_bgi_budget_and_connectivity(seed, alpha):
    graph = flickr_like(n=40, avg_degree=10, seed=seed % 5)
    ids = bgi_backbone(graph, alpha, rng=seed)
    assert len(ids) == target_edge_count(graph.number_of_edges(), alpha)
    assert backbone_graph(graph, ids).is_connected()
