"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import UncertainGraph
from repro.datasets import figure1_graph, flickr_like, twitter_like


@pytest.fixture
def triangle() -> UncertainGraph:
    """3-cycle with distinct probabilities."""
    return UncertainGraph([("a", "b", 0.5), ("b", "c", 0.25), ("a", "c", 1.0)])


@pytest.fixture
def path4() -> UncertainGraph:
    """4-vertex path 0-1-2-3."""
    return UncertainGraph([(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7)])


@pytest.fixture
def figure1() -> UncertainGraph:
    """The paper's Fig. 1(a): K4 at probability 0.3."""
    return figure1_graph()


@pytest.fixture
def small_power_law() -> UncertainGraph:
    """Small Flickr-style proxy used across algorithm tests."""
    return flickr_like(n=60, avg_degree=12, seed=5)


@pytest.fixture
def small_sparse() -> UncertainGraph:
    """Small Twitter-style proxy."""
    return twitter_like(n=60, avg_degree=8, seed=6)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
