"""The assembled job server: service semantics + the HTTP surface.

The load-bearing contracts:

- a repeated request with identical parameters is served from the
  artifact cache with *zero recomputation* and a *byte-identical*
  response body,
- N concurrent identical requests compute at most once (single flight),
- the artifact equals what a direct library call produces (the cache
  is transparent),
- admission control sheds overflow with 429,
- estimate jobs never leak a process pool past their completion.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.sampling.parallel as parallel_module
from repro.core import sparsify
from repro.datasets import format_edge_list, twitter_like, write_edge_list
from repro.exceptions import AdmissionError, ServerError
from repro.server import ServerConfig, SparsifierService, start_server

N_VERTICES = 60


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "graph.txt"
    write_edge_list(twitter_like(n=N_VERTICES, avg_degree=10, seed=1), path)
    return str(path)


@pytest.fixture()
def service(dataset):
    with SparsifierService(ServerConfig(workers=2)) as svc:
        yield svc


SPARSIFY = dict(alpha=0.4, variant="GDB^A", seed=0)


class TestServiceCore:
    def test_repeat_is_cached_byte_identical_zero_recompute(self, service, dataset):
        body1, hit1 = service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        body2, hit2 = service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        assert (hit1, hit2) == (False, True)
        assert body1 == body2  # byte-identical
        # Zero recomputation: exactly one job ever reached the queue.
        assert service.queue.stats()["submitted"] == 1

    def test_artifact_matches_direct_library_call(self, service, dataset):
        body, _ = service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        document = json.loads(body)
        from repro.datasets import read_edge_list

        graph = read_edge_list(dataset)
        expected = sparsify(
            graph, SPARSIFY["alpha"], variant=SPARSIFY["variant"],
            rng=SPARSIFY["seed"],
        )
        assert document["artifact"] == format_edge_list(expected, header=False)
        assert document["edges"] == expected.number_of_edges()

    def test_concurrent_identical_requests_compute_once(self, service, dataset):
        n = 6
        barrier = threading.Barrier(n)
        results: list = [None] * n

        def request(i):
            barrier.wait()
            results[i] = service.handle(
                "sparsify", {"dataset": dataset, "alpha": 0.5,
                             "variant": "EMD^A", "seed": 3}
            )

        threads = [threading.Thread(target=request, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        bodies = {body for body, _ in results}
        assert len(bodies) == 1, "all callers must share one artifact"
        # At most one computation: single flight collapses the burst.
        assert service.queue.stats()["submitted"] == 1
        assert sum(1 for _, hit in results if hit) == n - 1

    def test_seed_and_params_partition_the_cache(self, service, dataset):
        body_a, _ = service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        body_b, hit = service.handle(
            "sparsify", {"dataset": dataset, **{**SPARSIFY, "seed": 1}}
        )
        assert not hit
        assert body_a != body_b

    def test_dataset_rewrite_invalidates_via_digest(self, service, tmp_path):
        path = tmp_path / "mutable.txt"
        write_edge_list(twitter_like(n=40, avg_degree=8, seed=2), path)
        body1, _ = service.handle(
            "sparsify", {"dataset": str(path), "alpha": 0.6, "seed": 0}
        )
        write_edge_list(twitter_like(n=40, avg_degree=8, seed=9), path)
        body2, hit = service.handle(
            "sparsify", {"dataset": str(path), "alpha": 0.6, "seed": 0}
        )
        assert not hit and body1 != body2

    def test_rewrite_between_digest_and_execution_cannot_mislabel(
        self, service, tmp_path
    ):
        # The digest is computed from the same bytes the job parses:
        # a rewrite after request admission must never let the *new*
        # graph be computed (and cached) under the *old* digest.
        original = twitter_like(n=40, avg_degree=8, seed=2)
        path = tmp_path / "racy.txt"
        write_edge_list(original, path)
        digest = service._digest(str(path))
        write_edge_list(twitter_like(n=50, avg_degree=6, seed=9), path)
        # Registry still holds the graph parsed from the digested bytes.
        entry = service._dataset(str(path), digest)
        assert entry["graph"].number_of_edges() == original.number_of_edges()
        # If the entry was evicted, the re-read is verified against the
        # digest instead of silently computing on the rewritten file.
        with service._datasets_lock:
            service._datasets.clear()
        with pytest.raises(ServerError, match="changed on disk"):
            service._dataset(str(path), digest)

    def test_estimate_deterministic_and_pool_reaped(self, dataset):
        baseline = parallel_module.active_pool_count()
        with SparsifierService(ServerConfig(workers=1, mc_workers=2)) as svc:
            params = {"dataset": dataset, "query": "reliability",
                      "samples": 40, "pairs": 10, "seed": 7}
            body1, hit1 = svc.handle("estimate", params)
            # No process pool outlives the completed job batch.
            assert parallel_module.active_pool_count() == baseline
            body2, hit2 = svc.handle("estimate", params)
        assert (hit1, hit2) == (False, True)
        assert body1 == body2
        assert parallel_module.active_pool_count() == baseline

    def test_grid_endpoint_rows(self, service, dataset):
        body, _ = service.handle(
            "grid", {"dataset": dataset, "alphas": [0.4, 0.6],
                     "h_values": [0.05], "seed": 0}
        )
        cells = json.loads(body)["cells"]
        assert [(c["alpha"], c["h"]) for c in cells] == [(0.4, 0.05), (0.6, 0.05)]
        assert all(c["objective"] >= 0.0 for c in cells)

    def test_admission_control_sheds_overflow(self, service, dataset, monkeypatch):
        release = threading.Event()
        original = service._run_sparsify

        def slow_sparsify(norm):
            release.wait(30)
            return original(norm)

        monkeypatch.setattr(service, "_run_sparsify", slow_sparsify)
        monkeypatch.setattr(service.queue, "max_depth", 1)
        errors: list = []
        done: list = []

        def request(alpha):
            try:
                done.append(service.handle(
                    "sparsify", {"dataset": dataset, "alpha": alpha, "seed": 0}
                ))
            except AdmissionError as error:
                errors.append(error)

        # 2 workers occupy themselves, 1 fits the queue, the rest shed.
        threads = [
            threading.Thread(target=request, args=(0.40 + 0.01 * i,))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        deadline = time.time() + 10
        while not errors and time.time() < deadline:
            time.sleep(0.01)
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert errors, "overflow submissions must raise AdmissionError"
        assert len(done) + len(errors) == 6
        assert service.queue.stats()["rejected"] == len(errors)

    def test_bad_requests_rejected(self, service, dataset):
        with pytest.raises(ServerError, match="alpha"):
            service.handle("sparsify", {"dataset": dataset})
        with pytest.raises(ValueError, match="variant"):
            service.handle(
                "sparsify", {"dataset": dataset, "alpha": 0.4, "variant": "XXL"}
            )
        with pytest.raises(ServerError, match="dataset"):
            service.handle("sparsify", {"alpha": 0.4})
        with pytest.raises(ServerError, match="cannot read"):
            service.handle("sparsify", {"dataset": "/nonexistent", "alpha": 0.4})
        with pytest.raises(ServerError, match="unknown parameters"):
            service.handle(
                "sparsify", {"dataset": dataset, "alpha": 0.4, "typo": 1}
            )
        with pytest.raises(ServerError, match="unknown endpoint"):
            service.handle("evaluate", {"dataset": dataset})

    def test_scheduled_refresh_warms_the_cache(self, service, dataset):
        params = {"dataset": dataset, "alpha": 0.45, "variant": "GDB^A",
                  "seed": 0}
        service.schedule_resparsify("warm", params, interval=3600.0)
        # Fire the schedule by hand (the driver thread isn't running in
        # tests): afterwards the first interactive request is a hit.
        fired = service.scheduler.tick(time.monotonic() + 3601.0)
        assert fired == ["warm"]
        body, hit = service.handle("sparsify", params)
        assert hit, "the refresh must have warmed the cache"
        assert json.loads(body)["alpha"] == 0.45
        [schedule] = service.status()["schedules"]
        assert schedule["runs"] == 1 and schedule["last_error"] is None

    def test_status_and_metrics_documents(self, service, dataset):
        service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        service.handle("sparsify", {"dataset": dataset, **SPARSIFY})
        status = service.status()
        assert status["queue"]["completed"] == 1
        assert status["datasets_loaded"] == 1
        metrics = service.metrics()
        assert metrics["total_requests"] == 2
        assert metrics["cache"]["hits"] == 1
        assert set(metrics["endpoints"]["sparsify"]["latency_s"]) == {
            "p50", "p90", "p99"
        }


class TestHTTPSurface:
    @pytest.fixture(scope="class")
    def server(self, dataset):
        with start_server(ServerConfig(port=0, workers=2)) as server:
            yield server

    @staticmethod
    def _post(server, path, document):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return (response.status, response.headers.get("X-Repro-Cache"),
                    response.read())

    @staticmethod
    def _get(server, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}{path}", timeout=60
        ) as response:
            return response.status, response.read()

    def test_sparsify_roundtrip_and_cache_header(self, server, dataset):
        document = {"dataset": dataset, "alpha": 0.4, "variant": "GDB^A",
                    "seed": 0}
        status1, cache1, body1 = self._post(server, "/sparsify", document)
        status2, cache2, body2 = self._post(server, "/sparsify", document)
        assert (status1, status2) == (200, 200)
        assert (cache1, cache2) == ("miss", "hit")
        assert body1 == body2
        artifact = json.loads(body1)["artifact"]
        assert len(artifact.splitlines()) >= json.loads(body1)["edges"]

    def test_estimate_and_metrics(self, server, dataset):
        status, _, body = self._post(server, "/estimate", {
            "dataset": dataset, "query": "reliability", "samples": 30,
            "pairs": 5, "seed": 2,
        })
        assert status == 200
        assert 0.0 <= json.loads(body)["estimate"] <= 1.0
        status, body = self._get(server, "/metrics")
        metrics = json.loads(body)
        assert status == 200
        assert metrics["total_worlds"] >= 30
        assert "estimate" in metrics["endpoints"]

    def test_status_and_healthz(self, server):
        status, body = self._get(server, "/status")
        assert status == 200 and "queue" in json.loads(body)
        status, body = self._get(server, "/healthz")
        assert status == 200 and json.loads(body) == {"ok": True}

    def test_http_error_codes(self, server, dataset):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/sparsify", {"dataset": dataset})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/nonsense", {})
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nonsense")
        assert excinfo.value.code == 404
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/sparsify", data=b"not json{{",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_queue_overflow_maps_to_429(self, server, dataset):
        service = server.service
        release = threading.Event()
        original = service._run_sparsify

        def slow_sparsify(norm):
            release.wait(30)
            return original(norm)

        service._run_sparsify = slow_sparsify
        saved_depth = service.queue.max_depth
        service.queue.max_depth = 1
        codes: list[int] = []

        def request(alpha):
            try:
                status, _, _ = self._post(server, "/sparsify", {
                    "dataset": dataset, "alpha": alpha, "seed": 0,
                })
                codes.append(status)
            except urllib.error.HTTPError as error:
                codes.append(error.code)

        try:
            threads = [
                threading.Thread(target=request, args=(0.60 + 0.01 * i,))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            deadline = time.time() + 10
            while 429 not in codes and time.time() < deadline:
                time.sleep(0.01)
            release.set()
            for t in threads:
                t.join(timeout=60)
        finally:
            service._run_sparsify = original
            service.queue.max_depth = saved_depth
            release.set()
        assert codes.count(429) >= 1
        assert codes.count(200) == 6 - codes.count(429)

    def test_unread_body_closes_keep_alive_connection(self, server):
        # An error response sent before the body was read must carry
        # 'Connection: close' (and actually close), or the unread body
        # bytes would be parsed as the next request on the connection.
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /sparsify HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Length: 2000000\r\n"
                b"\r\n"
            )  # body intentionally never sent
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed the connection
                chunks.append(chunk)
            response = b"".join(chunks)
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        headers = response.split(b"\r\n\r\n", 1)[0].lower()
        assert b"connection: close" in headers

    def test_schedule_endpoint(self, server, dataset):
        status, _, body = self._post(server, "/schedule", {
            "name": "nightly", "interval_s": 3600.0,
            "params": {"dataset": dataset, "alpha": 0.5, "seed": 0},
        })
        assert status == 200
        assert json.loads(body)["name"] == "nightly"
        status, body = self._get(server, "/status")
        names = [s["name"] for s in json.loads(body)["schedules"]]
        assert "nightly" in names


class TestBinaryDatasets:
    """Binary datasets: O(header) digest keys, mmap registry, guards."""

    @pytest.fixture(scope="class")
    def binary(self, dataset, tmp_path_factory):
        from repro.datasets import read_edge_list, write_binary

        path = tmp_path_factory.mktemp("serve-bin") / "graph.bin"
        write_binary(read_edge_list(dataset), path)
        return str(path)

    def test_sparsify_on_binary_matches_text_dataset(self, service, dataset,
                                                     binary):
        from_text, _ = service.handle(
            "sparsify", {"dataset": dataset, **SPARSIFY})
        from_binary, _ = service.handle(
            "sparsify", {"dataset": binary, **SPARSIFY})
        # Bit-identity is a *same-representation* contract (worker-count
        # invariance), not a cross-representation one: the text dataset's
        # dict graph works in first-touch indexer space while the binary
        # file stores the numeric labels as dense ids, so pipeline sums
        # run in different orders and GDB may legitimately keep a
        # slightly different edge set.  What must agree: the structural
        # invariants of the sparsifier — same edge budget, same vertex
        # universe, probabilities in (0, 1].
        def parse(body):
            artifact = json.loads(body)["artifact"]
            edges = {}
            for line in artifact.splitlines():
                parts = line.split()
                if len(parts) == 3 and not line.startswith("#"):
                    edges[frozenset((parts[0], parts[1]))] = float(parts[2])
            return edges

        text_edges, binary_edges = parse(from_text), parse(from_binary)
        assert len(text_edges) == len(binary_edges) > 0
        for edges in (text_edges, binary_edges):
            assert all(0.0 < p <= 1.0 for p in edges.values())
        # The overwhelming majority of selections still coincide.
        shared = text_edges.keys() & binary_edges.keys()
        assert len(shared) >= int(0.8 * len(text_edges))

    def test_digest_key_is_header_digest(self, service, binary):
        from repro.datasets import binary_digest

        service.handle("sparsify", {"dataset": binary, **SPARSIFY})
        digest = binary_digest(binary).encode()
        assert any(digest in key for key in service.cache._entries)

    def test_rewrite_on_disk_detected(self, service, binary, tmp_path):
        import shutil

        from repro.datasets import read_edge_list, write_binary

        copy = str(tmp_path / "mutable.bin")
        shutil.copy(binary, copy)
        service.handle("sparsify", {"dataset": copy, **SPARSIFY})
        # Rewrite the file with different content: the registry entry is
        # keyed by digest, so the stale digest must not be served.
        write_binary(twitter_like(n=30, avg_degree=6, seed=9), copy,
                     allow_relabel=True)
        body, hit = service.handle("sparsify", {"dataset": copy, **SPARSIFY})
        assert not hit
        assert body  # computed against the new content

    def test_corrupt_binary_rejected(self, service, binary, tmp_path):
        from repro.datasets.binary_io import HEADER_SIZE

        bad = tmp_path / "corrupt.bin"
        raw = bytearray(open(binary, "rb").read())
        raw[HEADER_SIZE + 1] ^= 0xFF
        bad.write_bytes(bytes(raw))
        with pytest.raises(ServerError, match="digest"):
            service.handle("sparsify", {"dataset": str(bad), **SPARSIFY})

    def test_unsupported_variant_on_binary_rejected(self, service, binary):
        with pytest.raises(ServerError, match="binary"):
            service.handle("sparsify",
                           {"dataset": binary, "alpha": 0.4,
                            "variant": "NI", "seed": 0})

    def test_estimate_on_binary(self, service, binary):
        body, _ = service.handle("estimate", {
            "dataset": binary, "query": "connectivity",
            "samples": 16, "seed": 3,
        })
        assert json.loads(body)
