"""LP probability assignment (Theorem 1)."""

import numpy as np
import pytest

from repro.core import (
    UncertainGraph,
    d1_objective,
    gdb,
    lp_assign_probabilities,
    lp_sparsify,
)
from repro.core.backbone import bgi_backbone, target_edge_count
from repro.core.gdb import GDBConfig


def test_empty_backbone_gives_empty_assignment(small_power_law):
    assert len(lp_assign_probabilities(small_power_law, [])) == 0


def test_probabilities_within_bounds(small_power_law):
    ids = bgi_backbone(small_power_law, 0.4, rng=0)
    probs = lp_assign_probabilities(small_power_law, list(ids))
    assert np.all(probs >= 0.0) and np.all(probs <= 1.0)


def test_degree_constraints_respected(small_power_law):
    """LP solutions never exceed the original expected degrees (Lemma 1)."""
    ids = bgi_backbone(small_power_law, 0.4, rng=0)
    sparsified = lp_sparsify(small_power_law, backbone_ids=list(ids))
    for vertex in small_power_law.vertices():
        assert sparsified.expected_degree(vertex) <= (
            small_power_law.expected_degree(vertex) + 1e-6
        )


def test_lp_at_least_as_good_as_gdb_same_backbone(small_power_law):
    """Theorem 1: LP is the optimal assignment for a fixed backbone."""
    ids = bgi_backbone(small_power_law, 0.3, rng=0)
    via_lp = lp_sparsify(small_power_law, backbone_ids=list(ids))
    via_gdb = gdb(
        small_power_law, backbone_ids=list(ids), config=GDBConfig(h=1.0)
    )
    lp_objective = d1_objective(small_power_law, via_lp)
    # Compare Delta_1 (the LP's true objective is the absolute sum).
    from repro.core import delta_1

    assert delta_1(small_power_law, via_lp) <= (
        delta_1(small_power_law, via_gdb) + 1e-6
    )
    assert lp_objective >= 0.0


def test_budget_and_interface(small_power_law):
    sparsified = lp_sparsify(small_power_law, alpha=0.4, rng=0)
    assert sparsified.number_of_edges() == target_edge_count(
        small_power_law.number_of_edges(), 0.4
    )
    with pytest.raises(ValueError):
        lp_sparsify(small_power_law)
    with pytest.raises(ValueError):
        lp_sparsify(small_power_law, alpha=0.4, backbone_ids=[0])


def test_exact_on_solvable_instance():
    """A star whose backbone can match degrees exactly: LP finds it."""
    g = UncertainGraph([(0, 1, 0.5), (0, 2, 0.5), (0, 3, 0.5), (0, 4, 0.5)])
    # Keep two edges; optimum puts p = 1 on both to cover the centre's
    # degree of 2.0 (leaves saturate at their bound 1 >= 0.5... the LP
    # maximises total mass subject to A p <= d, so each kept edge gets
    # min(1, leaf degree) = 0.5 and the centre is under-filled by 1.0.)
    probs = lp_assign_probabilities(g, [0, 1])
    assert np.all(probs <= 0.5 + 1e-9)
    assert probs.sum() == pytest.approx(1.0, abs=1e-6)
