"""Update rules: Eq. 8/9 (degrees), Eq. 13-15 (cuts), Eq. 16 (k = n)."""

import numpy as np
import pytest

from repro.core import SparsificationState, UncertainGraph
from repro.core.rules import (
    cut_step,
    degree_step_absolute,
    degree_step_relative,
    full_redistribution_step,
    make_rule,
)


@pytest.fixture
def seeded_state(small_power_law):
    state = SparsificationState(small_power_law)
    for eid in range(0, state.m, 2):
        state.select_edge(eid)
    return state


def test_absolute_step_is_mean_of_endpoint_deltas(seeded_state):
    for eid in (0, 2, 4):
        u, v = seeded_state.endpoints(eid)
        expected = 0.5 * (seeded_state.delta[u] + seeded_state.delta[v])
        assert degree_step_absolute(seeded_state, eid) == pytest.approx(expected)


def test_relative_step_weights_by_original_degree(seeded_state):
    for eid in (0, 2):
        u, v = seeded_state.endpoints(eid)
        pi_u = seeded_state.original_degrees[u]
        pi_v = seeded_state.original_degrees[v]
        expected = (
            pi_v * seeded_state.delta[u] + pi_u * seeded_state.delta[v]
        ) / (pi_u + pi_v)
        assert degree_step_relative(seeded_state, eid) == pytest.approx(expected)


def test_cut_step_k1_equals_absolute_step(seeded_state):
    for eid in (0, 2, 4, 6):
        assert cut_step(seeded_state, eid, 1) == pytest.approx(
            degree_step_absolute(seeded_state, eid)
        )


def test_cut_step_k2_matches_equation_15(seeded_state):
    n = seeded_state.n
    for eid in (0, 2):
        u, v = seeded_state.endpoints(eid)
        expected = (
            (n - 2) * (seeded_state.delta[u] + seeded_state.delta[v])
            + 4 * seeded_state.residual_excluding(eid)
        ) / (2 * n - 2)
        assert cut_step(seeded_state, eid, 2) == pytest.approx(expected)


def test_full_step_is_remaining_residual(seeded_state):
    for eid in (0, 1):
        assert full_redistribution_step(seeded_state, eid) == pytest.approx(
            seeded_state.residual_excluding_edge_only(eid)
        )


def test_step_zero_when_graph_fully_preserved(small_power_law):
    state = SparsificationState(small_power_law)
    for eid in range(state.m):
        state.select_edge(eid)
    assert degree_step_absolute(state, 0) == pytest.approx(0.0)
    assert degree_step_relative(state, 0) == pytest.approx(0.0)
    assert cut_step(state, 0, 2) == pytest.approx(0.0, abs=1e-9)
    assert full_redistribution_step(state, 0) == pytest.approx(0.0, abs=1e-9)


class TestMakeRule:
    def test_k1_absolute(self, seeded_state):
        rule = make_rule(1, relative=False, n=seeded_state.n)
        assert rule is degree_step_absolute

    def test_k1_relative(self, seeded_state):
        rule = make_rule(1, relative=True, n=seeded_state.n)
        assert rule is degree_step_relative

    def test_string_n(self, seeded_state):
        rule = make_rule("n", relative=False, n=seeded_state.n)
        assert rule is full_redistribution_step

    def test_k_at_least_n_becomes_full(self, seeded_state):
        rule = make_rule(seeded_state.n + 1, relative=False, n=seeded_state.n)
        assert rule is full_redistribution_step

    def test_k2_wraps_cut_step(self, seeded_state):
        rule = make_rule(2, relative=False, n=seeded_state.n)
        assert rule(seeded_state, 0) == pytest.approx(cut_step(seeded_state, 0, 2))

    def test_relative_only_for_k1(self, seeded_state):
        with pytest.raises(ValueError):
            make_rule(2, relative=True, n=seeded_state.n)

    def test_invalid_k(self, seeded_state):
        with pytest.raises(ValueError):
            make_rule(0, relative=False, n=seeded_state.n)
        with pytest.raises(ValueError):
            make_rule("x", relative=False, n=seeded_state.n)


def test_optimal_step_zeroes_endpoint_gradient():
    """Applying the k=1 step makes delta(u) + delta(v) vanish (Eq. 8)."""
    g = UncertainGraph([(0, 1, 0.3), (1, 2, 0.4), (2, 0, 0.5), (0, 3, 0.6)])
    state = SparsificationState(g)
    state.select_edge(0, probability=0.3)
    step = degree_step_absolute(state, 0)
    state.set_probability(0, np.clip(0.3 + step, 0, 1))
    u, v = state.endpoints(0)
    if 0 <= 0.3 + step <= 1:  # unclamped case: gradient must vanish
        assert state.delta[u] + state.delta[v] == pytest.approx(0.0, abs=1e-12)


class TestArrayRules:
    """Every array rule matches its scalar sibling element for element
    (exact float equality: the arithmetic is mirrored per edge)."""

    def all_eids(self, state):
        return np.arange(state.m)

    def test_absolute_array_matches_scalar(self, seeded_state):
        from repro.core.rules import degree_step_absolute_array

        eids = self.all_eids(seeded_state)
        steps = degree_step_absolute_array(seeded_state, eids)
        for eid in eids:
            assert steps[eid] == degree_step_absolute(seeded_state, int(eid))

    def test_relative_array_matches_scalar(self, seeded_state):
        from repro.core.rules import degree_step_relative_array

        eids = self.all_eids(seeded_state)
        steps = degree_step_relative_array(seeded_state, eids)
        for eid in eids:
            assert steps[eid] == degree_step_relative(seeded_state, int(eid))

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_cut_array_matches_scalar(self, seeded_state, k):
        from repro.core.rules import cut_step_array

        eids = self.all_eids(seeded_state)
        steps = cut_step_array(seeded_state, eids, k)
        for eid in eids:
            assert steps[eid] == pytest.approx(
                cut_step(seeded_state, int(eid), k), rel=1e-15, abs=1e-15
            )

    def test_residual_excluding_array_matches_scalar(self, seeded_state):
        from repro.core.rules import residual_excluding_array

        eids = self.all_eids(seeded_state)
        residuals = residual_excluding_array(seeded_state, eids)
        for eid in eids:
            assert residuals[eid] == pytest.approx(
                seeded_state.residual_excluding(int(eid)), rel=1e-15, abs=1e-15
            )

    def test_full_redistribution_array_matches_scalar(self, seeded_state):
        from repro.core.rules import full_redistribution_step_array

        eids = self.all_eids(seeded_state)
        steps = full_redistribution_step_array(seeded_state, eids)
        for eid in eids:
            assert steps[eid] == pytest.approx(
                full_redistribution_step(seeded_state, int(eid)),
                rel=1e-15, abs=1e-15,
            )

    def test_make_array_rule_dispatch(self, seeded_state):
        from repro.core.rules import make_array_rule

        n = seeded_state.n
        eids = self.all_eids(seeded_state)
        for k, relative in ((1, False), (1, True), (2, False), ("n", False),
                            (n + 1, False)):
            scalar = make_rule(k, relative, n)
            array = make_array_rule(k, relative, n)
            steps = array(seeded_state, eids)
            for eid in (0, 1, seeded_state.m - 1):
                assert steps[eid] == pytest.approx(
                    scalar(seeded_state, eid), rel=1e-15, abs=1e-15
                )

    def test_make_array_rule_validation(self, seeded_state):
        from repro.core.rules import make_array_rule

        n = seeded_state.n
        with pytest.raises(ValueError):
            make_array_rule(2, True, n)  # relative is k = 1 only
        with pytest.raises(ValueError):
            make_array_rule(0, False, n)
        with pytest.raises(ValueError):
            make_array_rule("m", False, n)
