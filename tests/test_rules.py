"""Update rules: Eq. 8/9 (degrees), Eq. 13-15 (cuts), Eq. 16 (k = n)."""

import numpy as np
import pytest

from repro.core import SparsificationState, UncertainGraph
from repro.core.rules import (
    cut_step,
    degree_step_absolute,
    degree_step_relative,
    full_redistribution_step,
    make_rule,
)


@pytest.fixture
def seeded_state(small_power_law):
    state = SparsificationState(small_power_law)
    for eid in range(0, state.m, 2):
        state.select_edge(eid)
    return state


def test_absolute_step_is_mean_of_endpoint_deltas(seeded_state):
    for eid in (0, 2, 4):
        u, v = seeded_state.endpoints(eid)
        expected = 0.5 * (seeded_state.delta[u] + seeded_state.delta[v])
        assert degree_step_absolute(seeded_state, eid) == pytest.approx(expected)


def test_relative_step_weights_by_original_degree(seeded_state):
    for eid in (0, 2):
        u, v = seeded_state.endpoints(eid)
        pi_u = seeded_state.original_degrees[u]
        pi_v = seeded_state.original_degrees[v]
        expected = (
            pi_v * seeded_state.delta[u] + pi_u * seeded_state.delta[v]
        ) / (pi_u + pi_v)
        assert degree_step_relative(seeded_state, eid) == pytest.approx(expected)


def test_cut_step_k1_equals_absolute_step(seeded_state):
    for eid in (0, 2, 4, 6):
        assert cut_step(seeded_state, eid, 1) == pytest.approx(
            degree_step_absolute(seeded_state, eid)
        )


def test_cut_step_k2_matches_equation_15(seeded_state):
    n = seeded_state.n
    for eid in (0, 2):
        u, v = seeded_state.endpoints(eid)
        expected = (
            (n - 2) * (seeded_state.delta[u] + seeded_state.delta[v])
            + 4 * seeded_state.residual_excluding(eid)
        ) / (2 * n - 2)
        assert cut_step(seeded_state, eid, 2) == pytest.approx(expected)


def test_full_step_is_remaining_residual(seeded_state):
    for eid in (0, 1):
        assert full_redistribution_step(seeded_state, eid) == pytest.approx(
            seeded_state.residual_excluding_edge_only(eid)
        )


def test_step_zero_when_graph_fully_preserved(small_power_law):
    state = SparsificationState(small_power_law)
    for eid in range(state.m):
        state.select_edge(eid)
    assert degree_step_absolute(state, 0) == pytest.approx(0.0)
    assert degree_step_relative(state, 0) == pytest.approx(0.0)
    assert cut_step(state, 0, 2) == pytest.approx(0.0, abs=1e-9)
    assert full_redistribution_step(state, 0) == pytest.approx(0.0, abs=1e-9)


class TestMakeRule:
    def test_k1_absolute(self, seeded_state):
        rule = make_rule(1, relative=False, n=seeded_state.n)
        assert rule is degree_step_absolute

    def test_k1_relative(self, seeded_state):
        rule = make_rule(1, relative=True, n=seeded_state.n)
        assert rule is degree_step_relative

    def test_string_n(self, seeded_state):
        rule = make_rule("n", relative=False, n=seeded_state.n)
        assert rule is full_redistribution_step

    def test_k_at_least_n_becomes_full(self, seeded_state):
        rule = make_rule(seeded_state.n + 1, relative=False, n=seeded_state.n)
        assert rule is full_redistribution_step

    def test_k2_wraps_cut_step(self, seeded_state):
        rule = make_rule(2, relative=False, n=seeded_state.n)
        assert rule(seeded_state, 0) == pytest.approx(cut_step(seeded_state, 0, 2))

    def test_relative_only_for_k1(self, seeded_state):
        with pytest.raises(ValueError):
            make_rule(2, relative=True, n=seeded_state.n)

    def test_invalid_k(self, seeded_state):
        with pytest.raises(ValueError):
            make_rule(0, relative=False, n=seeded_state.n)
        with pytest.raises(ValueError):
            make_rule("x", relative=False, n=seeded_state.n)


def test_optimal_step_zeroes_endpoint_gradient():
    """Applying the k=1 step makes delta(u) + delta(v) vanish (Eq. 8)."""
    g = UncertainGraph([(0, 1, 0.3), (1, 2, 0.4), (2, 0, 0.5), (0, 3, 0.6)])
    state = SparsificationState(g)
    state.select_edge(0, probability=0.3)
    step = degree_step_absolute(state, 0)
    state.set_probability(0, np.clip(0.3 + step, 0, 1))
    u, v = state.endpoints(0)
    if 0 <= 0.3 + step <= 1:  # unclamped case: gradient must vanish
        assert state.delta[u] + state.delta[v] == pytest.approx(0.0, abs=1e-12)
