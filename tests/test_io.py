"""Edge-list I/O round trips and error handling."""

import pytest

from repro.core import UncertainGraph
from repro.datasets import flickr_like, read_edge_list, write_edge_list
from repro.exceptions import GraphError


def test_roundtrip(tmp_path, small_power_law):
    path = tmp_path / "graph.txt"
    write_edge_list(small_power_law, path)
    back = read_edge_list(path)
    # vertex tokens become strings on read
    assert back.number_of_edges() == small_power_law.number_of_edges()
    for u, v, p in small_power_law.edges():
        assert back.probability(str(u), str(v)) == pytest.approx(p, abs=1e-9)


def test_isolated_vertices_roundtrip(tmp_path):
    g = UncertainGraph([(0, 1, 0.5)], vertices=["lonely"])
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    back = read_edge_list(path)
    assert back.number_of_vertices() == 3
    assert "lonely" in back


def test_comments_and_blank_lines(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n\na b 0.5  # trailing comment\n\nc\n")
    g = read_edge_list(path)
    assert g.number_of_edges() == 1
    assert g.probability("a", "b") == 0.5
    assert "c" in g


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_non_numeric_probability_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b xyz\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_out_of_range_probability_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b 1.5\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_name_defaults_to_filename(tmp_path):
    path = tmp_path / "mygraph.txt"
    write_edge_list(UncertainGraph([(0, 1, 0.5)]), path)
    assert read_edge_list(path).name == "mygraph.txt"


def test_precision_preserved(tmp_path):
    g = UncertainGraph([(0, 1, 0.123456789)])
    path = tmp_path / "p.txt"
    write_edge_list(g, path)
    assert read_edge_list(path).probability("0", "1") == pytest.approx(
        0.123456789, abs=1e-9
    )
