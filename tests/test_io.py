"""Edge-list I/O round trips and error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainGraph
from repro.datasets import (
    dataset_digest,
    parse_edge_list,
    flickr_like,
    format_edge_list,
    graph_digest,
    read_edge_list,
    write_edge_list,
)
from repro.exceptions import GraphError


def test_roundtrip(tmp_path, small_power_law):
    path = tmp_path / "graph.txt"
    write_edge_list(small_power_law, path)
    back = read_edge_list(path)
    # vertex tokens become strings on read
    assert back.number_of_edges() == small_power_law.number_of_edges()
    for u, v, p in small_power_law.edges():
        assert back.probability(str(u), str(v)) == pytest.approx(p, abs=1e-9)


def test_isolated_vertices_roundtrip(tmp_path):
    g = UncertainGraph([(0, 1, 0.5)], vertices=["lonely"])
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    back = read_edge_list(path)
    assert back.number_of_vertices() == 3
    assert "lonely" in back


def test_comments_and_blank_lines(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n\na b 0.5  # trailing comment\n\nc\n")
    g = read_edge_list(path)
    assert g.number_of_edges() == 1
    assert g.probability("a", "b") == 0.5
    assert "c" in g


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_non_numeric_probability_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b xyz\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_out_of_range_probability_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b 1.5\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_name_defaults_to_filename(tmp_path):
    path = tmp_path / "mygraph.txt"
    write_edge_list(UncertainGraph([(0, 1, 0.5)]), path)
    assert read_edge_list(path).name == "mygraph.txt"


def test_precision_preserved(tmp_path):
    g = UncertainGraph([(0, 1, 0.123456789)])
    path = tmp_path / "p.txt"
    write_edge_list(g, path)
    assert read_edge_list(path).probability("0", "1") == pytest.approx(
        0.123456789, abs=1e-9
    )


def test_roundtrip_bit_identical(tmp_path):
    # repr() serialisation: the awkward cases a fixed-precision format
    # loses — 17-significant-digit values, subnormal-adjacent tiny
    # probabilities, and 1 - 2^-53.
    probs = [0.1, 0.3333333333333333, 0.9999999999999999, 5e-324, 0.7 * 0.3]
    g = UncertainGraph([(i, i + 1, p) for i, p in enumerate(probs)])
    path = tmp_path / "exact.txt"
    write_edge_list(g, path)
    back = read_edge_list(path)
    for i, p in enumerate(probs):
        assert back.probability(str(i), str(i + 1)) == p  # exact, not approx


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0,
                  exclude_min=True, allow_nan=False),
        min_size=1, max_size=30,
    )
)
def test_roundtrip_bit_identical_property(tmp_path_factory, probs):
    g = UncertainGraph([(i, i + 1, p) for i, p in enumerate(probs)])
    path = tmp_path_factory.mktemp("io") / "g.txt"
    write_edge_list(g, path)
    back = read_edge_list(path)
    for i, p in enumerate(probs):
        assert back.probability(str(i), str(i + 1)) == p
    # A second round trip is a fixed point: same bytes, same digest.
    path2 = tmp_path_factory.mktemp("io") / "g2.txt"
    write_edge_list(back, path2)
    assert path.read_text().splitlines()[1:] == path2.read_text().splitlines()[1:]
    assert graph_digest(back) == graph_digest(g)


@pytest.mark.parametrize("vertex", ["has space", "tab\tsep", "new\nline",
                                    "comment#start", "#", ""])
def test_unserialisable_edge_token_rejected_at_write(tmp_path, vertex):
    g = UncertainGraph([(vertex, "ok", 0.5)])
    with pytest.raises(GraphError, match="serialis"):
        write_edge_list(g, tmp_path / "bad.txt")


def test_unserialisable_isolated_token_rejected_at_write(tmp_path):
    g = UncertainGraph([("a", "b", 0.5)], vertices=["lone some"])
    with pytest.raises(GraphError, match="serialis"):
        write_edge_list(g, tmp_path / "bad.txt")


def test_unserialisable_token_never_written(tmp_path):
    # The rejection happens before the file is created/overwritten in a
    # mis-parseable state: both directions of the regression.
    path = tmp_path / "g.txt"
    with pytest.raises(GraphError):
        write_edge_list(UncertainGraph([("u v", "w", 0.5)]), path)
    # Had the write gone through, the reader would have seen 4 tokens:
    path.write_text("u v w 0.5\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_hash_token_silently_misparsed_without_write_guard(tmp_path):
    # Documents the read-side failure the write guard prevents: '#'
    # starts a comment, so an unguarded write would silently drop data.
    path = tmp_path / "g.txt"
    path.write_text("a #b 0.5\n")
    g = read_edge_list(path)
    assert g.number_of_edges() == 0  # the line degenerated to a bare vertex


def test_dataset_digest_tracks_content(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("x y 0.5\n")
    b.write_text("x y 0.5\n")
    assert dataset_digest(a) == dataset_digest(b)
    b.write_text("x y 0.25\n")
    assert dataset_digest(a) != dataset_digest(b)


def test_graph_digest_name_independent(small_power_law):
    renamed = small_power_law.copy(name="something else entirely")
    assert graph_digest(renamed) == graph_digest(small_power_law)
    mutated = small_power_law.copy()
    u, v, p = next(iter(mutated.edges()))
    mutated.set_probability(u, v, p / 2)
    assert graph_digest(mutated) != graph_digest(small_power_law)


def test_format_edge_list_matches_file(tmp_path, small_sparse):
    path = tmp_path / "g.txt"
    write_edge_list(small_sparse, path)
    assert path.read_text() == format_edge_list(small_sparse)


class TestParseEngineParity:
    """The chunked fast parser is pinned bit-identical to the scalar loop.

    Same graph (vertices, edges, insertion order, Python-float
    probabilities), same serialisation, and the same exception type /
    message / line number on every malformed input — the fast path is
    an implementation detail, never an observable change.
    """

    @staticmethod
    def both(text):
        return (parse_edge_list(text, source="f", engine="scalar"),
                parse_edge_list(text, source="f", engine="fast"))

    def assert_identical(self, text):
        scalar, fast = self.both(text)
        assert list(scalar.vertices()) == list(fast.vertices())
        assert list(scalar.edges()) == list(fast.edges())
        assert format_edge_list(scalar) == format_edge_list(fast)
        for _u, _v, p in fast.edges():
            assert type(p) is float  # repr(np.float64) would break writes

    def assert_same_error(self, text):
        errors = []
        for engine in ("scalar", "fast"):
            with pytest.raises(Exception) as excinfo:
                parse_edge_list(text, source="f", engine=engine)
            errors.append(excinfo.value)
        scalar_error, fast_error = errors
        assert type(scalar_error) is type(fast_error)
        assert str(scalar_error) == str(fast_error)

    def test_fixture_files_identical(self, small_power_law, small_sparse):
        for g in (small_power_law, small_sparse):
            self.assert_identical(format_edge_list(g))

    def test_structure_variants_identical(self):
        self.assert_identical(
            "# header\n\nv0\na b 0.5\nv1\n  c   d  0.25  # trailing\n"
            "a b 0.75\nv0\n\n# tail\n"
        )
        self.assert_identical("")
        self.assert_identical("x\ny\nz\n")

    def test_repr_floats_identical(self):
        probs = [0.1, 0.3333333333333333, 0.9999999999999999, 5e-324,
                 0.7 * 0.3, 1.0]
        text = "".join(f"u{i} w{i} {p!r}\n" for i, p in enumerate(probs))
        scalar, fast = self.both(text)
        for i, p in enumerate(probs):
            assert fast.probability(f"u{i}", f"w{i}") == p  # exact
        assert list(scalar.edges()) == list(fast.edges())

    def test_large_input_identical(self):
        # Big enough that the fast path runs multiple full chunks.
        import random

        rng = random.Random(11)
        lines = []
        for i in range(3000):
            roll = rng.random()
            if roll < 0.02:
                lines.append(f"iso{i}")
            elif roll < 0.04:
                lines.append("# comment")
            else:
                lines.append(
                    f"n{rng.randrange(400)} m{rng.randrange(400)} "
                    f"{rng.random()!r}"
                )
        self.assert_identical("\n".join(lines) + "\n")

    @pytest.mark.parametrize("text", [
        "a b 0.5\nc d\n",                      # structure error
        "a b 0.5\nc d xx\ne f 0.2\n",          # non-numeric probability
        "a b 0.5\nc d 2.0\n",                  # out of range
        "a b 0.0\n",                           # zero probability
        "a b 0.5\nc c 0.2\n",                  # self-loop
        "a b zz\nc c 0.2\n",                   # parse error beats self-loop
        "a b 3.0\nc c 0.2\n",                  # range error beats self-loop
        "a a 0.5\n",                           # self-loop on first line
        "a b 1_0\n",                           # float() accepts, range fails
        "a b nan\n",                           # converts, domain rejects
        "a b 0.5\nc d 0.3 extra\n",            # four tokens
        "a b xx\nc d yy\n",                    # first bad token wins
    ])
    def test_error_parity(self, text):
        self.assert_same_error(text)

    def test_error_parity_beyond_first_chunk(self):
        from repro.datasets.io import _FAST_PARSE_CHUNK

        prefix = "a b 0.5\n" * (_FAST_PARSE_CHUNK + 7)
        self.assert_same_error(prefix + "bad line with four tokens\n")
        self.assert_same_error(prefix + "c d not-a-number\n")

    def test_auto_dispatch_threshold(self):
        from repro.datasets.io import _FAST_PARSE_THRESHOLD

        big = "\n".join(
            f"u{i} w{i} 0.5" for i in range(_FAST_PARSE_THRESHOLD + 1)
        )
        auto = parse_edge_list(big)
        assert list(auto.edges()) == \
            list(parse_edge_list(big, engine="scalar").edges())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            parse_edge_list("a b 0.5\n", engine="turbo")
