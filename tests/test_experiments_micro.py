"""Micro-scale smoke tests for every experiment module.

The benchmarks exercise these at `tiny` scale with shape assertions;
here a *micro* scale (the smallest feasible proxies, 2 alphas, minimal
MC budgets) checks that each run function returns well-formed tables —
fast enough for the unit suite.
"""

import dataclasses
import math

import pytest

from repro.experiments import (
    ExperimentScale,
    run_fig04a,
    run_fig04b,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig09_estimation,
    run_fig10,
    run_fig11,
    run_fig12,
    run_sample_budget,
)

MICRO = ExperimentScale(
    name="micro",
    flickr_n=40, flickr_avg_degree=30, twitter_n=40, twitter_avg_degree=26,
    reduced_n=30, mc_samples=10, query_pairs=8, variance_runs=3,
    variance_samples=10, cut_samples_per_k=5, density_base_n=90,
    alphas=(0.2, 0.5),
)


def assert_table_ok(table, rows=None):
    assert table.rows, table.title
    if rows is not None:
        assert len(table.rows) == rows
    for row in table.rows:
        assert len(row) == len(table.headers)
        for value in row[1:]:
            assert not (isinstance(value, float) and math.isnan(value)), table.title


def test_fig04(capsys):
    assert_table_ok(run_fig04a(MICRO))
    timing = run_fig04b(MICRO)
    assert_table_ok(timing, rows=3)
    assert all(v >= 0 for row in timing.rows for v in row[1:])


def test_fig04_loop_engine():
    assert_table_ok(run_fig04a(MICRO, engine="loop"))


def test_fig05_engines_agree():
    """fig05 rides the grid driver; the loop engine stays selectable and
    both engines yield the same table shapes (EMD-free sweep: GDB-only,
    so values agree within the loop-vs-vector contract tolerances)."""
    from repro.experiments import run_fig05

    vector_mae, vector_entropy = run_fig05(MICRO, h_values=(0.0, 1.0))
    loop_mae, loop_entropy = run_fig05(MICRO, h_values=(0.0, 1.0), engine="loop")
    for table in (vector_mae, vector_entropy, loop_mae, loop_entropy):
        assert_table_ok(table, rows=2)
    for vector_table, loop_table in (
        (vector_mae, loop_mae), (vector_entropy, loop_entropy)
    ):
        for vector_row, loop_row in zip(vector_table.rows, loop_table.rows):
            assert vector_row[0] == loop_row[0]
            for a, b in zip(vector_row[1:], loop_row[1:]):
                assert a == pytest.approx(b, rel=0.05, abs=1e-3)


def test_fig06():
    results = run_fig06(MICRO)
    assert set(results) == {"flickr", "twitter"}
    for degree, cuts in results.values():
        assert_table_ok(degree, rows=4)
        assert_table_ok(cuts, rows=4)


def test_fig07_and_fig08():
    degree, cuts = run_fig07(MICRO)
    assert_table_ok(degree, rows=4)
    assert_table_ok(cuts, rows=4)
    entropy = run_fig08(MICRO)
    assert set(entropy) == {"flickr", "twitter", "density"}
    for table in entropy.values():
        assert_table_ok(table, rows=4)
        for row in table.rows:
            assert all(0.0 <= v <= 1.0 for v in row[1:])


def test_fig09():
    results = run_fig09(MICRO)
    for table in results.values():
        assert_table_ok(table, rows=3)


def test_fig09_estimation():
    results = run_fig09_estimation(MICRO)
    for table in results.values():
        assert_table_ok(table, rows=3)
        assert table.column("query") == ["SP", "WSP", "RL"]
        assert all(s >= 0 for s in table.column("seconds"))


def test_fig10_single_query():
    results = run_fig10(MICRO, query_names=("RL",))
    for tables in results.values():
        assert set(tables) == {"RL"}
        assert_table_ok(tables["RL"], rows=4)


def test_fig10_weighted_query():
    results = run_fig10(MICRO, query_names=("WSP",))
    for tables in results.values():
        assert set(tables) == {"WSP"}
        assert_table_ok(tables["WSP"], rows=4)


def test_fig11_single_query():
    tables = run_fig11(MICRO, query_names=("PR",))
    assert set(tables) == {"PR"}
    assert_table_ok(tables["PR"], rows=4)


def test_fig11_weighted_query():
    # Sparse density rungs can disconnect a pair in every sampled world
    # at micro scale (an all-nan unit for SP and WSP alike), so sweep
    # only the dense rungs here.
    dense = dataclasses.replace(MICRO, densities=(0.5, 0.9))
    tables = run_fig11(dense, query_names=("WSP",))
    assert set(tables) == {"WSP"}
    assert_table_ok(tables["WSP"], rows=4)


def test_fig12_single_query():
    results = run_fig12(MICRO, query_names=("RL",), alphas=(0.2,))
    for tables in results.values():
        table = tables["RL"]
        assert table.rows
        for row in table.rows:
            value = row[1]
            assert value >= 0 or math.isinf(value)


def test_sample_budget():
    table = run_sample_budget(MICRO, max_samples=200)
    assert_table_ok(table, rows=5)
    assert table.cell("original", "vs_original") == 1.0
