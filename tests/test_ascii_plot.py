"""ASCII chart rendering."""

from repro.experiments import render_chart
from repro.experiments.common import ResultTable


def make_table(rows):
    table = ResultTable(title="demo", headers=["m", "8%", "16%", "32%"])
    for row in rows:
        table.add_row(*row)
    return table


def test_contains_title_axis_and_legend():
    chart = render_chart(make_table([("NI", 1.0, 0.5, 0.25)]))
    assert "demo" in chart
    assert "o=NI" in chart
    assert "8%" in chart


def test_log_scale_for_wide_ranges():
    chart = render_chart(make_table([("a", 1e-6, 1e-3, 1.0)]))
    assert "y[log]" in chart


def test_linear_scale_for_narrow_ranges():
    chart = render_chart(make_table([("a", 1.0, 1.5, 2.0)]))
    assert "y[lin]" in chart


def test_multiple_series_distinct_markers():
    chart = render_chart(
        make_table([("first", 1.0, 2.0, 3.0), ("second", 3.0, 2.0, 1.0)])
    )
    assert "o=first" in chart and "x=second" in chart


def test_collisions_marked():
    chart = render_chart(
        make_table([("a", 1.0, 2.0, 4.0), ("b", 1.0, 2.0, 4.0)])
    )
    assert "!" in chart  # identical series overlap everywhere


def test_all_nonpositive_degrades_gracefully():
    chart = render_chart(make_table([("a", 0.0, 0.0, 0.0)]))
    assert "non-positive" in chart


def test_custom_title_and_height():
    chart = render_chart(make_table([("a", 1.0, 10.0, 100.0)]),
                         height=5, title="custom")
    assert chart.splitlines()[0] == "custom"
    # 5 grid rows between the header lines and the axis.
    grid_rows = [line for line in chart.splitlines() if line.startswith("|")]
    assert len(grid_rows) == 5
