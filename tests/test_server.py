"""Server building blocks: queue, artifact cache, meter, scheduler.

Each component is exercised in isolation with injected clocks and
plain threads — no HTTP, no sparsification.  The integration suite
(``test_server_api.py``) covers the assembled service.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import AdmissionError, ServerError
from repro.server import (
    ArtifactCache,
    PriorityJobQueue,
    Scheduler,
    ThroughputMeter,
)


class FakeClock:
    """Deterministic injectable monotonic clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPriorityJobQueue:
    def test_priority_ordering(self):
        q = PriorityJobQueue(max_depth=10)
        q.submit("c", {}, priority=30)
        q.submit("a", {}, priority=10)
        q.submit("b", {}, priority=20)
        kinds = [q.claim(timeout=0).kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_fifo_within_priority(self):
        q = PriorityJobQueue(max_depth=10)
        for i in range(5):
            q.submit(f"job{i}", {}, priority=20)
        kinds = [q.claim(timeout=0).kind for _ in range(5)]
        assert kinds == [f"job{i}" for i in range(5)]

    def test_admission_control_overflow(self):
        q = PriorityJobQueue(max_depth=2)
        q.submit("a", {})
        q.submit("b", {})
        with pytest.raises(AdmissionError, match="full"):
            q.submit("c", {})
        assert q.stats()["rejected"] == 1
        # Claiming frees a slot: admission tracks *pending* depth.
        q.claim(timeout=0)
        q.submit("c", {})
        assert q.depth == 2

    def test_claim_timeout_returns_none(self):
        q = PriorityJobQueue(max_depth=2)
        assert q.claim(timeout=0.01) is None

    def test_run_job_and_wait_relay_result_and_error(self):
        q = PriorityJobQueue(max_depth=4)
        ok = q.submit("ok", {"x": 2})
        bad = q.submit("bad", {})

        def execute(job):
            if job.kind == "bad":
                raise ValueError("boom")
            return job.params["x"] * 21

        q.run_job(q.claim(timeout=0), execute)
        q.run_job(q.claim(timeout=0), execute)
        assert ok.wait(timeout=1) == 42
        with pytest.raises(ValueError, match="boom"):
            bad.wait(timeout=1)
        stats = q.stats()
        assert stats["completed"] == 1 and stats["failed"] == 1

    def test_close_wakes_blocked_claimers(self):
        q = PriorityJobQueue(max_depth=4)
        claims: list = []
        started = threading.Event()

        def blocked_claim():
            started.set()
            claims.append(q.claim())

        claimer = threading.Thread(target=blocked_claim)
        claimer.start()
        started.wait(5)
        q.close()
        claimer.join(timeout=5)
        assert claims == [None]

    def test_close_fails_pending_jobs_and_refuses_new_work(self):
        q = PriorityJobQueue(max_depth=4)
        stranded = q.submit("stranded", {})
        q.close()
        with pytest.raises(ServerError, match="closed"):
            stranded.wait(timeout=1)
        with pytest.raises(ServerError, match="closed"):
            q.submit("late", {})

    def test_rejects_bad_depth(self):
        with pytest.raises(ServerError):
            PriorityJobQueue(max_depth=0)

    def test_claim_timeout_is_a_deadline_across_wakeups(self):
        # A claimer that is notified but loses the job (or wakes
        # spuriously) must not restart the full timeout: total blocking
        # stays bounded by the requested timeout.
        q = PriorityJobQueue(max_depth=4)
        started = threading.Event()
        result: list = []

        def claimer():
            started.set()
            result.append(q.claim(timeout=0.3))

        thread = threading.Thread(target=claimer)
        start = time.monotonic()
        thread.start()
        started.wait(5)
        # Hammer the condition with job-less notifications; each one
        # would restart a full 0.3 s wait under restart-on-wakeup.
        for _ in range(10):
            with q._not_empty:
                q._not_empty.notify_all()
            time.sleep(0.05)
        thread.join(timeout=5)
        elapsed = time.monotonic() - start
        assert result == [None]
        assert elapsed < 1.0, f"claim blocked {elapsed:.2f}s for a 0.3s timeout"


class TestArtifactCache:
    def test_lru_eviction_bound(self):
        cache = ArtifactCache(capacity=3)
        for key in "abcd":
            cache.put(key, key.encode())
        assert len(cache) == 3
        assert cache.get("a") is None  # evicted (oldest)
        assert cache.get("d") == b"d"
        assert cache.stats()["evictions"] == 1

    def test_lru_access_refreshes_recency(self):
        cache = ArtifactCache(capacity=2)
        cache.put("a", b"a")
        cache.put("b", b"b")
        cache.get("a")          # a becomes most recent
        cache.put("c", b"c")    # evicts b, not a
        assert cache.get("a") == b"a"
        assert cache.get("b") is None

    def test_get_or_compute_caches_once(self):
        cache = ArtifactCache(capacity=4)
        calls = []
        value, cached = cache.get_or_compute("k", lambda: calls.append(1) or b"v")
        assert (value, cached) == (b"v", False)
        value, cached = cache.get_or_compute("k", lambda: calls.append(1) or b"v2")
        assert (value, cached) == (b"v", True)
        assert len(calls) == 1

    def test_single_flight_concurrent_identical_compute_once(self):
        cache = ArtifactCache(capacity=4)
        n = 8
        barrier = threading.Barrier(n)
        computed = []
        compute_entered = threading.Event()
        release = threading.Event()

        def compute():
            computed.append(threading.get_ident())
            compute_entered.set()
            release.wait(5)  # hold every follower in the flight
            return b"artifact-bytes"

        results: list = [None] * n

        def request(i):
            barrier.wait()
            if i == 0:
                results[i] = cache.get_or_compute("k", compute)
            else:
                compute_entered.wait(5)  # guarantee followers join, not lead
                results[i] = cache.get_or_compute("k", compute)

        threads = [threading.Thread(target=request, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        compute_entered.wait(5)
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert len(computed) == 1, "single flight must compute exactly once"
        bodies = {value for value, _ in results}
        assert bodies == {b"artifact-bytes"}, "every caller shares one artifact"
        served_without_compute = sum(1 for _, cached in results if cached)
        assert served_without_compute == n - 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] + stats["single_flight_joins"] == n - 1

    def test_failed_flight_propagates_and_is_not_cached(self):
        cache = ArtifactCache(capacity=4)

        def explode():
            raise RuntimeError("transient")

        with pytest.raises(RuntimeError, match="transient"):
            cache.get_or_compute("k", explode)
        # The failure is not cached: the next caller recomputes.
        value, cached = cache.get_or_compute("k", lambda: b"ok")
        assert (value, cached) == (b"ok", False)

    def test_follower_receives_leader_error_with_original_type(self):
        # Followers must see the leader's exact exception class so the
        # HTTP layer maps the same status (AdmissionError -> 429, not a
        # blanket 400/500 from a ServerError wrapper).
        cache = ArtifactCache(capacity=4)
        leader_entered = threading.Event()
        release = threading.Event()
        errors: list = []

        def explode():
            leader_entered.set()
            release.wait(5)
            raise AdmissionError("queue full")

        def leader():
            try:
                cache.get_or_compute("k", explode)
            except BaseException as error:  # noqa: BLE001
                errors.append(("leader", error))

        def follower():
            leader_entered.wait(5)
            try:
                cache.get_or_compute("k", explode)
            except BaseException as error:  # noqa: BLE001
                errors.append(("follower", error))

        threads = [threading.Thread(target=leader),
                   threading.Thread(target=follower)]
        for t in threads:
            t.start()
        leader_entered.wait(5)
        time.sleep(0.05)  # let the follower join the flight
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert len(errors) == 2
        assert all(type(error) is AdmissionError for _, error in errors)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ServerError):
            ArtifactCache(capacity=0)


class TestSpillTier:
    """Disk-spill tier: evictions persist, reloads verify, budget bounds."""

    def test_evicted_bytes_spill_and_reload(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path))
        cache.put("a", b"artifact-a")
        cache.put("b", b"artifact-b")      # evicts a -> disk
        assert cache.stats()["spill"]["spills"] == 1
        assert any(p.suffix == ".art" for p in tmp_path.iterdir())
        assert "a" in cache                 # visible via the spill tier
        assert cache.get("a") == b"artifact-a"   # verified reload
        stats = cache.stats()
        assert stats["spill"]["hits"] == 1
        assert stats["hits"] == 0           # disk hit, not a memory hit
        assert cache.get("a") == b"artifact-a"   # now promoted to memory
        assert cache.stats()["hits"] == 1

    def test_get_or_compute_served_from_spill(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path))
        cache.put("a", b"va")
        cache.put("b", b"vb")
        value, cached = cache.get_or_compute("a", lambda: b"recomputed")
        assert (value, cached) == (b"va", True)

    def test_corrupted_spill_never_served(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path))
        cache.put("a", b"artifact-a")
        cache.put("b", b"artifact-b")
        for spilled in tmp_path.glob("*.art"):
            spilled.write_bytes(b"tampered")
        assert cache.get("a") is None       # digest mismatch -> dropped
        stats = cache.stats()
        assert stats["spill"]["corrupt"] == 1
        assert stats["misses"] == 1
        assert "a" not in cache             # forgotten, not retried

    def test_lost_spill_file_counts_corrupt(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path))
        cache.put("a", b"artifact-a")
        cache.put("b", b"artifact-b")
        for spilled in tmp_path.glob("*.art"):
            spilled.unlink()
        assert cache.get("a") is None
        assert cache.stats()["spill"]["corrupt"] == 1

    def test_byte_budget_evicts_oldest_spill(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path),
                              spill_capacity_bytes=25)
        cache.put("a", b"x" * 10)
        cache.put("b", b"y" * 10)   # spills a (10 bytes on disk)
        cache.put("c", b"z" * 10)   # spills b (20 bytes)
        cache.put("d", b"w" * 10)   # spills c -> 30 bytes, drops a
        stats = cache.stats()["spill"]
        assert stats["evictions"] == 1
        assert stats["bytes"] <= 25
        assert cache.get("a") is None
        assert cache.get("b") == b"y" * 10

    def test_non_bytes_artifacts_do_not_spill(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path))
        cache.put("a", {"not": "bytes"})
        cache.put("b", b"bytes")
        assert list(tmp_path.glob("*.art")) == []
        assert cache.get("a") is None

    def test_fresh_put_supersedes_spilled_value(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path))
        cache.put("a", b"old")
        cache.put("b", b"other")    # spills old a
        cache.put("a", b"new")      # supersedes: spill entry dropped
        assert cache.get("a") == b"new"
        assert cache.stats()["spill"]["entries"] <= 1

    def test_stats_shape(self, tmp_path):
        assert "spill" not in ArtifactCache(capacity=2).stats()
        cache = ArtifactCache(capacity=2, spill_dir=str(tmp_path),
                              spill_capacity_bytes=123)
        spill = cache.stats()["spill"]
        assert spill == {"entries": 0, "bytes": 0, "capacity_bytes": 123,
                         "spills": 0, "hits": 0, "evictions": 0,
                         "corrupt": 0}

    def test_clear_removes_spill_files(self, tmp_path):
        cache = ArtifactCache(capacity=1, spill_dir=str(tmp_path))
        cache.put("a", b"va")
        cache.put("b", b"vb")
        assert list(tmp_path.glob("*.art"))
        cache.clear()
        assert list(tmp_path.glob("*.art")) == []
        assert cache.stats()["spill"]["spills"] == 0


class TestThroughputMeter:
    def test_rates_over_window(self):
        clock = FakeClock()
        meter = ThroughputMeter(window=60.0, clock=clock)
        for _ in range(10):
            clock.advance(1.0)
            meter.record("sparsify", 0.01, worlds=0)
            meter.record("estimate", 0.02, worlds=500)
        # 20 requests / 10 elapsed seconds (window not yet full).
        assert meter.queries_per_second() == pytest.approx(2.0)
        assert meter.queries_per_second("estimate") == pytest.approx(1.0)
        assert meter.queries_per_second("nope") == 0.0
        assert meter.worlds_per_second() == pytest.approx(500.0)

    def test_window_expires_old_observations(self):
        clock = FakeClock()
        meter = ThroughputMeter(window=10.0, clock=clock)
        meter.record("sparsify", 0.01)
        clock.advance(100.0)
        assert meter.queries_per_second() == 0.0
        # Totals are cumulative even when the window empties.
        assert meter.snapshot()["total_requests"] == 1

    def test_latency_percentiles(self):
        clock = FakeClock()
        meter = ThroughputMeter(clock=clock)
        for ms in range(1, 101):  # 1..100 ms
            meter.record("sparsify", ms / 1000.0)
        p = meter.latency_percentiles("sparsify")
        assert p["p50"] == pytest.approx(0.050)
        assert p["p90"] == pytest.approx(0.090)
        assert p["p99"] == pytest.approx(0.099)
        assert meter.latency_percentiles("missing") == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0
        }

    def test_snapshot_shape(self):
        clock = FakeClock()
        meter = ThroughputMeter(clock=clock)
        meter.record("estimate", 0.5, worlds=200)
        clock.advance(2.0)
        doc = meter.snapshot()
        assert doc["total_worlds"] == 200
        assert doc["worlds_per_second"] == pytest.approx(100.0)
        endpoint = doc["endpoints"]["estimate"]
        assert endpoint["requests"] == 1
        assert endpoint["latency_s"]["p50"] == pytest.approx(0.5)


class TestScheduler:
    def test_tick_determinism(self):
        clock = FakeClock()
        scheduler = Scheduler(clock=clock)
        fired: list[str] = []
        scheduler.add("a", 10.0, lambda: fired.append("a"))
        scheduler.add("b", 15.0, lambda: fired.append("b"))
        sequence = []
        for now in (5, 10, 15, 20, 30, 30):
            clock.now = float(now)
            sequence.append(scheduler.tick())
        # a fires at 10, 20, 30; b at 15, 30 — ties break by name, a
        # second tick at the same instant fires nothing.
        assert sequence == [[], ["a"], ["b"], ["a"], ["a", "b"], []]
        assert fired == ["a", "b", "a", "a", "b"]

    def test_missed_intervals_run_once_and_are_counted(self):
        clock = FakeClock()
        scheduler = Scheduler(clock=clock)
        runs: list[float] = []
        task = scheduler.add("t", 10.0, lambda: runs.append(clock.now))
        clock.now = 95.0  # 9 intervals elapsed, all missed but one
        assert scheduler.tick() == ["t"]
        assert len(runs) == 1 and task.runs == 1
        assert task.missed == 8
        assert task.next_run == pytest.approx(100.0)

    def test_action_error_is_recorded_not_raised(self):
        clock = FakeClock()
        scheduler = Scheduler(clock=clock)

        def explode():
            raise RuntimeError("refresh failed")

        task = scheduler.add("t", 5.0, explode)
        clock.now = 5.0
        assert scheduler.tick() == ["t"]
        assert "refresh failed" in task.last_error
        clock.now = 100.0
        scheduler.tick()  # still scheduled, still alive

    def test_delay_and_remove_and_replace(self):
        clock = FakeClock()
        scheduler = Scheduler(clock=clock)
        fired: list[str] = []
        scheduler.add("t", 100.0, lambda: fired.append("early"), delay=1.0)
        clock.now = 1.0
        assert scheduler.tick() == ["t"]
        scheduler.add("t", 100.0, lambda: fired.append("replaced"))
        clock.now = 101.0
        scheduler.tick()
        assert fired == ["early", "replaced"]
        assert scheduler.remove("t") is True
        assert scheduler.remove("t") is False
        assert scheduler.tasks() == []

    def test_rejects_bad_interval(self):
        with pytest.raises(ServerError):
            Scheduler(clock=FakeClock()).add("t", 0.0, lambda: None)
