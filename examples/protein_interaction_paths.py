"""Scenario: path queries on an uncertain protein-interaction network.

In biological databases, edges between proteins carry confidence scores
from noisy experiments (the paper's PPI motivation).  A common task is
estimating the expected interaction-path length between protein pairs
and the probability they interact at all (reliability).  Exact
computation is #P-hard; this example compares plain Monte-Carlo, the
stratified estimator of [23], and Monte-Carlo on a sparsified network —
three routes to the same answers with different cost profiles.

Run:  python examples/protein_interaction_paths.py
"""

from repro import datasets, sparsify
from repro.queries import ReliabilityQuery, ShortestPathQuery, sample_vertex_pairs
from repro.sampling import (
    MonteCarloEstimator,
    StratifiedEstimator,
    exact_reliability,
)


def main() -> None:
    # Small PPI-like network: sparse, moderate confidence scores.
    network = datasets.erdos_renyi_uncertain(
        n=120, avg_degree=24, p_mean=0.35, rng=13, name="ppi",
    )
    print(f"interaction network: {network}")

    pairs = sample_vertex_pairs(network, 20, rng=1)
    reliability = ReliabilityQuery(pairs)
    distance = ShortestPathQuery(pairs)

    # 1. Plain Monte-Carlo on the full network.
    mc = MonteCarloEstimator(network, n_samples=400)
    rl_full = mc.run(reliability, rng=2).scalar_estimate()
    sp_full = mc.run(distance, rng=2).scalar_estimate()

    # 2. Stratified sampling (conditions the 4 highest-entropy edges).
    stratified = StratifiedEstimator(network, n_samples=400, r=4)
    rl_stratified = stratified.run(reliability, rng=3)

    # 3. Monte-Carlo on a 40% sparsified network.
    sparse = sparsify(network, alpha=0.4, variant="EMD^R-t", rng=5)
    mc_sparse = MonteCarloEstimator(sparse, n_samples=400)
    rl_sparse = mc_sparse.run(reliability, rng=2).scalar_estimate()
    sp_sparse = mc_sparse.run(distance, rng=2).scalar_estimate()

    print(f"\nmean pairwise reliability ({len(pairs)} pairs):")
    print(f"  plain MC:           {rl_full:.4f}")
    print(f"  stratified MC:      {rl_stratified:.4f}")
    print(f"  MC on sparsified:   {rl_sparse:.4f}")

    print(f"\nmean interaction-path length (connected worlds only):")
    print(f"  plain MC:           {sp_full:.4f}")
    print(f"  MC on sparsified:   {sp_sparse:.4f}")

    # Cross-check one pair against the exact value on a tiny subnetwork.
    tiny = datasets.erdos_renyi_uncertain(
        n=8, avg_degree=4, p_mean=0.4, rng=17, name="tiny-ppi",
    )
    u, v = tiny.vertices()[0], tiny.vertices()[-1]
    exact = exact_reliability(tiny, u, v)
    mc_tiny = MonteCarloEstimator(tiny, n_samples=3000).run(
        ReliabilityQuery([(0, tiny.number_of_vertices() - 1)]), rng=6
    ).scalar_estimate()
    print(f"\nvalidation on 8-protein subnetwork:")
    print(f"  exact reliability:  {exact:.4f}")
    print(f"  Monte-Carlo:        {mc_tiny:.4f}")


if __name__ == "__main__":
    main()
