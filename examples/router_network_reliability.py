"""Scenario: communication-network reliability (paper's intro use case).

A mesh router network where each link has a failure probability.
Operators want fast what-if reliability estimates ("can rack A still
reach rack B?"), but Monte-Carlo on the full topology is expensive.
Sparsifying the uncertain topology keeps reliability answers accurate
while sampling fewer links per simulated world — and, because the
sparsified graph has lower entropy, each estimate is *more stable*
(fewer samples needed for the same confidence width).

Run:  python examples/router_network_reliability.py
"""

import numpy as np

from repro import datasets, sparsify
from repro.metrics import relative_entropy
from repro.queries import ReliabilityQuery
from repro.sampling import MonteCarloEstimator, repeated_estimates, unbiased_variance


def main() -> None:
    # 12x12 mesh, link reliability ~0.85 (drawn per link).
    network = datasets.grid_uncertain(12, 12, p_mean=0.85, rng=3)
    print(f"router mesh: {network}")

    # Corner-to-corner and edge-to-edge reachability pairs.
    n = network.number_of_vertices()
    pairs = [(0, n - 1), (11, n - 12), (0, n - 12), (5, n - 6)]
    query = ReliabilityQuery(pairs)

    sparse = sparsify(network, alpha=0.6, variant="GDB^A-t", rng=3)
    print(f"sparsified:  {sparse} "
          f"(entropy ratio {relative_entropy(sparse, network):.3f})")

    print("\npair reliabilities (500-world Monte-Carlo):")
    original = MonteCarloEstimator(network, n_samples=500).run(query, rng=1)
    reduced = MonteCarloEstimator(sparse, n_samples=500).run(query, rng=1)
    for pair, a, b in zip(pairs, original.unit_estimates(), reduced.unit_estimates()):
        print(f"  {pair}: original {a:.3f}  sparsified {b:.3f}  "
              f"error {abs(a - b):.3f}")

    # Variance protocol: how stable is each estimator across reruns?
    var_original = unbiased_variance(
        repeated_estimates(network, query, runs=20, n_samples=100, rng=5)
    )
    var_sparse = unbiased_variance(
        repeated_estimates(sparse, query, runs=20, n_samples=100, rng=5)
    )
    print(f"\nestimator variance:  original {var_original:.2e}  "
          f"sparsified {var_sparse:.2e}")
    if var_original > 0:
        ratio = var_sparse / var_original
        print(f"relative variance:   {ratio:.3f} "
              f"(same accuracy with ~{max(ratio, 1e-6):.0%} of the samples)")


if __name__ == "__main__":
    main()
