"""Scenario: influence analysis on an uncertain social network.

Edge probabilities model influence between users (the paper's Twitter
dataset).  Analysts rank users by expected pagerank and study community
structure via clustering coefficients — both Monte-Carlo aggregates.
This example shows that the top-10 influence ranking computed on a 25%
sparsified graph matches the full graph's ranking almost exactly, while
each sampled world is 4x smaller.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import datasets, sparsify
from repro.metrics import mean_earth_movers_distance
from repro.queries import ClusteringCoefficientQuery, PageRankQuery
from repro.sampling import MonteCarloEstimator


def top_k(values: np.ndarray, k: int) -> list[int]:
    return [int(i) for i in np.argsort(-values)[:k]]


def main() -> None:
    graph = datasets.flickr_like(n=400, avg_degree=30, seed=11)
    print(f"social graph: {graph}")

    sparse = sparsify(graph, alpha=0.25, variant="EMD^R-t", rng=11)
    print(f"sparsified:   {sparse}")

    n = graph.number_of_vertices()
    pagerank = PageRankQuery(n)
    clustering = ClusteringCoefficientQuery(n)

    original = MonteCarloEstimator(graph, n_samples=150)
    reduced = MonteCarloEstimator(sparse, n_samples=150)

    pr_full = original.run(pagerank, rng=1)
    pr_sparse = reduced.run(pagerank, rng=2)

    full_rank = top_k(pr_full.unit_estimates(), 10)
    sparse_rank = top_k(pr_sparse.unit_estimates(), 10)
    overlap = len(set(full_rank) & set(sparse_rank))
    print(f"\ntop-10 influencers (expected pagerank):")
    print(f"  full graph:  {full_rank}")
    print(f"  sparsified:  {sparse_rank}")
    print(f"  overlap:     {overlap}/10")

    d_em = mean_earth_movers_distance(pr_full.outcomes, pr_sparse.outcomes)
    print(f"  D_em(PR):    {d_em:.2e}  (per-vertex distribution distance)")

    cc_full = original.run(clustering, rng=3).unit_estimates().mean()
    cc_sparse = reduced.run(clustering, rng=4).unit_estimates().mean()
    print(f"\nmean expected clustering coefficient:")
    print(f"  full graph:  {cc_full:.4f}")
    print(f"  sparsified:  {cc_sparse:.4f}")


if __name__ == "__main__":
    main()
