"""Scenario: k-NN friend suggestions on an uncertain social graph.

Potamias et al. (the paper's reference [32]) define k-nearest-neighbour
queries in uncertain graphs through the *majority* and *median*
distances over possible worlds — robust alternatives to the expected
distance, which disconnection mass renders useless.  This example finds
the 5 most "reliably close" users to a seed user, then shows the same
suggestion list is recovered on a sparsified graph at a fraction of the
sampling cost.

Run:  python examples/knn_friend_suggestions.py
"""

from repro import datasets, sparsify
from repro.queries import SourceDistanceQuery, k_nearest_neighbors
from repro.sampling import MonteCarloEstimator


def suggestions(graph, source: int, k: int, n_samples: int, rng: int) -> list[int]:
    query = SourceDistanceQuery(source, graph.number_of_vertices())
    outcomes = MonteCarloEstimator(graph, n_samples=n_samples).run(
        query, rng=rng
    ).outcomes
    return k_nearest_neighbors(outcomes, source=source, k=k, aggregate="median")


def main() -> None:
    graph = datasets.twitter_like(n=250, avg_degree=16, seed=21)
    print(f"social graph: {graph}")

    source, k = 0, 5
    full = suggestions(graph, source, k, n_samples=250, rng=1)
    print(f"\ntop-{k} friend suggestions for user {source} (median distance):")
    print(f"  full graph:  {full}")

    sparse = sparsify(graph, alpha=0.35, variant="EMD^R-t", rng=21)
    reduced = suggestions(sparse, source, k, n_samples=250, rng=2)
    print(f"  sparsified:  {reduced}  "
          f"({sparse.number_of_edges()} of {graph.number_of_edges()} edges)")

    overlap = len(set(full) & set(reduced))
    print(f"  overlap:     {overlap}/{k}")


if __name__ == "__main__":
    main()
