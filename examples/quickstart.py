"""Quickstart: sparsify an uncertain graph and query it.

Builds a Twitter-style uncertain social graph, sparsifies it to 30% of
its edges with the paper's best variant (EMD^R-t), and shows that

- expected vertex degrees are preserved (tiny MAE),
- entropy drops (fewer Monte-Carlo samples needed),
- a reliability query is approximated on the sparse graph while
  sampling ~3x fewer edges per world.

Run:  python examples/quickstart.py
"""

from repro import datasets, graph_entropy, sparsify
from repro.core import BackbonePlan
from repro.metrics import degree_discrepancy_mae, relative_entropy
from repro.queries import ReliabilityQuery, sample_vertex_pairs
from repro.sampling import MonteCarloEstimator


def main() -> None:
    graph = datasets.twitter_like(n=300, avg_degree=16, seed=7)
    print(f"original:   {graph}")
    print(f"entropy:    {graph_entropy(graph):.1f} bits")

    # Sweeping several sparsification ratios?  Build one backbone plan:
    # a single Kruskal pass serves every alpha (results are identical
    # to per-alpha construction under the same seed).
    plan = BackbonePlan(graph)
    for alpha in (0.2, 0.3, 0.5):
        ladder = sparsify(graph, alpha, variant="GDB^A-t", rng=7,
                          backbone_plan=plan)
        print(f"alpha={alpha:.0%}: degree MAE "
              f"{degree_discrepancy_mae(graph, ladder):.4f}")

    sparse = sparsify(graph, alpha=0.3, variant="EMD^R-t", rng=7)
    print(f"\nsparsified: {sparse}")
    print(f"entropy:    {graph_entropy(sparse):.1f} bits "
          f"({relative_entropy(sparse, graph):.0%} of original)")
    print(f"degree MAE: {degree_discrepancy_mae(graph, sparse):.4f}")

    # Answer the same reliability query on both graphs.
    pairs = sample_vertex_pairs(graph, 25, rng=1)
    query = ReliabilityQuery(pairs)
    original_estimate = MonteCarloEstimator(graph, n_samples=300).run(
        query, rng=2
    ).scalar_estimate()
    sparse_estimate = MonteCarloEstimator(sparse, n_samples=300).run(
        query, rng=2
    ).scalar_estimate()
    print(f"\nmean reliability over {len(pairs)} pairs:")
    print(f"  original graph:   {original_estimate:.4f}")
    print(f"  sparsified graph: {sparse_estimate:.4f}")
    print(f"  absolute error:   {abs(original_estimate - sparse_estimate):.4f}")


if __name__ == "__main__":
    main()
