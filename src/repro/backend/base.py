"""The ``xp`` array-namespace shim: one op surface, many array libraries.

The traversal kernels (:mod:`repro.sampling.kernels`) and the GDB sweep
engine (:mod:`repro.core.sweep`) are pure array programs.  This module
defines the *curated* operation surface they are written against —
:class:`ArrayBackend` — so the same kernel source runs on NumPy, CuPy,
torch, or any array-API namespace.  The contract is deliberately small:

- **NumPy semantics are the spec.**  Every op is defined by what the
  NumPy reference backend does; other backends may compute however they
  like (scatter kernels, host round-trips) as long as values match
  within the device tolerance gates.
- **Host builds the plan, the backend runs the array program.**  CSR
  topology, bucket schedules, and sweep colorings stay host-side NumPy;
  only the dense per-world / per-edge-class math goes through ``xp``.
  Control flow crosses back through :meth:`~ArrayBackend.to_host` /
  the scalar helpers — one small sync per level / bucket / sweep.
- **Determinism contract.**  Chunk boundaries, stitch order, and every
  schedule are pure functions of the problem shape — never of the
  device.  The NumPy reference backend routes to the existing
  specialised kernels (``is_reference`` below), so default results stay
  bit-identical; non-reference backends run the portable ``xp`` kernel
  formulations and gate on tolerance.

Array *operators* (``+ - * / < >= & | ~`` and basic ``[:, None]`` /
integer indexing) are part of the contract too — every supported
namespace implements them on its array type — so the shim only names
the operations that differ across libraries (creation, gather/scatter,
reductions with an axis, transfers).
"""

from __future__ import annotations

import numpy as np

#: The curated op surface, in one place so the instrumented backend can
#: wrap every entry and the conformance suite can assert coverage.
OPS = (
    "asarray", "to_host",
    "zeros", "full",
    "where", "minimum", "isfinite", "clip", "abs", "astype",
    "take", "expand_cols",
    "any", "all", "sum", "min",
    "scatter_min_cols", "scatter_or_cols", "put",
)


class ArrayBackend:
    """Base class of every ``xp`` backend (NumPy semantics by default).

    Subclasses override :attr:`name` / :attr:`device` and whichever ops
    their library spells differently.  The base implementation *is* the
    NumPy reference — subclassing it means "NumPy except where noted".

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"torch"``, ...).
    device:
        ``"cpu"`` or ``"cuda"`` — informational, and the trigger for
        device-memory-aware chunk autosizing.
    is_reference:
        ``True`` only for the NumPy reference backend: batch methods
        then dispatch to the existing specialised kernels (packed
        uint64 BFS, ``reduceat`` delta-stepping, fused sweeps), keeping
        default results bit-identical.  Every other backend — including
        the CPU-bound instrumented one — runs the portable ``xp``
        kernel formulations.
    """

    name = "numpy"
    device = "cpu"
    is_reference = True

    #: dtype tokens kernels pass explicitly to every creation op.
    bool_ = np.bool_
    int64 = np.int64
    float64 = np.float64

    @property
    def key(self) -> str:
        """Cache identity: device arrays cached under one key can never
        be served to a different namespace (see ``_batch_cached``)."""
        return f"{self.name}:{self.device}"

    @property
    def spec(self) -> str:
        """Canonical registry spec that resolves back to this backend
        (what executors ship to worker processes instead of the
        instance, which may not pickle)."""
        return self.name

    # -- transfers -----------------------------------------------------------
    def asarray(self, x, dtype=None):
        """Upload/convert to a backend array (dtype always explicit in
        kernel code; ``None`` passes the input dtype through)."""
        return np.asarray(x, dtype=dtype)

    def to_host(self, x) -> np.ndarray:
        """Download to a host NumPy array (no-op for host backends)."""
        return np.asarray(x)

    def bool_scalar(self, x) -> bool:
        """One host boolean — the per-level / per-bucket sync point."""
        return bool(self.to_host(x))

    def float_scalar(self, x) -> float:
        return float(self.to_host(x))

    # -- creation ------------------------------------------------------------
    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    def full(self, shape, value, dtype=None):
        return np.full(shape, value, dtype=dtype)

    # -- elementwise ---------------------------------------------------------
    def where(self, cond, x, y):
        """Ternary select; ``x`` / ``y`` may be python scalars (the
        result takes the array operand's dtype)."""
        return np.where(cond, x, y)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def isfinite(self, a):
        return np.isfinite(a)

    def clip(self, a, lo, hi):
        return np.clip(a, lo, hi)

    def abs(self, a):
        return np.abs(a)

    def astype(self, a, dtype):
        return a.astype(dtype)

    # -- shape / gather ------------------------------------------------------
    def take(self, a, idx, axis):
        """Gather along ``axis`` with a 1-D integer index array."""
        return np.take(a, np.asarray(idx), axis=axis)

    def expand_cols(self, a):
        """``(N,) -> (N, 1)`` for broadcasting against ``(N, k)``."""
        return a[:, None]

    # -- reductions ----------------------------------------------------------
    def any(self, a, axis=None):
        return np.any(a, axis=axis)

    def all(self, a, axis=None):
        return np.all(a, axis=axis)

    def sum(self, a, axis=None):
        return np.sum(a, axis=axis)

    def min(self, a):
        return np.min(a)

    # -- scatter primitives --------------------------------------------------
    # The two ensemble scatters every traversal kernel reduces to: given
    # per-directed-edge values (R, E) and the edges' target columns (E,),
    # combine into a fresh (R, C) matrix per world row.  Minimum and OR
    # are exact regardless of reduction order, so no backend's scatter
    # schedule can leak into results.
    def scatter_min_cols(self, shape, col_idx, values):
        """``out[r, col_idx[e]] = min(values[r, e])`` over an ``inf``-filled
        ``shape`` matrix."""
        out = np.full(shape, np.inf, dtype=np.float64)
        rows, edges = np.nonzero(np.isfinite(values))
        if rows.size:
            np.minimum.at(
                out, (rows, np.asarray(col_idx)[edges]), values[rows, edges]
            )
        return out

    def scatter_or_cols(self, shape, col_idx, values):
        """``out[r, col_idx[e]] |= values[r, e]`` over a ``False``-filled
        ``shape`` matrix."""
        n_rows, n_cols = shape
        rows, edges = np.nonzero(values)
        if rows.size == 0:
            return np.zeros(shape, dtype=bool)
        flat = rows * n_cols + np.asarray(col_idx)[edges]
        hit = np.bincount(flat, minlength=n_rows * n_cols)
        return hit.reshape(n_rows, n_cols).astype(bool)

    def put(self, a, idx, values):
        """Scatter-assign ``a[idx] = values`` for *unique* 1-D indices;
        returns the updated array (functionally, for namespaces without
        integer-array ``__setitem__``)."""
        a[np.asarray(idx)] = values
        return a

    # -- device introspection -------------------------------------------------
    def free_memory(self) -> "int | None":
        """Free device memory in bytes, or ``None`` for host backends
        (chunk autosizing then falls back to the fixed budget)."""
        return None

    def world_bytes(self, n_edges: int, n_vertices: int) -> int:
        """Per-world working-set estimate of the portable ``xp`` kernels.

        Dominated by the dense ``(B, 2m)`` float64 candidate matrix of a
        relaxation plus its boolean liveness/frontier companions and a
        few ``(B, n)`` float64 state matrices.
        """
        return 20 * max(2 * n_edges, 1) + 40 * max(n_vertices, 1)

    def synchronize(self) -> None:
        """Barrier for async devices (host backends: no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key}>"


class NumpyBackend(ArrayBackend):
    """The reference backend: plain NumPy, bit-identity guaranteed.

    ``is_reference`` routes batch methods to the existing specialised
    kernels, so selecting ``backend="numpy"`` (the default) is
    arithmetically a no-op against pre-shim behaviour.  The generic op
    implementations above are still exercised — the conformance suite
    runs the portable ``xp`` kernels against this backend directly and
    pins them bit-identical to the specialised kernels.
    """
