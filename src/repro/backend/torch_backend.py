"""torch ``xp`` backend (CPU or CUDA), constructed only on demand.

Importing :mod:`repro.backend` never imports torch; the registry probes
``importlib.util.find_spec`` and only this module's constructor pays the
import.  Scatter reductions map onto ``Tensor.scatter_reduce_`` (``amin``
for the distance relaxation, ``amax`` over uint8 for the boolean OR) —
both are order-independent reductions, so the determinism contract holds.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend


class TorchBackend(ArrayBackend):
    """``xp`` over ``torch`` tensors; ``device`` is ``"cpu"`` or ``"cuda"``."""

    name = "torch"
    is_reference = False

    def __init__(self, device: str = "cpu") -> None:
        import torch  # deferred: only resolved backends pay the import

        self._torch = torch
        self.device = device
        self._dev = torch.device(device)
        self.bool_ = torch.bool
        self.int64 = torch.int64
        self.float64 = torch.float64

    def _tensor(self, x, dtype=None):
        t = self._torch
        if isinstance(x, t.Tensor):
            out = x.to(self._dev)
            return out if dtype is None else out.to(dtype)
        return t.as_tensor(np.asarray(x), dtype=dtype, device=self._dev)

    # -- transfers -----------------------------------------------------------
    def asarray(self, x, dtype=None):
        return self._tensor(x, dtype)

    def to_host(self, x) -> np.ndarray:
        if isinstance(x, self._torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    # -- creation ------------------------------------------------------------
    def zeros(self, shape, dtype=None):
        return self._torch.zeros(shape, dtype=dtype, device=self._dev)

    def full(self, shape, value, dtype=None):
        return self._torch.full(shape, value, dtype=dtype, device=self._dev)

    # -- elementwise ---------------------------------------------------------
    def where(self, cond, x, y):
        t = self._torch
        # Normalise python scalars against the array operand's dtype —
        # torch.where's scalar overloads don't cover every combination.
        if not isinstance(x, t.Tensor):
            ref = y if isinstance(y, t.Tensor) else cond
            x = t.as_tensor(x, dtype=ref.dtype if isinstance(y, t.Tensor) else None, device=self._dev)
        if not isinstance(y, t.Tensor):
            y = t.as_tensor(y, dtype=x.dtype, device=self._dev)
        return t.where(cond, x, y)

    def minimum(self, a, b):
        return self._torch.minimum(a, b)

    def isfinite(self, a):
        return self._torch.isfinite(a)

    def clip(self, a, lo, hi):
        return self._torch.clamp(a, lo, hi)

    def abs(self, a):
        return self._torch.abs(a)

    def astype(self, a, dtype):
        return a.to(dtype)

    # -- shape / gather ------------------------------------------------------
    def take(self, a, idx, axis):
        return self._torch.index_select(a, axis, self._tensor(idx, self.int64))

    def expand_cols(self, a):
        return a.unsqueeze(1)

    # -- reductions ----------------------------------------------------------
    def any(self, a, axis=None):
        return self._torch.any(a) if axis is None else self._torch.any(a, dim=axis)

    def all(self, a, axis=None):
        return self._torch.all(a) if axis is None else self._torch.all(a, dim=axis)

    def sum(self, a, axis=None):
        return self._torch.sum(a) if axis is None else self._torch.sum(a, dim=axis)

    def min(self, a):
        return self._torch.min(a)

    # -- scatter primitives --------------------------------------------------
    def scatter_min_cols(self, shape, col_idx, values):
        t = self._torch
        out = t.full(shape, float("inf"), dtype=self.float64, device=self._dev)
        idx = self._tensor(col_idx, self.int64).unsqueeze(0).expand(shape[0], -1)
        out.scatter_reduce_(1, idx, values.to(self.float64), reduce="amin")
        return out

    def scatter_or_cols(self, shape, col_idx, values):
        t = self._torch
        out = t.zeros(shape, dtype=t.uint8, device=self._dev)
        idx = self._tensor(col_idx, self.int64).unsqueeze(0).expand(shape[0], -1)
        out.scatter_reduce_(1, idx, values.to(t.uint8), reduce="amax")
        return out.to(self.bool_)

    def put(self, a, idx, values):
        a.index_put_((self._tensor(idx, self.int64),), self._tensor(values, a.dtype))
        return a

    # -- device introspection -------------------------------------------------
    def free_memory(self):
        if self.device.startswith("cuda") and self._torch.cuda.is_available():
            free, _total = self._torch.cuda.mem_get_info()
            return int(free)
        return None

    def synchronize(self) -> None:
        if self.device.startswith("cuda") and self._torch.cuda.is_available():
            self._torch.cuda.synchronize()
