"""CuPy ``xp`` backend (CUDA), constructed only on demand.

Registered only when ``cupy`` is importable; like the torch backend, the
import cost is paid at resolution time, never at ``import repro.backend``.
Scatter reductions use ``cupyx.scatter_min`` / ``scatter_max`` — order-
independent reductions, preserving the determinism contract.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend


class CupyBackend(ArrayBackend):
    """``xp`` over CuPy device arrays."""

    name = "cupy"
    device = "cuda"
    is_reference = False

    def __init__(self) -> None:
        import cupy  # deferred: only resolved backends pay the import
        import cupyx

        self._cp = cupy
        self._cpx = cupyx
        self.bool_ = cupy.bool_
        self.int64 = cupy.int64
        self.float64 = cupy.float64

    # -- transfers -----------------------------------------------------------
    def asarray(self, x, dtype=None):
        return self._cp.asarray(x, dtype=dtype)

    def to_host(self, x) -> np.ndarray:
        if isinstance(x, self._cp.ndarray):
            return self._cp.asnumpy(x)
        return np.asarray(x)

    # -- creation ------------------------------------------------------------
    def zeros(self, shape, dtype=None):
        return self._cp.zeros(shape, dtype=dtype)

    def full(self, shape, value, dtype=None):
        return self._cp.full(shape, value, dtype=dtype)

    # -- elementwise ---------------------------------------------------------
    def where(self, cond, x, y):
        return self._cp.where(cond, x, y)

    def minimum(self, a, b):
        return self._cp.minimum(a, b)

    def isfinite(self, a):
        return self._cp.isfinite(a)

    def clip(self, a, lo, hi):
        return self._cp.clip(a, lo, hi)

    def abs(self, a):
        return self._cp.abs(a)

    def astype(self, a, dtype):
        return a.astype(dtype)

    # -- shape / gather ------------------------------------------------------
    def take(self, a, idx, axis):
        return self._cp.take(a, self._cp.asarray(idx), axis=axis)

    def expand_cols(self, a):
        return a[:, None]

    # -- reductions ----------------------------------------------------------
    def any(self, a, axis=None):
        return self._cp.any(a, axis=axis)

    def all(self, a, axis=None):
        return self._cp.all(a, axis=axis)

    def sum(self, a, axis=None):
        return self._cp.sum(a, axis=axis)

    def min(self, a):
        return self._cp.min(a)

    # -- scatter primitives --------------------------------------------------
    def scatter_min_cols(self, shape, col_idx, values):
        cp = self._cp
        out = cp.full(shape, cp.inf, dtype=self.float64)
        rows = cp.broadcast_to(cp.arange(shape[0])[:, None], values.shape)
        cols = cp.broadcast_to(cp.asarray(col_idx)[None, :], values.shape)
        self._cpx.scatter_min(out, (rows, cols), values.astype(self.float64))
        return out

    def scatter_or_cols(self, shape, col_idx, values):
        cp = self._cp
        out = cp.zeros(shape, dtype=cp.uint8)
        rows = cp.broadcast_to(cp.arange(shape[0])[:, None], values.shape)
        cols = cp.broadcast_to(cp.asarray(col_idx)[None, :], values.shape)
        self._cpx.scatter_max(out, (rows, cols), values.astype(cp.uint8))
        return out.astype(self.bool_)

    def put(self, a, idx, values):
        a[self._cp.asarray(idx)] = self._cp.asarray(values, dtype=a.dtype)
        return a

    # -- device introspection -------------------------------------------------
    def free_memory(self):
        free, _total = self._cp.cuda.runtime.memGetInfo()
        return int(free)

    def synchronize(self) -> None:
        self._cp.cuda.get_current_stream().synchronize()
