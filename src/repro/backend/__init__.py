"""Backend registry: name -> :class:`~repro.backend.base.ArrayBackend`.

``import repro.backend`` stays cheap: optional libraries (torch, CuPy,
``array_api_strict``) are *probed* with ``importlib.util.find_spec`` to
decide availability, but imported only when a backend is first resolved.
Resolved backends are singletons per name, so the cache ``key`` a live
``WorldBatch`` stores device arrays under is stable across calls.

Public surface:

- :func:`resolve_backend` — ``None`` / name / instance -> backend object
  (``None`` means the NumPy reference backend, the bit-identity default).
- :func:`available_backends` — names resolvable on this machine (the
  validation set for the CLI ``--backend`` knob and the server's
  ``backend`` parameter).
- ``DEFAULT_BACKEND`` — ``"numpy"``.
"""

from __future__ import annotations

import importlib
import importlib.util

from .array_api import ArrayAPIBackend
from .base import OPS, ArrayBackend, NumpyBackend
from .instrumented import InstrumentedBackend

DEFAULT_BACKEND = "numpy"

__all__ = [
    "OPS",
    "ArrayBackend",
    "ArrayAPIBackend",
    "NumpyBackend",
    "InstrumentedBackend",
    "DEFAULT_BACKEND",
    "available_backends",
    "resolve_backend",
]


def _make_torch() -> ArrayBackend:
    from .torch_backend import TorchBackend

    return TorchBackend("cpu")


def _make_torch_cuda() -> ArrayBackend:
    from .torch_backend import TorchBackend

    return TorchBackend("cuda")


def _make_cupy() -> ArrayBackend:
    from .cupy_backend import CupyBackend

    return CupyBackend()


def _make_array_api_strict() -> ArrayBackend:
    namespace = importlib.import_module("array_api_strict")
    return ArrayAPIBackend(namespace, name="array_api_strict")


def _has_module(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


def _torch_cuda_available() -> bool:
    if not _has_module("torch"):
        return False
    import torch

    return bool(torch.cuda.is_available())


#: name -> (availability probe, factory).  Probes must be cheap; factories
#: may import heavyweight libraries.
_FACTORIES = {
    "numpy": (lambda: True, NumpyBackend),
    "instrumented": (lambda: True, InstrumentedBackend),
    "torch": (lambda: _has_module("torch"), _make_torch),
    "torch:cuda": (_torch_cuda_available, _make_torch_cuda),
    "cupy": (lambda: _has_module("cupy"), _make_cupy),
    "array_api_strict": (lambda: _has_module("array_api_strict"), _make_array_api_strict),
}

_CACHE: dict[str, ArrayBackend] = {}


def available_backends() -> tuple[str, ...]:
    """Backend names resolvable on this machine, reference first."""
    return tuple(name for name, (probe, _) in _FACTORIES.items() if probe())


def resolve_backend(backend=None) -> ArrayBackend:
    """Turn ``None`` / a registry name / a backend instance into a backend.

    ``None`` resolves to the NumPy reference backend (bit-identity
    default).  Name lookups are cached, so repeated resolution returns
    the same instance — and therefore the same cache ``key``.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, ArrayBackend):
        return backend
    if not isinstance(backend, str):
        raise ValueError(
            f"backend must be None, a name, or an ArrayBackend; got {type(backend)!r}"
        )
    cached = _CACHE.get(backend)
    if cached is not None:
        return cached
    entry = _FACTORIES.get(backend)
    if entry is None:
        raise ValueError(
            f"unknown backend {backend!r}; known names: {sorted(_FACTORIES)}"
        )
    probe, factory = entry
    if not probe():
        raise ValueError(
            f"backend {backend!r} is not available on this machine "
            f"(available: {list(available_backends())})"
        )
    resolved = factory()
    _CACHE[backend] = resolved
    return resolved
