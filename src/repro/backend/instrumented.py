"""Instrumented strict backend: the dispatch seam's CPU-only test double.

``InstrumentedBackend`` wraps the NumPy op implementations but

- reports ``is_reference = False``, so every consumer takes the *portable*
  ``xp`` kernel path (exactly what a GPU backend would run) while staying
  runnable on CPU-only CI;
- records every shim call in a :class:`collections.Counter`, so tests can
  assert the kernels actually routed their work through the shim (e.g.
  "this BFS performed N ``scatter_or_cols`` calls and zero raw-NumPy
  escapes would have gone unrecorded");
- defaults creation ops to **non-default dtypes** (float32 / int32) when a
  kernel omits ``dtype=``.  Real devices default differently than NumPy
  (torch: float32), so any kernel relying on implicit dtypes produces
  visibly wrong precision here and fails the conformance equality gates
  instead of silently passing on CPU and breaking on device.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .base import OPS, ArrayBackend

#: What a creation op hands back when a kernel forgets ``dtype=`` — chosen
#: to be *wrong* (narrower than any dtype the kernels legitimately use).
_TRAP_FLOAT = np.float32
_TRAP_INT = np.int32


class InstrumentedBackend(ArrayBackend):
    """NumPy-computing, call-recording, dtype-strict ``xp`` backend."""

    name = "instrumented"
    device = "cpu"
    is_reference = False

    def __init__(self, label: str = "") -> None:
        #: per-op call counts, e.g. ``backend.calls["scatter_min_cols"]``.
        self.calls: Counter = Counter()
        self._label = label
        for op in OPS:
            self._wrap(op)

    @property
    def key(self) -> str:
        # The label lets tests construct two *distinct* cache identities
        # from one backend class (stale-cache regression coverage).
        suffix = f"#{self._label}" if self._label else ""
        return f"{self.name}:{self.device}{suffix}"

    def _wrap(self, op: str) -> None:
        inner = getattr(ArrayBackend, op).__get__(self, type(self))
        strict = getattr(self, f"_strict_{op}", None)
        target = strict if strict is not None else inner

        def recorded(*args, _target=target, _op=op, **kwargs):
            self.calls[_op] += 1
            return _target(*args, **kwargs)

        # Instance attribute shadows the class method: every call is
        # counted, including ones made by sibling default ops.
        setattr(self, op, recorded)

    # -- dtype traps ---------------------------------------------------------
    def _strict_asarray(self, x, dtype=None):
        if dtype is None:
            arr = np.asarray(x)
            if arr.dtype == np.float64:
                return arr.astype(_TRAP_FLOAT)
            if arr.dtype == np.int64:
                return arr.astype(_TRAP_INT)
            return arr
        return np.asarray(x, dtype=dtype)

    def _strict_zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=_TRAP_FLOAT if dtype is None else dtype)

    def _strict_full(self, shape, value, dtype=None):
        return np.full(shape, value, dtype=_TRAP_FLOAT if dtype is None else dtype)
