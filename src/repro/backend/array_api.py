"""Generic ``xp`` backend over any array-API-standard namespace.

Used two ways:

- ``backend="array_api_strict"`` (when the reference implementation is
  installed, e.g. in the CI ``backend`` job) — the strictest possible
  conformance check: the standard's reference namespace rejects every
  NumPy-ism the portable kernels might lean on.
- ``ArrayAPIBackend(numpy)`` in tests — NumPy driven purely through its
  standard-conformant surface, giving a second generic-path backend with
  a distinct cache ``key`` on machines with nothing else installed.

The scatter primitives are not in the array-API standard, so this
backend round-trips them through host NumPy — correct everywhere,
fast nowhere; dedicated backends override them with device kernels.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend


class ArrayAPIBackend(ArrayBackend):
    """``xp`` over an array-API namespace (``array_api_strict``, ...)."""

    is_reference = False

    def __init__(self, namespace, name: str | None = None) -> None:
        self._xp = namespace
        self.name = name if name is not None else getattr(
            namespace, "__name__", "array_api"
        )
        self.device = "cpu"
        self.bool_ = namespace.bool if hasattr(namespace, "bool") else namespace.bool_
        self.int64 = namespace.int64
        self.float64 = namespace.float64

    def _wrap_scalar(self, value, ref):
        """Promote a python scalar operand to an array of ``ref``'s dtype
        (the standard's ``where`` historically required array operands)."""
        if hasattr(value, "dtype") or hasattr(value, "__array_namespace__"):
            return value
        if hasattr(ref, "dtype"):
            return self._xp.asarray(value, dtype=ref.dtype)
        return self._xp.asarray(value)

    # -- transfers -----------------------------------------------------------
    def asarray(self, x, dtype=None):
        return self._xp.asarray(x, dtype=dtype)

    def to_host(self, x) -> np.ndarray:
        if isinstance(x, np.ndarray):
            return x
        try:
            return np.asarray(x)
        except (TypeError, ValueError, RuntimeError):
            pass
        try:
            return np.asarray(np.from_dlpack(x))
        except (TypeError, ValueError, RuntimeError, BufferError):
            pass
        # array_api_strict keeps its NumPy storage on ``_array``.
        inner = getattr(x, "_array", None)
        if inner is not None:
            return np.asarray(inner)
        raise TypeError(f"cannot convert {type(x)!r} to a host array")

    # -- creation ------------------------------------------------------------
    def zeros(self, shape, dtype=None):
        return self._xp.zeros(shape, dtype=dtype)

    def full(self, shape, value, dtype=None):
        return self._xp.full(shape, value, dtype=dtype)

    # -- elementwise ---------------------------------------------------------
    def where(self, cond, x, y):
        ref = y if hasattr(y, "dtype") else x
        return self._xp.where(cond, self._wrap_scalar(x, ref), self._wrap_scalar(y, ref))

    def minimum(self, a, b):
        return self._xp.minimum(a, b)

    def isfinite(self, a):
        return self._xp.isfinite(a)

    def clip(self, a, lo, hi):
        return self._xp.clip(a, lo, hi)

    def abs(self, a):
        return self._xp.abs(a)

    def astype(self, a, dtype):
        return self._xp.astype(a, dtype)

    # -- shape / gather ------------------------------------------------------
    def take(self, a, idx, axis):
        return self._xp.take(a, self.asarray(idx, self.int64), axis=axis)

    def expand_cols(self, a):
        return self._xp.expand_dims(a, axis=1)

    # -- reductions ----------------------------------------------------------
    def any(self, a, axis=None):
        return self._xp.any(a, axis=axis)

    def all(self, a, axis=None):
        return self._xp.all(a, axis=axis)

    def sum(self, a, axis=None):
        return self._xp.sum(a, axis=axis)

    def min(self, a):
        return self._xp.min(a)

    # -- scatter primitives (host round-trip; see module docstring) ----------
    def scatter_min_cols(self, shape, col_idx, values):
        host = ArrayBackend.scatter_min_cols(
            self, shape, np.asarray(self.to_host(col_idx)), self.to_host(values)
        )
        return self.asarray(host, self.float64)

    def scatter_or_cols(self, shape, col_idx, values):
        host = ArrayBackend.scatter_or_cols(
            self, shape, np.asarray(self.to_host(col_idx)), self.to_host(values)
        )
        return self.asarray(host, self.bool_)

    def put(self, a, idx, values):
        host = self.to_host(a).copy()
        host[np.asarray(self.to_host(self.asarray(idx)))] = self.to_host(
            self.asarray(values)
        )
        return self.asarray(host, a.dtype)
