"""Optimal probability assignment by linear programming (paper section 4.1).

Theorem 1 shows that, for a fixed backbone with incidence matrix ``A_b``
and the original expected-degree vector ``d``, minimising the total
absolute degree discrepancy ``|d - A_b p'|`` over ``p' in (0, 1]`` is
equivalent to::

    maximise  sum_e p'_e
    subject to  A_b p' <= d,   0 <= p' <= 1

which any LP solver handles.  Two solvers are offered:

- ``solver="highs"`` — :func:`scipy.optimize.linprog` (HiGHS) on the
  sparse constraint matrix: the exact simplex/IPM reference.  The paper
  uses LP as the gold standard for Table 2 but dismisses it as too slow
  beyond toy graphs.
- ``solver="pdp"`` — a first-order **p**rimal-**d**ual **p**rojection
  method in the Li/Zhang/Roos family: diagonally preconditioned
  Chambolle-Pock iterations operating directly on the sparse incidence
  products ``A_b p'`` / ``A_b^T y``, with box projection of the primal
  onto ``[0, 1]``, non-negativity projection of the dual, a warm start
  from the expected-degree heuristic (every backbone edge at its
  original probability — a feasible point, since the original
  probabilities reproduce each vertex's backbone share of its expected
  degree), and duality-gap stopping at a configurable relative
  tolerance.  Each iteration costs two sparse mat-vecs, so the LP
  curves of fig04-08 become feasible at the 10k-1M edge scale the other
  engines reach.

The pdp solver always returns a *feasible* point: the iterate is
rescaled edge-wise onto ``A_b p' <= d`` before the objective is
measured, so Lemma 1 (sparsified expected degrees never exceed the
originals) holds for both solvers, and the reported duality gap is a
true bound on the distance to the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.backbone import BackbonePlan
from repro.core.gdb import _resolve_backbone
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import SparsificationError

#: Solvers accepted by :func:`lp_assign_probabilities` / :func:`lp_sparsify`.
LP_SOLVERS = ("highs", "pdp")


def _validate_solver(solver: str) -> str:
    if solver not in LP_SOLVERS:
        raise ValueError(
            f"unknown LP solver {solver!r}; expected one of {LP_SOLVERS}"
        )
    return solver


def backbone_incidence(
    graph: UncertainGraph, backbone_ids: np.ndarray
) -> sparse.csr_matrix:
    """Sparse vertex-edge incidence ``A_b`` of a backbone (``n x m_b``).

    Column ``j`` has unit entries at both endpoints of
    ``backbone_ids[j]``.  Built with array ops: the endpoint gather
    supplies the row indices directly and every column index appears
    twice, so no per-edge Python loop is needed.
    """
    backbone_ids = np.asarray(backbone_ids, dtype=np.int64)
    n = graph.number_of_vertices()
    m_b = len(backbone_ids)
    if m_b == 0:
        return sparse.csr_matrix((n, 0), dtype=np.float64)
    rows = graph.edge_index_array()[backbone_ids].reshape(-1)
    cols = np.repeat(np.arange(m_b, dtype=np.int64), 2)
    data = np.ones(2 * m_b, dtype=np.float64)
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, m_b))


@dataclass
class PDPDiagnostics:
    """Convergence trace of the primal-dual projection solver.

    ``history`` rows are ``(iteration, best_primal, best_dual, gap)``
    recorded at every gap check; ``best_primal`` is the objective of the
    best *feasible* point seen so far (monotone non-decreasing) and
    ``best_dual`` the smallest dual bound (monotone non-increasing), so
    ``gap`` — their difference — is monotone non-increasing.
    """

    iterations: int = 0
    converged: bool = False
    gap: float = float("inf")
    primal_objective: float = 0.0
    dual_objective: float = float("inf")
    history: list = field(default_factory=list)


def _feasible_rescale(
    p: np.ndarray,
    products: np.ndarray,
    degrees: np.ndarray,
    endpoints: np.ndarray,
) -> np.ndarray:
    """Project an iterate onto ``A p <= d`` by edge-wise down-scaling.

    Every overloaded vertex ``v`` (``(A p)_v > d_v``) shrinks its
    incident edges by ``d_v / (A p)_v``; an edge takes the smaller of
    its two endpoint factors.  The result is feasible: summing the
    scaled edges at ``v`` gives at most ``(d_v / (A p)_v) (A p)_v``.
    """
    overloaded = products > degrees
    scale = np.where(
        overloaded, degrees / np.where(overloaded, products, 1.0), 1.0
    )
    return p * np.minimum(scale[endpoints[:, 0]], scale[endpoints[:, 1]])


def solve_pdp(
    incidence: sparse.csr_matrix,
    degrees: np.ndarray,
    endpoints: np.ndarray,
    warm_start: "np.ndarray | None" = None,
    tol: float = 1e-3,
    max_iterations: int = 20_000,
    check_every: int = 8,
    diagnostics: "PDPDiagnostics | None" = None,
) -> np.ndarray:
    """First-order solve of ``max 1'p  s.t.  A p <= d, 0 <= p <= 1``.

    Diagonally preconditioned Chambolle-Pock: with per-vertex dual steps
    ``sigma_v = 1 / row_count_v`` and per-edge primal step
    ``tau_e = 1/2`` (each column of ``A`` holds exactly two unit
    entries), the iteration

    - ``y <- max(0, y + sigma (A pbar - d))``  (projected dual ascent on
      the extrapolation ``pbar = 2 p - p_prev``),
    - ``p <- clip(p + tau (1 - A^T y), 0, 1)``  (projected primal step)

    converges for this step choice.  Every ``check_every`` iterations
    the duality gap between the best feasibility-rescaled primal value
    and the best dual bound ``y'd + sum_e max(0, 1 - (A^T y)_e)`` is
    evaluated; the solve stops when it drops to ``tol`` relative to the
    dual bound.

    Parameters
    ----------
    incidence:
        ``(n, m_b)`` sparse backbone incidence (``backbone_incidence``).
    degrees:
        Original expected degrees ``d`` (length ``n``).
    endpoints:
        ``(m_b, 2)`` dense endpoint ids of the backbone edges (used by
        the feasibility rescale).
    warm_start:
        Feasible-or-not initial primal point; clipped to the box.  When
        omitted the solve starts from zero.
    tol:
        Relative duality-gap tolerance.
    max_iterations:
        Iteration cap; exceeding it raises :class:`SparsificationError`.
    check_every:
        Gap-evaluation period (each check is O(n + m_b) array work).
    diagnostics:
        Optional :class:`PDPDiagnostics` filled with the convergence
        trace.

    Returns
    -------
    numpy.ndarray
        The best feasible primal point found (``A p <= d`` exactly,
        ``0 <= p <= 1``), with objective within ``tol`` of the optimum.
    """
    n, m_b = incidence.shape
    if m_b == 0:
        return np.zeros(0, dtype=np.float64)
    A = incidence.tocsr()
    At = A.T.tocsr()
    row_counts = np.diff(A.indptr)
    sigma = 1.0 / np.maximum(row_counts, 1)
    tau = 0.5

    p = (
        np.clip(np.asarray(warm_start, dtype=np.float64), 0.0, 1.0)
        if warm_start is not None
        else np.zeros(m_b, dtype=np.float64)
    )
    p_products = A @ p
    y = np.zeros(n, dtype=np.float64)

    best_p = _feasible_rescale(p, p_products, degrees, endpoints)
    best_primal = float(best_p.sum())
    best_dual = float(m_b)  # dual value at y = 0
    gap = best_dual - best_primal

    prev_products = p_products
    iteration = 0
    record = diagnostics.history.append if diagnostics is not None else None
    if record is not None:
        record((0, best_primal, best_dual, gap))
    converged = gap <= tol * max(1.0, abs(best_dual))
    while not converged and iteration < max_iterations:
        iteration += 1
        # Dual ascent on the extrapolated primal (A pbar = 2 Ap - Ap_prev).
        y += sigma * (2.0 * p_products - prev_products - degrees)
        np.maximum(y, 0.0, out=y)
        # Projected primal step.
        dual_products = At @ y
        p += tau * (1.0 - dual_products)
        np.clip(p, 0.0, 1.0, out=p)
        prev_products = p_products
        p_products = A @ p

        if iteration % check_every == 0 or iteration == max_iterations:
            dual_value = float(y @ degrees) + float(
                np.maximum(1.0 - dual_products, 0.0).sum()
            )
            feasible = _feasible_rescale(p, p_products, degrees, endpoints)
            primal_value = float(feasible.sum())
            if primal_value > best_primal:
                best_primal = primal_value
                best_p = feasible
            best_dual = min(best_dual, dual_value)
            gap = best_dual - best_primal
            if record is not None:
                record((iteration, best_primal, best_dual, gap))
            converged = gap <= tol * max(1.0, abs(best_dual))

    if diagnostics is not None:
        diagnostics.iterations = iteration
        diagnostics.converged = converged
        diagnostics.gap = gap
        diagnostics.primal_objective = best_primal
        diagnostics.dual_objective = best_dual
    if not converged:
        raise SparsificationError(
            f"pdp LP solver failed to reach gap {tol:g} within "
            f"{max_iterations} iterations (gap {gap:.3e})"
        )
    return np.clip(best_p, 0.0, 1.0)


def lp_assign_probabilities(
    graph: UncertainGraph,
    backbone_ids: "np.ndarray | list[int]",
    solver: str = "highs",
    tol: float = 1e-3,
    max_iterations: int = 20_000,
    warm_start: bool = True,
    diagnostics: "PDPDiagnostics | None" = None,
) -> np.ndarray:
    """Solve the Theorem-1 LP for a backbone; returns probabilities.

    The result is aligned with ``backbone_ids`` (a read-only int64 array
    from the backbone builders, or any integer sequence).

    Parameters
    ----------
    solver:
        ``"highs"`` (exact reference) or ``"pdp"`` (first-order
        primal-dual projection; see the module docstring).
    tol / max_iterations / warm_start:
        pdp-only knobs: relative duality-gap tolerance, iteration cap,
        and whether to start from the expected-degree heuristic (the
        original backbone probabilities — always feasible) instead of
        zero.  Ignored by ``"highs"``.
    diagnostics:
        Optional :class:`PDPDiagnostics` trace (pdp only).

    Raises
    ------
    SparsificationError
        If the solver fails (``p' = 0`` is always feasible, so HiGHS
        should not; pdp raises when the gap tolerance is unreachable
        within ``max_iterations``).
    """
    _validate_solver(solver)
    backbone_ids = np.asarray(backbone_ids, dtype=np.int64)
    if len(backbone_ids) == 0:
        return np.zeros(0, dtype=np.float64)
    incidence = backbone_incidence(graph, backbone_ids)
    degrees = graph.expected_degree_array()

    if solver == "pdp":
        endpoints = graph.edge_index_array()[backbone_ids]
        start = (
            np.asarray(graph.probability_array(), dtype=np.float64)[backbone_ids]
            if warm_start
            else None
        )
        return solve_pdp(
            incidence,
            degrees,
            endpoints,
            warm_start=start,
            tol=tol,
            max_iterations=max_iterations,
            diagnostics=diagnostics,
        )

    result = linprog(
        c=-np.ones(len(backbone_ids)),
        A_ub=incidence,
        b_ub=degrees,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SparsificationError(f"LP solver failed: {result.message}")
    return np.clip(result.x, 0.0, 1.0)


def lp_sparsify(
    graph: UncertainGraph,
    alpha: float | None = None,
    backbone_ids: "np.ndarray | list[int] | None" = None,
    backbone_method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
    backbone_plan: "BackbonePlan | None" = None,
    solver: str = "highs",
    tol: float = 1e-3,
    min_probability: float = 1e-9,
) -> UncertainGraph:
    """Sparsify by backbone construction + optimal LP assignment.

    Mirrors :func:`repro.core.gdb.gdb`'s interface (including
    ``backbone_plan`` for the ``alpha`` path) plus the ``solver`` knob
    (``"highs"`` reference or the first-order ``"pdp"``, gap tolerance
    ``tol``).

    Section 3 requires ``p' in (0, 1]`` while the LP's box is
    ``[0, 1]``: probabilities the solver drives to zero are raised to
    ``min_probability`` so every backbone edge stays in the output and
    the edge budget ``|E'| = alpha |E|`` remains verifiable.  Callers
    that prefer dropping zero-probability edges can prune afterwards.
    """
    if not (0.0 < min_probability <= 1.0):
        raise ValueError(
            f"min_probability must be in (0, 1], got {min_probability}"
        )
    _validate_solver(solver)
    backbone_ids = _resolve_backbone(
        graph, alpha, backbone_ids, backbone_method, rng, backbone_plan
    )
    probabilities = lp_assign_probabilities(
        graph, backbone_ids, solver=solver, tol=tol
    )
    label = name or f"lp({graph.name})"
    return UncertainGraph.from_edge_arrays(
        graph.vertices(),
        graph.edge_index_array()[backbone_ids],
        np.maximum(probabilities, min_probability),
        name=label,
    )
