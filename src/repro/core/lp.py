"""Optimal probability assignment by linear programming (paper section 4.1).

Theorem 1 shows that, for a fixed backbone with incidence matrix ``A_b``
and the original expected-degree vector ``d``, minimising the total
absolute degree discrepancy ``|d - A_b p'|`` over ``p' in (0, 1]`` is
equivalent to::

    maximise  sum_e p'_e
    subject to  A_b p' <= d,   0 <= p' <= 1

which any LP solver handles.  We use ``scipy.optimize.linprog`` (HiGHS)
with a sparse constraint matrix.  The paper uses LP as the gold standard
for Table 2 but notes it is too slow for large graphs and does not reduce
entropy — both of which our experiments confirm.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.backbone import BackbonePlan
from repro.core.gdb import _resolve_backbone
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import SparsificationError


def lp_assign_probabilities(
    graph: UncertainGraph,
    backbone_ids: list[int],
) -> np.ndarray:
    """Solve the Theorem-1 LP for a backbone; returns probabilities.

    The result is aligned with ``backbone_ids``.

    Raises
    ------
    SparsificationError
        If the solver fails (should not happen: ``p' = 0`` is always
        feasible).
    """
    if len(backbone_ids) == 0:
        return np.zeros(0, dtype=np.float64)
    edge_vertices = graph.edge_index_array()
    n = graph.number_of_vertices()
    m_b = len(backbone_ids)

    rows = np.empty(2 * m_b, dtype=np.int64)
    cols = np.empty(2 * m_b, dtype=np.int64)
    for j, eid in enumerate(backbone_ids):
        u, v = edge_vertices[eid]
        rows[2 * j] = u
        rows[2 * j + 1] = v
        cols[2 * j] = j
        cols[2 * j + 1] = j
    data = np.ones(2 * m_b, dtype=np.float64)
    incidence = sparse.csr_matrix((data, (rows, cols)), shape=(n, m_b))

    degrees = graph.expected_degree_array()
    result = linprog(
        c=-np.ones(m_b),
        A_ub=incidence,
        b_ub=degrees,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SparsificationError(f"LP solver failed: {result.message}")
    return np.clip(result.x, 0.0, 1.0)


def lp_sparsify(
    graph: UncertainGraph,
    alpha: float | None = None,
    backbone_ids: list[int] | None = None,
    backbone_method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
    backbone_plan: "BackbonePlan | None" = None,
) -> UncertainGraph:
    """Sparsify by backbone construction + optimal LP assignment.

    Mirrors :func:`repro.core.gdb.gdb`'s interface (including
    ``backbone_plan`` for the ``alpha`` path).  Probabilities that the
    LP drives to zero are kept at a tiny positive floor so the returned
    graph honours the edge budget (Section 3 requires ``p' in (0, 1]``).
    """
    backbone_ids = _resolve_backbone(
        graph, alpha, backbone_ids, backbone_method, rng, backbone_plan
    )
    probabilities = lp_assign_probabilities(graph, backbone_ids)
    edge_list = graph.edge_list()
    floor = 1e-9
    edges = [
        (edge_list[eid][0], edge_list[eid][1], max(float(p), floor))
        for eid, p in zip(backbone_ids, probabilities)
    ]
    label = name or f"lp({graph.name})"
    return graph.subgraph_with_edges(edges, name=label)
