"""Gradient Descent Backbone (GDB) — paper Algorithm 2 and section 5.

GDB takes a backbone edge set and tunes edge probabilities by cyclic
coordinate descent on the squared discrepancy objective

    ``D_k = sum over vertex sets S, |S| <= k, of delta_A(S)^2``

(for ``k = 1`` this is ``sum_u delta(u)^2``).  For each edge the
closed-form optimal step is computed by a rule from
:mod:`repro.core.rules`; the resulting probability is clamped to
``[0, 1]``, and if the move would *increase* the edge's entropy the step
is attenuated by the entropy parameter ``h in [0, 1]`` (Algorithm 2,
line 10).  Sweeps repeat until the objective improves by less than
``tau``.

Two sweep engines execute the descent (see :mod:`repro.core.sweep`):

- ``engine="loop"`` — the scalar reference: one rule call and one state
  update per edge, in edge-id order.
- ``engine="vector"`` (default) — the array-native engine: color-blocked
  vectorised sweeps for the endpoint-local ``k = 1`` rules, and the
  fused sequential fast path (bit-identical to the reference loop) for
  the globally-coupled ``k >= 2`` / ``k = "n"`` rules.

The public entry point is :func:`gdb`; :func:`gdb_refine` runs the same
loop in place on an existing :class:`SparsificationState` (EMD's M-phase
reuses it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend
from repro.core.backbone import BackbonePlan, build_backbone
from repro.core.discrepancy import SparsificationState
from repro.core.rules import make_array_rule, make_rule
from repro.core.sweep import (
    DeviceSweep,
    SweepPlan,
    apply_probability_vector,
    apply_scalar_step,
    build_sweep_plan,
    colored_sweep,
    fused_sweep,
    local_fused_sweeps,
    restrict_sweep_plan,
)
from repro.core.uncertain_graph import UncertainGraph

#: Public engines of the gdb/emd/sparsify facades; "fused" (the
#: sequential fast path, same order and arithmetic as "loop") is an
#: additional gdb_refine-only value used by EMD's M-phase.
PUBLIC_ENGINES = ("vector", "loop")
ENGINES = PUBLIC_ENGINES + ("fused",)


def _validate_engine(engine: str, allowed: tuple = PUBLIC_ENGINES) -> str:
    if engine not in allowed:
        raise ValueError(
            f"unknown sweep engine {engine!r}; expected one of {allowed}"
        )
    return engine


def _colored_eligible(engine: str, k: "int | str", n: int) -> bool:
    """Whether the color-blocked sweep applies: only the endpoint-local
    ``k = 1`` rules under the vector engine (shared with the grid
    driver so both build the same plan flavour)."""
    return engine == "vector" and isinstance(k, int) and k == 1 and n > k


@dataclass(frozen=True)
class GDBConfig:
    """Hyper-parameters of Algorithm 2.

    Attributes
    ----------
    h:
        Entropy parameter in ``[0, 1]``; fraction of the optimal step
        applied when the step would increase edge entropy.  The paper
        settles on ``h = 0.05`` (Fig. 5) as the accuracy/entropy balance.
    tau:
        Convergence threshold on the objective improvement per sweep.
    max_sweeps:
        Hard iteration cap (the objective is monotone, so this only
        guards slow convergence at small ``h``).
    k:
        Cut-preservation order: ``1`` preserves expected degrees (Eq. 9),
        ``2`` pairs (Eq. 15), larger ints the general rule (Eq. 14), and
        the string ``"n"`` full redistribution (Eq. 16).
    relative:
        Minimise relative instead of absolute discrepancy (k = 1 only).
    """

    h: float = 0.05
    tau: float = 1e-9
    max_sweeps: int = 200
    k: int | str = 1
    relative: bool = False

    def __post_init__(self) -> None:
        if not (0.0 <= self.h <= 1.0):
            raise ValueError(f"entropy parameter h must be in [0, 1], got {self.h}")
        if self.tau < 0:
            raise ValueError(f"tau must be non-negative, got {self.tau}")
        if self.max_sweeps < 1:
            raise ValueError(f"max_sweeps must be positive, got {self.max_sweeps}")


def gdb_refine(
    state: SparsificationState,
    config: GDBConfig,
    engine: str = "vector",
    plan: "SweepPlan | None" = None,
    backend=None,
) -> int:
    """Run GDB sweeps in place on ``state``; returns the sweep count.

    ``state`` must already have its backbone edges selected.  Only the
    probabilities of selected edges change; membership is untouched
    (that is EMD's job).

    Parameters
    ----------
    engine:
        ``"vector"`` (default) — color-blocked array sweeps for ``k = 1``
        and the fused sequential fast path otherwise; ``"loop"`` — the
        scalar reference implementation; ``"fused"`` — force the fused
        sequential path (what EMD's M-phase uses: same edge order and
        bit-identical arithmetic as ``"loop"``).
    plan:
        Optional precomputed :class:`SweepPlan` for the currently
        selected edge set (the grid driver reuses one plan across an
        entire ``h`` sweep).  Ignored by the ``"loop"`` engine.
    backend:
        Array backend (``None`` / ``"numpy"`` = the bit-identical host
        engines above).  A non-reference backend runs the color-blocked
        ``k = 1`` sweeps as device kernels (:class:`DeviceSweep`) under
        the vector engine; the globally-coupled ``k >= 2`` / ``"n"``
        rules and the ``loop``/``fused`` engines are inherently
        sequential and stay host-side regardless.
    """
    engine = _validate_engine(engine, allowed=ENGINES)
    # Constructing the scalar rule also validates the (k, relative)
    # combination for every engine.
    rule = make_rule(config.k, config.relative, state.n)
    objective = state.d1(relative=config.relative)
    sweeps = 0

    xp = resolve_backend(backend)
    if not xp.is_reference and _colored_eligible(engine, config.k, state.n):
        if plan is None or (plan.n_colors == 0 and len(plan.eids)):
            plan = build_sweep_plan(state)
        device = DeviceSweep(state, plan, xp, config.relative, config.h)
        for sweeps in range(1, config.max_sweeps + 1):
            device.sweep()
            new_objective = device.objective()
            if abs(objective - new_objective) <= config.tau:
                objective = new_objective
                break
            objective = new_objective
        device.download()
        return sweeps

    if engine == "loop":
        edge_ids = [int(e) for e in state.selected_edge_ids()]
        for sweeps in range(1, config.max_sweeps + 1):
            for eid in edge_ids:
                step = rule(state, eid)
                apply_scalar_step(state, eid, step, config.h)
            new_objective = state.d1(relative=config.relative)
            if abs(objective - new_objective) <= config.tau:
                objective = new_objective
                break
            objective = new_objective
        return sweeps

    colored = _colored_eligible(engine, config.k, state.n)
    if plan is None:
        plan = build_sweep_plan(state, sequential_only=not colored)
    elif colored and plan.n_colors == 0 and len(plan.eids):
        # A sequential-only plan can't drive color blocks; re-plan.
        plan = build_sweep_plan(state)
    array_rule = make_array_rule(config.k, config.relative, state.n) if colored else None

    for sweeps in range(1, config.max_sweeps + 1):
        if colored:
            colored_sweep(state, plan, array_rule, rule, config.h)
        else:
            fused_sweep(state, plan, config.k, config.relative, config.h)
        new_objective = state.d1(relative=config.relative)
        if abs(objective - new_objective) <= config.tau:
            objective = new_objective
            break
        objective = new_objective
    return sweeps


#: Dirty regions larger than this skip the scalar micro tier — past a
#: few hundred edges the plain-float loop loses to the vectorised full
#: sweep it is trying to avoid.
WARM_MICRO_MAX_EDGES = 600
#: Edge-sweep budget of the micro tier (sweeps x region size): small
#: regions may relax for hundreds of cheap sweeps, larger ones get
#: proportionally fewer before the certified phase takes over.
WARM_MICRO_BUDGET = 48_000
#: Extrapolation guard rails: jump only when the contraction ratio of
#: two consecutive sweeps agrees within the jitter, and never assume a
#: slower (= longer jump) ratio than the cap.
WARM_RATIO_JITTER = 0.05
WARM_RATIO_CAP = 0.99


def gdb_refine_warm(
    state: SparsificationState,
    config: GDBConfig,
    dirty_vertices=None,
    engine: str = "vector",
    plan: "SweepPlan | None" = None,
    backend=None,
    hops: int = 1,
) -> int:
    """Warm-started GDB: drain the dirty region, then certify globally.

    ``state`` carries previously-converged probabilities plus a local
    perturbation (a delta batch, a backbone membership diff);
    ``dirty_vertices`` are the dense vertex ids the perturbation touched.
    Three phases:

    1. **Micro tier** — the dirty region is grown ``hops`` times over
       the selected edges (an edge is dirty when either endpoint is; its
       endpoints then become dirty) and, when small enough
       (:data:`WARM_MICRO_MAX_EDGES`), relaxed with
       :func:`~repro.core.sweep.local_fused_sweeps`: ``O(|region|)``
       reference-order sweeps that absorb the perturbation's amplitude
       at a tiny fraction of a full sweep's cost.
    2. **Accelerated global phase** — full color-blocked sweeps with
       geometric extrapolation.  Coordinate descent's tail is an almost
       linear contraction, so the per-sweep update direction settles and
       shrinks by a stable ratio ``r``; once two consecutive sweeps
       agree on ``r`` the remaining geometric series is applied in one
       jump (``x + dx * r / (1 - r)``), with an objective re-check that
       reverts any overshoot (the entropy guard and the ``[0, 1]``
       clamps make the map only piecewise linear).  Each jump replaces
       ``O(1 / (1 - r))`` sweeps — the bulk of a cold refinement's
       work — by one vector operation.
    3. **Certificate** — plain sweeps continue until the objective
       improves by ``<= config.tau``, the same stopping rule as
       :func:`gdb_refine`, so the converged objective matches a cold
       refinement of the same selection to within the usual
       coordinate-descent tolerance.

    Extrapolation jumps are *not* coordinate-descent steps, so the warm
    trajectory differs from the cold one; the certificate pins the end
    point to the same fixed-point tolerance, which is the maintained
    contract (``benchmarks/bench_streaming.py`` gates it along drift
    streams).  Returns the total sweep count (micro + full).

    Falls back to plain :func:`gdb_refine` whenever the restriction
    cannot apply: no ``dirty_vertices``, a non-reference backend, or a
    rule/engine combination outside the color-blocked ``k = 1`` path
    (the globally-coupled rules touch every edge each sweep anyway).
    """
    engine = _validate_engine(engine, allowed=ENGINES)
    xp = resolve_backend(backend)
    if (
        dirty_vertices is None
        or not xp.is_reference
        or not _colored_eligible(engine, config.k, state.n)
    ):
        return gdb_refine(state, config, engine=engine, plan=plan, backend=backend)

    dirty_vertices = np.asarray(dirty_vertices, dtype=np.int64)
    vmask = np.zeros(state.n, dtype=bool)
    if len(dirty_vertices):
        vmask[dirty_vertices] = True
    ev = state.edge_vertices
    emask = np.zeros(len(state.phat), dtype=bool)
    for _ in range(max(1, int(hops))):
        emask = state.selected & (vmask[ev[:, 0]] | vmask[ev[:, 1]])
        vmask[ev[emask, 0]] = True
        vmask[ev[emask, 1]] = True
    dirty_eids = np.flatnonzero(emask)

    if plan is None or (plan.n_colors == 0 and len(plan.eids)):
        plan = build_sweep_plan(state)

    sweeps = 0
    if 0 < len(dirty_eids) <= min(WARM_MICRO_MAX_EDGES, len(plan.eids) - 1):
        sub = restrict_sweep_plan(state, plan, dirty_eids)
        budget = min(
            config.max_sweeps,
            max(40, WARM_MICRO_BUDGET // len(dirty_eids)),
        )
        sweeps += local_fused_sweeps(
            state, sub, config.relative, config.h, config.tau, budget
        )

    rule = make_rule(config.k, config.relative, state.n)
    array_rule = make_array_rule(config.k, config.relative, state.n)
    eids = plan.eids
    objective = state.d1(relative=config.relative)
    x_prev = state.phat[eids].copy()
    prev_norm = prev_ratio = None
    for _ in range(config.max_sweeps):
        colored_sweep(state, plan, array_rule, rule, config.h)
        sweeps += 1
        new_objective = state.d1(relative=config.relative)
        if abs(objective - new_objective) <= config.tau:
            break
        objective = new_objective
        x_now = state.phat[eids].copy()
        dx = x_now - x_prev
        norm = float(np.linalg.norm(dx))
        x_prev = x_now
        if prev_norm is not None and prev_norm > 0.0 and norm > 0.0:
            ratio = norm / prev_norm
            if (
                prev_ratio is not None
                and ratio < 1.0
                and abs(ratio - prev_ratio) < WARM_RATIO_JITTER
            ):
                r = min(ratio, WARM_RATIO_CAP)
                apply_probability_vector(
                    state, eids, x_now + dx * (r / (1.0 - r))
                )
                new_objective = state.d1(relative=config.relative)
                if new_objective > objective:  # overshot: revert the jump
                    apply_probability_vector(state, eids, x_now)
                    new_objective = state.d1(relative=config.relative)
                objective = new_objective
                x_prev = state.phat[eids].copy()
                prev_norm = prev_ratio = None
                continue
            prev_ratio = ratio
        prev_norm = norm
    return sweeps


def _resolve_backbone(
    graph: UncertainGraph,
    alpha: "float | None",
    backbone_ids,
    backbone_method: str,
    rng,
    backbone_plan: "BackbonePlan | None",
) -> np.ndarray:
    """Shared backbone resolution for the gdb/emd/lp facades.

    Exactly one of ``alpha`` or ``backbone_ids`` must be given; a
    ``backbone_plan`` (which must belong to ``graph``) only applies to
    the ``alpha`` path, where it replaces the per-call
    :func:`build_backbone`.
    """
    if (alpha is None) == (backbone_ids is None):
        raise ValueError("provide exactly one of alpha or backbone_ids")
    if backbone_plan is not None:
        if backbone_plan.graph is not graph:
            raise ValueError("backbone plan was built for a different graph")
        if backbone_ids is not None:
            raise ValueError(
                "backbone_plan only applies when the backbone is built "
                "from alpha; drop it when passing backbone_ids"
            )
    if backbone_ids is None:
        backbone_ids = build_backbone(
            graph, alpha, method=backbone_method, rng=rng, plan=backbone_plan
        )
    return np.asarray(backbone_ids, dtype=np.int64)


def gdb(
    graph: UncertainGraph,
    alpha: float | None = None,
    backbone_ids: list[int] | None = None,
    config: GDBConfig | None = None,
    backbone_method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
    engine: str = "vector",
    backbone_plan: "BackbonePlan | None" = None,
    backend=None,
) -> UncertainGraph:
    """Sparsify ``graph`` with Gradient Descent Backbone (Algorithm 2).

    Exactly one of ``alpha`` (build a backbone internally) or
    ``backbone_ids`` (pre-built backbone, positions into
    ``graph.edge_list()``) must be provided.

    Parameters
    ----------
    graph:
        The uncertain graph ``G = (V, E, p)``.
    alpha:
        Sparsification ratio; the backbone is built with
        ``backbone_method`` ("bgi" = Algorithm 1, "random" = MC
        sampling).
    backbone_ids:
        Alternatively, explicit backbone edge ids.
    config:
        :class:`GDBConfig`; defaults to the paper's settings
        (``h = 0.05``, ``k = 1``, absolute discrepancy).
    rng:
        Seed / generator for backbone construction.
    name:
        Name for the returned graph.
    engine:
        Sweep engine, ``"vector"`` (default) or ``"loop"`` (see
        :func:`gdb_refine`).
    backbone_plan:
        Optional :class:`~repro.core.backbone.BackbonePlan` for
        ``graph``: the ``alpha`` path builds its backbone from the plan
        (bit-identical to the per-call builder for the same seed, with
        the Kruskal peels shared across calls).
    backend:
        Array backend for the sweeps (``None`` = the bit-identical
        NumPy reference; see :func:`gdb_refine`).

    Returns
    -------
    UncertainGraph
        Sparsified graph on the full vertex set with ``alpha |E|`` edges.
    """
    engine = _validate_engine(engine)
    config = config or GDBConfig()
    backbone_ids = _resolve_backbone(
        graph, alpha, backbone_ids, backbone_method, rng, backbone_plan
    )
    state = SparsificationState(graph)
    state.select_edges(backbone_ids)
    gdb_refine(state, config, engine=engine, backend=backend)
    label = name or f"gdb[{'R' if config.relative else 'A'},k={config.k}]({graph.name})"
    return state.build_graph(name=label)
