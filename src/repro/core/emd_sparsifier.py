"""Expectation-Maximization Degree (EMD) — paper Algorithm 3.

EMD alternates two phases until the degree objective
``D_1 = sum_u delta(u)^2`` stops improving:

- **E-phase** (edge swapping): walk over the current backbone edges; for
  each edge ``e``, tentatively remove it, look at the vertex ``v_H``
  with the *largest* absolute discrepancy (a vertex-indexed max-heap
  keyed by ``|delta_A|``), and among the non-selected original edges
  adjacent to ``v_H`` — plus ``e`` itself — insert the edge with the
  highest *gain* (Eq. 10) at its rule-optimal probability (Eq. 9).
  The edge budget is preserved: each removal is paired with one insert.
- **M-phase**: run GDB (:func:`repro.core.gdb.gdb_refine`) on the new
  backbone to re-optimise all probabilities.

The heap makes each E-phase ``O(alpha |E| log |V|)`` (section 4.3's
complexity argument): an edge update touches exactly two vertices.

Two engines execute the E-phase candidate scan: ``engine="loop"`` walks
the candidates one scalar ``_best_probability`` / ``_gain`` pair at a
time (the reference), while ``engine="vector"`` (default) scores every
non-selected edge incident to the max-discrepancy vertex in one array
computation — same candidate order, same tie-breaking, bit-identical
selections.  The vector engine's M-phase runs GDB's fused sequential
sweep (same edge order and arithmetic as the reference loop), so the
whole of vector EMD reproduces loop EMD exactly, only faster.

Orthogonally, ``emd_mode`` picks the E-phase *outer-loop* heap
discipline:

- ``"eager"`` (default, the reference): every removal/insertion updates
  the endpoint keys of an :class:`~repro.utils.heap.IndexedMaxHeap` in
  place — four O(log n) sifts per swapped edge.
- ``"lazy"``: a :class:`~repro.utils.heap.LazyMaxHeap` defers the
  updates — the endpoints dirtied by an insertion and the following
  removal share one vectorised magnitude rescan at the next peek, stale
  keys are discarded lazily as upper bounds, and the per-iteration heap
  build is a single C ``heapify`` over the delta array instead of an
  O(n) Python dict.  The peeked vertex is still the exact
  max-discrepancy argmax; only *ties* may break differently (smallest
  vertex id instead of heap order), so the lazy engine is gated on
  converged-objective equivalence rather than bit identity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backbone import BackbonePlan
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import GDBConfig, _resolve_backbone, _validate_engine, gdb_refine
from repro.core.sweep import clamp_and_attenuate
from repro.core.rules import (
    degree_step_absolute,
    degree_step_absolute_array,
    degree_step_relative,
    degree_step_relative_array,
)
from repro.core.uncertain_graph import UncertainGraph
from repro.utils.heap import IndexedMaxHeap, LazyMaxHeap

#: E-phase outer-loop heap disciplines (see module docstring).
EMD_MODES = ("eager", "lazy")


def _validate_emd_mode(emd_mode: str) -> str:
    if emd_mode not in EMD_MODES:
        raise ValueError(
            f"unknown emd_mode {emd_mode!r}; expected one of {EMD_MODES}"
        )
    return emd_mode


@dataclass(frozen=True)
class EMDConfig:
    """Hyper-parameters of Algorithm 3.

    ``h`` / ``relative`` mirror :class:`GDBConfig`; ``tau`` bounds the
    outer (E+M) loop; ``max_iterations`` caps it; ``gdb`` configures the
    inner M-phase (defaults to matching ``h`` / ``relative``).
    """

    h: float = 0.05
    tau: float = 1e-9
    max_iterations: int = 25
    relative: bool = False
    gdb_max_sweeps: int = 50

    def __post_init__(self) -> None:
        if not (0.0 <= self.h <= 1.0):
            raise ValueError(f"entropy parameter h must be in [0, 1], got {self.h}")
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {self.max_iterations}")


def _best_probability(state: SparsificationState, eid: int, h: float,
                      relative: bool) -> float:
    """Rule-optimal insertion probability for an edge (Eq. 9).

    The edge is currently absent (``phat = 0``), so the unclamped
    optimum is the bare step.  Algorithm 3 line 15 applies the entropy
    guard of Eq. (9), whose pseudocode compares against ``p_e`` — the
    edge's probability in the *input graph* (an edge re-entering ``E'``
    is granted the entropy it carried in ``G``).  Only candidates whose
    optimal probability would be *more* uncertain than the original are
    attenuated: they restart from ``p_e`` with an ``h``-scaled step.
    Measuring against the absent state (entropy 0) instead would cap
    every insertion at ``h * stp`` and stall the E-phase.
    """
    step_rule = degree_step_relative if relative else degree_step_absolute
    step = step_rule(state, eid)
    proposed = float(state.phat[eid]) + step
    if proposed < 0.0:
        return 0.0
    if proposed > 1.0:
        return 1.0
    original = float(state.p_original[eid])
    # Closed form of edge_entropy(proposed) > edge_entropy(original):
    # binary entropy is strictly decreasing in |p - 0.5|.
    if abs(proposed - 0.5) < abs(original - 0.5):
        return min(max(original + h * step, 0.0), 1.0)
    return proposed


def _gain(state: SparsificationState, eid: int, probability: float) -> float:
    """Objective gain of inserting ``eid`` at ``probability`` (Eq. 10).

    ``g = delta_u^2 - (delta_u - w)^2 + delta_v^2 - (delta_v - w)^2``
    with deltas taken at the edge's current (absent) contribution.
    """
    u, v = state.endpoints(eid)
    du = float(state.delta[u])
    dv = float(state.delta[v])
    w = probability
    return du * du - (du - w) ** 2 + dv * dv - (dv - w) ** 2


def _e_phase(state: SparsificationState, heap: IndexedMaxHeap,
             config: EMDConfig) -> int:
    """One pass of edge swapping (Algorithm 3, lines 8-20).

    Returns the number of structural swaps (edges replaced by a
    different edge); zero means the backbone has stabilised.
    """
    swaps = 0
    for eid in [int(e) for e in state.selected_edge_ids()]:
        u, v = state.endpoints(eid)
        previous_p = state.deselect_edge(eid)
        heap.update(u, abs(float(state.delta[u])))
        heap.update(v, abs(float(state.delta[v])))

        top_vertex, _ = heap.peek()
        # Candidates: every unselected original edge at the top vertex.
        # Line 17's arg max also includes the just-removed edge e, but
        # that is scored separately below (as the incumbent), so it is
        # skipped here.
        incident = state.incident_edges(top_vertex)
        candidates = [
            int(candidate)
            for candidate in incident[~state.selected[incident]]
        ]

        # The removed edge competes both at its rule-optimal probability
        # and at the probability it already had (the entropy guard can
        # cap the former below the latter; keeping the edge unchanged
        # must never lose to a worse swap).
        best_eid = eid
        best_p = _best_probability(state, eid, config.h, config.relative)
        best_gain = _gain(state, eid, best_p)
        keep_gain = _gain(state, eid, previous_p)
        if keep_gain > best_gain:
            best_gain, best_p = keep_gain, previous_p
        for candidate in candidates:
            if candidate == eid:
                continue
            p = _best_probability(state, candidate, config.h, config.relative)
            g = _gain(state, candidate, p)
            if g > best_gain:
                best_gain, best_eid, best_p = g, candidate, p

        if best_eid != eid:
            swaps += 1
        state.select_edge(best_eid, probability=best_p)
        bu, bv = state.endpoints(best_eid)
        heap.update(bu, abs(float(state.delta[bu])))
        heap.update(bv, abs(float(state.delta[bv])))
    return swaps


def _e_phase_vector(state: SparsificationState, heap: IndexedMaxHeap,
                    config: EMDConfig) -> int:
    """Edge swapping with the candidate scan as one array computation.

    For each removed edge, every unselected candidate at the
    max-discrepancy vertex is scored in a single gather: rule step,
    clamp, entropy guard against the original probability (Eq. 9) and
    gain (Eq. 10) are elementwise mirrors of the scalar helpers, and
    ``argmax`` returns the *first* maximal gain — exactly the reference
    loop's strict-improvement tie-breaking.  Selections are therefore
    identical to :func:`_e_phase`, swap for swap.
    """
    array_rule = (
        degree_step_relative_array if config.relative else degree_step_absolute_array
    )
    edge_vertices = state.edge_vertices
    delta = state.delta
    swaps = 0
    for eid in [int(e) for e in state.selected_edge_ids()]:
        u, v = state.endpoints(eid)
        previous_p = state.deselect_edge(eid)
        heap.update(u, abs(float(delta[u])))
        heap.update(v, abs(float(delta[v])))

        top_vertex, _ = heap.peek()
        incident = state.incident_edges(top_vertex)
        candidates = incident[~state.selected[incident]]
        candidates = candidates[candidates != eid]

        # The removed edge competes both at its rule-optimal probability
        # and at the probability it already had.
        best_eid = eid
        best_p = _best_probability(state, eid, config.h, config.relative)
        best_gain = _gain(state, eid, best_p)
        keep_gain = _gain(state, eid, previous_p)
        if keep_gain > best_gain:
            best_gain, best_p = keep_gain, previous_p

        if len(candidates):
            current = state.phat[candidates]  # zeros: all unselected
            steps = array_rule(state, candidates)
            # Eq. 9's guard measures against the *original* probability
            # (see _best_probability).
            probs = clamp_and_attenuate(
                current, steps, state.p_original[candidates], config.h
            )
            uv = edge_vertices[candidates]
            du = delta[uv[:, 0]]
            dv = delta[uv[:, 1]]
            gains = du * du - (du - probs) ** 2 + dv * dv - (dv - probs) ** 2
            top = int(np.argmax(gains))
            if float(gains[top]) > best_gain:
                best_gain = float(gains[top])
                best_eid = int(candidates[top])
                best_p = float(probs[top])

        if best_eid != eid:
            swaps += 1
        state.select_edge(best_eid, probability=best_p)
        bu, bv = state.endpoints(best_eid)
        heap.update(bu, abs(float(delta[bu])))
        heap.update(bv, abs(float(delta[bv])))
    return swaps


def _e_phase_lazy(state: SparsificationState, heap: LazyMaxHeap,
                  config: EMDConfig) -> int:
    """Edge swapping with deferred heap maintenance and fused scoring.

    The endpoint discrepancies dirtied by a removal (and by the previous
    iteration's insertion) are only *marked* with
    :meth:`LazyMaxHeap.defer`; the peek before the candidate scan
    flushes them in one batched magnitude rescan.  The peeked vertex is
    still the exact argmax of ``|delta|`` — only exact-float ties at the
    top may resolve to a different vertex than the eager heap.

    Freed from bit identity, the per-removal work is fused: the
    membership bookkeeping of ``deselect_edge`` / ``select_edge`` is
    inlined on the state arrays, the removed edge's incumbent scores are
    scalar Python, the candidate scan shares one endpoint gather between
    the step rule and the gain, and the gain uses the algebraic
    reduction of Eq. 10::

        g = delta_u^2 - (delta_u - w)^2 + delta_v^2 - (delta_v - w)^2
          = 2 w (delta_u + delta_v - w)

    Equal in exact arithmetic, different in float rounding — another
    reason the lazy engine is gated on converged-objective equivalence
    rather than bit identity.  Candidate probabilities replicate
    ``clamp_and_attenuate`` element-for-element (with ``current = 0``:
    every candidate is unselected).
    """
    relative = config.relative
    h = config.h
    delta = state.delta
    phat = state.phat
    p_original = state.p_original
    selected = state.selected
    edge_vertices = state.edge_vertices
    endpoint_list = edge_vertices.tolist()
    original_degrees = state.original_degrees
    degree_list = original_degrees.tolist()
    total_residual = state.total_residual
    swaps = 0
    for eid in state.selected_edge_ids().tolist():
        u, v = endpoint_list[eid]
        # Inlined state.deselect_edge(eid).
        previous_p = float(phat[eid])
        phat[eid] = 0.0
        selected[eid] = False
        delta[u] += previous_p
        delta[v] += previous_p
        total_residual += previous_p
        heap.defer(u, v)

        top_vertex = heap.peek()
        incident = state.incident_edges(top_vertex)
        candidates = incident[~selected[incident]]

        # The removed edge competes both at its rule-optimal probability
        # and at the probability it already had (scalar fused mirror of
        # _best_probability / _gain).
        du = float(delta[u])
        dv = float(delta[v])
        s_e = du + dv
        if relative:
            pi_u = degree_list[u]
            pi_v = degree_list[v]
            denominator = pi_u + pi_v
            step = (pi_v * du + pi_u * dv) / denominator if denominator > 0.0 else 0.0
        else:
            step = 0.5 * s_e
        if step < 0.0:
            p_opt = 0.0
        elif step > 1.0:
            p_opt = 1.0
        else:
            original = float(p_original[eid])
            if abs(step - 0.5) < abs(original - 0.5):
                p_opt = min(max(original + h * step, 0.0), 1.0)
            else:
                p_opt = step
        # Half-gains throughout: g/2 = w (s - w) preserves every argmax
        # and comparison, one multiply cheaper per batch.
        best_eid = eid
        best_p = p_opt
        best_gain = p_opt * (s_e - p_opt)
        keep_gain = previous_p * (s_e - previous_p)
        if keep_gain > best_gain:
            best_gain, best_p = keep_gain, previous_p

        if len(candidates):
            uv = edge_vertices[candidates]
            d_u = delta[uv[:, 0]]
            d_v = delta[uv[:, 1]]
            s = d_u + d_v
            if relative:
                pi_u = original_degrees[uv[:, 0]]
                pi_v = original_degrees[uv[:, 1]]
                # Candidates are real edges, so both endpoints carry
                # positive original expected degree: no zero guard.
                steps = (pi_v * d_u + pi_u * d_v) / (pi_u + pi_v)
            else:
                steps = 0.5 * s
            originals = p_original[candidates]
            # Out-of-box steps never trip the guard (|steps - 0.5| > 0.5
            # >= |originals - 0.5| there), so clamping and attenuation
            # commute into one where.
            raises = np.abs(steps - 0.5) < np.abs(originals - 0.5)
            probs = np.minimum(np.maximum(steps, 0.0), 1.0)
            if raises.any():
                attenuated = np.minimum(
                    np.maximum(originals + h * steps, 0.0), 1.0
                )
                probs = np.where(raises, attenuated, probs)
            gains = probs * (s - probs)
            top = int(gains.argmax())
            if float(gains[top]) > best_gain:
                best_gain = float(gains[top])
                best_eid = int(candidates[top])
                best_p = float(probs[top])

        # Inlined state.select_edge(best_eid, probability=best_p).
        bu, bv = endpoint_list[best_eid]
        selected[best_eid] = True
        phat[best_eid] = best_p
        delta[bu] -= best_p
        delta[bv] -= best_p
        total_residual -= best_p
        if best_eid != eid:
            swaps += 1
        heap.defer(bu, bv)
    state.total_residual = total_residual
    return swaps


def emd(
    graph: UncertainGraph,
    alpha: float | None = None,
    backbone_ids: list[int] | None = None,
    config: EMDConfig | None = None,
    backbone_method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
    engine: str = "vector",
    backbone_plan: "BackbonePlan | None" = None,
    emd_mode: str = "eager",
) -> UncertainGraph:
    """Sparsify ``graph`` with Expectation-Maximization Degree (Algorithm 3).

    Arguments mirror :func:`repro.core.gdb.gdb` (including
    ``backbone_plan``, which the ``alpha`` path uses to build the seed
    backbone); EMD additionally mutates the backbone's *edge set* during
    its E-phases, so it is less sensitive to the initial backbone than
    GDB (section 4.3).

    ``engine="vector"`` (default) vectorises the E-phase candidate scan
    and runs the M-phase on the fused sequential sweep; the result is
    bit-identical to ``engine="loop"`` (the scalar reference).

    ``emd_mode="lazy"`` (vector engine only) defers the per-swap heap
    updates into batched vectorised rescans (see the module docstring);
    it reaches the same converged objective as ``"eager"`` but is only
    tie-equivalent, not bit-identical.

    Returns
    -------
    UncertainGraph
        Sparsified graph with the same edge budget as the backbone.
    """
    engine = _validate_engine(engine)
    emd_mode = _validate_emd_mode(emd_mode)
    if emd_mode == "lazy" and engine == "loop":
        raise ValueError(
            "emd_mode='lazy' requires the vector engine; "
            "engine='loop' is the eager bit-identity reference"
        )
    config = config or EMDConfig()
    backbone_ids = _resolve_backbone(
        graph, alpha, backbone_ids, backbone_method, rng, backbone_plan
    )

    state = SparsificationState(graph)
    state.select_edges(backbone_ids)

    e_phase = _e_phase if engine == "loop" else _e_phase_vector
    # The M-phase of the vector engine is the fused sequential sweep:
    # same edge order and arithmetic as the loop engine (the colored
    # sweep would converge to the same objective but along a different
    # trajectory, and E-phase swaps are discrete decisions we keep
    # engine-invariant).
    m_engine = "loop" if engine == "loop" else "fused"

    gdb_config = GDBConfig(
        h=config.h,
        tau=config.tau,
        max_sweeps=config.gdb_max_sweeps,
        k=1,
        relative=config.relative,
    )

    final_gdb_config = GDBConfig(
        h=config.h, tau=config.tau, max_sweeps=4 * config.gdb_max_sweeps,
        k=1, relative=config.relative,
    )
    objective = state.d1(relative=config.relative)
    for _ in range(config.max_iterations):
        if emd_mode == "lazy":
            heap = LazyMaxHeap(state.delta)
            swaps = _e_phase_lazy(state, heap, config)
        else:
            heap = IndexedMaxHeap(
                {v: abs(float(state.delta[v])) for v in range(state.n)}
            )
            swaps = e_phase(state, heap, config)   # E-phase: swap edges
        gdb_refine(state, gdb_config, engine=m_engine)  # M-phase: re-optimise
        new_objective = state.d1(relative=config.relative)
        converged = abs(objective - new_objective) <= config.tau
        objective = new_objective
        if swaps == 0 or converged:
            # Structure stabilised: finish with a fully-converged M-phase.
            gdb_refine(state, final_gdb_config, engine=m_engine)
            break

    label = name or f"emd[{'R' if config.relative else 'A'}]({graph.name})"
    return state.build_graph(name=label)
