"""Degree / cut discrepancies and the sparsification objectives.

The paper measures how well a sparsified graph ``G'`` preserves the
structure of ``G`` through *discrepancies* (section 3.1):

- absolute discrepancy of a vertex set ``S``:
  ``delta_A(S) = C_G(S) - C_G'(S)`` (expected cut sizes),
- relative discrepancy ``delta_R(S) = delta_A(S) / C_G(S)``,
- the ``k``-discrepancy ``Delta_k = sum_{|S| = k} |delta(S)|``.

For ``k = 1`` the cut of a singleton is the vertex's expected degree, so
``Delta_1`` is the total expected-degree error.  GDB and EMD minimise the
squared surrogate ``D_1 = sum_u delta(u)^2`` (sections 4.2-4.3).

This module provides:

- pure functions computing discrepancy vectors between two graphs, and
- :class:`SparsificationState`, the incremental index-based bookkeeping
  structure that GDB / EMD mutate: current edge probabilities, per-vertex
  ``delta_A``, the global residual ``sum_e (p_e - phat_e)`` needed by the
  cut rules of section 5, and the ``D_1`` objective.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.uncertain_graph import UncertainGraph, Vertex
from repro.exceptions import GraphError


# ----------------------------------------------------------------------
# Whole-graph discrepancy functions (used by metrics and tests)
# ----------------------------------------------------------------------
def degree_discrepancy_vector(
    original: UncertainGraph,
    sparsified: UncertainGraph,
    relative: bool = False,
) -> np.ndarray:
    """Per-vertex discrepancy ``delta(u)`` between ``G`` and ``G'``.

    The vector is aligned with ``original.vertex_indexer()``.  With
    ``relative=True``, each entry is divided by the vertex's expected
    degree in ``G`` (vertices with zero expected degree get 0: they have
    nothing to preserve).

    Computed as indexer-aligned array ops: both graphs' expected
    degrees are scattered onto the original indexing with one
    ``np.add.at`` per endpoint column, so the cost is O(m + m') array
    work instead of a per-vertex Python loop over both adjacency maps.
    Accumulating both sides through the same edge-order scatter keeps
    identical graphs at exactly zero discrepancy.
    """
    if set(sparsified.vertices()) != set(original.vertices()):
        raise GraphError("sparsified graph must keep the original vertex set")
    n = original.number_of_vertices()

    def scattered_degrees(graph: UncertainGraph) -> np.ndarray:
        degrees = np.zeros(n, dtype=np.float64)
        if graph.number_of_edges() == 0:
            return degrees
        p = graph.probability_array()
        if graph is original or original.vertices() == graph.vertices():
            # Same insertion order (every sparsifier keeps it): the
            # graph's dense ids already align with the original's.
            endpoints = graph.edge_index_array()
        else:
            indexer = original.vertex_indexer()
            edge_list = graph.edge_list()
            endpoints = np.empty((len(edge_list), 2), dtype=np.int64)
            for i, (u, v) in enumerate(edge_list):
                endpoints[i, 0] = indexer[u]
                endpoints[i, 1] = indexer[v]
        np.add.at(degrees, endpoints[:, 0], p)
        np.add.at(degrees, endpoints[:, 1], p)
        return degrees

    d_orig = scattered_degrees(original)
    deltas = d_orig - scattered_degrees(sparsified)
    if relative:
        positive = d_orig > 0
        deltas = np.where(
            positive, deltas / np.where(positive, d_orig, 1.0), 0.0
        )
    return deltas


def cut_discrepancy(
    original: UncertainGraph,
    sparsified: UncertainGraph,
    subset: Iterable[Vertex],
    relative: bool = False,
) -> float:
    """Discrepancy ``delta(S)`` of a single vertex set (Definition 1)."""
    subset = list(subset)
    c_orig = original.expected_cut_size(subset)
    c_new = sparsified.expected_cut_size(subset)
    delta = c_orig - c_new
    if relative:
        return delta / c_orig if c_orig > 0 else 0.0
    return delta


def d1_objective(original: UncertainGraph, sparsified: UncertainGraph,
                 relative: bool = False) -> float:
    """The squared objective ``D_1 = sum_u delta(u)^2`` (section 4.2)."""
    deltas = degree_discrepancy_vector(original, sparsified, relative=relative)
    return float(np.sum(deltas * deltas))


def delta_1(original: UncertainGraph, sparsified: UncertainGraph,
            relative: bool = False) -> float:
    """The paper's ``Delta_1 = sum_u |delta(u)|`` (problem objective, k=1)."""
    deltas = degree_discrepancy_vector(original, sparsified, relative=relative)
    return float(np.abs(deltas).sum())


# ----------------------------------------------------------------------
# Incremental state for GDB / EMD
# ----------------------------------------------------------------------
class SparsificationState:
    """Index-based incremental bookkeeping for the iterative sparsifiers.

    The state is defined against the *original* graph's edge list: edge
    ``eid`` refers to position ``eid`` in ``original.edge_list()``.  Each
    edge has a current probability ``phat[eid]`` which is 0 for edges not
    presently in the sparsified edge set.

    Maintained invariants (O(1) per scalar update, O(batch) vectorised):

    - ``delta[u] = d_G(u) - sum_{e in E', e ~ u} phat[e]``  (absolute
      degree discrepancy of every vertex),
    - ``total_residual = sum_{e in E} (p[e] - phat[e])`` (the global term
      feeding the cut rules, Eq. 13-16),
    - ``selected`` — boolean membership of each edge in ``E'``.

    Incidence is stored in CSR form — ``inc_indptr`` (``n + 1``) and
    ``inc_eids`` (``2 m``, ascending edge ids per vertex) — so the sweep
    and scan engines slice a vertex's incident edges as one contiguous
    array view instead of walking ``list[list[int]]``.

    The class is deliberately unaware of *which* rule updates
    probabilities; GDB / EMD drive it.
    """

    def __init__(self, original: UncertainGraph) -> None:
        self.graph = original
        self.n = original.number_of_vertices()
        self.edge_vertices = original.edge_index_array()  # (m, 2)
        self.p_original = np.array(original.probability_array(), dtype=np.float64)
        self.m = len(self.p_original)
        self.phat = np.zeros(self.m, dtype=np.float64)
        self.selected = np.zeros(self.m, dtype=bool)
        self.original_degrees = original.expected_degree_array()
        self.delta = self.original_degrees.copy()
        self.total_residual = float(self.p_original.sum())
        # CSR incidence, built once with array ops: a stable argsort of
        # the flattened endpoint column groups entries by vertex, and
        # within a vertex ascending flat index means ascending edge id
        # (flat position 2*eid / 2*eid + 1).
        flat = self.edge_vertices.reshape(-1)
        order = np.argsort(flat, kind="stable")
        self.inc_eids = order // 2
        self.inc_eids.setflags(write=False)
        counts = np.bincount(flat, minlength=self.n)
        self.inc_indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.inc_indptr[1:])
        self.inc_indptr.setflags(write=False)

    @property
    def indexer(self) -> dict:
        """``vertex -> dense id`` map of the original graph (lazy).

        Only scalar label-facing callers need this; the vectorised paths
        never touch it, and building it eagerly would cost O(n) dict
        entries per worker process in sharded runs.
        """
        return self.graph.vertex_indexer()

    @property
    def vertex_of(self) -> list:
        """Dense id -> vertex label list of the original graph (lazy)."""
        return list(self.graph.vertices())

    def incident_edges(self, vertex: int) -> np.ndarray:
        """Ids of all original edges incident to dense vertex ``vertex``.

        A read-only CSR slice, in ascending edge-id order.
        """
        return self.inc_eids[self.inc_indptr[vertex]:self.inc_indptr[vertex + 1]]

    # -- membership -----------------------------------------------------
    def select_edge(self, eid: int, probability: float | None = None) -> None:
        """Put edge ``eid`` into the sparsified set.

        Defaults to the original probability (the seed graph of
        Algorithm 2 / 3 starts from ``phat = p``).
        """
        if self.selected[eid]:
            raise GraphError(f"edge {eid} already selected")
        self.selected[eid] = True
        p = self.p_original[eid] if probability is None else float(probability)
        self._apply_probability(eid, p)

    def deselect_edge(self, eid: int) -> float:
        """Remove edge ``eid`` from the sparsified set; returns its last phat."""
        if not self.selected[eid]:
            raise GraphError(f"edge {eid} not selected")
        old = float(self.phat[eid])
        self._apply_probability(eid, 0.0)
        self.selected[eid] = False
        return old

    def set_probability(self, eid: int, probability: float) -> None:
        """Change the current probability of a selected edge."""
        if not self.selected[eid]:
            raise GraphError(f"edge {eid} not selected")
        self._apply_probability(eid, float(probability))

    def _apply_probability(self, eid: int, new_p: float) -> None:
        change = new_p - self.phat[eid]
        if change == 0.0:
            self.phat[eid] = new_p
            return
        u, v = self.edge_vertices[eid]
        self.delta[u] -= change
        self.delta[v] -= change
        self.total_residual -= change
        self.phat[eid] = new_p

    # -- batched membership / probability updates --------------------------
    def select_edges(self, eids: np.ndarray,
                     probabilities: "np.ndarray | None" = None) -> None:
        """Put a batch of distinct edges into the sparsified set at once.

        Vectorised counterpart of looping :meth:`select_edge`; defaults
        to the original probabilities (the backbone seed of
        Algorithms 2 / 3).
        """
        eids = np.asarray(eids, dtype=np.int64)
        if np.any(self.selected[eids]):
            raise GraphError("edge already selected in batch select")
        if len(np.unique(eids)) != len(eids):
            raise GraphError("duplicate edge ids in batch select")
        new_ps = (
            self.p_original[eids] if probabilities is None
            else np.asarray(probabilities, dtype=np.float64)
        )
        if new_ps.shape != eids.shape:
            raise GraphError(
                f"probabilities shape {new_ps.shape} does not match "
                f"eids shape {eids.shape}"
            )
        self.selected[eids] = True
        self._scatter_probabilities(eids, new_ps)

    def apply_probabilities(self, eids: np.ndarray, new_ps: np.ndarray) -> None:
        """Batched probability update for *distinct* selected edges.

        Delta bookkeeping is scattered with unbuffered ``np.subtract.at``
        so edges sharing an endpoint accumulate correctly; the global
        residual absorbs the summed change.  This is the batched
        primitive for drivers and callers (grid seeding, tests); the
        color-blocked sweep inlines the same scatter without the
        validation, using the plan's guarantee that a color class has
        unique, selected edges with unique endpoints.
        """
        eids = np.asarray(eids, dtype=np.int64)
        new_ps = np.asarray(new_ps, dtype=np.float64)
        if new_ps.shape != eids.shape:
            raise GraphError(
                f"probabilities shape {new_ps.shape} does not match "
                f"eids shape {eids.shape}"
            )
        if not np.all(self.selected[eids]):
            raise GraphError("apply_probabilities on an unselected edge")
        if len(np.unique(eids)) != len(eids):
            raise GraphError("duplicate edge ids in apply_probabilities")
        # Same probability domain as ``UncertainGraph.from_edge_arrays``:
        # the in-place path used to skip this, letting out-of-domain
        # values hide until materialisation.  (NaN fails both
        # comparisons, so it is rejected too.)
        bad = np.flatnonzero(~((new_ps > 0.0) & (new_ps <= 1.0)))
        if len(bad):
            raise GraphError(
                f"edge probability must be in (0, 1], got "
                f"{new_ps[bad[0]]!r} for edge {int(eids[bad[0]])}"
            )
        self._scatter_probabilities(eids, new_ps)

    def deselect_edges(self, eids: np.ndarray) -> np.ndarray:
        """Remove a batch of distinct edges from the sparsified set.

        Vectorised counterpart of looping :meth:`deselect_edge`; returns
        the edges' last probabilities (aligned with ``eids``).
        """
        eids = np.asarray(eids, dtype=np.int64)
        if not np.all(self.selected[eids]):
            raise GraphError("deselect of an unselected edge in batch")
        if len(np.unique(eids)) != len(eids):
            raise GraphError("duplicate edge ids in batch deselect")
        old = self.phat[eids].copy()
        self._scatter_probabilities(eids, np.zeros(len(eids), dtype=np.float64))
        self.selected[eids] = False
        return old

    def _scatter_probabilities(self, eids: np.ndarray, new_ps: np.ndarray) -> None:
        """Unchecked batched update (callers have validated ``eids``)."""
        changes = new_ps - self.phat[eids]
        np.subtract.at(self.delta, self.edge_vertices[eids, 0], changes)
        np.subtract.at(self.delta, self.edge_vertices[eids, 1], changes)
        self.total_residual -= float(changes.sum())
        self.phat[eids] = new_ps

    # -- snapshots (grid sweeps re-anneal from a shared seed state) --------
    def snapshot(self, eids: "np.ndarray | None" = None) -> tuple:
        """Copy of the mutable state (see :meth:`restore`).

        With ``eids=None`` (the default) the snapshot is the full
        O(m + n) copy the grid driver uses.  Passing an edge-id array
        takes an O(dirty) *partial* snapshot covering exactly those
        edges and their endpoint vertices — valid to restore only if no
        other edge's ``phat``/``selected`` entry (and hence no other
        vertex's ``delta``) mutates in between, which is the contract of
        a tight update loop that touches a known dirty set.  Restoring a
        partial snapshot is bit-identical to restoring a full one taken
        at the same moment.
        """
        if eids is None:
            return (
                self.phat.copy(),
                self.selected.copy(),
                self.delta.copy(),
                self.total_residual,
            )
        eids = np.asarray(eids, dtype=np.int64)
        vertices = np.unique(self.edge_vertices[eids])
        return (
            "partial",
            eids.copy(),
            self.phat[eids].copy(),
            self.selected[eids].copy(),
            vertices,
            self.delta[vertices].copy(),
            self.total_residual,
        )

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot`; the grid driver's reset-per-cell."""
        if isinstance(snap[0], str):
            _, eids, phat, selected, vertices, delta, total_residual = snap
            self.phat[eids] = phat
            self.selected[eids] = selected
            self.delta[vertices] = delta
            self.total_residual = total_residual
            return
        phat, selected, delta, total_residual = snap
        self.phat[:] = phat
        self.selected[:] = selected
        self.delta[:] = delta
        self.total_residual = total_residual

    # -- streaming deltas --------------------------------------------------
    def apply_delta(self, applied) -> None:
        """Re-key the state after an applied edge-delta batch.

        ``applied`` is the :class:`repro.core.delta.AppliedDelta` of a
        batch already applied to the underlying graph.  Pure probability
        updates adjust ``p_original`` / ``original_degrees`` / ``delta``
        / ``total_residual`` in O(batch) (``phat`` and membership are
        untouched — re-refinement is the caller's move); structural
        batches rebuild the arrays in the new id space, carrying the
        surviving edges' ``phat`` and membership across ``id_map``
        (deleted selected edges drop out of ``E'`` with their mass).
        """
        batch = applied.batch
        if not applied.structural:
            eids = batch.update_eids
            if not len(eids):
                self.graph = applied.graph
                return
            dp = batch.update_ps - self.p_original[eids]
            if not self.original_degrees.flags.writeable:
                # EdgeArrayGraph shares its cached read-only degree array.
                self.original_degrees = self.original_degrees.copy()
            for col in (0, 1):
                np.add.at(self.original_degrees, self.edge_vertices[eids, col], dp)
                np.add.at(self.delta, self.edge_vertices[eids, col], dp)
            self.total_residual += float(dp.sum())
            self.p_original[eids] = batch.update_ps
            self.graph = applied.graph
            return

        graph = applied.graph
        old_phat = self.phat
        old_selected = self.selected
        alive = applied.id_map >= 0
        self.graph = graph
        self.edge_vertices = graph.edge_index_array()
        self.p_original = np.array(graph.probability_array(), dtype=np.float64)
        self.m = len(self.p_original)
        self.phat = np.zeros(self.m, dtype=np.float64)
        self.selected = np.zeros(self.m, dtype=bool)
        self.phat[applied.id_map[alive]] = old_phat[alive]
        self.selected[applied.id_map[alive]] = old_selected[alive]
        self.original_degrees = graph.expected_degree_array()
        held = np.zeros(self.n, dtype=np.float64)
        sel = np.flatnonzero(self.selected)
        np.add.at(held, self.edge_vertices[sel, 0], self.phat[sel])
        np.add.at(held, self.edge_vertices[sel, 1], self.phat[sel])
        self.delta = self.original_degrees - held
        self.total_residual = float(self.p_original.sum() - self.phat.sum())
        flat = self.edge_vertices.reshape(-1)
        order = np.argsort(flat, kind="stable")
        self.inc_eids = order // 2
        self.inc_eids.setflags(write=False)
        counts = np.bincount(flat, minlength=self.n)
        self.inc_indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.inc_indptr[1:])
        self.inc_indptr.setflags(write=False)

    # -- views ------------------------------------------------------------
    def selected_edge_ids(self) -> np.ndarray:
        """Array of edge ids currently in ``E'``."""
        return np.flatnonzero(self.selected)

    def edge_count(self) -> int:
        """Current ``|E'|``."""
        return int(self.selected.sum())

    def endpoints(self, eid: int) -> tuple[int, int]:
        """Dense integer endpoints of edge ``eid``."""
        u, v = self.edge_vertices[eid]
        return int(u), int(v)

    def residual_excluding(self, eid: int) -> float:
        """``Delta-hat(e)``: global residual over edges touching neither endpoint.

        This is the term of Eq. (13): ``sum_{(u1,v1): u1 != u0, v1 != v0}
        (p - phat)``.  Computed as the total residual minus the residual
        of all edges incident to either endpoint — which equals
        ``delta[u] + delta[v]`` minus the doubly-counted edge ``e``
        itself.
        """
        u, v = self.endpoints(eid)
        edge_residual = self.p_original[eid] - self.phat[eid]
        incident_residual = self.delta[u] + self.delta[v] - edge_residual
        return self.total_residual - incident_residual

    def residual_excluding_edge_only(self, eid: int) -> float:
        """Global residual over all edges except ``e`` (the k = n rule, Eq. 16)."""
        return self.total_residual - (self.p_original[eid] - self.phat[eid])

    # -- objectives -------------------------------------------------------
    def d1(self, relative: bool = False) -> float:
        """Current ``D_1 = sum_u delta(u)^2`` (or the relative variant)."""
        if not relative:
            return float(np.dot(self.delta, self.delta))
        scale = np.where(self.original_degrees > 0, self.original_degrees, 1.0)
        rel = np.where(self.original_degrees > 0, self.delta / scale, 0.0)
        return float(np.dot(rel, rel))

    def mean_absolute_delta(self) -> float:
        """MAE of the absolute degree discrepancy (Table 2's metric)."""
        return float(np.abs(self.delta).mean())

    # -- materialisation ----------------------------------------------------
    def build_graph(self, name: str = "") -> UncertainGraph:
        """Materialise the current state as an :class:`UncertainGraph`.

        Edges whose current probability has been driven to (numerically)
        zero are kept with a tiny positive probability so the edge budget
        ``|E'| = alpha |E|`` is verifiable on the output; callers that
        prefer dropping them can prune afterwards.
        """
        eids = np.flatnonzero(self.selected)
        return UncertainGraph.from_edge_arrays(
            self.graph.vertices(),
            self.edge_vertices[eids],
            np.maximum(self.phat[eids], 1e-9),
            name=name,
        )

    # -- invariant check (tests) -------------------------------------------
    def verify(self, tol: float = 1e-8) -> None:
        """Recompute delta / residual from scratch and compare.

        The scratch recompute is two ``np.add.at`` scatters instead of a
        per-edge Python loop, so property tests can afford to call it on
        every hypothesis example.
        """
        eids = np.flatnonzero(self.selected)
        degrees = np.zeros(self.n, dtype=np.float64)
        np.add.at(degrees, self.edge_vertices[eids, 0], self.phat[eids])
        np.add.at(degrees, self.edge_vertices[eids, 1], self.phat[eids])
        expected_delta = self.original_degrees - degrees
        if not np.allclose(expected_delta, self.delta, atol=tol):
            raise AssertionError("delta bookkeeping diverged")
        expected_residual = float((self.p_original - self.phat).sum())
        if abs(expected_residual - self.total_residual) > max(tol, 1e-6 * abs(expected_residual)):
            raise AssertionError("total residual bookkeeping diverged")
