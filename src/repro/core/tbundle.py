"""t-bundle spanner backbone (Koutis [21], paper footnote 8).

The paper's Algorithm 1 peels *maximum spanning forests*; footnote 8
notes that other deterministic skeletons — notably the t-bundle of
spanner literature — could seed the backbone instead.  A t-bundle is a
union of ``t`` edge-disjoint spanners: each round computes a low-stretch
spanner of the remaining edges and removes it.  Compared with spanning
forests, the bundle preserves *short alternative paths* (not just
connectivity), which is exactly what spectral-sparsification theory
wants from a skeleton.

We reuse the Baswana–Sen implementation from
:mod:`repro.baselines.spanner` with ``-log p`` weights, so each bundle
layer keeps the most-probable paths available.  Exposed through
``build_backbone(..., method="t_bundle")`` for the backbone ablation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.spanner import baswana_sen_spanner
from repro.core.backbone import _mc_top_up, target_edge_count
from repro.core.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def t_bundle_backbone(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    stretch: int = 2,
    max_layers: int = 8,
) -> list[int]:
    """Backbone from edge-disjoint spanner layers + MC top-up.

    Layers are added while they fit within the ``alpha |E|`` budget
    (each layer is a ``(2 * stretch - 1)``-spanner of the edges not yet
    claimed); the remainder is filled by Monte-Carlo edge sampling like
    Algorithm 1's lines 7-11.

    Parameters
    ----------
    graph:
        The uncertain graph.
    alpha:
        Sparsification ratio in ``(0, 1)``.
    rng:
        Seed / generator (spanner clustering and top-up are randomised).
    stretch:
        Stretch parameter ``t`` of each spanner layer.
    max_layers:
        Upper bound on bundle layers (the budget usually binds first).

    When even a single layer exceeds the budget, the layer's lightest
    (most probable) edges are kept up to the budget.
    """
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    n = graph.number_of_vertices()
    target = target_edge_count(m, alpha)
    edge_vertices = graph.edge_index_array()
    probabilities = np.array(graph.probability_array())
    weights = -np.log(np.clip(probabilities, 1e-15, 1.0))

    remaining = set(range(m))
    chosen: list[int] = []
    for _ in range(max_layers):
        if not remaining or len(chosen) >= target:
            break
        candidate_ids = np.fromiter(remaining, dtype=np.int64, count=len(remaining))
        # Spanner over the residual subgraph: relabel edges into a
        # compact array for the spanner routine.
        layer_local = baswana_sen_spanner(
            n, edge_vertices[candidate_ids], weights[candidate_ids], stretch, rng
        )
        layer = [int(candidate_ids[i]) for i in layer_local]
        if not layer:
            break
        if len(chosen) + len(layer) > target:
            if not chosen:
                # Even one layer overflows (small budgets on sparse
                # graphs): keep the layer's lightest — most probable —
                # edges, the same fallback as the SP benchmark.
                layer.sort(key=lambda eid: (weights[eid], eid))
                layer = layer[:target]
                chosen.extend(layer)
                remaining.difference_update(layer)
            break
        chosen.extend(layer)
        remaining.difference_update(layer)

    _mc_top_up(chosen, remaining, probabilities, target, rng)
    return chosen
