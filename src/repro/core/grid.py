"""Grid-sweep driver: one CSR state and one backbone plan across an
(alpha, h) parameter grid.

The fig. 4/5-style experiments sweep GDB over a grid of sparsification
ratios and entropy parameters.  Naively each cell pays for the full
setup again — edge views, ``SparsificationState`` construction (CSR
incidence), backbone building (a fresh Kruskal per cell), and the sweep
plan (greedy coloring).  None of that depends on ``h``, and everything
except the backbone prefix length and sweep plan is independent of
``alpha`` too, so this driver builds each exactly once:

- one :class:`SparsificationState` per graph (CSR incidence shared by
  every cell),
- one :class:`~repro.core.backbone.BackbonePlan` per graph (a single
  stable argsort + nested Kruskal peels shared by every *alpha*; each
  alpha's backbone is a peel-prefix slice plus its seeded MC top-up),
- one backbone + seeded-state snapshot + :class:`SweepPlan` per alpha,
- per ``h``: restore the snapshot, run :func:`gdb_refine` with the
  shared plan, and record the converged objective (optionally the
  materialised graph).

``rng`` follows :func:`repro.core.backbone.build_backbone` semantics: an
int seed re-seeds per alpha (matching the historical fig05 protocol of
building each backbone from the same seed), a generator draws
sequentially.  Either way each cell's backbone is bit-identical to an
independent ``build_backbone`` call under the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backbone import BackbonePlan
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import GDBConfig, _colored_eligible, _validate_engine, gdb_refine
from repro.core.sweep import build_sweep_plan
from repro.core.uncertain_graph import UncertainGraph


@dataclass(frozen=True)
class GridCell:
    """Result of one (alpha, h) grid cell.

    ``objective`` is the converged ``D_1`` (relative variant when the
    grid ran with ``relative=True``); ``graph`` is ``None`` when the
    driver ran with ``build_graphs=False`` (objective-only sweeps skip
    materialisation entirely).  ``backbone`` is the cell's backbone
    edge-id array (read-only; shared across the cell's ``h`` row), so
    ``consume`` hooks that need the seed edge set — e.g. fig04's
    cuts-vs-time reduction — don't rebuild it.
    """

    alpha: float
    h: float
    objective: float
    sweeps: int
    graph: "UncertainGraph | None"
    backbone: "np.ndarray | None" = None


def objective_rows(results: dict) -> list[dict]:
    """Flatten a :func:`gdb_grid` result into JSON-ready objective rows.

    The artifact shape the server's ``grid`` endpoint (and any report
    writer) serialises: one ``{alpha, h, objective, sweeps}`` dict per
    cell, ordered by ``(alpha, h)``.  Works on objective-only sweeps
    (``build_graphs=False``); cells replaced by a ``consume`` hook are
    skipped since their shape is caller-defined.
    """
    rows = []
    for (alpha, h) in sorted(results):
        cell = results[(alpha, h)]
        if not isinstance(cell, GridCell):
            continue
        rows.append({
            "alpha": cell.alpha,
            "h": cell.h,
            "objective": cell.objective,
            "sweeps": cell.sweeps,
        })
    return rows


def gdb_grid(
    graph: UncertainGraph,
    alphas,
    h_values,
    k: "int | str" = 1,
    relative: bool = False,
    tau: float = 1e-9,
    max_sweeps: int = 200,
    backbone_method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    engine: str = "vector",
    build_graphs: bool = True,
    name_prefix: str = "",
    consume=None,
    backbone_plan: "BackbonePlan | None" = None,
    workers: int = 1,
    dataset=None,
    backend=None,
) -> dict[tuple[float, float], "GridCell | object"]:
    """Run GDB over the full ``alphas x h_values`` grid, sharing setup.

    Returns a dict keyed ``(alpha, h)``.  Each cell is equivalent to an
    independent :func:`repro.core.gdb.gdb` call with the same backbone —
    the snapshot/restore resets probabilities exactly to the backbone
    seed between cells, and the shared :class:`BackbonePlan` yields
    backbones bit-identical to per-cell ``build_backbone`` calls.

    ``consume``, if given, is called with each finished
    :class:`GridCell` (including its ``backbone`` edge ids) and its
    return value is stored instead of the cell; use it to reduce a cell
    to its metrics on the spot so the driver never holds more than one
    materialised graph at a time (``build_graphs=False`` skips
    materialisation altogether when only objectives are wanted).

    ``backbone_plan``, if given, must belong to ``graph``; otherwise one
    is built internally (callers sweeping several grids over the same
    graph should build one plan and pass it to every call).

    ``workers > 1`` fans the grid over deterministic shards of worker
    processes (:func:`repro.core.shard.sharded_gdb_grid`) — results are
    bit-identical to the serial run for any worker count.  Sharded mode
    is objective-only (``build_graphs=False``, no ``consume``), needs an
    int ``rng`` seed, and accepts ``dataset`` (a binary dataset path or
    :class:`~repro.datasets.binary_io.BinaryDataset`) so workers mmap
    the edge data instead of receiving it pickled.

    ``backend`` selects the sweep array backend (``None`` = the
    bit-identical NumPy reference; see :func:`repro.core.gdb.gdb_refine`).
    A non-reference backend holds live device state, so it cannot be
    combined with process sharding — one device, one driver.
    """
    from repro.backend import resolve_backend

    xp = resolve_backend(backend)
    if workers > 1 and not xp.is_reference:
        raise ValueError(
            f"backend={xp.name!r} cannot be combined with workers > 1: "
            "sharded grids fan over host processes; run device grids "
            "serially (workers=1)"
        )
    if workers > 1:
        if build_graphs:
            raise ValueError(
                "sharded gdb_grid (workers > 1) is objective-only: pass "
                "build_graphs=False (materialised graphs would be pickled "
                "back from every worker)"
            )
        if consume is not None:
            raise ValueError(
                "consume hooks run in the parent and are not supported "
                "with workers > 1"
            )
        if backbone_plan is not None:
            raise ValueError(
                "backbone_plan cannot be shared with worker processes; "
                "each worker builds its own (bit-identical) plan"
            )
        from repro.core.shard import sharded_gdb_grid

        return sharded_gdb_grid(
            graph, alphas, h_values, workers=workers, k=k,
            relative=relative, tau=tau, max_sweeps=max_sweeps,
            backbone_method=backbone_method, rng=rng, engine=engine,
            dataset=dataset,
        )
    if dataset is not None:
        raise ValueError("dataset= is only meaningful with workers > 1")
    engine = _validate_engine(engine)
    alphas = list(alphas)
    h_values = list(h_values)
    if backbone_plan is None:
        backbone_plan = BackbonePlan(graph)
    elif backbone_plan.graph is not graph:
        raise ValueError("backbone plan was built for a different graph")
    state = SparsificationState(graph)
    empty = state.snapshot()
    colored = _colored_eligible(engine, k, state.n)
    results: dict[tuple[float, float], GridCell] = {}
    for alpha in alphas:
        backbone = backbone_plan.backbone(alpha, method=backbone_method, rng=rng)
        state.select_edges(backbone)
        seeded = state.snapshot()
        plan = build_sweep_plan(state, sequential_only=not colored)
        for h in h_values:
            state.restore(seeded)
            config = GDBConfig(
                h=h, tau=tau, max_sweeps=max_sweeps, k=k, relative=relative
            )
            sweeps = gdb_refine(
                state, config, engine=engine, plan=plan, backend=xp
            )
            objective = float(state.d1(relative=relative))
            cell_graph = None
            if build_graphs:
                label = (
                    f"{name_prefix or 'gdb-grid'}"
                    f"[a={alpha:g},h={h:g}]({graph.name})"
                )
                cell_graph = state.build_graph(name=label)
            cell = GridCell(
                alpha=alpha, h=h, objective=objective,
                sweeps=sweeps, graph=cell_graph, backbone=backbone,
            )
            results[(alpha, h)] = cell if consume is None else consume(cell)
        state.restore(empty)
    return results
