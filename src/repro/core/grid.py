"""Grid-sweep driver: one CSR state across an (alpha, h) parameter grid.

The fig. 5-style experiments sweep GDB over a grid of sparsification
ratios and entropy parameters.  Naively each cell pays for the full
setup again — edge views, ``SparsificationState`` construction (CSR
incidence), backbone building, and the sweep plan (greedy coloring).
None of that depends on ``h``, and everything except the backbone and
plan is independent of ``alpha`` too, so this driver builds each exactly
once:

- one :class:`SparsificationState` per graph (CSR incidence shared by
  every cell),
- one backbone + seeded-state snapshot + :class:`SweepPlan` per alpha,
- per ``h``: restore the snapshot, run :func:`gdb_refine` with the
  shared plan, and record the converged objective (optionally the
  materialised graph).

``rng`` follows :func:`repro.core.backbone.build_backbone` semantics: an
int seed re-seeds per alpha (matching the historical fig05 protocol of
building each backbone from the same seed), a generator draws
sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backbone import build_backbone
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import GDBConfig, _colored_eligible, _validate_engine, gdb_refine
from repro.core.sweep import build_sweep_plan
from repro.core.uncertain_graph import UncertainGraph


@dataclass(frozen=True)
class GridCell:
    """Result of one (alpha, h) grid cell.

    ``objective`` is the converged ``D_1`` (relative variant when the
    grid ran with ``relative=True``); ``graph`` is ``None`` when the
    driver ran with ``build_graphs=False`` (objective-only sweeps skip
    materialisation entirely).
    """

    alpha: float
    h: float
    objective: float
    sweeps: int
    graph: "UncertainGraph | None"


def gdb_grid(
    graph: UncertainGraph,
    alphas,
    h_values,
    k: "int | str" = 1,
    relative: bool = False,
    tau: float = 1e-9,
    max_sweeps: int = 200,
    backbone_method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    engine: str = "vector",
    build_graphs: bool = True,
    name_prefix: str = "",
    consume=None,
) -> dict[tuple[float, float], "GridCell | object"]:
    """Run GDB over the full ``alphas x h_values`` grid, sharing setup.

    Returns a dict keyed ``(alpha, h)``.  Each cell is equivalent to an
    independent :func:`repro.core.gdb.gdb` call with the same backbone —
    the snapshot/restore resets probabilities exactly to the backbone
    seed between cells.

    ``consume``, if given, is called with each finished
    :class:`GridCell` and its return value is stored instead of the
    cell; use it to reduce a cell to its metrics on the spot so the
    driver never holds more than one materialised graph at a time
    (``build_graphs=False`` skips materialisation altogether when only
    objectives are wanted).
    """
    engine = _validate_engine(engine)
    alphas = list(alphas)
    h_values = list(h_values)
    state = SparsificationState(graph)
    empty = state.snapshot()
    colored = _colored_eligible(engine, k, state.n)
    results: dict[tuple[float, float], GridCell] = {}
    for alpha in alphas:
        backbone = np.asarray(
            build_backbone(graph, alpha, method=backbone_method, rng=rng),
            dtype=np.int64,
        )
        state.select_edges(backbone)
        seeded = state.snapshot()
        plan = build_sweep_plan(state, sequential_only=not colored)
        for h in h_values:
            state.restore(seeded)
            config = GDBConfig(
                h=h, tau=tau, max_sweeps=max_sweeps, k=k, relative=relative
            )
            sweeps = gdb_refine(state, config, engine=engine, plan=plan)
            objective = float(state.d1(relative=relative))
            cell_graph = None
            if build_graphs:
                label = (
                    f"{name_prefix or 'gdb-grid'}"
                    f"[a={alpha:g},h={h:g}]({graph.name})"
                )
                cell_graph = state.build_graph(name=label)
            cell = GridCell(
                alpha=alpha, h=h, objective=objective,
                sweeps=sweeps, graph=cell_graph,
            )
            results[(alpha, h)] = cell if consume is None else consume(cell)
        state.restore(empty)
    return results
