"""Color-blocked and fused sweep engines for the iterative sparsifiers.

The scalar reference loop of GDB (:mod:`repro.core.gdb`) performs cyclic
coordinate descent: one closed-form rule step per edge, applied
immediately.  This module provides two faster, equivalent executions of
the same sweep:

- **Color-blocked** (``k = 1`` rules only): the backbone is greedily
  edge-colored once; edges of one color share no endpoint, and the
  ``k = 1`` step of an edge depends only on the discrepancies of its own
  endpoints, so applying a whole color class as one array operation is
  *exactly* a sequential coordinate-descent pass in (color, edge-id)
  order.  Classes below :data:`MIN_BLOCK_SIZE` are folded into a scalar
  tail (power-law hubs force many tiny classes; any sequential order is
  still exact coordinate descent), which keeps the per-class numpy
  dispatch overhead off the hot path.
- **Fused sequential** (all rules): the same edge-id order as the
  reference loop, executed over plain Python floats pulled from the
  state arrays once per sweep — bit-identical arithmetic to the
  reference loop (the rules and the clamp/attenuation of Algorithm 2
  lines 7-10 are mirrored expression by expression) without the
  per-edge method-call and numpy scalar-indexing overhead.  Rules with a
  global residual term (``k >= 2`` and ``k = "n"``) couple every edge
  through ``total_residual``, so color classes are *not* independent for
  them; the vector engine runs this path instead.

Both engines descend the same objective; the ``k = 1`` color-blocked
order differs from the reference loop's, but coordinate descent on the
convex ``D_1`` objective reaches the same converged value (the
loop-vs-vector contract pinned by ``tests/test_sweep.py``).

A third execution, :class:`DeviceSweep`, lifts the color-blocked ``k = 1``
path onto an ``xp`` array backend (:mod:`repro.backend`): state uploads
once, every color class becomes one elementwise device kernel, and only
the per-sweep objective scalar syncs back.  It is selected by
``gdb_refine(..., backend=...)`` for non-reference backends; the host
engines above remain the bit-identity reference.

The entropy guard uses the closed form ``H(p') > H(p)  <=>
|p' - 0.5| < |p - 0.5|`` (see :func:`repro.core.entropy.entropy_increases`)
so neither engine spends a transcendental call per edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.discrepancy import SparsificationState
from repro.core.entropy import entropy_increases
from repro.utils.binomials import cut_rule_coefficients

#: Color classes smaller than this run in the scalar tail instead of as
#: an array block: ~30 numpy dispatches per class cost more than a few
#: scalar steps.
MIN_BLOCK_SIZE = 16


def greedy_edge_coloring(endpoints: np.ndarray) -> np.ndarray:
    """Greedy proper edge coloring: same-color edges share no endpoint.

    Processes edges in the given order and assigns each the smallest
    color unused at either endpoint (at most ``2 * max_degree - 1``
    colors).  Per-vertex used-color sets are integer bitmasks, so one
    edge costs two ``|`` and one lowest-zero-bit scan.
    """
    colors = np.zeros(len(endpoints), dtype=np.int64)
    used: dict[int, int] = {}
    for i, (u, v) in enumerate(np.asarray(endpoints).tolist()):
        mask = used.get(u, 0) | used.get(v, 0)
        free = ~mask & (mask + 1)  # lowest zero bit of the mask
        c = free.bit_length() - 1
        colors[i] = c
        used[u] = used.get(u, 0) | free
        used[v] = used.get(v, 0) | free
    return colors


@dataclass
class SweepPlan:
    """Precomputed execution plan for sweeps over a fixed edge set.

    Built once per backbone (and reused across sweeps, entropy
    parameters, and grid cells): the greedy coloring, the large color
    classes as gather-ready arrays, the scalar tail, and the sequential
    (edge-id-ordered) endpoint lists the fused engine consumes.
    """

    eids: np.ndarray                 # ascending edge ids of the swept set
    colors: np.ndarray               # greedy color per edge, aligned with eids
    n_colors: int
    blocks: list = field(default_factory=list)      # (eids, u, v) arrays per class
    tail_eids: list = field(default_factory=list)   # small-class edges, ascending
    seq_eids: list = field(default_factory=list)    # reference-loop order
    seq_u: list = field(default_factory=list)
    seq_v: list = field(default_factory=list)


def build_sweep_plan(
    state: SparsificationState,
    eids: "np.ndarray | None" = None,
    min_block_size: int = MIN_BLOCK_SIZE,
    sequential_only: bool = False,
) -> SweepPlan:
    """Color the (selected) edge set and lay out the sweep schedule.

    With ``sequential_only=True`` the coloring is skipped and only the
    fused engine's edge-id-ordered lists are laid out (the ``k >= 2``
    rules never consume color classes).
    """
    if eids is None:
        eids = state.selected_edge_ids()
    eids = np.asarray(eids, dtype=np.int64)
    endpoints = state.edge_vertices[eids]
    if sequential_only:
        return SweepPlan(
            eids=eids,
            colors=np.zeros(0, dtype=np.int64),
            n_colors=0,
            seq_eids=eids.tolist(),
            seq_u=endpoints[:, 0].tolist(),
            seq_v=endpoints[:, 1].tolist(),
        )
    colors = greedy_edge_coloring(endpoints)
    return _layout_plan(state, eids, colors, min_block_size)


def _layout_plan(
    state: SparsificationState,
    eids: np.ndarray,
    colors: np.ndarray,
    min_block_size: int = MIN_BLOCK_SIZE,
) -> SweepPlan:
    """Lay out blocks/tail/sequential lists for an already-colored set."""
    n_colors = int(colors.max()) + 1 if len(colors) else 0
    endpoints = state.edge_vertices[eids]
    plan = SweepPlan(
        eids=eids,
        colors=colors,
        n_colors=n_colors,
        seq_eids=eids.tolist(),
        seq_u=endpoints[:, 0].tolist(),
        seq_v=endpoints[:, 1].tolist(),
    )
    # Group classes with one stable sort (color-major, edge-id-minor)
    # instead of scanning the color array once per color: greedy needs
    # up to 2*max_degree - 1 colors, so the per-color scan is
    # O(n_colors * m) on power-law backbones.
    order = np.argsort(colors, kind="stable")
    boundaries = np.searchsorted(colors[order], np.arange(n_colors + 1))
    tail: list[np.ndarray] = []
    for color in range(n_colors):
        class_eids = eids[order[boundaries[color]:boundaries[color + 1]]]
        if len(class_eids) >= min_block_size:
            uv = state.edge_vertices[class_eids]
            plan.blocks.append((class_eids, uv[:, 0].copy(), uv[:, 1].copy()))
        else:
            tail.append(class_eids)
    if tail:
        plan.tail_eids = np.sort(np.concatenate(tail)).tolist()
    return plan


def restrict_sweep_plan(
    state: SparsificationState,
    plan: SweepPlan,
    eids,
    min_block_size: int = MIN_BLOCK_SIZE,
) -> SweepPlan:
    """Sub-plan of ``plan`` covering only the edges in ``eids``.

    Any subset of a proper color class is still proper, so the restricted
    plan inherits the parent's colors verbatim — no re-coloring — and
    just re-cuts the block/tail layout (classes that shrink below
    ``min_block_size`` fold into the scalar tail).  The warm-started GDB
    path uses this to sweep only the dirty region of a converged state.
    """
    eids = np.asarray(eids, dtype=np.int64)
    mask = np.isin(plan.eids, eids)
    return _layout_plan(state, plan.eids[mask], plan.colors[mask], min_block_size)


def extend_sweep_plan(
    state: SparsificationState,
    eids,
    colors,
    added_eids,
    min_block_size: int = MIN_BLOCK_SIZE,
) -> SweepPlan:
    """Grow a colored edge set by ``added_eids`` without re-coloring it.

    The surviving edges keep their colors (``eids`` aligned with
    ``colors``; the coloring must be proper, e.g. taken from an existing
    :class:`SweepPlan`); each added edge greedily takes the lowest color
    unused at either endpoint, consulting per-vertex bitmasks built
    lazily from the state's CSR incidence.  The merged set is returned
    in ascending edge-id order, matching :func:`build_sweep_plan`'s
    layout conventions.
    """
    eids = np.asarray(eids, dtype=np.int64)
    colors = np.asarray(colors, dtype=np.int64)
    added = np.unique(np.asarray(added_eids, dtype=np.int64))
    if len(added) and len(eids) and np.isin(added, eids).any():
        raise ValueError("added edges overlap the existing plan")
    if not len(added):
        return _layout_plan(state, eids, colors, min_block_size)
    color_of = dict(zip(eids.tolist(), colors.tolist()))
    used: dict[int, int] = {}
    ev = state.edge_vertices

    def vertex_mask(v: int) -> int:
        mask = used.get(v)
        if mask is None:
            mask = 0
            for eid in state.incident_edges(v).tolist():
                c = color_of.get(eid)
                if c is not None:
                    mask |= 1 << c
            used[v] = mask
        return mask

    new_colors = np.empty(len(added), dtype=np.int64)
    for i, eid in enumerate(added.tolist()):
        u, v = int(ev[eid, 0]), int(ev[eid, 1])
        mask = vertex_mask(u) | vertex_mask(v)
        free = ~mask & (mask + 1)  # lowest zero bit of the mask
        c = free.bit_length() - 1
        new_colors[i] = c
        color_of[eid] = c
        used[u] |= free
        used[v] |= free
    all_eids = np.concatenate([eids, added])
    all_colors = np.concatenate([colors, new_colors])
    order = np.argsort(all_eids, kind="stable")
    return _layout_plan(state, all_eids[order], all_colors[order], min_block_size)


# ----------------------------------------------------------------------
# Scalar step application (shared by the reference loop and the tails)
# ----------------------------------------------------------------------
def apply_scalar_step(state: SparsificationState, eid: int, step: float,
                      h: float) -> None:
    """Clamp-and-attenuate probability update (Algorithm 2, lines 7-10).

    The entropy guard is the closed-form ``|p - 0.5|`` monotonicity test
    — exactly ``edge_entropy(proposed) > edge_entropy(current)`` with no
    log calls.
    """
    current = float(state.phat[eid])
    proposed = current + step
    if proposed < 0.0:
        new_p = 0.0
    elif proposed > 1.0:
        new_p = 1.0
    elif abs(proposed - 0.5) < abs(current - 0.5):
        new_p = min(max(current + h * step, 0.0), 1.0)
    else:
        new_p = proposed
    if new_p != current:
        state.set_probability(eid, new_p)


def clamp_and_attenuate(current, steps, guard_baseline, h: float) -> np.ndarray:
    """Vectorised Algorithm 2 lines 7-10 / Eq. 9 for a batch of edges.

    Clamp ``current + steps`` to ``[0, 1]``; where the move would raise
    entropy relative to ``guard_baseline`` (the edge's current
    probability in GDB sweeps, its *original* probability in EMD's
    insertion rule), restart from the baseline with an ``h``-scaled
    step.  Elementwise mirror of the scalar helpers — shared so the
    guard semantics live in exactly one place for both array paths.
    """
    proposed = current + steps
    attenuated = np.clip(guard_baseline + h * steps, 0.0, 1.0)
    raises = entropy_increases(guard_baseline, proposed)
    return np.where(
        proposed < 0.0, 0.0,
        np.where(proposed > 1.0, 1.0, np.where(raises, attenuated, proposed)),
    )


# ----------------------------------------------------------------------
# Color-blocked sweep (k = 1 rules)
# ----------------------------------------------------------------------
def colored_sweep(
    state: SparsificationState,
    plan: SweepPlan,
    array_rule,
    scalar_rule,
    h: float,
) -> None:
    """One coordinate-descent sweep in (color, edge-id) order.

    Large color classes go through ``array_rule`` and a vectorised
    clamp/attenuation; the tail runs the scalar path.  Valid only for
    endpoint-local rules (``k = 1``): within a class no two edges share
    an endpoint, so the simultaneous application below is exactly the
    sequential one.
    """
    phat = state.phat
    delta = state.delta
    for class_eids, u, v in plan.blocks:
        current = phat[class_eids]
        steps = array_rule(state, class_eids)
        new_p = clamp_and_attenuate(current, steps, current, h)
        changes = new_p - current
        # Endpoints are unique within a class, so plain fancy-index
        # subtraction is an exact scatter (no accumulation needed).
        delta[u] -= changes
        delta[v] -= changes
        state.total_residual -= float(changes.sum())
        phat[class_eids] = new_p
    for eid in plan.tail_eids:
        apply_scalar_step(state, eid, scalar_rule(state, eid), h)


def apply_probability_vector(state: SparsificationState, eids: np.ndarray,
                             values: np.ndarray) -> None:
    """Set ``phat[eids] = clip(values, 0, 1)`` with exact bookkeeping.

    Unlike the sweep engines this is not a descent step: it writes an
    externally-computed probability vector (the warm path's geometric
    extrapolation jumps through here) while maintaining ``delta`` and
    ``total_residual`` incrementally.  Endpoints may repeat across
    ``eids``, so the scatter accumulates.
    """
    eids = np.asarray(eids, dtype=np.int64)
    values = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
    changes = values - state.phat[eids]
    ends = state.edge_vertices[eids]
    np.subtract.at(state.delta, ends[:, 0], changes)
    np.subtract.at(state.delta, ends[:, 1], changes)
    state.total_residual -= float(changes.sum())
    state.phat[eids] = values


def local_fused_sweeps(
    state: SparsificationState,
    plan: SweepPlan,
    relative: bool,
    h: float,
    tau: float,
    max_sweeps: int,
) -> int:
    """Reference-order ``k = 1`` sweeps touching only ``plan``'s edges.

    The fused engine above still pays ``O(n + m)`` per sweep to pull and
    write back the full state arrays; on a dirty region of a few dozen
    edges that overhead dwarfs the arithmetic.  This variant localises
    everything: endpoint discrepancies are pulled once for the region's
    vertices, per-sweep work is ``O(|plan|)`` plain-float operations in
    the same edge-id order and with the same step/clamp/attenuation
    arithmetic as the reference loop, and the arrays are written back
    once at the end.

    The stop test mirrors :func:`~repro.core.gdb.gdb_refine`'s
    (objective improvement ``<= tau``), with the global objective
    assembled incrementally as ``d1_outside + d1_region`` — only the
    region's contribution can change.  The assembly order differs from
    ``state.d1()``'s full-array sum, so the test controls *effort*, not
    the certificate: callers re-certify globally afterwards.  Returns
    the sweep count.
    """
    seq_eids = plan.seq_eids
    if not seq_eids:
        return 0
    verts = sorted({*plan.seq_u, *plan.seq_v})
    vert_index = {v: i for i, v in enumerate(verts)}
    lu = [vert_index[u] for u in plan.seq_u]
    lv = [vert_index[v] for v in plan.seq_v]
    dloc = state.delta[verts].tolist()
    ploc = state.phat[seq_eids].tolist()
    if relative:
        degrees = [float(state.original_degrees[v]) for v in verts]
        weight = [1.0 / (d * d) if d > 0.0 else 0.0 for d in degrees]
    else:
        degrees = None
        weight = [1.0] * len(verts)
    region = sum(w * d * d for w, d in zip(weight, dloc))
    outside = state.d1(relative=relative) - region
    objective = outside + region
    total_change = 0.0
    sweeps = 0
    for _ in range(max_sweeps):
        for i in range(len(seq_eids)):
            iu = lu[i]
            iv = lv[i]
            du = dloc[iu]
            dv = dloc[iv]
            if relative:
                pi_u = degrees[iu]
                pi_v = degrees[iv]
                denominator = pi_u + pi_v
                step = (
                    (pi_v * du + pi_u * dv) / denominator
                    if denominator > 0.0 else 0.0
                )
            else:
                step = 0.5 * (du + dv)
            current = ploc[i]
            proposed = current + step
            if proposed < 0.0:
                new_p = 0.0
            elif proposed > 1.0:
                new_p = 1.0
            elif abs(proposed - 0.5) < abs(current - 0.5):
                new_p = min(max(current + h * step, 0.0), 1.0)
            else:
                new_p = proposed
            if new_p != current:
                change = new_p - current
                dloc[iu] = du - change
                dloc[iv] = dloc[iv] - change
                total_change += change
                ploc[i] = new_p
        sweeps += 1
        region = sum(w * d * d for w, d in zip(weight, dloc))
        new_objective = outside + region
        if abs(objective - new_objective) <= tau:
            objective = new_objective
            break
        objective = new_objective
    state.delta[verts] = dloc
    state.phat[np.asarray(seq_eids, dtype=np.int64)] = ploc
    state.total_residual -= total_change
    return sweeps


# ----------------------------------------------------------------------
# Fused sequential sweep (bit-identical to the reference loop)
# ----------------------------------------------------------------------
def fused_sweep(
    state: SparsificationState,
    plan: SweepPlan,
    k: "int | str",
    relative: bool,
    h: float,
) -> None:
    """One reference-order sweep over plain Python floats.

    Pulls ``delta`` / ``phat`` into lists, mirrors the rule and
    clamp/attenuation arithmetic of the scalar loop expression by
    expression, and writes the arrays back once — the IEEE operation
    sequence per edge is identical to the reference loop, so results are
    bit-for-bit equal at a fraction of the interpreter overhead.
    """
    n = state.n
    delta = state.delta.tolist()
    phat = state.phat.tolist()
    total_residual = float(state.total_residual)
    p_original = state.p_original.tolist()
    use_full = k == "n" or (isinstance(k, int) and k >= n)
    use_cut = not use_full and isinstance(k, int) and k >= 2
    if use_cut:
        degree_coeff, global_coeff = cut_rule_coefficients(n, k)
    pi = state.original_degrees.tolist() if relative else None

    for eid, u, v in zip(plan.seq_eids, plan.seq_u, plan.seq_v):
        du = delta[u]
        dv = delta[v]
        if use_full:
            step = total_residual - (p_original[eid] - phat[eid])
        elif use_cut:
            step = degree_coeff * (du + dv)
            if global_coeff != 0.0:
                edge_residual = p_original[eid] - phat[eid]
                step += global_coeff * (
                    total_residual - (du + dv - edge_residual)
                )
        elif relative:
            pi_u = pi[u]
            pi_v = pi[v]
            denominator = pi_u + pi_v
            step = (
                (pi_v * du + pi_u * dv) / denominator
                if denominator > 0.0 else 0.0
            )
        else:
            step = 0.5 * (du + dv)

        current = phat[eid]
        proposed = current + step
        if proposed < 0.0:
            new_p = 0.0
        elif proposed > 1.0:
            new_p = 1.0
        elif abs(proposed - 0.5) < abs(current - 0.5):
            new_p = min(max(current + h * step, 0.0), 1.0)
        else:
            new_p = proposed
        if new_p != current:
            change = new_p - current
            delta[u] = du - change
            delta[v] = delta[v] - change
            total_residual -= change
            phat[eid] = new_p

    state.delta[:] = delta
    state.phat[:] = phat
    state.total_residual = total_residual


# ----------------------------------------------------------------------
# Device sweep (k = 1 rules through the xp backend shim)
# ----------------------------------------------------------------------
def _device_color_blocks(state: SparsificationState, plan: SweepPlan, xp) -> list:
    """Upload every color class of ``plan`` as a device block.

    Unlike the host engine — which folds classes below
    :data:`MIN_BLOCK_SIZE` into a sequential scalar tail to dodge numpy
    dispatch overhead — the device runs *every* class as its own block:
    one kernel launch costs the same at any class size, and the merged
    tail cannot be a block at all (its edges may share endpoints).
    Class order is color order, so the sweep remains exact coordinate
    descent in (color, edge-id) order.
    """
    order = np.argsort(plan.colors, kind="stable")
    boundaries = np.searchsorted(plan.colors[order], np.arange(plan.n_colors + 1))
    blocks = []
    for color in range(plan.n_colors):
        class_eids = plan.eids[order[boundaries[color]:boundaries[color + 1]]]
        if len(class_eids) == 0:
            continue
        uv = state.edge_vertices[class_eids]
        blocks.append((
            xp.asarray(class_eids, xp.int64),
            xp.asarray(uv[:, 0].copy(), xp.int64),
            xp.asarray(uv[:, 1].copy(), xp.int64),
        ))
    return blocks


class DeviceSweep:
    """GDB's ``k = 1`` sweep loop resident on an ``xp`` backend.

    State (``phat``, ``delta``, the residual shift) uploads once; each
    :meth:`sweep` runs one elementwise rule + clamp/attenuation kernel
    per color class, scattering endpoint updates with exact
    ``put`` writes (endpoints are unique within a class); each
    :meth:`objective` is one device reduction and a single host scalar
    sync.  :meth:`download` writes the converged probabilities back and
    restores the host state's incremental bookkeeping (``delta``,
    ``total_residual``) the way :func:`colored_sweep` maintains it.

    Class order is (color, edge-id) throughout — small classes run as
    their own blocks instead of the host's merged scalar tail, so the
    descent order differs from the host engine's where tails exist; both
    are exact coordinate descent on the convex ``D_1`` objective and
    meet at the same converged value (the 1e-6 gate of the conformance
    suite), while the NumPy *reference* backend never routes here and
    keeps host results bit-identical.
    """

    def __init__(
        self,
        state: SparsificationState,
        plan: SweepPlan,
        backend,
        relative: bool,
        h: float,
    ) -> None:
        xp = backend
        self.xp = xp
        self.state = state
        self.h = float(h)
        self.relative = bool(relative)
        self.blocks = _device_color_blocks(state, plan, xp)
        self.phat = xp.asarray(state.phat, xp.float64)
        self.delta = xp.asarray(state.delta, xp.float64)
        # Sum of all probability changes, accumulated on device; the
        # host residual is shifted by it once at download time.
        self.residual_delta = xp.asarray(np.zeros(1), xp.float64)
        if self.relative:
            degrees = state.original_degrees
            self._positive = xp.asarray(degrees > 0, xp.bool_)
            self._safe_scale = xp.asarray(
                np.where(degrees > 0, degrees, 1.0), xp.float64
            )
            self._pi = xp.asarray(degrees, xp.float64)

    def sweep(self) -> None:
        """One coordinate-descent sweep in (color, edge-id) order."""
        xp = self.xp
        for eids, u, v in self.blocks:
            cur = xp.take(self.phat, eids, axis=0)
            du = xp.take(self.delta, u, axis=0)
            dv = xp.take(self.delta, v, axis=0)
            if self.relative:
                pi_u = xp.take(self._pi, u, axis=0)
                pi_v = xp.take(self._pi, v, axis=0)
                denominator = pi_u + pi_v
                positive = denominator > 0.0
                steps = xp.where(
                    positive,
                    (pi_v * du + pi_u * dv)
                    / xp.where(positive, denominator, 1.0),
                    0.0,
                )
            else:
                steps = 0.5 * (du + dv)
            # clamp_and_attenuate, expression for expression, on device.
            proposed = cur + steps
            attenuated = xp.clip(cur + self.h * steps, 0.0, 1.0)
            raises = xp.abs(proposed - 0.5) < xp.abs(cur - 0.5)
            new_p = xp.where(
                proposed < 0.0,
                0.0,
                xp.where(
                    proposed > 1.0,
                    1.0,
                    xp.where(raises, attenuated, proposed),
                ),
            )
            changes = new_p - cur
            # u and v are disjoint vertex sets within a proper color
            # class, so both writes are exact scatters.
            self.delta = xp.put(self.delta, u, du - changes)
            self.delta = xp.put(self.delta, v, dv - changes)
            self.phat = xp.put(self.phat, eids, new_p)
            self.residual_delta = self.residual_delta + xp.sum(changes)

    def objective(self) -> float:
        """Current ``D_1`` (one device reduction + one host sync)."""
        xp = self.xp
        if not self.relative:
            return xp.float_scalar(xp.sum(self.delta * self.delta))
        rel = xp.where(self._positive, self.delta / self._safe_scale, 0.0)
        return xp.float_scalar(xp.sum(rel * rel))

    def download(self) -> None:
        """Write converged device state back into the host state."""
        xp = self.xp
        xp.synchronize()
        state = self.state
        state.phat[:] = np.asarray(xp.to_host(self.phat), dtype=np.float64)
        state.delta[:] = np.asarray(xp.to_host(self.delta), dtype=np.float64)
        state.total_residual -= float(
            np.asarray(xp.to_host(self.residual_delta), dtype=np.float64)[0]
        )
