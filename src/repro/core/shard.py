"""Deterministic work sharding: fan the (alpha, h) grid over processes.

The partitioning rule (after Bobpp's deterministic-partitioning
playbook) is that **shard composition is a pure function of the work
description, never of the worker count or arrival order**: the grid's
canonical cell list (``alphas x h_values`` in declaration order) is cut
into :class:`GridShard` blocks keyed ``(alpha index, h block)``, every
worker computes its shards from an identically-seeded per-process
state, and the parent stitches cells back in canonical ``(alpha, h)``
order.  Because each cell of :func:`repro.core.grid.gdb_grid` under an
*int* seed is independent — the backbone is re-seeded per alpha and the
snapshot/restore resets the state between cells — a cell's bits cannot
depend on which process computed it, so results are **bit-identical
for any ``workers``** (the acceptance gate of the out-of-core bench).

Workers are a :class:`~concurrent.futures.ProcessPoolExecutor` with a
pool *initializer* (the PR 2 pattern): per-process graph state is built
once, either

- from a **binary dataset path** — each worker ``mmap``s the file
  read-only (:func:`repro.datasets.binary_io.read_binary`), so no edge
  bytes are pickled over IPC and all processes share the page cache, or
- from the graph's **edge arrays** shipped once via ``initargs`` (the
  fallback when no on-disk dataset backs the graph).

If the pool cannot start (sandboxes, missing semaphores), execution
falls back to the serial :func:`gdb_grid` body in-process — same
cells, same bits — with a single :class:`RuntimeWarning`, mirroring
:class:`repro.sampling.parallel.ParallelBatchExecutor`.

Sharded mode is for *objective sweeps*: ``build_graphs`` and
``consume`` are parent-side features and stay on the serial path, and
the seed must be an ``int`` (a shared generator stream cannot be
consumed sequentially from several processes; ``None`` would give each
worker different entropy).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.array_graph import EdgeArrayGraph
from repro.core.grid import GridCell

#: Default h-block width: rows split in blocks of this many h values so
#: a single-alpha grid still fans out.  Worker-count independent.
DEFAULT_H_BLOCK = 4


@dataclass(frozen=True)
class GridShard:
    """One deterministic unit of grid work: an alpha row's h block."""

    alpha_index: int
    h_start: int
    h_stop: int


def grid_shards(
    n_alphas: int, n_h: int, h_block: "int | None" = None
) -> list[GridShard]:
    """Canonical shard list for an ``n_alphas x n_h`` grid.

    The partition depends only on the grid shape (and the explicit
    ``h_block`` override) — never on worker count — and is ordered by
    ``(alpha_index, h_start)``, which is also the stitch order.
    """
    if n_alphas < 1 or n_h < 1:
        raise ValueError(
            f"grid must be non-empty, got {n_alphas} alphas x {n_h} h values"
        )
    if h_block is None:
        h_block = DEFAULT_H_BLOCK
    if h_block < 1:
        raise ValueError(f"h_block must be positive, got {h_block}")
    return [
        GridShard(a, start, min(start + h_block, n_h))
        for a in range(n_alphas)
        for start in range(0, n_h, h_block)
    ]


# -- worker-process side ------------------------------------------------------
#: Per-process state installed by the pool initializer: the rebuilt
#: graph view, its SparsificationState / BackbonePlan, and a per-alpha
#: memo of (backbone, seeded snapshot, sweep plan) so several shards of
#: one alpha row pay the row setup once.
_GRID_WORKER: dict = {}


def _build_worker_graph(payload: dict):
    if payload["kind"] == "binary":
        from repro.datasets.binary_io import read_binary

        dataset = read_binary(payload["path"], mmap=True, name=payload["name"])
        return dataset.graph()
    return EdgeArrayGraph(
        payload["n"], payload["src"], payload["dst"], payload["prob"],
        name=payload["name"], validate=False,
    )


def _init_grid_worker(payload: dict, config: dict) -> None:
    """Pool initializer: build the per-process grid state once."""
    from repro.core.backbone import BackbonePlan
    from repro.core.discrepancy import SparsificationState

    graph = _build_worker_graph(payload)
    state = SparsificationState(graph)
    _GRID_WORKER["config"] = config
    _GRID_WORKER["state"] = state
    _GRID_WORKER["empty"] = state.snapshot()
    _GRID_WORKER["plan"] = BackbonePlan(graph)
    _GRID_WORKER["rows"] = {}


def _worker_row(alpha_index: int):
    """The alpha row's (backbone, seeded snapshot, sweep plan), memoised."""
    row = _GRID_WORKER["rows"].get(alpha_index)
    if row is not None:
        return row
    from repro.core.gdb import _colored_eligible
    from repro.core.sweep import build_sweep_plan

    config = _GRID_WORKER["config"]
    state = _GRID_WORKER["state"]
    state.restore(_GRID_WORKER["empty"])
    backbone = _GRID_WORKER["plan"].backbone(
        config["alphas"][alpha_index],
        method=config["backbone_method"],
        rng=config["seed"],
    )
    state.select_edges(backbone)
    seeded = state.snapshot()
    colored = _colored_eligible(config["engine"], config["k"], state.n)
    plan = build_sweep_plan(state, sequential_only=not colored)
    row = (backbone, seeded, plan)
    _GRID_WORKER["rows"][alpha_index] = row
    return row


def _cells_for_shard(shard_key: tuple) -> tuple:
    """Worker task: one shard's cells ``(alpha_index, backbone, rows)``.

    ``rows`` is a list of ``(h_index, objective, sweeps)`` — exactly the
    quantities the serial driver derives per cell, computed from an
    identically-seeded state, so each value is bit-identical to its
    serial counterpart.
    """
    alpha_index, h_start, h_stop = shard_key
    from repro.core.gdb import GDBConfig, gdb_refine

    config = _GRID_WORKER["config"]
    state = _GRID_WORKER["state"]
    backbone, seeded, plan = _worker_row(alpha_index)
    rows = []
    for h_index in range(h_start, h_stop):
        state.restore(seeded)
        gdb_config = GDBConfig(
            h=config["h_values"][h_index],
            tau=config["tau"],
            max_sweeps=config["max_sweeps"],
            k=config["k"],
            relative=config["relative"],
        )
        sweeps = gdb_refine(
            state, gdb_config, engine=config["engine"], plan=plan
        )
        objective = float(state.d1(relative=config["relative"]))
        rows.append((h_index, objective, sweeps))
    return alpha_index, backbone, rows


# -- parent side --------------------------------------------------------------
def _graph_payload(graph, dataset) -> dict:
    """How workers rebuild the graph: mmap a dataset, or shipped arrays."""
    if dataset is not None:
        from repro.datasets.binary_io import BinaryDataset, read_header

        if isinstance(dataset, BinaryDataset):
            path, header = dataset.path, dataset.header
            if path is None:
                raise ValueError(
                    "sharded execution needs an on-disk binary dataset "
                    "(this BinaryDataset has no path)"
                )
        else:
            path = str(dataset)
            header = read_header(path)
        if (header.n_vertices != graph.number_of_vertices()
                or header.n_edges != graph.number_of_edges()):
            raise ValueError(
                f"dataset {path!r} ({header.n_vertices} vertices, "
                f"{header.n_edges} edges) does not match the graph "
                f"({graph.number_of_vertices()} vertices, "
                f"{graph.number_of_edges()} edges)"
            )
        return {"kind": "binary", "path": path, "name": graph.name}
    endpoints = graph.edge_index_array()
    return {
        "kind": "arrays",
        "n": graph.number_of_vertices(),
        "src": np.ascontiguousarray(endpoints[:, 0]),
        "dst": np.ascontiguousarray(endpoints[:, 1]),
        "prob": np.asarray(graph.probability_array()),
        "name": graph.name,
    }


def sharded_gdb_grid(
    graph,
    alphas,
    h_values,
    workers: int,
    k: "int | str" = 1,
    relative: bool = False,
    tau: float = 1e-9,
    max_sweeps: int = 200,
    backbone_method: str = "bgi",
    rng: "int | None" = None,
    engine: str = "vector",
    dataset=None,
    h_block: "int | None" = None,
) -> dict:
    """Sharded counterpart of :func:`repro.core.grid.gdb_grid`.

    Returns the same ``{(alpha, h): GridCell}`` dict (``graph=None`` in
    every cell, as with ``build_graphs=False``), bit-identical to the
    serial driver for the same int ``rng`` and to itself for any
    ``workers``.  ``dataset`` (a
    :class:`~repro.datasets.binary_io.BinaryDataset` or a path to one)
    lets workers mmap the edge data instead of receiving it pickled.

    Callers normally reach this through ``gdb_grid(..., workers=N)``.
    """
    from repro.core.gdb import _validate_engine

    engine = _validate_engine(engine)
    alphas = [float(a) for a in alphas]
    h_values = [float(h) for h in h_values]
    if rng is not None and not isinstance(rng, (int, np.integer)):
        raise ValueError(
            "sharded gdb_grid needs an int seed (or None): a generator's "
            "stream cannot be consumed deterministically across processes"
        )
    if rng is None and backbone_method != "local_degree":
        raise ValueError(
            "sharded gdb_grid needs an explicit int seed: with rng=None "
            "each process would draw its backbone top-up from fresh OS "
            "entropy and results would not be reproducible"
        )
    shards = grid_shards(len(alphas), len(h_values), h_block=h_block)
    config = {
        "alphas": alphas,
        "h_values": h_values,
        "k": k,
        "relative": relative,
        "tau": tau,
        "max_sweeps": max_sweeps,
        "backbone_method": backbone_method,
        "seed": None if rng is None else int(rng),
        "engine": engine,
    }

    shard_rows = _run_shards(graph, config, shards, workers, dataset)

    # Stitch in canonical (alpha, h) order — the serial driver's
    # insertion order — attaching each row's shared backbone array.
    results: dict = {}
    backbones: dict[int, np.ndarray] = {}
    cells: dict[tuple[int, int], tuple[float, int]] = {}
    for (alpha_index, backbone, rows) in shard_rows:
        backbones.setdefault(alpha_index, backbone)
        for h_index, objective, sweeps in rows:
            cells[(alpha_index, h_index)] = (objective, sweeps)
    for alpha_index, alpha in enumerate(alphas):
        for h_index, h in enumerate(h_values):
            objective, sweeps = cells[(alpha_index, h_index)]
            results[(alpha, h)] = GridCell(
                alpha=alpha, h=h, objective=objective, sweeps=sweeps,
                graph=None, backbone=backbones[alpha_index],
            )
    return results


def _run_shards(graph, config, shards, workers, dataset) -> list:
    """Fan shards over a pool; in-process fallback on any pool failure."""
    workers = min(int(workers), len(shards))
    keys = [(s.alpha_index, s.h_start, s.h_stop) for s in shards]
    if workers > 1:
        try:
            payload = _graph_payload(graph, dataset)
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_grid_worker,
                initargs=(payload, config),
            ) as pool:
                return list(pool.map(_cells_for_shard, keys))
        except ValueError:
            raise  # caller errors (dataset mismatch), not pool failures
        except Exception as error:
            warnings.warn(
                f"process pool unavailable ({type(error).__name__}: {error});"
                " computing grid shards in-process",
                RuntimeWarning,
                stacklevel=3,
            )
    # Serial fallback: run the same shard bodies against local state.
    _init_grid_worker_local(graph, config)
    try:
        return [_cells_for_shard(key) for key in keys]
    finally:
        _GRID_WORKER.clear()


def _init_grid_worker_local(graph, config: dict) -> None:
    """In-process twin of :func:`_init_grid_worker` reusing the live graph."""
    from repro.core.backbone import BackbonePlan
    from repro.core.discrepancy import SparsificationState

    state = SparsificationState(graph)
    _GRID_WORKER["config"] = config
    _GRID_WORKER["state"] = state
    _GRID_WORKER["empty"] = state.snapshot()
    _GRID_WORKER["plan"] = BackbonePlan(graph)
    _GRID_WORKER["rows"] = {}
