"""Unified sparsification front-end and the paper's variant notation.

Section 6.1 names variants with a compact notation which this module
parses:

- method: ``GDB`` / ``EMD`` / ``LP`` (plus the benchmarks ``NI`` / ``SP``
  and a ``RANDOM`` sanity baseline),
- ``^A`` / ``^R`` superscript: absolute vs relative discrepancy,
- ``_2`` / ``_5`` / ``_n`` subscript: cut-preservation order ``k``
  (absent means ``k = 1``, expected degrees),
- ``-t`` suffix: backbone built by Algorithm 1 (spanning forests);
  absent means the random Monte-Carlo backbone.

So ``"EMD^R-t"`` is EMD on relative discrepancy over a BGI backbone —
the paper's overall winner — and ``"GDB^A_n"`` is GDB with the
full-redistribution rule on a random backbone.

Example
-------
>>> from repro import datasets, sparsify
>>> g = datasets.flickr_like(n=120, seed=7)
>>> g_sparse = sparsify(g, alpha=0.3, variant="EMD^R-t", rng=7)
>>> g_sparse.number_of_edges() == round(0.3 * g.number_of_edges())
True
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.core.backbone import BackbonePlan, build_backbone, target_edge_count
from repro.core.emd_sparsifier import EMDConfig, emd
from repro.core.gdb import (
    GDBConfig,
    _resolve_backbone,
    _validate_engine,
    gdb,
    gdb_refine_warm,
)
from repro.core.lp import lp_sparsify
from repro.core.uncertain_graph import UncertainGraph

_VARIANT_RE = re.compile(
    r"^(?P<method>GDB|EMD|LP|NI|SP|SS|ER|RANDOM)"
    r"(?:\^(?P<disc>[AR]))?"
    r"(?:_(?P<k>\d+|n))?"
    r"(?P<backbone>-t)?$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class VariantSpec:
    """Parsed form of a variant string (see module docstring)."""

    method: str            # "gdb" | "emd" | "lp" | "ni" | "sp" | "er" | "random"
    relative: bool = False
    k: int | str = 1
    bgi_backbone: bool = False

    @property
    def canonical_name(self) -> str:
        """Re-render the paper notation."""
        if self.method in ("ni", "sp", "er", "random"):
            return self.method.upper() if self.method != "sp" else "SP"
        label = self.method.upper() + ("^R" if self.relative else "^A")
        if self.k != 1:
            label += f"_{self.k}"
        if self.bgi_backbone:
            label += "-t"
        return label

    @property
    def accepts_plan(self) -> bool:
        """Whether :func:`sparsify` accepts ``backbone_plan`` for this
        variant — GDB/EMD/LP build their backbone from the plan, NI
        memoises its forest-peel structure on it.  The reuse hook
        long-lived callers (CLI ladders, the job server) key on."""
        return self.method in ("gdb", "emd", "lp", "ni")

    @property
    def accepts_backbone(self) -> bool:
        """Whether :func:`sparsify` accepts precomputed ``backbone`` ids
        (the iterative GDB/EMD/LP methods only)."""
        return self.method in ("gdb", "emd", "lp")


def parse_variant(variant: str) -> VariantSpec:
    """Parse a paper-notation variant string into a :class:`VariantSpec`."""
    match = _VARIANT_RE.match(variant.strip())
    if match is None:
        raise ValueError(
            f"unrecognised variant {variant!r}; expected e.g. 'GDB^A', "
            f"'EMD^R-t', 'GDB^A_2', 'GDB^A_n', 'LP-t', 'NI', 'SP', 'ER'"
        )
    method = match.group("method").lower()
    if method == "ss":
        method = "sp"
    disc = (match.group("disc") or "A").upper()
    k_raw = match.group("k")
    k: int | str = 1 if k_raw is None else ("n" if k_raw == "n" else int(k_raw))
    return VariantSpec(
        method=method,
        relative=(disc == "R"),
        k=k,
        bgi_backbone=match.group("backbone") is not None,
    )


def sparsify(
    graph: UncertainGraph,
    alpha: float,
    variant: str = "EMD^R-t",
    rng: "int | np.random.Generator | None" = None,
    h: float = 0.05,
    tau: float = 1e-9,
    name: str = "",
    engine: str = "vector",
    backbone_plan: "BackbonePlan | None" = None,
    backbone: "np.ndarray | list[int] | None" = None,
    lp_solver: str = "highs",
    emd_mode: str = "eager",
    backend=None,
    warm_state=None,
) -> UncertainGraph:
    """Sparsify an uncertain graph with any paper variant.

    Parameters
    ----------
    graph:
        Input uncertain graph ``G = (V, E, p)``.
    alpha:
        Sparsification ratio in ``(0, 1)``: the output has
        ``round(alpha |E|)`` edges on the full vertex set.
    variant:
        Paper-notation variant string (module docstring); default is the
        paper's best performer ``EMD^R-t``.
    rng:
        Seed or generator (backbone construction and the benchmark
        methods are randomised).
    h:
        Entropy parameter for GDB/EMD (paper default 0.05).
    tau:
        Convergence threshold for GDB/EMD.
    name:
        Optional name for the output graph.
    engine:
        Sweep/scan engine for GDB/EMD: ``"vector"`` (default, the
        array-native engine) or ``"loop"`` (the scalar reference).  The
        LP and benchmark methods have no iterative core and ignore it.
    backbone_plan:
        Optional :class:`~repro.core.backbone.BackbonePlan` for
        ``graph``: GDB/EMD/LP variants build their backbone from the
        plan (bit-identical to the per-call builder for the same seed),
        and NI memoises its forest-peel structure on it, so one plan
        serves a whole alpha ladder or variant sweep.
    backbone:
        Optional precomputed backbone edge ids (positions into
        ``graph.edge_list()``), skipping backbone construction entirely.
        Mutually exclusive with ``backbone_plan``.
    lp_solver:
        Probability solver for the LP variants: ``"highs"`` (default,
        the exact scipy reference) or ``"pdp"`` (first-order
        primal-dual projection; see :func:`repro.core.lp.solve_pdp`).
        Other variants ignore it.
    emd_mode:
        E-phase heap discipline for the EMD variants: ``"eager"``
        (default, the bit-identity reference) or ``"lazy"`` (deferred
        batched heap maintenance; converged-objective equivalent).
        Other variants ignore it.
    backend:
        Array backend for the GDB sweep kernels (``None`` = the
        bit-identical NumPy reference; see
        :func:`repro.backend.available_backends`).  Only the GDB
        variants have the color-blocked array seam; passing a
        non-reference backend with any other variant raises.
    warm_state:
        Optional :class:`~repro.core.discrepancy.SparsificationState`
        carrying previously-converged probabilities for ``graph`` (GDB
        variants only).  The call diffs the new backbone against the
        state's current selection, re-seeds only the membership diff,
        and re-converges with warm-started dirty-region sweeps
        (:func:`repro.core.gdb.gdb_refine_warm`) instead of refining
        from scratch — the streaming maintenance hot path.  The state
        is refined *in place* and stays usable for the next call.

    Returns
    -------
    UncertainGraph
        The sparsified graph ``G' = (V, E', p')``.
    """
    from repro.backend import resolve_backend

    _validate_engine(engine)
    spec = parse_variant(variant)
    xp = resolve_backend(backend)
    if not xp.is_reference and spec.method != "gdb":
        raise ValueError(
            f"variant {variant!r} does not support backend={xp.name!r}: "
            "only the GDB variants run their sweeps through the array "
            "backend seam"
        )
    backbone_method = "bgi" if spec.bgi_backbone else "random"
    label = name or f"{spec.canonical_name}@{alpha:g}({graph.name})"
    if backbone is not None and backbone_plan is not None:
        raise ValueError("provide at most one of backbone and backbone_plan")
    if backbone is not None and not spec.accepts_backbone:
        raise ValueError(
            f"variant {spec.canonical_name!r} does not take a backbone; "
            f"precomputed backbones only apply to GDB/EMD/LP"
        )
    if backbone_plan is not None and not spec.accepts_plan:
        raise ValueError(
            f"variant {spec.canonical_name!r} does not take a backbone plan; "
            f"backbone_plan applies to GDB/EMD/LP/NI"
        )
    # The iterative methods take exactly one of (alpha, backbone_ids).
    seed_kwargs = (
        dict(backbone_ids=backbone)
        if backbone is not None
        else dict(alpha=alpha, backbone_plan=backbone_plan)
    )

    if warm_state is not None:
        if spec.method != "gdb":
            raise ValueError(
                f"variant {spec.canonical_name!r} does not take warm_state; "
                f"warm-started maintenance applies to the GDB variants only"
            )
        if warm_state.graph is not graph:
            raise ValueError("warm_state was built for a different graph")
        config = GDBConfig(h=h, tau=tau, k=spec.k, relative=spec.relative)
        backbone_ids = _resolve_backbone(
            graph,
            alpha if backbone is None else None,
            backbone,
            backbone_method,
            rng,
            backbone_plan,
        )
        state = warm_state
        new_sel = np.zeros(len(state.phat), dtype=bool)
        new_sel[np.asarray(backbone_ids, dtype=np.int64)] = True
        removed = np.flatnonzero(state.selected & ~new_sel)
        added = np.flatnonzero(new_sel & ~state.selected)
        if len(removed):
            state.deselect_edges(removed)
        if len(added):
            state.select_edges(added)
        diff = np.concatenate([removed, added])
        dirty = np.unique(state.edge_vertices[diff].ravel())
        gdb_refine_warm(
            state, config, dirty_vertices=dirty, engine=engine, backend=xp
        )
        return state.build_graph(name=label)

    if spec.method == "gdb":
        config = GDBConfig(h=h, tau=tau, k=spec.k, relative=spec.relative)
        return gdb(graph, config=config,
                   backbone_method=backbone_method, rng=rng, name=label,
                   engine=engine, backend=xp, **seed_kwargs)
    if spec.method == "emd":
        if spec.k != 1:
            raise ValueError("EMD is defined for k = 1 only (paper section 5)")
        config = EMDConfig(h=h, tau=tau, relative=spec.relative)
        return emd(graph, config=config,
                   backbone_method=backbone_method, rng=rng, name=label,
                   engine=engine, emd_mode=emd_mode, **seed_kwargs)
    if spec.method == "lp":
        return lp_sparsify(graph, backbone_method=backbone_method, rng=rng,
                           name=label, solver=lp_solver, **seed_kwargs)
    if spec.method == "ni":
        from repro.baselines.ni import ni_sparsify

        return ni_sparsify(graph, alpha, rng=rng, name=label,
                           backbone_plan=backbone_plan)
    if spec.method == "sp":
        from repro.baselines.spanner import spanner_sparsify

        return spanner_sparsify(graph, alpha, rng=rng, name=label)
    if spec.method == "er":
        from repro.baselines.effective_resistance import effective_resistance_sparsify

        return effective_resistance_sparsify(graph, alpha, rng=rng, name=label)
    if spec.method == "random":
        from repro.baselines.random_sparsifier import random_sparsify

        return random_sparsify(graph, alpha, rng=rng, name=label)
    raise AssertionError(f"unhandled method {spec.method!r}")


def available_variants() -> list[str]:
    """Canonical list of variant strings exercised in the paper's tables."""
    return [
        "LP", "LP-t",
        "GDB^A", "GDB^R", "GDB^A_2", "GDB^A_n",
        "GDB^A-t", "GDB^R-t",
        "EMD^A", "EMD^R", "EMD^A-t", "EMD^R-t",
        "NI", "SP", "ER", "RANDOM",
    ]


def check_budget(graph: UncertainGraph, sparsified: UncertainGraph, alpha: float) -> bool:
    """Return ``True`` when ``|E'|`` equals the rounded budget ``alpha |E|``."""
    return sparsified.number_of_edges() == target_edge_count(
        graph.number_of_edges(), alpha
    )
