"""Sparsification diagnostics.

Section 6.3 explains the variance results by inspecting the sparsified
graphs: "in Twitter with alpha = 8%, 75% of the edges of GDB have
probability 1.  In comparison, in NI only 25% of the edges are
deterministic."  This module packages that analysis — saturation
fractions, discrepancy distribution, entropy accounting — into a single
report object usable from code, tests and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.discrepancy import degree_discrepancy_vector
from repro.core.entropy import graph_entropy
from repro.core.uncertain_graph import UncertainGraph


@dataclass(frozen=True)
class SparsificationReport:
    """Summary statistics of a sparsified graph against its original.

    Attributes mirror the quantities the paper discusses:

    - ``edge_ratio`` — ``|E'| / |E|`` (should equal alpha),
    - ``saturated_fraction`` — edges at probability 1 (zero entropy,
      free to sample),
    - ``near_zero_fraction`` — edges driven to ~0 (kept only for the
      budget),
    - ``entropy_ratio`` — ``H(G')/H(G)`` (Fig. 8's metric),
    - ``mass_ratio`` — expected-edge-count ratio (how much probability
      mass the redistribution recovered),
    - ``degree_mae`` / ``max_degree_error`` — Delta_1-style errors,
    - ``largest_component_fraction`` — connectivity health.
    """

    edge_ratio: float
    saturated_fraction: float
    near_zero_fraction: float
    entropy_ratio: float
    mass_ratio: float
    degree_mae: float
    max_degree_error: float
    largest_component_fraction: float

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"edge ratio:            {self.edge_ratio:.4f}",
            f"saturated edges (p=1): {self.saturated_fraction:.1%}",
            f"near-zero edges:       {self.near_zero_fraction:.1%}",
            f"entropy ratio:         {self.entropy_ratio:.4f}",
            f"probability mass kept: {self.mass_ratio:.1%}",
            f"degree MAE:            {self.degree_mae:.6g}",
            f"max degree error:      {self.max_degree_error:.6g}",
            f"largest component:     {self.largest_component_fraction:.1%}",
        ]
        return "\n".join(lines)


def analyze_sparsification(
    original: UncertainGraph,
    sparsified: UncertainGraph,
    saturation_tol: float = 1e-9,
) -> SparsificationReport:
    """Build a :class:`SparsificationReport` for a (G, G') pair."""
    m = max(original.number_of_edges(), 1)
    probs = np.array(sparsified.probability_array())
    deltas = degree_discrepancy_vector(original, sparsified)
    h_original = graph_entropy(original)
    components = sparsified.connected_components()
    mass_original = max(original.expected_number_of_edges(), 1e-12)
    return SparsificationReport(
        edge_ratio=sparsified.number_of_edges() / m,
        saturated_fraction=(
            float(np.mean(probs >= 1.0 - saturation_tol)) if len(probs) else 0.0
        ),
        near_zero_fraction=(
            float(np.mean(probs <= saturation_tol)) if len(probs) else 0.0
        ),
        entropy_ratio=(
            graph_entropy(sparsified) / h_original if h_original > 0 else 0.0
        ),
        mass_ratio=sparsified.expected_number_of_edges() / mass_original,
        degree_mae=float(np.abs(deltas).mean()) if len(deltas) else 0.0,
        max_degree_error=float(np.abs(deltas).max()) if len(deltas) else 0.0,
        largest_component_fraction=(
            max(len(c) for c in components) / max(original.number_of_vertices(), 1)
        ),
    )
