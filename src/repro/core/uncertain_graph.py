"""The uncertain (probabilistic) graph data structure.

An uncertain graph ``G = (V, E, p)`` is an undirected simple graph whose
edges carry an independent existence probability ``p(u, v) in (0, 1]``
(paper section 3).  Under possible-world semantics it denotes the
distribution over the ``2^|E|`` deterministic subgraphs obtained by
keeping each edge independently with its probability.

Design
------
The class keeps a dict-of-dicts adjacency (like networkx, but specialised
and much lighter) for O(1) edge updates, plus lazily-built, cached numpy
*edge views* (``edge_index_array`` / ``probability_array``) which the
Monte-Carlo samplers and the vectorised algorithms consume.  Any mutation
invalidates the cache.

Vertices may be arbitrary hashable objects; algorithms that need dense
integer ids use :meth:`vertex_indexer`.
"""

from __future__ import annotations

import types
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

import numpy as np

from repro.exceptions import GraphError, ProbabilityError
from repro.utils.unionfind import UnionFind

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

_PROB_EPS = 1e-12


def _validate_probability(p: float) -> float:
    p = float(p)
    if not (0.0 < p <= 1.0):
        raise ProbabilityError(f"edge probability must be in (0, 1], got {p}")
    return p


class UncertainGraph:
    """Undirected uncertain graph with independent edge probabilities.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, p)`` triples.
    vertices:
        Optional iterable of isolated vertices to pre-register (vertices
        that appear in ``edges`` need not be listed).
    name:
        Optional label used in ``repr`` and experiment tables.

    Examples
    --------
    >>> g = UncertainGraph([("a", "b", 0.5), ("b", "c", 0.25)])
    >>> g.number_of_edges()
    2
    >>> round(g.expected_degree("b"), 2)
    0.75
    """

    def __init__(
        self,
        edges: Iterable[tuple[Vertex, Vertex, float]] | None = None,
        vertices: Iterable[Vertex] | None = None,
        name: str = "",
    ) -> None:
        self._adj: dict[Vertex, dict[Vertex, float]] = {}
        self.name = name
        self._edge_cache: tuple[list[Edge], np.ndarray] | None = None
        self._indexer_cache: dict[Vertex, int] | None = None
        self._edge_index_cache: np.ndarray | None = None
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v, p in edges:
                self.add_edge(u, v, p)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<UncertainGraph{label} |V|={self.number_of_vertices()} "
            f"|E|={self.number_of_edges()}>"
        )

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def number_of_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Number of edges ``|E|``."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> list[Vertex]:
        """List of vertices in insertion order."""
        return list(self._adj)

    def edges(self) -> Iterator[tuple[Vertex, Vertex, float]]:
        """Iterate over ``(u, v, p)`` triples, each undirected edge once."""
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            seen.add(u)
            for v, p in nbrs.items():
                if v not in seen:
                    yield u, v, p

    def neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Read-only mapping ``neighbor -> probability`` for ``vertex``.

        The returned proxy is a live *view* of the adjacency — it
        reflects later mutations but cannot be written through, so
        callers can't corrupt the graph's internal state.
        """
        try:
            return types.MappingProxyType(self._adj[vertex])
        except KeyError:
            raise GraphError(f"vertex not in graph: {vertex!r}") from None

    def degree(self, vertex: Vertex) -> int:
        """Number of incident edges (topological degree)."""
        return len(self.neighbors(vertex))

    def expected_degree(self, vertex: Vertex) -> float:
        """Expected degree: sum of incident edge probabilities."""
        return sum(self.neighbors(vertex).values())

    def expected_degrees(self) -> dict[Vertex, float]:
        """Expected degree of every vertex."""
        return {v: sum(nbrs.values()) for v, nbrs in self._adj.items()}

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def probability(self, u: Vertex, v: Vertex) -> float:
        """Existence probability of edge ``(u, v)``."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge not in graph: ({u!r}, {v!r})") from None

    def expected_number_of_edges(self) -> float:
        """Expected edge count ``sum_e p_e`` of the possible worlds."""
        return float(sum(p for _, _, p in self.edges()))

    def total_probability(self) -> float:
        """Alias of :meth:`expected_number_of_edges` (paper: probability mass)."""
        return self.expected_number_of_edges()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _invalidate_caches(self) -> None:
        self._edge_cache = None
        self._indexer_cache = None
        self._edge_index_cache = None

    def add_vertex(self, vertex: Vertex) -> None:
        """Register a vertex (no-op if already present)."""
        if vertex not in self._adj:
            self._adj[vertex] = {}
            self._invalidate_caches()

    def add_edge(self, u: Vertex, v: Vertex, p: float) -> None:
        """Add (or overwrite) the undirected edge ``(u, v)`` with probability ``p``."""
        if u == v:
            raise GraphError(f"self-loops are not allowed: {u!r}")
        p = _validate_probability(p)
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u][v] = p
        self._adj[v][u] = p
        self._invalidate_caches()

    def set_probability(self, u: Vertex, v: Vertex, p: float) -> None:
        """Update the probability of an existing edge."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge not in graph: ({u!r}, {v!r})")
        p = _validate_probability(p)
        self._adj[u][v] = p
        self._adj[v][u] = p
        self._invalidate_caches()

    def remove_edge(self, u: Vertex, v: Vertex) -> float:
        """Remove edge ``(u, v)``; returns its probability."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge not in graph: ({u!r}, {v!r})")
        p = self._adj[u].pop(v)
        self._adj[v].pop(u)
        self._invalidate_caches()
        return p

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove a vertex and all incident edges."""
        nbrs = self.neighbors(vertex)
        for other in list(nbrs):
            self._adj[other].pop(vertex)
        del self._adj[vertex]
        self._invalidate_caches()

    # ------------------------------------------------------------------
    # Vectorised views
    # ------------------------------------------------------------------
    def vertex_indexer(self) -> dict[Vertex, int]:
        """Map each vertex to a dense integer id (insertion order).

        Cached until the vertex set mutates; treat the returned dict as
        read-only (it is shared between callers).
        """
        if self._indexer_cache is None:
            self._indexer_cache = {v: i for i, v in enumerate(self._adj)}
        return self._indexer_cache

    def _build_edge_cache(self) -> tuple[list[Edge], np.ndarray]:
        if self._edge_cache is None:
            edge_list: list[Edge] = []
            probs: list[float] = []
            for u, v, p in self.edges():
                edge_list.append((u, v))
                probs.append(p)
            self._edge_cache = (edge_list, np.asarray(probs, dtype=np.float64))
        return self._edge_cache

    def edge_list(self) -> list[Edge]:
        """Stable list of undirected edges (cached until mutation)."""
        return self._build_edge_cache()[0]

    def probability_array(self) -> np.ndarray:
        """Probabilities aligned with :meth:`edge_list` (cached, read-only)."""
        arr = self._build_edge_cache()[1]
        arr.setflags(write=False)
        return arr

    def edge_index_array(self) -> np.ndarray:
        """``(m, 2)`` int array of dense vertex ids aligned with :meth:`edge_list`.

        Cached until mutation (the samplers and every sparsifier request
        it repeatedly) and returned read-only.
        """
        if self._edge_index_cache is None:
            indexer = self.vertex_indexer()
            edge_list = self.edge_list()
            out = np.empty((len(edge_list), 2), dtype=np.int64)
            for i, (u, v) in enumerate(edge_list):
                out[i, 0] = indexer[u]
                out[i, 1] = indexer[v]
            out.setflags(write=False)
            self._edge_index_cache = out
        return self._edge_index_cache

    def expected_degree_array(self) -> np.ndarray:
        """Expected degrees as a vector aligned with :meth:`vertex_indexer`.

        Accumulated in :meth:`edge_list` order (one ``bincount`` over the
        interleaved endpoint ids), *not* per-row insertion order: float
        summation order is part of the bit-identity contract, and this is
        the one order every graph representation shares —
        ``EdgeArrayGraph`` views, worker processes rebuilding the graph
        from shipped arrays or an mmap'd dataset, and this class — so
        expected degrees (and everything downstream: ``D_1``, GDB
        objectives) agree bit for bit across all of them.
        """
        return np.bincount(
            self.edge_index_array().reshape(-1),
            weights=np.repeat(self.probability_array(), 2),
            minlength=self.number_of_vertices(),
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Topological connectivity of the support graph (ignoring probabilities)."""
        n = self.number_of_vertices()
        if n <= 1:
            return True
        indexer = self.vertex_indexer()
        uf = UnionFind(n)
        for u, v, _ in self.edges():
            uf.union(indexer[u], indexer[v])
        return uf.components == 1

    def connected_components(self) -> list[set[Vertex]]:
        """Connected components of the support graph."""
        indexer = self.vertex_indexer()
        vertices = list(self._adj)
        uf = UnionFind(len(vertices))
        for u, v, _ in self.edges():
            uf.union(indexer[u], indexer[v])
        groups: dict[int, set[Vertex]] = {}
        for vertex, idx in indexer.items():
            groups.setdefault(uf.find(idx), set()).add(vertex)
        return list(groups.values())

    def density(self) -> float:
        """``|E|`` divided by the complete-graph edge count."""
        n = self.number_of_vertices()
        if n < 2:
            return 0.0
        return self.number_of_edges() / (n * (n - 1) / 2)

    def expected_cut_size(self, subset: Iterable[Vertex]) -> float:
        """Expected cut size ``C_G(S)`` of a vertex set (Definition 1).

        Sum of probabilities of edges with exactly one endpoint in
        ``subset``.
        """
        inside = set(subset)
        for v in inside:
            if v not in self._adj:
                raise GraphError(f"vertex not in graph: {v!r}")
        total = 0.0
        for u in inside:
            for v, p in self._adj[u].items():
                if v not in inside:
                    total += p
        return total

    # ------------------------------------------------------------------
    # Copies / conversions
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "UncertainGraph":
        """Deep copy (probabilities included)."""
        clone = UncertainGraph(name=self.name if name is None else name)
        for v in self._adj:
            clone.add_vertex(v)
        for u, v, p in self.edges():
            clone.add_edge(u, v, p)
        return clone

    def subgraph_with_edges(
        self, edges: Iterable[tuple[Vertex, Vertex, float]], name: str = ""
    ) -> "UncertainGraph":
        """New graph on the *same vertex set* with the given edges.

        This is the shape every sparsifier produces: ``V`` is kept in
        full (paper section 3: sparsified graphs keep all vertices) and
        only the edge set shrinks.
        """
        out = UncertainGraph(vertices=self._adj, name=name)
        for u, v, p in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge not in parent graph: ({u!r}, {v!r})")
            out.add_edge(u, v, p)
        return out

    def induced_subgraph(self, vertices: Iterable[Vertex], name: str = "") -> "UncertainGraph":
        """Induced subgraph on ``vertices`` (edges with both endpoints kept)."""
        keep = set(vertices)
        out = UncertainGraph(vertices=keep, name=name)
        for u, v, p in self.edges():
            if u in keep and v in keep:
                out.add_edge(u, v, p)
        return out

    def relabel_to_integers(self) -> tuple["UncertainGraph", dict[Vertex, int]]:
        """Return an isomorphic copy on vertices ``0..n-1`` plus the mapping."""
        # Copy: the caller owns the returned mapping, not the cache.
        mapping = dict(self.vertex_indexer())
        out = UncertainGraph(vertices=range(len(mapping)), name=self.name)
        for u, v, p in self.edges():
            out.add_edge(mapping[u], mapping[v], p)
        return out, mapping

    def to_networkx(self) -> Any:
        """Convert to a :class:`networkx.Graph` with ``probability`` edge attrs."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(self._adj)
        g.add_weighted_edges_from(self.edges(), weight="probability")
        return g

    @classmethod
    def from_edge_arrays(
        cls,
        vertices: Iterable[Vertex],
        endpoints: np.ndarray,
        probabilities: np.ndarray,
        name: str = "",
    ) -> "UncertainGraph":
        """Bulk constructor from dense-id edge arrays.

        Builds the graph in one pass from the array layout the vectorised
        algorithms already hold (``SparsificationState.build_graph``, the
        samplers' edge views), validating everything with array ops
        instead of per-edge calls.  When the input rows are already in
        the canonical edge order — each row ``(u, v)`` with ``u < v`` as
        dense ids, sorted by ``u`` — the cached edge views
        (:meth:`edge_list` / :meth:`probability_array` /
        :meth:`edge_index_array`) are pre-seeded so the first consumer
        pays nothing; that is exactly the order
        ``SparsificationState.build_graph`` supplies.  Other input
        orders are accepted but the views are built lazily in canonical
        order, so edge ids stay stable across later cache
        invalidations (a pre-seeded non-canonical order would silently
        renumber edges on the first mutation).

        Parameters
        ----------
        vertices:
            Full vertex set in the order that defines the dense ids
            (duplicates are rejected).
        endpoints:
            ``(m, 2)`` integer array of dense vertex ids; no self-loops,
            no duplicate undirected edges.
        probabilities:
            ``(m,)`` array of edge probabilities in ``(0, 1]``.
        name:
            Optional label for the new graph.
        """
        vertex_list = list(vertices)
        n = len(vertex_list)
        endpoints = np.asarray(endpoints, dtype=np.int64).reshape(-1, 2)
        probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
        m = len(probabilities)
        if len(endpoints) != m:
            raise GraphError(
                f"endpoints/probabilities length mismatch: {len(endpoints)} vs {m}"
            )
        if m:
            if endpoints.min() < 0 or endpoints.max() >= n:
                raise GraphError("endpoint id outside the vertex range")
            if np.any(endpoints[:, 0] == endpoints[:, 1]):
                raise GraphError("self-loops are not allowed")
            lo = float(probabilities.min())
            if not (lo > 0.0 and float(probabilities.max()) <= 1.0):
                raise ProbabilityError(
                    "edge probabilities must be in (0, 1]"
                )
            canonical = np.sort(endpoints, axis=1)
            if len(np.unique(canonical, axis=0)) != m:
                raise GraphError("duplicate undirected edges in edge arrays")

        out = cls(name=name)
        adj = out._adj
        for v in vertex_list:
            adj[v] = {}
        if len(adj) != n:
            raise GraphError("duplicate vertices in vertex list")

        edge_list: list[Edge] = []
        for (ui, vi), p in zip(endpoints.tolist(), probabilities.tolist()):
            u = vertex_list[ui]
            v = vertex_list[vi]
            adj[u][v] = p
            adj[v][u] = p
            edge_list.append((u, v))

        # Pre-seed the cached views only when the input order is the
        # order :meth:`edges` would reproduce from the adjacency
        # (rows ``u < v`` sorted by ``u``): then a later cache rebuild
        # yields identical edge ids.  Non-canonical orders leave the
        # caches lazy instead of pinning an order that the first
        # mutation would silently renumber.
        canonical_order = m == 0 or (
            bool(np.all(endpoints[:, 0] < endpoints[:, 1]))
            and bool(np.all(np.diff(endpoints[:, 0]) >= 0))
        )
        if canonical_order:
            out._edge_cache = (edge_list, probabilities.copy())
            out._indexer_cache = {v: i for i, v in enumerate(vertex_list)}
            index_cache = endpoints.copy()
            index_cache.setflags(write=False)
            out._edge_index_cache = index_cache
        return out

    @classmethod
    def from_networkx(cls, graph: Any, probability_attr: str = "probability") -> "UncertainGraph":
        """Build from a networkx graph carrying a probability edge attribute."""
        out = cls(name=str(graph.name) if getattr(graph, "name", "") else "")
        out_vertices = list(graph.nodes())
        for v in out_vertices:
            out.add_vertex(v)
        for u, v, data in graph.edges(data=True):
            if probability_attr not in data:
                raise GraphError(
                    f"edge ({u!r}, {v!r}) missing attribute {probability_attr!r}"
                )
            out.add_edge(u, v, data[probability_attr])
        return out

    # ------------------------------------------------------------------
    # Equality (structural, probability-tolerant)
    # ------------------------------------------------------------------
    def isomorphic_probabilities(self, other: "UncertainGraph", tol: float = 1e-9) -> bool:
        """Same vertex set, same edges, probabilities equal within ``tol``."""
        if set(self._adj) != set(other._adj):
            return False
        if self.number_of_edges() != other.number_of_edges():
            return False
        for u, v, p in self.edges():
            if not other.has_edge(u, v):
                return False
            if abs(other.probability(u, v) - p) > tol:
                return False
        return True
