"""Streaming sparsifier maintenance: delta in, refreshed sparsifier out.

:class:`IncrementalSparsifier` holds the long-lived triple the streaming
hot path needs — the mutable graph, its :class:`~repro.core.backbone.BackbonePlan`
and the converged :class:`~repro.core.discrepancy.SparsificationState` —
and turns each :class:`~repro.core.delta.EdgeDeltaBatch` into a repaired,
re-converged sparsifier without replanning from scratch:

1. :func:`~repro.core.delta.apply_delta` mutates the graph and yields the
   old-id → new-id map;
2. :meth:`BackbonePlan.repair` re-peels only the dirty forest ranks
   (lower ranks stay bit-identical);
3. :meth:`SparsificationState.apply_delta` re-keys the CSR state,
   carrying the previously-converged probabilities across;
4. the backbone is re-instantiated under the *same seed* (bit-identical
   to a fresh plan's, by the repair contract) and only the membership
   diff is re-seeded;
5. :func:`~repro.core.gdb.gdb_refine_warm` re-converges from the warm
   probabilities, sweeping only the dirty region first.

The maintained result matches a cold rebuild: same selected edge set
(same seed, equivalent plan) and converged ``D_1`` within the
coordinate-descent tolerance — ``benchmarks/bench_streaming.py`` gates
both along a drift stream, plus the >=5x latency win at small deltas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend
from repro.core.backbone import BackbonePlan
from repro.core.delta import EdgeDeltaBatch, apply_delta
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import (
    GDBConfig,
    _colored_eligible,
    _validate_engine,
    gdb_refine,
    gdb_refine_warm,
)
from repro.core.sparsify import parse_variant
from repro.core.sweep import build_sweep_plan, extend_sweep_plan
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import SparsificationError


@dataclass(frozen=True)
class MaintenanceReport:
    """What one :meth:`IncrementalSparsifier.apply` call did.

    Attributes
    ----------
    batch_size:
        Updates + inserts + deletes in the applied batch.
    structural:
        Whether the batch changed the edge set (not just probabilities).
    removed / added:
        Backbone membership churn: edges that left / entered the
        selected set after the repaired plan re-instantiated.
    sweeps:
        GDB sweeps spent re-converging (restricted + full).
    d1:
        Converged objective after the batch.
    elapsed:
        Wall-clock seconds for the whole maintenance step.
    """

    batch_size: int
    structural: bool
    removed: int
    added: int
    sweeps: int
    d1: float
    elapsed: float


class IncrementalSparsifier:
    """Maintain a GDB sparsifier under a stream of edge-delta batches.

    Parameters
    ----------
    graph:
        The initial uncertain graph.  Batches are applied to it *in
        place* (pass a copy to keep the original); after each
        :meth:`apply`, :attr:`graph` is the current drifted graph.
    alpha:
        Sparsification ratio, fixed along the stream.
    variant:
        Paper-notation variant string; must be a GDB variant (the warm
        restart seeds converged probabilities, which only the
        coordinate-descent core consumes).
    rng:
        Integer seed for backbone instantiation.  A bare generator is
        rejected: the backbone's MC top-up replays under the *same* seed
        every batch, which is what keeps the maintained selection equal
        to a cold rebuild's.
    h / tau / max_sweeps:
        GDB entropy parameter, convergence threshold and sweep cap,
        shared by the initial build and every warm re-convergence.
    engine:
        Sweep engine (``"vector"`` enables the dirty-region restriction;
        ``"loop"`` falls back to full reference sweeps).
    hops:
        Dirty-region growth radius for the warm sweeps (see
        :func:`~repro.core.gdb.gdb_refine_warm`).
    backend:
        Array backend for the sweeps (non-reference backends run full
        device sweeps; the dirty-region restriction is host-only).
    top_up:
        BGI top-up discipline.  ``"stable"`` (default) draws the
        weighted sample by seeded order statistics, so a small delta
        moves the selection by O(|delta|) edges and the warm restart
        stays warm; ``"mc"`` replays the permutation-based Monte-Carlo
        pass, which re-randomises the top-up wholesale on any change
        (correct, but the dirty region becomes the whole graph).
        Either way the maintained selection is bit-identical to a fresh
        plan's under the same seed and mode.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        alpha: float,
        variant: str = "GDB^A-t",
        rng: int = 0,
        h: float = 0.05,
        tau: float = 1e-9,
        max_sweeps: int = 200,
        engine: str = "vector",
        hops: int = 1,
        backend=None,
        top_up: str = "stable",
    ) -> None:
        spec = parse_variant(variant)
        if spec.method != "gdb":
            raise SparsificationError(
                f"incremental maintenance requires a GDB variant, got "
                f"{spec.canonical_name!r} (warm restarts seed converged "
                f"probabilities into the coordinate-descent core)"
            )
        if not isinstance(rng, (int, np.integer)):
            raise ValueError(
                "IncrementalSparsifier needs an integer seed: the backbone "
                "MC top-up replays under the same seed every batch"
            )
        self.graph = graph
        self.alpha = float(alpha)
        self.spec = spec
        self.seed = int(rng)
        self.config = GDBConfig(h=h, tau=tau, max_sweeps=max_sweeps,
                                k=spec.k, relative=spec.relative)
        self.engine = _validate_engine(engine)
        self.hops = int(hops)
        self.backend = backend
        self.backbone_method = "bgi" if spec.bgi_backbone else "random"
        if top_up not in ("mc", "stable"):
            raise ValueError(f"unknown top_up {top_up!r} (use 'mc' or 'stable')")
        self.backbone_kwargs = (
            {"top_up": top_up} if self.backbone_method == "bgi" else {}
        )

        self.plan = BackbonePlan(graph)
        self.state = SparsificationState(graph)
        ids = self.plan.backbone(
            self.alpha, method=self.backbone_method, rng=self.seed,
            **self.backbone_kwargs,
        )
        self.state.select_edges(ids)
        self._sweep_plan = None
        self._keep_plan = (
            _colored_eligible(self.engine, self.config.k, self.state.n)
            and resolve_backend(backend).is_reference
        )
        if self._keep_plan:
            self._sweep_plan = build_sweep_plan(self.state)
        self.sweeps = gdb_refine(
            self.state, self.config, engine=self.engine,
            plan=self._sweep_plan, backend=self.backend,
        )
        self.batches_applied = 0

    # -- stream steps -----------------------------------------------------
    def apply(self, batch: EdgeDeltaBatch) -> MaintenanceReport:
        """Apply one delta batch and re-converge; returns a report."""
        start = time.perf_counter()
        applied = apply_delta(self.graph, batch, in_place=True)
        self.graph = applied.graph
        self.plan.repair(applied)
        self.state.apply_delta(applied)

        ids = self.plan.backbone(
            self.alpha, method=self.backbone_method, rng=self.seed,
            **self.backbone_kwargs,
        )
        new_sel = np.zeros(self.state.m, dtype=bool)
        new_sel[np.asarray(ids, dtype=np.int64)] = True
        removed = np.flatnonzero(self.state.selected & ~new_sel)
        added = np.flatnonzero(new_sel & ~self.state.selected)
        if len(removed):
            self.state.deselect_edges(removed)
        if len(added):
            self.state.select_edges(added)

        dirty = np.unique(np.concatenate([
            applied.dirty_vertices(),
            self.state.edge_vertices[removed].ravel(),
            self.state.edge_vertices[added].ravel(),
        ]))
        self._refresh_sweep_plan(applied, removed, added)
        sweeps = gdb_refine_warm(
            self.state, self.config, dirty_vertices=dirty,
            engine=self.engine, plan=self._sweep_plan,
            backend=self.backend, hops=self.hops,
        )
        self.sweeps += sweeps
        self.batches_applied += 1
        return MaintenanceReport(
            batch_size=batch.size,
            structural=applied.structural,
            removed=int(len(removed)),
            added=int(len(added)),
            sweeps=sweeps,
            d1=self.state.d1(relative=self.config.relative),
            elapsed=time.perf_counter() - start,
        )

    def _refresh_sweep_plan(self, applied, removed, added) -> None:
        """Carry the greedy coloring across the delta instead of redoing it."""
        if not self._keep_plan:
            return
        if self._sweep_plan is None:
            self._sweep_plan = build_sweep_plan(self.state)
            return
        if not applied.structural and not len(removed) and not len(added):
            return  # same edge ids, same selection: coloring still valid
        eids = self._sweep_plan.eids
        colors = self._sweep_plan.colors
        if applied.structural:
            mapped = applied.id_map[eids]
            keep = mapped >= 0
            # id_map is monotone on survivors, so the remapped ids stay
            # ascending and aligned with their colors.
            eids = mapped[keep]
            colors = colors[keep]
        if len(removed):
            keep = ~np.isin(eids, removed)
            eids = eids[keep]
            colors = colors[keep]
        self._sweep_plan = extend_sweep_plan(self.state, eids, colors, added)

    # -- views ------------------------------------------------------------
    def d1(self) -> float:
        """Current converged objective (respecting the variant's mode)."""
        return self.state.d1(relative=self.config.relative)

    def sparsified(self, name: str = "") -> UncertainGraph:
        """Materialise the current sparsifier as an uncertain graph."""
        label = name or (
            f"{self.spec.canonical_name}@{self.alpha:g}"
            f"+{self.batches_applied}d({self.graph.name})"
        )
        return self.state.build_graph(name=label)
