"""Core contribution: uncertain graphs and the paper's sparsifiers.

Public surface:

- :class:`~repro.core.uncertain_graph.UncertainGraph` — the data model,
- :func:`~repro.core.sparsify.sparsify` — one-call variant dispatch,
- :func:`~repro.core.gdb.gdb` / :func:`~repro.core.emd_sparsifier.emd` /
  :func:`~repro.core.lp.lp_sparsify` — the individual algorithms,
- :func:`~repro.core.backbone.bgi_backbone` — Algorithm 1,
- entropy / discrepancy helpers.
"""

from repro.core.backbone import (
    BackbonePlan,
    backbone_as_list,
    bgi_backbone,
    bgi_backbone_legacy,
    build_backbone,
    local_degree_backbone,
    maximum_spanning_forest,
    random_backbone,
    target_edge_count,
)
from repro.core.array_graph import EdgeArrayGraph
from repro.core.delta import AppliedDelta, EdgeDeltaBatch, apply_delta
from repro.core.diagnostics import SparsificationReport, analyze_sparsification
from repro.core.discrepancy import (
    SparsificationState,
    cut_discrepancy,
    d1_objective,
    degree_discrepancy_vector,
    delta_1,
)
from repro.core.emd_sparsifier import EMDConfig, emd
from repro.core.entropy import (
    edge_entropy,
    entropy_array,
    entropy_increases,
    graph_entropy,
    relative_entropy,
)
from repro.core.gdb import GDBConfig, gdb, gdb_refine, gdb_refine_warm
from repro.core.grid import GridCell, gdb_grid, objective_rows
from repro.core.lp import lp_assign_probabilities, lp_sparsify
from repro.core.maintain import IncrementalSparsifier, MaintenanceReport
from repro.core.shard import GridShard, grid_shards, sharded_gdb_grid
from repro.core.sweep import SweepPlan, build_sweep_plan, greedy_edge_coloring
from repro.core.sparsify import (
    VariantSpec,
    available_variants,
    check_budget,
    parse_variant,
    sparsify,
)
from repro.core.uncertain_graph import UncertainGraph

__all__ = [
    "AppliedDelta",
    "BackbonePlan",
    "EMDConfig",
    "EdgeArrayGraph",
    "EdgeDeltaBatch",
    "IncrementalSparsifier",
    "MaintenanceReport",
    "SparsificationReport",
    "analyze_sparsification",
    "apply_delta",
    "GDBConfig",
    "GridCell",
    "GridShard",
    "SparsificationState",
    "SweepPlan",
    "UncertainGraph",
    "VariantSpec",
    "available_variants",
    "backbone_as_list",
    "bgi_backbone",
    "bgi_backbone_legacy",
    "build_backbone",
    "build_sweep_plan",
    "check_budget",
    "cut_discrepancy",
    "d1_objective",
    "degree_discrepancy_vector",
    "delta_1",
    "edge_entropy",
    "emd",
    "entropy_array",
    "entropy_increases",
    "gdb",
    "gdb_grid",
    "gdb_refine",
    "gdb_refine_warm",
    "graph_entropy",
    "greedy_edge_coloring",
    "grid_shards",
    "local_degree_backbone",
    "lp_assign_probabilities",
    "lp_sparsify",
    "maximum_spanning_forest",
    "objective_rows",
    "parse_variant",
    "random_backbone",
    "relative_entropy",
    "sharded_gdb_grid",
    "sparsify",
    "target_edge_count",
]
