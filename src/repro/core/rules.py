"""Gradient-descent probability update rules (paper sections 4.2 and 5).

Each rule returns the *unclamped* optimal step ``stp`` for one edge given
the current :class:`~repro.core.discrepancy.SparsificationState`; GDB
applies clamping to ``[0, 1]`` and the entropy attenuation (Eq. 9 / 14).

Every rule also has an array-valued variant (``*_array``) computing the
steps of many edges against the *same* state in one gather — the
building block of the color-blocked sweep engine and EMD's vectorised
candidate scan.  Applying array steps simultaneously is exactly
order-equivalent to the scalar loop only when the edges share no
endpoint and the rule has no global term (the ``k = 1`` rules); the
``k >= 2`` array variants are still exact *evaluations* at the current
state (used for scans and diagnostics), but the sweep engines apply
those rules sequentially.

Rules
-----
- ``k = 1`` absolute (Eq. 8 with ``pi = 1``): ``stp = (delta(u) + delta(v)) / 2``.
- ``k = 1`` relative (Eq. 8 with ``pi(u) = C_G(u)``, the original expected
  degree): ``stp = (pi(v) delta(u) + pi(u) delta(v)) / (pi(u) + pi(v))``.
  The paper states this closed form directly; we implement it as written.
- general ``k`` (Eq. 13/14): weights the endpoint degree discrepancies
  against the global residual of non-incident edges with the
  Sigma-binomial coefficients of :func:`repro.utils.binomials.cut_rule_coefficients`.
  ``k = 1`` and ``k = 2`` collapse to Eq. (9) and Eq. (15) exactly.
- ``k = n`` (Eq. 16): redistribute the full remaining residual to each
  edge ("random probability reassignment").
"""

from __future__ import annotations

import numpy as np

from repro.core.discrepancy import SparsificationState
from repro.utils.binomials import cut_rule_coefficients


def degree_step_absolute(state: SparsificationState, eid: int) -> float:
    """Eq. (8) with absolute discrepancy: the mean endpoint discrepancy."""
    u, v = state.endpoints(eid)
    return 0.5 * (float(state.delta[u]) + float(state.delta[v]))


def degree_step_relative(state: SparsificationState, eid: int) -> float:
    """Eq. (8) with relative discrepancy: ``pi(u) = C_G(u)``.

    Endpoints of an edge always have positive original expected degree
    (they are incident to at least this edge), so the denominator is
    positive.
    """
    u, v = state.endpoints(eid)
    pi_u = float(state.original_degrees[u])
    pi_v = float(state.original_degrees[v])
    denominator = pi_u + pi_v
    if denominator <= 0.0:
        return 0.0
    return (pi_v * float(state.delta[u]) + pi_u * float(state.delta[v])) / denominator


def cut_step(state: SparsificationState, eid: int, k: int) -> float:
    """Eq. (13)/(14): optimal step preserving expected cuts up to size ``k``.

    ``stp = degree_coeff * (delta(u) + delta(v)) + global_coeff * Delta-hat(e)``

    where ``Delta-hat(e)`` is the residual probability mass of edges
    touching neither endpoint (see
    :meth:`SparsificationState.residual_excluding`).
    """
    degree_coeff, global_coeff = cut_rule_coefficients(state.n, k)
    u, v = state.endpoints(eid)
    step = degree_coeff * (float(state.delta[u]) + float(state.delta[v]))
    if global_coeff != 0.0:
        step += global_coeff * state.residual_excluding(eid)
    return step


def full_redistribution_step(state: SparsificationState, eid: int) -> float:
    """Eq. (16), the ``k = n`` special case.

    Pushes the whole remaining residual (cumulative probability of the
    eliminated and under-weighted edges, excluding this edge's own
    residual) onto the edge; clamping in GDB then saturates edges at 1
    until the residual is absorbed.
    """
    return state.residual_excluding_edge_only(eid)


# ----------------------------------------------------------------------
# Array-valued variants (same arithmetic, one gather per batch)
# ----------------------------------------------------------------------
def degree_step_absolute_array(state: SparsificationState,
                               eids: np.ndarray) -> np.ndarray:
    """Eq. (8), absolute: mean endpoint discrepancy for every ``eid``."""
    uv = state.edge_vertices[eids]
    return 0.5 * (state.delta[uv[:, 0]] + state.delta[uv[:, 1]])


def degree_step_relative_array(state: SparsificationState,
                               eids: np.ndarray) -> np.ndarray:
    """Eq. (8), relative: degree-weighted endpoint discrepancies."""
    uv = state.edge_vertices[eids]
    pi_u = state.original_degrees[uv[:, 0]]
    pi_v = state.original_degrees[uv[:, 1]]
    denominator = pi_u + pi_v
    steps = pi_v * state.delta[uv[:, 0]] + pi_u * state.delta[uv[:, 1]]
    return np.where(denominator > 0.0, steps / np.where(denominator > 0.0, denominator, 1.0), 0.0)


def residual_excluding_array(state: SparsificationState,
                             eids: np.ndarray) -> np.ndarray:
    """Vectorised ``Delta-hat(e)`` (Eq. 13) for a batch of edges."""
    uv = state.edge_vertices[eids]
    edge_residual = state.p_original[eids] - state.phat[eids]
    incident_residual = (
        state.delta[uv[:, 0]] + state.delta[uv[:, 1]] - edge_residual
    )
    return state.total_residual - incident_residual


def cut_step_array(state: SparsificationState, eids: np.ndarray,
                   k: int) -> np.ndarray:
    """Eq. (13)/(14) evaluated for a batch at the current state."""
    degree_coeff, global_coeff = cut_rule_coefficients(state.n, k)
    uv = state.edge_vertices[eids]
    steps = degree_coeff * (state.delta[uv[:, 0]] + state.delta[uv[:, 1]])
    if global_coeff != 0.0:
        steps = steps + global_coeff * residual_excluding_array(state, eids)
    return steps


def full_redistribution_step_array(state: SparsificationState,
                                   eids: np.ndarray) -> np.ndarray:
    """Eq. (16) evaluated for a batch at the current state."""
    return state.total_residual - (state.p_original[eids] - state.phat[eids])


def make_array_rule(k: int | str, relative: bool, n: int):
    """Array-valued counterpart of :func:`make_rule`.

    Returns a ``(state, eids) -> steps`` callable mirroring the scalar
    rule element-for-element (identical float arithmetic per edge).
    """
    if k == "n":
        return full_redistribution_step_array
    if not isinstance(k, int) or k < 1:
        raise ValueError(f"k must be a positive int or 'n', got {k!r}")
    if k >= n:
        return full_redistribution_step_array
    if relative:
        if k != 1:
            raise ValueError("the relative-discrepancy rule is defined for k = 1 only")
        return degree_step_relative_array
    if k == 1:
        return degree_step_absolute_array

    def rule(state: SparsificationState, eids: np.ndarray) -> np.ndarray:
        return cut_step_array(state, eids, k)

    return rule


def make_rule(k: int | str, relative: bool, n: int):
    """Build a ``(state, eid) -> stp`` callable for a variant.

    Parameters
    ----------
    k:
        ``1`` / ``2`` / any int ``>= 1``, or the string ``"n"`` for the
        full-redistribution rule (Eq. 16).
    relative:
        Minimise relative instead of absolute discrepancy (only
        meaningful for ``k = 1``; the paper's cut rules of section 5 are
        derived for ``delta_A``).
    n:
        Number of vertices (validates ``k`` against the graph size).
    """
    if k == "n":
        return full_redistribution_step
    if not isinstance(k, int) or k < 1:
        raise ValueError(f"k must be a positive int or 'n', got {k!r}")
    if k >= n:
        return full_redistribution_step
    if relative:
        if k != 1:
            raise ValueError("the relative-discrepancy rule is defined for k = 1 only")
        return degree_step_relative
    if k == 1:
        return degree_step_absolute

    def rule(state: SparsificationState, eid: int) -> float:
        return cut_step(state, eid, k)

    return rule
