"""Array-backed uncertain-graph view for out-of-core execution.

:class:`EdgeArrayGraph` is a read-only, array-native stand-in for
:class:`~repro.core.uncertain_graph.UncertainGraph`: it holds only the
dense edge arrays (``src``/``dst`` int64, probabilities float64) and
implements exactly the *array-view protocol* every vectorised layer
consumes —

- ``number_of_vertices()`` / ``number_of_edges()`` / ``vertices()`` /
  ``vertex_indexer()``,
- ``edge_index_array()`` / ``probability_array()`` /
  ``expected_degree_array()``,

which is all that :class:`~repro.core.discrepancy.SparsificationState`,
:class:`~repro.core.backbone.BackbonePlan` (``bgi`` / ``random``
methods) and :class:`~repro.sampling.worlds.WorldSampler` touch.  There
is **no dict-of-dicts adjacency**: a 10M-edge graph costs three arrays
instead of gigabytes of per-edge dict entries, and when the arrays are
``np.memmap``-backed (:func:`repro.datasets.binary_io.read_binary` with
``mmap=True``) the edge data pages in lazily from disk and is shared
read-only between processes.

Vertices are always the dense ids ``0 .. n-1``; anything needing the
scalar dict API (``neighbors``, ``degree``, per-edge mutation) should
:meth:`materialise` first — the methods simply don't exist here, so
misuse fails fast with ``AttributeError`` instead of silently scaling
badly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError, ProbabilityError


def _read_only(array: np.ndarray) -> np.ndarray:
    """Best-effort write protection (memmaps opened ``r`` already are)."""
    if array.flags.writeable and array.flags.owndata:
        array.setflags(write=False)
    return array


class EdgeArrayGraph:
    """Read-only uncertain graph defined by dense edge arrays.

    Parameters
    ----------
    n:
        Vertex count; vertices are the dense ids ``0 .. n-1``.
    src, dst:
        ``(m,)`` int64 endpoint arrays (may be ``np.memmap``-backed).
    probabilities:
        ``(m,)`` float64 probabilities in ``(0, 1]``, aligned with
        ``src``/``dst``.
    name:
        Optional label (mirrors ``UncertainGraph.name``).
    validate:
        Run the array-level well-formedness checks (range, self-loops,
        duplicates, probability domain).  Trusted sources — e.g. a
        digest-verified binary dataset — pass ``False`` to keep loading
        O(header).
    """

    def __init__(
        self,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        probabilities: np.ndarray,
        name: str = "",
        validate: bool = True,
    ) -> None:
        self.n = int(n)
        self.name = name
        self._src = _read_only(np.asarray(src, dtype=np.int64).reshape(-1))
        self._dst = _read_only(np.asarray(dst, dtype=np.int64).reshape(-1))
        self._prob = _read_only(
            np.asarray(probabilities, dtype=np.float64).reshape(-1)
        )
        self.m = len(self._prob)
        if len(self._src) != self.m or len(self._dst) != self.m:
            raise GraphError(
                f"edge array lengths disagree: src={len(self._src)} "
                f"dst={len(self._dst)} prob={self.m}"
            )
        if self.n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._edge_index_cache: "np.ndarray | None" = None
        self._indexer_cache: "dict | None" = None
        self._expected_degree_cache: "np.ndarray | None" = None
        self._edge_list_cache: "list | None" = None
        self._adjacency_cache: "dict | None" = None
        if validate:
            self.validate()

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        """Array-level well-formedness checks (one O(m log m) pass)."""
        if self.m == 0:
            return
        lo = min(int(self._src.min()), int(self._dst.min()))
        hi = max(int(self._src.max()), int(self._dst.max()))
        if lo < 0 or hi >= self.n:
            raise GraphError("endpoint id outside the vertex range")
        if bool(np.any(self._src == self._dst)):
            raise GraphError("self-loops are not allowed")
        p_min = float(self._prob.min())
        if not (p_min > 0.0 and float(self._prob.max()) <= 1.0):
            raise ProbabilityError("edge probabilities must be in (0, 1]")
        # Duplicate undirected edges: canonical key (min, max) per row.
        key = (
            np.minimum(self._src, self._dst) * np.int64(self.n)
            + np.maximum(self._src, self._dst)
        )
        if len(np.unique(key)) != self.m:
            raise GraphError("duplicate undirected edges in edge arrays")

    # -- the array-view protocol ----------------------------------------
    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<EdgeArrayGraph{label} |V|={self.n} |E|={self.m}>"

    def number_of_vertices(self) -> int:
        return self.n

    def number_of_edges(self) -> int:
        return self.m

    def vertices(self) -> range:
        """Dense vertex ids ``0 .. n-1`` (a cheap sequence, not a list)."""
        return range(self.n)

    def vertex_indexer(self) -> dict:
        """Identity map ``{i: i}`` (built lazily; most paths never ask)."""
        if self._indexer_cache is None:
            self._indexer_cache = {i: i for i in range(self.n)}
        return self._indexer_cache

    def edge_index_array(self) -> np.ndarray:
        """``(m, 2)`` endpoints, column-stacked from ``src``/``dst``.

        This is the one materialisation the view pays (16 bytes/edge):
        the CSR builders index rows of a 2-column array.  Built lazily
        and cached; the source memmaps stay untouched until first use.
        """
        if self._edge_index_cache is None:
            out = np.empty((self.m, 2), dtype=np.int64)
            out[:, 0] = self._src
            out[:, 1] = self._dst
            out.setflags(write=False)
            self._edge_index_cache = out
        return self._edge_index_cache

    def probability_array(self) -> np.ndarray:
        return self._prob

    def expected_degree_array(self) -> np.ndarray:
        """Expected degrees via one weighted bincount (no adjacency).

        The endpoints are interleaved ``(src_0, dst_0, src_1, dst_1, …)``
        so each vertex accumulates its incident probabilities in *edge
        order* — the same left-to-right summation the dict-backed
        ``UncertainGraph.expected_degree_array`` performs — keeping the
        two representations bit-identical, not merely close.
        """
        if self._expected_degree_cache is None:
            degrees = np.bincount(
                self.edge_index_array().reshape(-1),
                weights=np.repeat(self._prob, 2),
                minlength=self.n,
            )
            degrees = degrees.astype(np.float64, copy=False)
            degrees.setflags(write=False)
            self._expected_degree_cache = degrees
        return self._expected_degree_cache

    def edge_list(self) -> list:
        """``(u, v)`` tuples in array order (dense ids; built lazily)."""
        if self._edge_list_cache is None:
            self._edge_list_cache = list(
                zip(self._src.tolist(), self._dst.tolist())
            )
        return self._edge_list_cache

    def _adjacency(self) -> dict:
        """Lazy ``{u: {v: p}}`` adjacency in edge-array order.

        Materialises O(m) dict entries on first use — only the
        adjacency-shaped consumers (e.g. the Local-Degree backbone) pay
        for it; the array-native pipeline never calls this.
        """
        if self._adjacency_cache is None:
            adj: dict = {v: {} for v in range(self.n)}
            for (u, v), p in zip(self.edge_list(), self._prob.tolist()):
                adj[u][v] = p
                adj[v][u] = p
            self._adjacency_cache = adj
        return self._adjacency_cache

    def neighbors(self, vertex) -> dict:
        return self._adjacency()[vertex]

    def degree(self, vertex) -> int:
        """Number of incident edges (topological degree)."""
        return len(self._adjacency()[vertex])

    def expected_degree(self, vertex) -> float:
        """Expected degree: sum of incident edge probabilities."""
        return float(self.expected_degree_array()[vertex])

    # -- conveniences ---------------------------------------------------
    @property
    def src(self) -> np.ndarray:
        return self._src

    @property
    def dst(self) -> np.ndarray:
        return self._dst

    def edges(self):
        """Iterate ``(u, v, p)`` triples (scalar; intended for small graphs)."""
        for u, v, p in zip(
            self._src.tolist(), self._dst.tolist(), self._prob.tolist()
        ):
            yield u, v, p

    def expected_number_of_edges(self) -> float:
        return float(self._prob.sum())

    def materialise(self, name: "str | None" = None):
        """Full :class:`UncertainGraph` copy (dict adjacency; O(m) RAM)."""
        from repro.core.uncertain_graph import UncertainGraph

        return UncertainGraph.from_edge_arrays(
            range(self.n),
            self.edge_index_array(),
            np.array(self._prob),
            name=self.name if name is None else name,
        )
