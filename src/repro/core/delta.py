"""Edge delta batches for streaming / drifting uncertain graphs.

ROADMAP item 3 opens the dynamic scenario: edge probabilities drift and
edges appear/disappear while sparsifiers stay live.  This module defines
the unit of change — :class:`EdgeDeltaBatch`, a canonicalised bundle of
probability updates, insertions and deletions expressed against the
*current* edge ids of a graph — and :func:`apply_delta`, which applies a
batch to either graph representation and returns an
:class:`AppliedDelta` carrying the old-id → new-id mapping every
downstream incremental structure (``BackbonePlan.repair``,
``SparsificationState.apply_delta``, sweep-plan extension) keys on.

Id semantics
------------
Edge ids are positions in the graph's edge enumeration.  A delta batch
names updates/deletes by *old* ids and insertions by canonical dense
endpoint pairs.  After application:

- pure probability updates keep every id (``id_map`` is the identity);
- structural batches renumber: survivors keep their *relative* order
  (both representations preserve it — dict adjacency deletions/inserts
  never reorder existing entries, and the array path writes survivors
  in row order), which is exactly the invariant the stable-sort
  tie-breaking of ``BackbonePlan`` repair relies on.  ``id_map`` is
  computed from the post-mutation enumeration itself, so it is correct
  for either representation's ordering rules.

Insertions are restricted to *existing* vertices (dense ids below
``n``): probability drift rewires a fixed population; growing the
vertex set remains a rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import GraphError, ProbabilityError


def _as_int_ids(ids) -> np.ndarray:
    arr = np.asarray(ids, dtype=np.int64).reshape(-1)
    return arr


def _as_probs(ps, what: str) -> np.ndarray:
    arr = np.asarray(ps, dtype=np.float64).reshape(-1)
    if len(arr):
        bad = np.flatnonzero(~((arr > 0.0) & (arr <= 1.0)))
        if len(bad):
            raise ProbabilityError(
                f"{what} probability must be in (0, 1], got {arr[bad[0]]!r}"
            )
    return arr


@dataclass(frozen=True)
class EdgeDeltaBatch:
    """One canonicalised batch of edge changes.

    Parameters name updates and deletes by edge id (positions in the
    target graph's current edge enumeration) and insertions by dense
    endpoint pairs.  The constructor canonicalises everything into
    ascending edge-id / lexicographic pair order so two batches with the
    same content compare (and replay) identically regardless of how they
    were assembled.
    """

    update_eids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    update_ps: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))
    delete_eids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    insert_endpoints: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    insert_ps: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))

    def __post_init__(self) -> None:
        update_eids = _as_int_ids(self.update_eids)
        update_ps = _as_probs(self.update_ps, "update")
        if update_eids.shape != update_ps.shape:
            raise GraphError(
                f"update eids/probabilities length mismatch: "
                f"{len(update_eids)} vs {len(update_ps)}"
            )
        order = np.argsort(update_eids, kind="stable")
        update_eids = update_eids[order]
        update_ps = update_ps[order]
        if len(update_eids) and np.any(np.diff(update_eids) == 0):
            raise GraphError("duplicate edge ids in delta updates")

        delete_eids = np.sort(np.unique(_as_int_ids(self.delete_eids)))
        if len(delete_eids) != len(_as_int_ids(self.delete_eids)):
            raise GraphError("duplicate edge ids in delta deletes")
        if len(update_eids) and len(delete_eids) and len(
            np.intersect1d(update_eids, delete_eids)
        ):
            raise GraphError("an edge cannot be both updated and deleted")
        if (len(update_eids) and update_eids[0] < 0) or (
            len(delete_eids) and delete_eids[0] < 0
        ):
            raise GraphError("negative edge id in delta batch")

        pairs = np.asarray(self.insert_endpoints, dtype=np.int64).reshape(-1, 2)
        insert_ps = _as_probs(self.insert_ps, "insert")
        if len(pairs) != len(insert_ps):
            raise GraphError(
                f"insert endpoints/probabilities length mismatch: "
                f"{len(pairs)} vs {len(insert_ps)}"
            )
        if len(pairs):
            if pairs.min() < 0:
                raise GraphError("negative vertex id in delta inserts")
            if np.any(pairs[:, 0] == pairs[:, 1]):
                raise GraphError("self-loops are not allowed")
            pairs = np.sort(pairs, axis=1)  # canonical (min, max) per row
            order = np.lexsort((pairs[:, 1], pairs[:, 0]))
            pairs = pairs[order]
            insert_ps = insert_ps[order]
            if len(np.unique(pairs, axis=0)) != len(pairs):
                raise GraphError("duplicate endpoint pairs in delta inserts")

        object.__setattr__(self, "update_eids", update_eids)
        object.__setattr__(self, "update_ps", update_ps)
        object.__setattr__(self, "delete_eids", delete_eids)
        object.__setattr__(self, "insert_endpoints", pairs)
        object.__setattr__(self, "insert_ps", insert_ps)
        for arr in (update_eids, update_ps, delete_eids, pairs, insert_ps):
            arr.setflags(write=False)

    # -- views -----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not (
            len(self.update_eids) or len(self.delete_eids) or len(self.insert_ps)
        )

    @property
    def is_structural(self) -> bool:
        """Whether the batch changes the edge *set* (ids renumber)."""
        return bool(len(self.delete_eids) or len(self.insert_ps))

    @property
    def size(self) -> int:
        """Total number of touched edges."""
        return len(self.update_eids) + len(self.delete_eids) + len(self.insert_ps)

    # -- construction from label pairs -----------------------------------
    @classmethod
    def from_pairs(cls, graph, updates=(), inserts=(), deletes=()) -> "EdgeDeltaBatch":
        """Build a batch from ``(u, v, p)`` / ``(u, v)`` vertex-label tuples.

        Labels are resolved through ``graph.vertex_indexer()`` and pairs
        through the current edge enumeration, so this is the natural
        constructor for external callers (the server's ``/update``
        endpoint, replay scripts) that speak vertex labels rather than
        edge ids.  Updated/deleted pairs must exist; inserted pairs must
        not.
        """
        indexer = graph.vertex_indexer()
        endpoints = graph.edge_index_array()
        eid_of: dict[tuple[int, int], int] = {}
        for eid, (a, b) in enumerate(
            np.sort(endpoints, axis=1).tolist() if len(endpoints) else []
        ):
            eid_of[(a, b)] = eid

        def dense(label):
            # Exact label first; fall back to its string form so JSON
            # clients can address parsed edge lists (whose labels are
            # strings) with bare integers.
            try:
                return indexer[label]
            except (KeyError, TypeError):
                pass
            try:
                return indexer[str(label)]
            except (KeyError, TypeError):
                raise GraphError(f"vertex not in graph: {label!r}") from None

        def dense_pair(u, v):
            a, b = dense(u), dense(v)
            if a == b:
                raise GraphError(f"self-loops are not allowed: {u!r}")
            return (a, b) if a < b else (b, a)

        update_eids, update_ps = [], []
        for u, v, p in updates:
            pair = dense_pair(u, v)
            if pair not in eid_of:
                raise GraphError(f"edge not in graph: ({u!r}, {v!r})")
            update_eids.append(eid_of[pair])
            update_ps.append(float(p))
        delete_eids = []
        for item in deletes:
            u, v = item[0], item[1]
            pair = dense_pair(u, v)
            if pair not in eid_of:
                raise GraphError(f"edge not in graph: ({u!r}, {v!r})")
            delete_eids.append(eid_of[pair])
        insert_pairs, insert_ps = [], []
        for u, v, p in inserts:
            pair = dense_pair(u, v)
            if pair in eid_of:
                raise GraphError(f"insert of an existing edge: ({u!r}, {v!r})")
            insert_pairs.append(pair)
            insert_ps.append(float(p))
        return cls(
            update_eids=np.array(update_eids, dtype=np.int64),
            update_ps=np.array(update_ps, dtype=np.float64),
            delete_eids=np.array(delete_eids, dtype=np.int64),
            insert_endpoints=np.array(insert_pairs, dtype=np.int64).reshape(-1, 2),
            insert_ps=np.array(insert_ps, dtype=np.float64),
        )


@dataclass
class AppliedDelta:
    """Result of applying an :class:`EdgeDeltaBatch` to a graph.

    Bundles everything the incremental consumers need: the post-delta
    graph, the old-id → new-id map (``-1`` for deleted edges; strictly
    increasing on survivors), the new ids of inserted edges, the
    pre-delta probabilities of updated edges (repair distinguishes
    increases from decreases), and the dense endpoints of deleted edges
    (their vertices' discrepancies are dirty even though the edges are
    gone).
    """

    batch: EdgeDeltaBatch
    graph: object
    id_map: np.ndarray          # (old_m,) int64, -1 for deleted edges
    old_m: int
    new_m: int
    structural: bool
    old_update_ps: np.ndarray   # aligned with batch.update_eids
    insert_eids: np.ndarray     # new ids aligned with batch.insert_endpoints
    delete_endpoints: np.ndarray  # (d, 2) dense endpoints of deleted edges

    def update_eids_new(self) -> np.ndarray:
        """New ids of the updated edges (updates always survive)."""
        if not self.structural:
            return self.batch.update_eids
        return self.id_map[self.batch.update_eids]

    def dirty_new_eids(self) -> np.ndarray:
        """New ids of every surviving touched edge (updates + inserts)."""
        return np.concatenate([self.update_eids_new(), self.insert_eids])

    def dirty_vertices(self) -> np.ndarray:
        """Dense vertices incident to any touched edge (deletes included)."""
        parts = [self.delete_endpoints.reshape(-1)]
        dirty = self.dirty_new_eids()
        if len(dirty):
            parts.append(
                np.asarray(self.graph.edge_index_array())[dirty].reshape(-1)
            )
        return np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)


def _check_eid_range(batch: EdgeDeltaBatch, m: int) -> None:
    for eids, what in ((batch.update_eids, "update"), (batch.delete_eids, "delete")):
        if len(eids) and eids[-1] >= m:
            raise GraphError(
                f"{what} edge id {int(eids[-1])} out of range for {m} edges"
            )


def _check_insert_range(batch: EdgeDeltaBatch, n: int) -> None:
    pairs = batch.insert_endpoints
    if len(pairs) and pairs.max() >= n:
        raise GraphError(
            "insert endpoint outside the vertex range: probability drift "
            "rewires existing vertices only (growing |V| is a rebuild)"
        )


def _pair_keys(endpoints: np.ndarray, n: int) -> np.ndarray:
    """Canonical ``min * n + max`` key per endpoint row."""
    lo = np.minimum(endpoints[:, 0], endpoints[:, 1])
    hi = np.maximum(endpoints[:, 0], endpoints[:, 1])
    return lo * np.int64(n) + hi


def apply_delta(graph, batch: EdgeDeltaBatch, in_place: bool = True) -> AppliedDelta:
    """Apply ``batch`` to ``graph`` and return the :class:`AppliedDelta`.

    ``UncertainGraph`` targets mutate in place by default (``in_place=
    False`` works on a copy — what the server uses so registered graphs
    shared with running jobs stay frozen); :class:`EdgeArrayGraph`
    targets always produce a new instance (their arrays are read-only /
    memmap-backed), survivors first in row order, inserted edges
    appended.
    """
    if isinstance(graph, UncertainGraph):
        return _apply_to_uncertain(graph, batch, in_place)
    return _apply_to_edge_arrays(graph, batch)


def _apply_to_uncertain(
    graph: UncertainGraph, batch: EdgeDeltaBatch, in_place: bool
) -> AppliedDelta:
    m = graph.number_of_edges()
    n = graph.number_of_vertices()
    _check_eid_range(batch, m)
    _check_insert_range(batch, n)
    old_ps = np.array(graph.probability_array(), dtype=np.float64)
    old_index = graph.edge_index_array()
    old_update_ps = old_ps[batch.update_eids]
    delete_endpoints = old_index[batch.delete_eids].copy()
    if not in_place:
        graph = graph.copy()
    edge_list = list(graph.edge_list())
    vertex_of = list(graph.vertices())

    for eid, p in zip(batch.update_eids.tolist(), batch.update_ps.tolist()):
        u, v = edge_list[eid]
        graph.set_probability(u, v, p)
    if not batch.is_structural:
        return AppliedDelta(
            batch=batch, graph=graph, id_map=np.arange(m, dtype=np.int64),
            old_m=m, new_m=m, structural=False, old_update_ps=old_update_ps,
            insert_eids=np.empty(0, dtype=np.int64),
            delete_endpoints=delete_endpoints,
        )

    for eid in batch.delete_eids.tolist():
        u, v = edge_list[eid]
        graph.remove_edge(u, v)
    for (a, b), p in zip(batch.insert_endpoints.tolist(), batch.insert_ps.tolist()):
        u, v = vertex_of[a], vertex_of[b]
        if graph.has_edge(u, v):
            raise GraphError(f"insert of an existing edge: ({u!r}, {v!r})")
        graph.add_edge(u, v, p)

    # Derive the id map from the post-mutation enumeration itself: the
    # dict adjacency interleaves inserted edges (an edge enumerates at
    # its first endpoint's adjacency position), so positions are matched
    # by canonical endpoint pair rather than assumed.
    new_index = graph.edge_index_array()
    new_keys = _pair_keys(new_index, n)
    order = np.argsort(new_keys)
    alive = np.ones(m, dtype=bool)
    alive[batch.delete_eids] = False
    id_map = np.full(m, -1, dtype=np.int64)
    if alive.any():
        old_keys = _pair_keys(old_index[alive], n)
        id_map[alive] = order[np.searchsorted(new_keys[order], old_keys)]
    insert_keys = _pair_keys(batch.insert_endpoints, n)
    insert_eids = (
        order[np.searchsorted(new_keys[order], insert_keys)]
        if len(insert_keys) else np.empty(0, dtype=np.int64)
    )
    return AppliedDelta(
        batch=batch, graph=graph, id_map=id_map, old_m=m,
        new_m=len(new_keys), structural=True, old_update_ps=old_update_ps,
        insert_eids=insert_eids, delete_endpoints=delete_endpoints,
    )


def _apply_to_edge_arrays(graph, batch: EdgeDeltaBatch) -> AppliedDelta:
    from repro.core.array_graph import EdgeArrayGraph

    if not isinstance(graph, EdgeArrayGraph):
        raise GraphError(
            f"apply_delta expects an UncertainGraph or EdgeArrayGraph, "
            f"got {type(graph).__name__}"
        )
    m, n = graph.m, graph.n
    _check_eid_range(batch, m)
    _check_insert_range(batch, n)
    src = np.asarray(graph.src)
    dst = np.asarray(graph.dst)
    prob = np.array(graph.probability_array(), dtype=np.float64)
    old_update_ps = prob[batch.update_eids].copy()
    prob[batch.update_eids] = batch.update_ps
    delete_endpoints = np.column_stack(
        (src[batch.delete_eids], dst[batch.delete_eids])
    )
    if not batch.is_structural:
        out = EdgeArrayGraph(n, src, dst, prob, name=graph.name, validate=False)
        return AppliedDelta(
            batch=batch, graph=out, id_map=np.arange(m, dtype=np.int64),
            old_m=m, new_m=m, structural=False, old_update_ps=old_update_ps,
            insert_eids=np.empty(0, dtype=np.int64),
            delete_endpoints=delete_endpoints,
        )

    keep = np.ones(m, dtype=bool)
    keep[batch.delete_eids] = False
    if len(batch.insert_endpoints):
        live_keys = (np.minimum(src, dst) * np.int64(n) + np.maximum(src, dst))[keep]
        insert_keys = _pair_keys(batch.insert_endpoints, n)
        if np.any(np.isin(insert_keys, live_keys)):
            raise GraphError("insert of an existing edge")
    new_src = np.concatenate([src[keep], batch.insert_endpoints[:, 0]])
    new_dst = np.concatenate([dst[keep], batch.insert_endpoints[:, 1]])
    new_prob = np.concatenate([prob[keep], batch.insert_ps])
    out = EdgeArrayGraph(n, new_src, new_dst, new_prob, name=graph.name,
                         validate=False)
    id_map = np.full(m, -1, dtype=np.int64)
    kept = int(keep.sum())
    id_map[keep] = np.arange(kept, dtype=np.int64)
    insert_eids = kept + np.arange(len(batch.insert_ps), dtype=np.int64)
    return AppliedDelta(
        batch=batch, graph=out, id_map=id_map, old_m=m, new_m=len(new_prob),
        structural=True, old_update_ps=old_update_ps, insert_eids=insert_eids,
        delete_endpoints=delete_endpoints,
    )
