"""Backbone graph initialisation (paper Algorithm 1 and section 3.3).

Every proposed sparsifier starts from an unweighted *backbone* with
``alpha |E|`` edges.  Two constructions are offered:

- **BGI** (Algorithm 1): peel maximum spanning forests off ``G`` (edge
  probabilities act as weights) until a spanning budget ``alpha'`` is
  filled — this guarantees connectivity — then top up to ``alpha |E|``
  by Monte-Carlo sampling the remaining edges with their probabilities.
  The paper sets ``alpha'`` to the minimum of ``0.5 alpha`` and the mass
  of the first six forests; both knobs are exposed.
- **random backbone**: plain Monte-Carlo sampling of edges until the
  budget is reached (the ``-t``-less variants of section 6.1, also the
  Local Degree-style heuristic of [24] is provided for ablations).

All functions work on *edge ids* — positions in
``graph.edge_list()`` — so they compose directly with
:class:`repro.core.discrepancy.SparsificationState`, and all builders
return **read-only int64 arrays** of edge ids (use
:func:`backbone_as_list` if a caller really needs a list).

Plan-then-instantiate
---------------------
The forest peels of Algorithm 1 do not depend on ``alpha`` — only on
the probability ordering of the edges.  :class:`BackbonePlan` exploits
this: built once per graph, it runs a single stable argsort plus a
vectorised multi-peel Kruskal (on
:class:`repro.utils.unionfind.ArrayUnionFind`) that labels every edge
with its *forest-peel rank*, after which the backbone for **any**
``alpha`` is a prefix slice of the peel order plus the seeded
Monte-Carlo top-up.  Backbones produced through a plan are bit-identical
to the per-call reference builder (:func:`bgi_backbone_legacy`) for the
same ``(alpha, seed)``, and backbones for nested alphas share their
forest prefix (``alpha_1 <= alpha_2`` implies the ``alpha_1`` forest
prefix is a prefix of the ``alpha_2`` one).
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import SparsificationError
from repro.utils.rng import ensure_rng
from repro.utils.unionfind import ArrayUnionFind, UnionFind


def target_edge_count(m: int, alpha: float) -> int:
    """Edge budget ``|E'| = alpha |E|`` (rounded, at least 1)."""
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"sparsification ratio alpha must be in (0, 1), got {alpha}")
    if m <= 0:
        raise SparsificationError("cannot sparsify a graph with no edges")
    return max(1, int(round(alpha * m)))


def _as_edge_ids(ids) -> np.ndarray:
    """Normalise a builder result to a read-only int64 edge-id array."""
    arr = np.array(ids, dtype=np.int64, copy=True)
    arr.setflags(write=False)
    return arr


def backbone_as_list(ids) -> list[int]:
    """Deprecated shim: convert a backbone edge-id array to ``list[int]``.

    Backbone builders historically returned ``list[int]``; they now
    return read-only int64 arrays (which iterate, index and ``len()``
    the same way).  Callers that genuinely need a list should migrate;
    this shim exists so they keep working one release longer.
    """
    warnings.warn(
        "backbone builders return read-only int64 arrays now; "
        "backbone_as_list is a transitional shim and will be removed",
        DeprecationWarning,
        stacklevel=2,
    )
    return [int(eid) for eid in ids]


def maximum_spanning_forest(
    n: int,
    candidate_ids: np.ndarray,
    edge_vertices: np.ndarray,
    probabilities: np.ndarray,
) -> np.ndarray:
    """Kruskal maximum spanning forest over a subset of edges.

    Parameters
    ----------
    n:
        Number of vertices (dense ids ``0..n-1``).
    candidate_ids:
        Edge ids eligible for the forest.
    edge_vertices:
        ``(m, 2)`` array of endpoints for *all* edges (indexed by id).
    probabilities:
        Weight of every edge (indexed by id); higher is kept first.

    Returns
    -------
    numpy.ndarray
        Read-only int64 ids of the forest edges in acceptance order
        (maximal: one tree per connected component of the candidate
        subgraph).
    """
    order = np.argsort(-probabilities[candidate_ids], kind="stable")
    uf = UnionFind(n)
    forest: list[int] = []
    for idx in order:
        eid = int(candidate_ids[idx])
        u, v = edge_vertices[eid]
        if uf.union(int(u), int(v)):
            forest.append(eid)
    return _as_edge_ids(forest)


def _mc_top_up(
    chosen: list[int],
    remaining: set[int],
    probabilities: np.ndarray,
    target: int,
    rng: np.random.Generator,
    max_passes: int = 10_000,
) -> None:
    """Fill ``chosen`` up to ``target`` by sampling ``remaining`` edges.

    Repeated passes over a random permutation, keeping each edge with
    its probability (Algorithm 1, lines 7-11).  Because every
    probability is strictly positive the loop terminates with
    probability 1; a deterministic fallback guards against pathological
    RNG streaks.
    """
    passes = 0
    while len(chosen) < target and remaining:
        passes += 1
        if passes > max_passes:
            # Deterministic fallback: take the highest-probability leftovers.
            leftovers = sorted(remaining, key=lambda e: -probabilities[e])
            for eid in leftovers[: target - len(chosen)]:
                chosen.append(eid)
                remaining.discard(eid)
            return
        order = rng.permutation(np.fromiter(remaining, dtype=np.int64, count=len(remaining)))
        draws = rng.random(len(order))
        for eid, draw in zip(order, draws):
            if draw < probabilities[eid]:
                chosen.append(int(eid))
                remaining.discard(int(eid))
                if len(chosen) >= target:
                    return


def _mc_top_up_array(
    parts: list[np.ndarray],
    count: int,
    remaining: np.ndarray,
    probabilities: np.ndarray,
    target: int,
    rng: np.random.Generator,
    max_passes: int = 10_000,
) -> int:
    """Array twin of :func:`_mc_top_up`; appends pick batches to ``parts``.

    Draw-for-draw identical to the scalar reference: each pass consumes
    one ``rng.permutation`` over the ascending remaining ids plus one
    ``rng.random`` block, and keeps accepted edges in permutation order
    (``remaining`` must be sorted ascending — the iteration order of the
    reference's ``set`` of dense edge ids).  Returns the new count.
    """
    passes = 0
    while count < target and len(remaining):
        passes += 1
        if passes > max_passes:
            # Deterministic fallback, ties broken by ascending edge id
            # exactly like the reference's stable sort.
            order = np.argsort(-probabilities[remaining], kind="stable")
            take = remaining[order[: target - count]]
            parts.append(take)
            return count + len(take)
        perm = rng.permutation(remaining)
        draws = rng.random(len(perm))
        hits = np.flatnonzero(draws < probabilities[perm])[: target - count]
        take = perm[hits]
        parts.append(take)
        count += len(take)
        remaining = np.setdiff1d(remaining, take, assume_unique=True)
    return count


def _hash_uniforms(seed: int, pair_keys: np.ndarray) -> np.ndarray:
    """Counter-based per-edge uniforms in ``(0, 1]`` (splitmix64 finaliser).

    A pure function of ``(seed, canonical endpoint pair)``: stable
    across edge-id renumbering and unrelated edge churn, which is what
    makes the ``"stable"`` top-up's selection drift-local.
    """
    mix = (int(seed) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = pair_keys.astype(np.uint64) + np.uint64(mix)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return ((x >> np.uint64(11)).astype(np.float64) + 1.0) * 2.0 ** -53


def _stable_top_up(
    parts: list[np.ndarray],
    count: int,
    remaining: np.ndarray,
    edge_vertices: np.ndarray,
    probabilities: np.ndarray,
    target: int,
    seed: int,
    n: int,
) -> int:
    """Churn-stable weighted top-up (Efraimidis-Spirakis order statistics).

    Every candidate edge gets the key ``log(u_e) / p_e`` with ``u_e`` a
    seeded hash uniform of its canonical endpoints, and the ``target -
    count`` largest keys win — a weighted sample without replacement
    drawn by order statistics instead of sequential rejection.  Like the
    MC pass it is deterministic under a fixed seed (the repair
    contract), but an edge's key moves only when its *own* probability
    does, so a small delta shifts the selection by O(|delta|) edges
    where the permutation-based pass re-randomises it wholesale.  This
    is what keeps the incremental maintainer's dirty region small along
    a drift stream.
    """
    need = target - count
    if need <= 0 or not len(remaining):
        return count
    ends = edge_vertices[remaining]
    lo = np.minimum(ends[:, 0], ends[:, 1]).astype(np.uint64)
    hi = np.maximum(ends[:, 0], ends[:, 1]).astype(np.uint64)
    u = _hash_uniforms(seed, lo * np.uint64(n) + hi)
    keys = np.log(u) / probabilities[remaining]
    # Largest key wins; ties (hash collisions) break by ascending id.
    order = np.lexsort((remaining, -keys))
    take = np.sort(remaining[order[:need]])
    parts.append(take)
    return count + len(take)


class BackbonePlan:
    """Reusable backbone factory: one Kruskal pass serves every alpha.

    The plan lazily computes the graph's *nested maximum-spanning-forest
    decomposition*: peel 1 is the maximum spanning forest, peel ``k`` the
    maximum spanning forest of the edges left by peels ``1 .. k-1``.  All
    peels share one stable argsort of the probabilities and run as
    vectorised Kruskal sweeps on :class:`~repro.utils.unionfind.ArrayUnionFind`
    (``find_many`` root filtering + order-respecting ``union_batch``), so
    each edge gets a *forest-peel rank* without any per-alpha re-sorting.

    Instantiating a backbone (:meth:`backbone`) is then a prefix slice of
    the peel order — truncated by Algorithm 1's spanning budget — plus
    the seeded Monte-Carlo top-up.  Guarantees:

    - **determinism** — ``plan.backbone(alpha, rng=seed)`` is
      bit-identical to the per-call reference
      (:func:`bgi_backbone_legacy` / the scalar ``random`` and
      ``local_degree`` builders) for every ``(alpha, seed)``; results
      for int seeds are memoised, so repeated requests are free;
    - **nesting** — for ``alpha_1 <= alpha_2`` (same
      ``spanning_fraction`` / ``max_forests``) the forest prefix of the
      ``alpha_1`` backbone is a prefix of the ``alpha_2`` one;
    - **connectivity** — every peel is a maximal spanning forest, so any
      backbone containing peel 1 spans each connected component.

    Construction is cheap (array grabs only); peels, the local-degree
    ranking and per-seed backbones are computed on first use.  All lazy
    state is guarded by one re-entrant lock, so a single plan can be
    shared by concurrent threads (e.g. the job server's workers) — calls
    that mutate or read lazy structures serialise, and every caller sees
    fully-built peels.
    """

    def __init__(self, graph: UncertainGraph) -> None:
        self.graph = graph
        self.n = graph.number_of_vertices()
        self.edge_vertices = graph.edge_index_array()
        self.probabilities = np.array(graph.probability_array(), dtype=np.float64)
        self.m = len(self.probabilities)
        self._lock = threading.RLock()
        self._forests: list[np.ndarray] = []
        self._peel_rank = np.zeros(self.m, dtype=np.int64)
        self._unpeeled: "np.ndarray | None" = None  # sorted-order ids left
        self._local_degree_order: "np.ndarray | None" = None
        self._cache: dict = {}

    def cached(self, key, factory):
        """Memoise arbitrary per-graph derived data on the plan.

        Generic companion of the seeded backbone memo: algorithms whose
        preprocessing depends only on the graph (e.g. the NI peel
        structure, keyed ``("ni_peel", max_weight)``) park it here so
        every caller sharing the plan shares the work.  ``factory`` runs
        at most once per ``key`` (concurrent callers serialise on the
        plan lock; ``factory`` may re-enter other plan methods).
        """
        with self._lock:
            if key not in self._cache:
                self._cache[key] = factory()
            return self._cache[key]

    # -- nested forest peels ----------------------------------------------
    @property
    def peel_rank(self) -> np.ndarray:
        """Forest number of each edge (1-based); 0 = not yet peeled.

        Ranks appear as peels are computed (:meth:`ensure_forests`); the
        full decomposition assigns every edge a positive rank.
        """
        with self._lock:
            view = self._peel_rank.view()
        view.setflags(write=False)
        return view

    @property
    def forests_computed(self) -> int:
        """Number of forest peels computed so far."""
        with self._lock:
            return len(self._forests)

    def forest(self, index: int) -> np.ndarray:
        """Edge ids of peel ``index`` (0-based), in acceptance order."""
        with self._lock:
            self.ensure_forests(index + 1)
            return self._forests[index]

    def ensure_forests(self, count: int) -> None:
        """Compute forest peels until ``count`` exist (or edges run out)."""
        with self._lock:
            if self._unpeeled is None:
                order = np.argsort(-self.probabilities, kind="stable")
                self._unpeeled = order
            while len(self._forests) < count and len(self._unpeeled):
                cand = self._unpeeled
                uf = ArrayUnionFind(self.n)
                accepted = uf.union_batch(
                    self.edge_vertices[cand, 0], self.edge_vertices[cand, 1]
                )
                forest = cand[accepted]
                forest.setflags(write=False)
                self._unpeeled = cand[~accepted]
                self._forests.append(forest)
                self._peel_rank[forest] = len(self._forests)

    # -- incremental maintenance ------------------------------------------
    def clone(self) -> "BackbonePlan":
        """Independent copy sharing the (immutable) computed peel arrays.

        The clone has its own lock, forest list, rank labels, memo and
        unpeeled cursor, so repairing or extending it never perturbs the
        original — the server uses this to derive the plan of a drifted
        dataset from the registered one without invalidating in-flight
        readers of the old plan.
        """
        with self._lock:
            twin = BackbonePlan.__new__(BackbonePlan)
            twin.graph = self.graph
            twin.n = self.n
            twin.edge_vertices = self.edge_vertices
            twin.probabilities = self.probabilities
            twin.m = self.m
            twin._lock = threading.RLock()
            twin._forests = list(self._forests)
            twin._peel_rank = self._peel_rank.copy()
            twin._unpeeled = self._unpeeled
            twin._local_degree_order = self._local_degree_order
            twin._cache = dict(self._cache)
            return twin

    def repair(self, applied) -> "BackbonePlan":
        """Incrementally rebind the plan to a delta-mutated graph.

        ``applied`` is the :class:`repro.core.delta.AppliedDelta` returned
        by :func:`repro.core.delta.apply_delta` for this plan's graph.
        The repaired plan is **equivalent to a fresh**
        ``BackbonePlan(applied.graph)`` — same forests, peel ranks,
        unpeeled order and (seeded) backbones, bit-identical — but keeps
        every forest whose rank lies strictly below the *dirty rank*
        verbatim instead of re-peeling it:

        - the dirty rank is the lowest peel rank that the delta can
          affect: the smallest rank among updated/deleted member edges,
          lowered further if a probability increase or an inserted edge
          would be accepted into an earlier forest (decided exactly by
          replaying each candidate against the prefix of that forest's
          members with stronger ``(p, id)`` keys on a fresh
          :class:`~repro.utils.unionfind.ArrayUnionFind`);
        - forests below the dirty rank are kept (edge ids remapped
          through ``applied.id_map`` after structural deltas), ranks
          at or above it return to the unpeeled pool and are re-peeled
          lazily on next use;
        - the seeded-backbone memo is cleared (MC top-up draws depend on
          the unpeeled pool), so repeated ``backbone(alpha, seed)``
          requests recompute once and re-memoise.

        Returns ``self`` (mutated in place, under the plan lock).
        """
        with self._lock:
            self._repair_locked(applied)
        return self

    def _repair_locked(self, applied) -> None:
        graph = applied.graph
        new_probs = np.array(graph.probability_array(), dtype=np.float64)
        new_ev = graph.edge_index_array()
        new_m = len(new_probs)

        nothing_computed = self._unpeeled is None and not self._forests
        kept: list[np.ndarray] = []
        if not nothing_computed:
            dirty = self._dirty_rank(applied)
            kept = self._forests[: dirty - 1]
            if applied.structural:
                id_map = applied.id_map
                remapped = []
                for f in kept:
                    # Kept forests contain no deleted edge (a deleted
                    # member caps the dirty rank at its own rank), so
                    # the remap is total; id_map is monotone on
                    # survivors, which preserves acceptance order.
                    nf = id_map[f]
                    nf.setflags(write=False)
                    remapped.append(nf)
                kept = remapped

        self.graph = graph
        self.edge_vertices = new_ev
        self.probabilities = new_probs
        self.m = new_m
        self._forests = kept
        self._peel_rank = np.zeros(new_m, dtype=np.int64)
        for rank, f in enumerate(kept, start=1):
            self._peel_rank[f] = rank
        if nothing_computed:
            self._unpeeled = None
        else:
            alive = np.ones(new_m, dtype=bool)
            for f in kept:
                alive[f] = False
            cand = np.flatnonzero(alive)
            # Sorted by (-p, id): identical to the fresh plan's unpeeled
            # cursor after peeling the kept ranks (stable subsequence of
            # the global probability sort).
            self._unpeeled = cand[np.argsort(-new_probs[cand], kind="stable")]
        self._cache = {}
        if applied.structural:
            self._local_degree_order = None

    def _dirty_rank(self, applied) -> int:
        """Lowest peel rank the delta can affect (``K+1`` = none).

        Rank ``r`` members that were updated or deleted dirty rank ``r``
        directly — even a probability change that keeps the forest *set*
        intact moves the member inside the acceptance order, and the
        repair contract is bit-identity of the stored arrays.  On top of
        that, every strictly-increased edge and every insert is tested
        for entry into each cleaner forest ``k``: it enters iff its
        endpoints are not connected by the members of forest ``k`` with
        stronger ``(p, id)`` key — a prefix of the acceptance-ordered
        forest array, replayed through one progressive ``union_batch``
        sweep per forest with the candidates visited in breakpoint
        order.
        """
        batch = applied.batch
        K = len(self._forests)
        infinity = K + 1
        dirty = infinity

        changed = np.flatnonzero(batch.update_ps != applied.old_update_ps)
        touched = np.concatenate(
            [batch.update_eids[changed], batch.delete_eids]
        )
        if len(touched):
            ranks = self._peel_rank[touched]
            ranks = ranks[ranks > 0]
            if len(ranks):
                dirty = min(dirty, int(ranks.min()))
        if dirty == 1:
            return 1

        # Entry candidates: probability increases (old rank 0 edges, and
        # ranked members probing forests cleaner than their capped rank)
        # plus inserted edges.  Decreases can never enter an earlier
        # forest: they were already rejected there at a higher key.
        id_map = applied.id_map
        inc = np.flatnonzero(batch.update_ps > applied.old_update_ps)
        entrant_ids = np.concatenate(
            [id_map[batch.update_eids[inc]], applied.insert_eids]
        )
        entrant_ps = np.concatenate([batch.update_ps[inc], batch.insert_ps])
        if not len(entrant_ids):
            return dirty
        new_ev = applied.graph.edge_index_array()
        ends_u = new_ev[entrant_ids, 0]
        ends_v = new_ev[entrant_ids, 1]
        for k in range(1, min(dirty, infinity)):
            forest = self._forests[k - 1]
            if not len(forest):
                continue
            # Forest members keep their old probabilities (any updated
            # member would have capped ``dirty`` at or below ``k``), and
            # the array is acceptance-ordered: descending probability,
            # ascending id within ties — in both id spaces, because
            # id_map is monotone on survivors.
            fp = self.probabilities[forest]
            fid = id_map[forest]
            bps = np.searchsorted(-fp, -entrant_ps, side="left")
            rights = np.searchsorted(-fp, -entrant_ps, side="right")
            for i in np.flatnonzero(rights > bps):
                lo, hi = int(bps[i]), int(rights[i])
                bps[i] = lo + int(
                    np.searchsorted(fid[lo:hi], entrant_ids[i])
                )
            order = np.argsort(bps, kind="stable")
            uf = ArrayUnionFind(self.n)
            fu = self.edge_vertices[forest, 0]
            fv = self.edge_vertices[forest, 1]
            pos = 0
            for i in order:
                bp = int(bps[i])
                if bp > pos:
                    uf.union_batch(fu[pos:bp], fv[pos:bp])
                    pos = bp
                if not uf.connected(int(ends_u[i]), int(ends_v[i])):
                    return k
        return dirty

    def forest_prefix(
        self,
        alpha: float,
        spanning_fraction: float = 0.5,
        max_forests: int = 6,
    ) -> np.ndarray:
        """Forest edges of the ``alpha`` backbone (before MC top-up).

        Algorithm 1's spanning phase as a prefix of the peel order: the
        whole first forest (connectivity), then further peels while the
        spanning budget ``spanning_fraction * alpha * |E|`` has room, up
        to ``max_forests`` peels, truncated at the edge budget.  Nested
        across alphas by construction.
        """
        with self._lock:
            return self._forest_prefix_locked(alpha, spanning_fraction, max_forests)

    def _forest_prefix_locked(
        self, alpha: float, spanning_fraction: float, max_forests: int
    ) -> np.ndarray:
        target = target_edge_count(self.m, alpha)
        self.ensure_forests(1)
        first = self._forests[0] if self._forests else np.empty(0, dtype=np.int64)
        if len(first) > target:
            raise SparsificationError(
                f"alpha={alpha} keeps {target} edges but a spanning forest needs "
                f"{len(first)}; connectivity cannot be preserved "
                f"(require alpha >= (|V|-1)/|E|)"
            )
        parts = [first]
        count = len(first)
        spanning_budget = int(spanning_fraction * alpha * self.m)
        forests_built = 1
        while (
            count < spanning_budget
            and forests_built < max_forests
            and count < self.m
            and count < target
        ):
            self.ensure_forests(forests_built + 1)
            if len(self._forests) <= forests_built:
                break
            forest = self._forests[forests_built]
            if not len(forest):
                break
            if count + len(forest) > target:
                forest = forest[: target - count]
            parts.append(forest)
            count += len(forest)
            forests_built += 1
        prefix = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        prefix.setflags(write=False)
        return prefix

    # -- instantiation ----------------------------------------------------
    def backbone(
        self,
        alpha: float,
        method: str = "bgi",
        rng: "int | np.random.Generator | None" = None,
        **kwargs,
    ) -> np.ndarray:
        """Backbone edge ids for ``alpha`` under ``method``.

        ``method`` / ``rng`` / ``kwargs`` follow :func:`build_backbone`.
        Results for int seeds are memoised (backbones are deterministic
        given ``(method, alpha, seed)``), so ladder drivers that re-seed
        per alpha get each cell's backbone exactly once.
        """
        if method == "bgi":
            # Normalise the spanning knobs so explicit defaults and
            # omitted kwargs share one cache key.
            kwargs = {
                "spanning_fraction": 0.5, "max_forests": 6, "top_up": "mc",
                **kwargs,
            }
        key = None
        if rng is None or isinstance(rng, (int, np.integer)):
            if method == "local_degree" or rng is not None:
                key = (
                    method,
                    float(alpha),
                    None if rng is None else int(rng),
                    tuple(sorted(kwargs.items())),
                )
        with self._lock:
            if key is not None and key in self._cache:
                return self._cache[key]
            ids = self._instantiate(alpha, method, rng, kwargs)
            if key is not None:
                self._cache[key] = ids
            return ids

    def _instantiate(self, alpha, method, rng, kwargs) -> np.ndarray:
        if method == "bgi":
            opts = dict(kwargs)
            top_up = opts.pop("top_up", "mc")
            prefix = self.forest_prefix(alpha, **opts)
            target = target_edge_count(self.m, alpha)
            remaining = np.setdiff1d(
                np.arange(self.m, dtype=np.int64), prefix, assume_unique=True
            )
            parts = [prefix]
            if top_up == "stable":
                if not isinstance(rng, (int, np.integer)):
                    raise SparsificationError(
                        "the stable top-up needs an integer seed (its "
                        "hash keys are a pure function of the seed)"
                    )
                _stable_top_up(
                    parts, len(prefix), remaining, self.edge_vertices,
                    self.probabilities, target, int(rng), self.n,
                )
            elif top_up == "mc":
                _mc_top_up_array(
                    parts, len(prefix), remaining, self.probabilities,
                    target, ensure_rng(rng),
                )
            else:
                raise SparsificationError(
                    f"unknown top_up {top_up!r} (use 'mc' or 'stable')"
                )
            return _as_edge_ids(np.concatenate(parts))
        if method == "random":
            if kwargs:
                raise TypeError(
                    f"random backbone takes no extra options, got {sorted(kwargs)}"
                )
            target = target_edge_count(self.m, alpha)
            parts: list[np.ndarray] = []
            _mc_top_up_array(
                parts, 0, np.arange(self.m, dtype=np.int64),
                self.probabilities, target, ensure_rng(rng),
            )
            joined = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            return _as_edge_ids(joined)
        if method == "local_degree":
            if kwargs:
                raise TypeError(
                    f"local_degree backbone takes no extra options, "
                    f"got {sorted(kwargs)}"
                )
            if self._local_degree_order is None:
                self._local_degree_order = _local_degree_order(self.graph)
            target = target_edge_count(self.m, alpha)
            return _as_edge_ids(self._local_degree_order[:target])
        # Methods without a plan formulation (t_bundle) fall back to the
        # per-call builder.
        return build_backbone(self.graph, alpha, method=method, rng=rng, **kwargs)


def bgi_backbone(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    spanning_fraction: float = 0.5,
    max_forests: int = 6,
    plan: "BackbonePlan | None" = None,
) -> np.ndarray:
    """Backbone Graph Initialisation (Algorithm 1).

    Returns the ids of ``alpha |E|`` edges as a read-only int64 array:
    first the union of maximum spanning forests (connectivity backbone),
    then Monte-Carlo top-up.  Runs through a :class:`BackbonePlan`
    (pass ``plan`` to reuse one across calls); results are bit-identical
    to the per-call reference :func:`bgi_backbone_legacy`.

    Parameters
    ----------
    graph:
        The uncertain graph to sparsify.
    alpha:
        Sparsification ratio in ``(0, 1)``.
    rng:
        Seed / generator for the Monte-Carlo top-up.
    spanning_fraction:
        Fraction of the budget that may be filled by spanning forests
        (the paper's ``0.5 alpha`` rule).
    max_forests:
        Stop peeling forests after this many (the paper's "first six").
    plan:
        Optional precomputed plan for ``graph``; built on the fly when
        omitted.

    Raises
    ------
    SparsificationError
        If ``alpha |E|`` is smaller than a single spanning tree, i.e.
        ``alpha < (|V| - 1) / |E|`` for a connected graph (the paper's
        footnote 7 assumption).
    """
    if plan is None:
        plan = BackbonePlan(graph)
    elif plan.graph is not graph:
        raise ValueError("backbone plan was built for a different graph")
    return plan.backbone(
        alpha, method="bgi", rng=rng,
        spanning_fraction=spanning_fraction, max_forests=max_forests,
    )


def bgi_backbone_legacy(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    spanning_fraction: float = 0.5,
    max_forests: int = 6,
) -> np.ndarray:
    """Per-call reference implementation of Algorithm 1.

    The scalar list-and-set construction :func:`bgi_backbone` used before
    the plan refactor; kept as the seeded-equivalence oracle the plan
    path is regression-pinned against.
    """
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    n = graph.number_of_vertices()
    target = target_edge_count(m, alpha)
    edge_vertices = graph.edge_index_array()
    probabilities = np.array(graph.probability_array())

    remaining = set(range(m))
    chosen: list[int] = []

    # First forest: a maximum spanning tree (of each component).
    first = maximum_spanning_forest(
        n, np.fromiter(remaining, dtype=np.int64, count=len(remaining)),
        edge_vertices, probabilities,
    )
    if len(first) > target:
        raise SparsificationError(
            f"alpha={alpha} keeps {target} edges but a spanning forest needs "
            f"{len(first)}; connectivity cannot be preserved "
            f"(require alpha >= (|V|-1)/|E|)"
        )
    chosen.extend(int(e) for e in first)
    remaining.difference_update(chosen)

    spanning_budget = int(spanning_fraction * alpha * m)
    forests_built = 1
    while (
        len(chosen) < spanning_budget
        and forests_built < max_forests
        and remaining
        and len(chosen) < target
    ):
        forest = [
            int(e) for e in maximum_spanning_forest(
                n, np.fromiter(remaining, dtype=np.int64, count=len(remaining)),
                edge_vertices, probabilities,
            )
        ]
        if not forest:
            break
        if len(chosen) + len(forest) > target:
            forest = forest[: target - len(chosen)]
        chosen.extend(forest)
        remaining.difference_update(forest)
        forests_built += 1

    _mc_top_up(chosen, remaining, probabilities, target, rng)
    return _as_edge_ids(chosen)


def random_backbone(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    plan: "BackbonePlan | None" = None,
) -> np.ndarray:
    """Random backbone: Monte-Carlo edge sampling until ``alpha |E|`` edges.

    This is the backbone of the non-``t`` variants in section 6.1 (and
    the deterministic-graph heuristic of [24]): connectivity is *not*
    guaranteed.  Returns a read-only int64 edge-id array.
    """
    if plan is not None:
        if plan.graph is not graph:
            raise ValueError("backbone plan was built for a different graph")
        return plan.backbone(alpha, method="random", rng=rng)
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    target = target_edge_count(m, alpha)
    probabilities = np.array(graph.probability_array())
    parts: list[np.ndarray] = []
    _mc_top_up_array(
        parts, 0, np.arange(m, dtype=np.int64), probabilities, target, rng
    )
    joined = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    return _as_edge_ids(joined)


def _local_degree_order(graph: UncertainGraph) -> np.ndarray:
    """Full Local-Degree nomination ranking of all edges (alpha-free)."""
    m = graph.number_of_edges()
    indexer = graph.vertex_indexer()
    edge_list = graph.edge_list()
    edge_id_of: dict[tuple[int, int], int] = {}
    for eid, (u, v) in enumerate(edge_list):
        a, b = indexer[u], indexer[v]
        edge_id_of[(min(a, b), max(a, b))] = eid
    degrees = {v: graph.degree(v) for v in graph.vertices()}

    # rank[eid] = best (lowest) nomination position across both endpoints.
    # Ties between equal-degree neighbours break on dense vertex id, so
    # the ranking is a pure function of the graph's content — identical
    # whether computed on the dict adjacency or on an edge-array view in
    # a sharded worker (adjacency *insertion* order never leaks in).
    rank: dict[int, float] = {}
    for u in graph.vertices():
        nbrs = sorted(graph.neighbors(u),
                      key=lambda w: (-degrees[w], indexer[w]))
        for position, w in enumerate(nbrs):
            a, b = indexer[u], indexer[w]
            eid = edge_id_of[(min(a, b), max(a, b))]
            score = position / max(degrees[u], 1)
            if eid not in rank or score < rank[eid]:
                rank[eid] = score

    return np.array(
        sorted(range(m), key=lambda eid: (rank.get(eid, 1.0), eid)),
        dtype=np.int64,
    )


def local_degree_backbone(
    graph: UncertainGraph,
    alpha: float,
    plan: "BackbonePlan | None" = None,
) -> np.ndarray:
    """Local Degree heuristic backbone (Lindner et al. [24], for ablations).

    Each vertex nominates its incident edges towards the highest-degree
    neighbours; edges are accepted in nomination-rank order until the
    budget fills.  Deterministic; the nomination ranking is alpha-free,
    so a :class:`BackbonePlan` computes it once and slices per alpha.
    """
    if plan is not None:
        if plan.graph is not graph:
            raise ValueError("backbone plan was built for a different graph")
        return plan.backbone(alpha, method="local_degree")
    m = graph.number_of_edges()
    target = target_edge_count(m, alpha)
    return _as_edge_ids(_local_degree_order(graph)[:target])


def build_backbone(
    graph: UncertainGraph,
    alpha: float,
    method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    plan: "BackbonePlan | None" = None,
    **kwargs,
) -> np.ndarray:
    """Dispatch on backbone construction method.

    ``method`` is one of ``"bgi"`` (Algorithm 1, the ``-t`` variants),
    ``"random"`` (Monte-Carlo sampling), ``"local_degree"`` ([24]) or
    ``"t_bundle"`` (edge-disjoint spanner layers, footnote 8 / [21]).
    Returns a read-only int64 edge-id array.  Pass ``plan`` (a
    :class:`BackbonePlan` for ``graph``) to share the Kruskal peel work
    — and, for int seeds, the backbones themselves — across calls.
    """
    if plan is not None:
        if plan.graph is not graph:
            raise ValueError("backbone plan was built for a different graph")
        return plan.backbone(alpha, method=method, rng=rng, **kwargs)
    if method == "bgi":
        return bgi_backbone(graph, alpha, rng=rng, **kwargs)
    if method == "random":
        return random_backbone(graph, alpha, rng=rng, **kwargs)
    if method == "local_degree":
        return local_degree_backbone(graph, alpha, **kwargs)
    if method == "t_bundle":
        from repro.core.tbundle import t_bundle_backbone

        return _as_edge_ids(t_bundle_backbone(graph, alpha, rng=rng, **kwargs))
    raise ValueError(f"unknown backbone method: {method!r}")
