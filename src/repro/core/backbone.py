"""Backbone graph initialisation (paper Algorithm 1 and section 3.3).

Every proposed sparsifier starts from an unweighted *backbone* with
``alpha |E|`` edges.  Two constructions are offered:

- **BGI** (Algorithm 1): peel maximum spanning forests off ``G`` (edge
  probabilities act as weights) until a spanning budget ``alpha'`` is
  filled — this guarantees connectivity — then top up to ``alpha |E|``
  by Monte-Carlo sampling the remaining edges with their probabilities.
  The paper sets ``alpha'`` to the minimum of ``0.5 alpha`` and the mass
  of the first six forests; both knobs are exposed.
- **random backbone**: plain Monte-Carlo sampling of edges until the
  budget is reached (the ``-t``-less variants of section 6.1, also the
  Local Degree-style heuristic of [24] is provided for ablations).

All functions work on *edge ids* — positions in
``graph.edge_list()`` — so they compose directly with
:class:`repro.core.discrepancy.SparsificationState`.
"""

from __future__ import annotations

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import SparsificationError
from repro.utils.rng import ensure_rng
from repro.utils.unionfind import UnionFind


def target_edge_count(m: int, alpha: float) -> int:
    """Edge budget ``|E'| = alpha |E|`` (rounded, at least 1)."""
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"sparsification ratio alpha must be in (0, 1), got {alpha}")
    if m <= 0:
        raise SparsificationError("cannot sparsify a graph with no edges")
    return max(1, int(round(alpha * m)))


def maximum_spanning_forest(
    n: int,
    candidate_ids: np.ndarray,
    edge_vertices: np.ndarray,
    probabilities: np.ndarray,
) -> list[int]:
    """Kruskal maximum spanning forest over a subset of edges.

    Parameters
    ----------
    n:
        Number of vertices (dense ids ``0..n-1``).
    candidate_ids:
        Edge ids eligible for the forest.
    edge_vertices:
        ``(m, 2)`` array of endpoints for *all* edges (indexed by id).
    probabilities:
        Weight of every edge (indexed by id); higher is kept first.

    Returns
    -------
    list[int]
        Ids of the forest edges (maximal: one tree per connected
        component of the candidate subgraph).
    """
    order = np.argsort(-probabilities[candidate_ids], kind="stable")
    uf = UnionFind(n)
    forest: list[int] = []
    for idx in order:
        eid = int(candidate_ids[idx])
        u, v = edge_vertices[eid]
        if uf.union(int(u), int(v)):
            forest.append(eid)
    return forest


def _mc_top_up(
    chosen: list[int],
    remaining: set[int],
    probabilities: np.ndarray,
    target: int,
    rng: np.random.Generator,
    max_passes: int = 10_000,
) -> None:
    """Fill ``chosen`` up to ``target`` by sampling ``remaining`` edges.

    Repeated passes over a random permutation, keeping each edge with
    its probability (Algorithm 1, lines 7-11).  Because every
    probability is strictly positive the loop terminates with
    probability 1; a deterministic fallback guards against pathological
    RNG streaks.
    """
    passes = 0
    while len(chosen) < target and remaining:
        passes += 1
        if passes > max_passes:
            # Deterministic fallback: take the highest-probability leftovers.
            leftovers = sorted(remaining, key=lambda e: -probabilities[e])
            for eid in leftovers[: target - len(chosen)]:
                chosen.append(eid)
                remaining.discard(eid)
            return
        order = rng.permutation(np.fromiter(remaining, dtype=np.int64, count=len(remaining)))
        draws = rng.random(len(order))
        for eid, draw in zip(order, draws):
            if draw < probabilities[eid]:
                chosen.append(int(eid))
                remaining.discard(int(eid))
                if len(chosen) >= target:
                    return


def bgi_backbone(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    spanning_fraction: float = 0.5,
    max_forests: int = 6,
) -> list[int]:
    """Backbone Graph Initialisation (Algorithm 1).

    Returns the ids of ``alpha |E|`` edges: first the union of maximum
    spanning forests (connectivity backbone), then Monte-Carlo top-up.

    Parameters
    ----------
    graph:
        The uncertain graph to sparsify.
    alpha:
        Sparsification ratio in ``(0, 1)``.
    rng:
        Seed / generator for the Monte-Carlo top-up.
    spanning_fraction:
        Fraction of the budget that may be filled by spanning forests
        (the paper's ``0.5 alpha`` rule).
    max_forests:
        Stop peeling forests after this many (the paper's "first six").

    Raises
    ------
    SparsificationError
        If ``alpha |E|`` is smaller than a single spanning tree, i.e.
        ``alpha < (|V| - 1) / |E|`` for a connected graph (the paper's
        footnote 7 assumption).
    """
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    n = graph.number_of_vertices()
    target = target_edge_count(m, alpha)
    edge_vertices = graph.edge_index_array()
    probabilities = np.array(graph.probability_array())

    remaining = set(range(m))
    chosen: list[int] = []

    # First forest: a maximum spanning tree (of each component).
    first = maximum_spanning_forest(
        n, np.fromiter(remaining, dtype=np.int64, count=len(remaining)),
        edge_vertices, probabilities,
    )
    if len(first) > target:
        raise SparsificationError(
            f"alpha={alpha} keeps {target} edges but a spanning forest needs "
            f"{len(first)}; connectivity cannot be preserved "
            f"(require alpha >= (|V|-1)/|E|)"
        )
    chosen.extend(first)
    remaining.difference_update(first)

    spanning_budget = int(spanning_fraction * alpha * m)
    forests_built = 1
    while (
        len(chosen) < spanning_budget
        and forests_built < max_forests
        and remaining
        and len(chosen) < target
    ):
        forest = maximum_spanning_forest(
            n, np.fromiter(remaining, dtype=np.int64, count=len(remaining)),
            edge_vertices, probabilities,
        )
        if not forest:
            break
        if len(chosen) + len(forest) > target:
            forest = forest[: target - len(chosen)]
        chosen.extend(forest)
        remaining.difference_update(forest)
        forests_built += 1

    _mc_top_up(chosen, remaining, probabilities, target, rng)
    return chosen


def random_backbone(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
) -> list[int]:
    """Random backbone: Monte-Carlo edge sampling until ``alpha |E|`` edges.

    This is the backbone of the non-``t`` variants in section 6.1 (and
    the deterministic-graph heuristic of [24]): connectivity is *not*
    guaranteed.
    """
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    target = target_edge_count(m, alpha)
    probabilities = np.array(graph.probability_array())
    chosen: list[int] = []
    remaining = set(range(m))
    _mc_top_up(chosen, remaining, probabilities, target, rng)
    return chosen


def local_degree_backbone(graph: UncertainGraph, alpha: float) -> list[int]:
    """Local Degree heuristic backbone (Lindner et al. [24], for ablations).

    Each vertex nominates its incident edges towards the highest-degree
    neighbours; edges are accepted in nomination-rank order until the
    budget fills.  Deterministic.
    """
    m = graph.number_of_edges()
    target = target_edge_count(m, alpha)
    indexer = graph.vertex_indexer()
    edge_list = graph.edge_list()
    edge_id_of: dict[tuple[int, int], int] = {}
    for eid, (u, v) in enumerate(edge_list):
        a, b = indexer[u], indexer[v]
        edge_id_of[(min(a, b), max(a, b))] = eid
    degrees = {v: graph.degree(v) for v in graph.vertices()}

    # rank[eid] = best (lowest) nomination position across both endpoints.
    rank: dict[int, float] = {}
    for u in graph.vertices():
        nbrs = sorted(graph.neighbors(u), key=lambda w: -degrees[w])
        for position, w in enumerate(nbrs):
            a, b = indexer[u], indexer[w]
            eid = edge_id_of[(min(a, b), max(a, b))]
            score = position / max(degrees[u], 1)
            if eid not in rank or score < rank[eid]:
                rank[eid] = score

    ordered = sorted(range(m), key=lambda eid: (rank.get(eid, 1.0), eid))
    return ordered[:target]


def build_backbone(
    graph: UncertainGraph,
    alpha: float,
    method: str = "bgi",
    rng: "int | np.random.Generator | None" = None,
    **kwargs,
) -> list[int]:
    """Dispatch on backbone construction method.

    ``method`` is one of ``"bgi"`` (Algorithm 1, the ``-t`` variants),
    ``"random"`` (Monte-Carlo sampling), ``"local_degree"`` ([24]) or
    ``"t_bundle"`` (edge-disjoint spanner layers, footnote 8 / [21]).
    """
    if method == "bgi":
        return bgi_backbone(graph, alpha, rng=rng, **kwargs)
    if method == "random":
        return random_backbone(graph, alpha, rng=rng, **kwargs)
    if method == "local_degree":
        return local_degree_backbone(graph, alpha, **kwargs)
    if method == "t_bundle":
        from repro.core.tbundle import t_bundle_backbone

        return t_bundle_backbone(graph, alpha, rng=rng, **kwargs)
    raise ValueError(f"unknown backbone method: {method!r}")
