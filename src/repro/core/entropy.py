"""Entropy of uncertain graphs (paper section 1, footnote 2).

Because edges are independent, the entropy of an uncertain graph is the
sum of the binary entropies of its edges::

    H(G) = sum_e [ -p_e log2 p_e - (1 - p_e) log2 (1 - p_e) ]

The paper uses log base 2; its worked example (Fig. 2(a): edges with
probabilities {0.4, 0.2, 0.4, 0.2, 0.1} give "entropy 3.85") matches
``sum H2 = 3.855`` bits, which the tests pin down.

Entropy drives the paper's variance argument: a lower-entropy sparsified
graph needs fewer Monte-Carlo samples for the same confidence width.
"""

from __future__ import annotations

import numpy as np

from repro.core.uncertain_graph import UncertainGraph


def edge_entropy(p: float) -> float:
    """Binary entropy (bits) of an edge with existence probability ``p``.

    Defined as 0 at the deterministic endpoints ``p in {0, 1}``.
    """
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return float(-p * np.log2(p) - (1.0 - p) * np.log2(1.0 - p))


def entropy_array(probabilities: np.ndarray) -> np.ndarray:
    """Vectorised binary entropy (bits) with 0 at the endpoints."""
    p = np.asarray(probabilities, dtype=np.float64)
    out = np.zeros_like(p)
    interior = (p > 0.0) & (p < 1.0)
    q = p[interior]
    out[interior] = -q * np.log2(q) - (1.0 - q) * np.log2(1.0 - q)
    return out


def entropy_increases(current, proposed):
    """Whether moving an edge from ``current`` to ``proposed`` raises entropy.

    Exact closed form of ``edge_entropy(proposed) > edge_entropy(current)``:
    binary entropy is strictly decreasing in the distance from ``0.5``,
    so ``H(p') > H(p)  <=>  |p' - 0.5| < |p - 0.5|``.  Works on scalars
    and arrays alike, and — unlike the log-based comparison — costs no
    transcendental calls, which is what makes the sweep engines' guard
    vectorisable (GDB Algorithm 2 line 10, EMD Eq. 9).
    """
    return np.abs(np.asarray(proposed) - 0.5) < np.abs(np.asarray(current) - 0.5)


def graph_entropy(graph: UncertainGraph) -> float:
    """Total entropy ``H(G)`` in bits."""
    return float(entropy_array(graph.probability_array()).sum())


def relative_entropy(sparsified: UncertainGraph, original: UncertainGraph) -> float:
    """Entropy ratio ``H(G') / H(G)`` (the y-axis of the paper's Fig. 8).

    Returns 0 when the original graph is deterministic (zero entropy),
    in which case any subgraph is deterministic too.
    """
    h_original = graph_entropy(original)
    if h_original == 0.0:
        return 0.0
    return graph_entropy(sparsified) / h_original
