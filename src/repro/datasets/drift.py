"""Drifting-workload generator: seeded, replayable edge-delta streams.

Models probability drift the way NU-MILA's ``probgraph.py`` maintains
conditional-probability edges (SNIPPETS.md №1-2): every edge carries an
evidence *count* ``c`` against a smoothing mass ``s``, its probability
is ``p = c / (c + s)``, and the stream either **bumps** the count
(``c += bump`` — the edge was observed again, probability rises) or
**decays** it (``c *= decay`` — evidence fades, probability falls).
Counts are seeded from the graph's current probabilities by inverting
the link function (``c = s p / (1 - p)``), so the first batch drifts
smoothly away from the initial assignment rather than jumping.

Structural churn is optional: a delete rate retires random edges and an
insert rate wires new edges between existing vertices (born with the
one-observation probability ``bump / (bump + s)``).

Every batch comes out as a canonical
:class:`~repro.core.delta.EdgeDeltaBatch`, and the whole stream is a
pure function of the seed and the call sequence — replaying a
:class:`DriftWorkload` with the same seed against the same evolving
graph reproduces the batches bit-for-bit (the determinism contract
``tests/test_delta.py`` pins and the streaming benchmark relies on).
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import EdgeDeltaBatch
from repro.exceptions import GraphError


class DriftWorkload:
    """Seeded bump/decay drift stream over an uncertain graph.

    Parameters
    ----------
    graph:
        The graph the stream starts from (used only to size the first
        batches; pass the *current* graph to :meth:`next_batch` as it
        evolves).
    edge_fraction:
        Fraction of live edges whose probability drifts per batch.
    bump:
        Count increment of an observed edge (and the evidence mass of a
        newly inserted edge).
    decay:
        Multiplicative count decay of a fading edge, in ``(0, 1]``.
    smoothing:
        Smoothing mass ``s`` of the count -> probability link
        ``p = c / (c + s)`` (NU-MILA uses 10).
    insert_rate / delete_rate:
        Fraction of live edges inserted / deleted per batch (0 disables;
        deletes never empty the graph and inserts only wire existing
        vertices).
    p_min / p_max:
        Clamp of the drifted probabilities (kept strictly inside
        ``(0, 1]``).
    seed:
        Integer seed of the single RNG stream behind every batch.
    """

    def __init__(
        self,
        graph,
        edge_fraction: float = 0.05,
        bump: float = 1.0,
        decay: float = 0.97,
        smoothing: float = 10.0,
        insert_rate: float = 0.0,
        delete_rate: float = 0.0,
        p_min: float = 1e-3,
        p_max: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not (0.0 < edge_fraction <= 1.0):
            raise ValueError(
                f"edge_fraction must be in (0, 1], got {edge_fraction}"
            )
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if bump <= 0.0 or smoothing <= 0.0:
            raise ValueError("bump and smoothing must be positive")
        if not (0.0 < p_min <= p_max <= 1.0):
            raise ValueError(
                f"need 0 < p_min <= p_max <= 1, got [{p_min}, {p_max}]"
            )
        if insert_rate < 0.0 or delete_rate < 0.0:
            raise ValueError("insert_rate and delete_rate must be >= 0")
        self.n = graph.number_of_vertices()
        self.edge_fraction = float(edge_fraction)
        self.bump = float(bump)
        self.decay = float(decay)
        self.smoothing = float(smoothing)
        self.insert_rate = float(insert_rate)
        self.delete_rate = float(delete_rate)
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        # Evidence counts keyed by canonical dense endpoint pair —
        # stable across structural batches (edge ids renumber, vertex
        # ids never do).
        self._counts: dict[tuple[int, int], float] = {}
        self.batches_emitted = 0

    # -- the count <-> probability link -----------------------------------
    def _seed_count(self, p: float) -> float:
        p_eff = min(max(p, self.p_min), 1.0 - 1e-9)
        return self.smoothing * p_eff / (1.0 - p_eff)

    def _probability(self, count: float) -> float:
        p = count / (count + self.smoothing)
        return min(max(p, self.p_min), self.p_max)

    # -- batch generation -------------------------------------------------
    def next_batch(self, graph) -> EdgeDeltaBatch:
        """Draw the next delta batch against the graph's *current* ids."""
        if graph.number_of_vertices() != self.n:
            raise GraphError(
                "drift workload is bound to a fixed vertex population"
            )
        rng = self._rng
        endpoints = np.asarray(graph.edge_index_array())
        ps = np.asarray(graph.probability_array(), dtype=np.float64)
        m = len(ps)
        if m == 0:
            raise GraphError("cannot drift a graph with no edges")
        lo = np.minimum(endpoints[:, 0], endpoints[:, 1])
        hi = np.maximum(endpoints[:, 0], endpoints[:, 1])

        k = min(m, max(1, int(round(self.edge_fraction * m))))
        picks = np.sort(rng.choice(m, size=k, replace=False))
        bumped = rng.random(k) < 0.5
        update_ps = np.empty(k, dtype=np.float64)
        for i, eid in enumerate(picks.tolist()):
            key = (int(lo[eid]), int(hi[eid]))
            count = self._counts.get(key)
            if count is None:
                count = self._seed_count(float(ps[eid]))
            count = count + self.bump if bumped[i] else count * self.decay
            self._counts[key] = count
            update_ps[i] = self._probability(count)

        delete_eids = np.empty(0, dtype=np.int64)
        if self.delete_rate > 0.0:
            nd = int(round(self.delete_rate * m))
            candidates = np.setdiff1d(
                np.arange(m, dtype=np.int64), picks, assume_unique=True
            )
            nd = min(nd, max(0, len(candidates) - 1))  # never empty the graph
            if nd:
                delete_eids = np.sort(rng.choice(candidates, size=nd, replace=False))
                for eid in delete_eids.tolist():
                    self._counts.pop((int(lo[eid]), int(hi[eid])), None)

        insert_pairs: list[tuple[int, int]] = []
        insert_ps: list[float] = []
        if self.insert_rate > 0.0:
            ni = int(round(self.insert_rate * m))
            if ni:
                live = set(zip(lo.tolist(), hi.tolist()))
                fresh: set[tuple[int, int]] = set()
                # Bounded rejection sampling; a dense graph may yield
                # fewer inserts than requested, which is fine.
                for _ in range(8 * ni):
                    if len(insert_pairs) >= ni:
                        break
                    a, b = rng.integers(0, self.n, size=2).tolist()
                    if a == b:
                        continue
                    pair = (a, b) if a < b else (b, a)
                    if pair in live or pair in fresh:
                        continue
                    fresh.add(pair)
                    count = self.bump
                    self._counts[pair] = count
                    insert_pairs.append(pair)
                    insert_ps.append(self._probability(count))

        self.batches_emitted += 1
        return EdgeDeltaBatch(
            update_eids=picks,
            update_ps=update_ps,
            delete_eids=delete_eids,
            insert_endpoints=np.array(insert_pairs, dtype=np.int64).reshape(-1, 2),
            insert_ps=np.array(insert_ps, dtype=np.float64),
        )
