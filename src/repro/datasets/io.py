"""Edge-list I/O for uncertain graphs.

The on-disk format mirrors the public releases of uncertain-graph
datasets (Flickr/Twitter style): one edge per line, whitespace-separated
``u v p``, ``#`` comments, vertices as arbitrary tokens.  Isolated
vertices can be declared with a single-token line.
"""

from __future__ import annotations

import os

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import GraphError


def write_edge_list(graph: UncertainGraph, path: "str | os.PathLike") -> None:
    """Write a graph as ``u v p`` lines (isolated vertices as bare tokens)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# uncertain graph {graph.name!r}: "
                 f"{graph.number_of_vertices()} vertices, "
                 f"{graph.number_of_edges()} edges\n")
        touched = set()
        for u, v, p in graph.edges():
            fh.write(f"{u} {v} {p:.10g}\n")
            touched.add(u)
            touched.add(v)
        for vertex in graph.vertices():
            if vertex not in touched:
                fh.write(f"{vertex}\n")


def read_edge_list(path: "str | os.PathLike", name: str = "") -> UncertainGraph:
    """Parse a ``u v p`` edge list back into an :class:`UncertainGraph`.

    Raises
    ------
    GraphError
        On malformed lines or out-of-range probabilities.
    """
    graph = UncertainGraph(name=name or os.path.basename(os.fspath(path)))
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) == 1:
                graph.add_vertex(parts[0])
                continue
            if len(parts) != 3:
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v p' or a bare vertex, "
                    f"got {raw.rstrip()!r}"
                )
            u, v, p_raw = parts
            try:
                p = float(p_raw)
            except ValueError:
                raise GraphError(
                    f"{path}:{lineno}: probability is not a number: {p_raw!r}"
                ) from None
            graph.add_edge(u, v, p)
    return graph
