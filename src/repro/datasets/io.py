"""Edge-list I/O for uncertain graphs.

The on-disk format mirrors the public releases of uncertain-graph
datasets (Flickr/Twitter style): one edge per line, whitespace-separated
``u v p``, ``#`` comments, vertices as arbitrary tokens.  Isolated
vertices can be declared with a single-token line.

Round-trip contract
-------------------
``write_edge_list`` followed by ``read_edge_list`` is *lossless up to
vertex stringification*: probabilities are serialised with ``repr``
(the shortest decimal string that parses back to the exact same
float), so ``float(token)`` recovers the original value bit for bit,
and vertex tokens that the line format cannot represent (empty,
containing whitespace or ``#``) are rejected at write time with a
:class:`~repro.exceptions.GraphError` instead of producing a file the
reader mis-parses.  This contract is what makes content digests
(:func:`dataset_digest`, :func:`graph_digest`) sound cache keys: the
serialisation of a graph is a pure function of its content.
"""

from __future__ import annotations

import hashlib
import os

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import GraphError


def _serialisable_token(vertex) -> str:
    """Render a vertex as its on-disk token, rejecting unrepresentable ones.

    The line format is whitespace-split with ``#`` starting a comment, so
    a token containing either — or an empty token — would be silently
    mis-parsed (or rejected) on read.  Fail at write time instead.
    """
    token = str(vertex)
    if not token or "#" in token or any(ch.isspace() for ch in token):
        raise GraphError(
            f"vertex {vertex!r} cannot be serialised as an edge-list token: "
            f"tokens must be non-empty and contain no whitespace or '#'"
        )
    return token


def format_edge_list(graph: UncertainGraph, header: bool = True) -> str:
    """Serialise a graph to the edge-list text format.

    This is the exact content :func:`write_edge_list` writes; exposing it
    as a string lets callers (the artifact server, digests) serialise
    without touching disk.  Probabilities use ``repr`` so the write →
    read round trip is bit-identical.
    """
    lines = []
    if header:
        lines.append(
            f"# uncertain graph {graph.name!r}: "
            f"{graph.number_of_vertices()} vertices, "
            f"{graph.number_of_edges()} edges\n"
        )
    touched = set()
    for u, v, p in graph.edges():
        lines.append(f"{_serialisable_token(u)} {_serialisable_token(v)} {p!r}\n")
        touched.add(u)
        touched.add(v)
    for vertex in graph.vertices():
        if vertex not in touched:
            lines.append(f"{_serialisable_token(vertex)}\n")
    return "".join(lines)


def write_edge_list(graph: UncertainGraph, path: "str | os.PathLike") -> None:
    """Write a graph as ``u v p`` lines (isolated vertices as bare tokens)."""
    content = format_edge_list(graph)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)


def content_digest(data: bytes) -> str:
    """SHA-256 hex digest of in-memory dataset bytes.

    Callers that must bind a digest to the *exact* content they parse
    (the artifact server) read the file once and feed the same bytes to
    both this function and :func:`parse_edge_list`, closing the
    read/digest race a separate :func:`dataset_digest` call would leave.
    """
    return hashlib.sha256(data).hexdigest()


def dataset_digest(path: "str | os.PathLike") -> str:
    """SHA-256 hex digest of a dataset file's bytes.

    The artifact cache keys on this: two requests naming files with the
    same bytes share cached artifacts, and rewriting a file invalidates
    every entry derived from its old content.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def graph_digest(graph: UncertainGraph) -> str:
    """SHA-256 hex digest of a graph's canonical serialisation.

    Name-independent (the header comment carries the name and is
    excluded), so two graphs with identical vertices/edges/probabilities
    digest identically regardless of how they were labelled.
    """
    content = format_edge_list(graph, header=False)
    return hashlib.sha256(content.encode("utf-8")).hexdigest()


#: Line count above which :func:`parse_edge_list` switches to the
#: chunked fast path (the scalar loop is faster for tiny inputs).
_FAST_PARSE_THRESHOLD = 8192

#: Lines per fast-path chunk: bounds pending-token memory and keeps the
#: bulk float conversions in cache-sized batches.
_FAST_PARSE_CHUNK = 65536


def _parse_edge_list_scalar(
    text: str, name: str = "", source: str = "<string>"
) -> UncertainGraph:
    """The line-at-a-time reference parser (see :func:`parse_edge_list`).

    Kept verbatim as the behavioural pin for the fast path: every
    fixture must parse bit-identically through both, including error
    type/message/line for malformed input.
    """
    graph = UncertainGraph(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            graph.add_vertex(parts[0])
            continue
        if len(parts) != 3:
            raise GraphError(
                f"{source}:{lineno}: expected 'u v p' or a bare vertex, "
                f"got {raw.rstrip()!r}"
            )
        u, v, p_raw = parts
        try:
            p = float(p_raw)
        except ValueError:
            raise GraphError(
                f"{source}:{lineno}: probability is not a number: {p_raw!r}"
            ) from None
        graph.add_edge(u, v, p)
    return graph


def _edge_lineno(lines: list, start: int, edge_index: int) -> int:
    """1-based line number of the ``edge_index``-th edge line in a chunk.

    Error path only: the hot routing loop doesn't track line numbers, so
    a conversion failure re-routes the chunk to locate its line.
    """
    count = -1
    for offset in range(start, len(lines)):
        raw = lines[offset]
        line = raw.split("#", 1)[0] if "#" in raw else raw
        if len(line.split()) == 3:
            count += 1
            if count == edge_index:
                return offset + 1
    raise AssertionError("edge index outside chunk")  # pragma: no cover


def _convert_probabilities(
    tokens: list, range_checked: int, source: str, lines: list, start: int
):
    """Convert pending probability tokens, replaying scalar error order.

    Tokens are converted in line order; the first failure raises exactly
    what the scalar loop would have raised at that line.  Only the first
    ``range_checked`` tokens get the domain check — a trailing token
    whose line failed *after* conversion (a self-loop) is converted but
    not range-checked, because ``add_edge`` checks self-loops first.

    Bulk ``numpy`` conversion handles the common all-numeric case in one
    vectorised pass; any failure falls back to a per-token ``float()``
    scan, which both locates the first bad token and accepts the few
    spellings Python allows but numpy doesn't (e.g. ``1_0``).
    """
    import numpy as np

    from repro.exceptions import ProbabilityError

    try:
        probs = np.asarray(tokens, dtype=np.float64)
    except ValueError:
        probs = np.empty(len(tokens), dtype=np.float64)
        for i, token in enumerate(tokens):
            try:
                value = float(token)
            except ValueError:
                lineno = _edge_lineno(lines, start, i)
                raise GraphError(
                    f"{source}:{lineno}: probability is not a number: "
                    f"{token!r}"
                ) from None
            if i < range_checked and not (0.0 < value <= 1.0):
                raise ProbabilityError(
                    f"edge probability must be in (0, 1], got {value}"
                )
            probs[i] = value
        return probs
    checked = probs[:range_checked]
    bad = ~((checked > 0.0) & (checked <= 1.0))
    if bool(bad.any()):
        value = float(checked[int(np.argmax(bad))])
        raise ProbabilityError(
            f"edge probability must be in (0, 1], got {value}"
        )
    return probs


def _parse_edge_list_fast(
    text: str, name: str = "", source: str = "<string>"
) -> UncertainGraph:
    """Chunked fast parser, bit-identical to the scalar reference.

    Lines are routed exactly like the scalar loop (so vertex/edge dict
    insertion order — and hence every downstream edge view — is
    preserved, including bare-vertex interleaving and duplicate-edge
    overwrites), but probability tokens are converted in bulk per chunk
    and adjacency entries are written directly, skipping the per-edge
    method dispatch, probability re-validation, and cache invalidation
    the reference pays on every line.
    """
    graph = UncertainGraph(name=name)
    adj = graph._adj
    lines = text.splitlines()
    for start in range(0, len(lines), _FAST_PARSE_CHUNK):
        chunk = lines[start:start + _FAST_PARSE_CHUNK]
        us: list = []           # edge endpoints, line order
        vs: list = []
        tokens: list = []       # pending probability tokens, line order
        vops: list = []         # (edge position, token) for bare vertices
        us_append, vs_append = us.append, vs.append
        tokens_append = tokens.append
        for offset, raw in enumerate(chunk):
            line = raw.split("#", 1)[0] if "#" in raw else raw
            parts = line.split()
            n_parts = len(parts)
            if n_parts == 3:
                u = parts[0]
                v = parts[1]
                tokens_append(parts[2])
                if u == v:
                    # Scalar order: this line's float() ran before the
                    # self-loop check, earlier lines validated fully.
                    _convert_probabilities(
                        tokens, len(tokens) - 1, source, lines, start
                    )
                    raise GraphError(f"self-loops are not allowed: {u!r}")
                us_append(u)
                vs_append(v)
            elif n_parts == 0:
                continue
            elif n_parts == 1:
                vops.append((len(us), parts[0]))
            else:
                # Earlier float/domain errors outrank this line's
                # structure error in the scalar loop — validate first.
                _convert_probabilities(
                    tokens, len(tokens), source, lines, start
                )
                raise GraphError(
                    f"{source}:{start + offset + 1}: expected 'u v p' or a "
                    f"bare vertex, got {raw.rstrip()!r}"
                )
        # tolist() yields Python floats — the scalar loop stores Python
        # floats too, and repr(np.float64) would break serialisation.
        probs = _convert_probabilities(
            tokens, len(tokens), source, lines, start
        ).tolist()
        if vops:
            # Bare vertices interleave with edges: replay in line order
            # so dict insertion order matches the scalar loop exactly.
            vi = 0
            n_vops = len(vops)
            for eid, p in enumerate(probs):
                while vi < n_vops and vops[vi][0] == eid:
                    token = vops[vi][1]
                    if token not in adj:
                        adj[token] = {}
                    vi += 1
                u = us[eid]
                v = vs[eid]
                row = adj.get(u)
                if row is None:
                    row = adj[u] = {}
                col = adj.get(v)
                if col is None:
                    col = adj[v] = {}
                row[v] = p
                col[u] = p
            while vi < n_vops:
                token = vops[vi][1]
                if token not in adj:
                    adj[token] = {}
                vi += 1
        else:
            for u, v, p in zip(us, vs, probs):
                row = adj.get(u)
                if row is None:
                    row = adj[u] = {}
                col = adj.get(v)
                if col is None:
                    col = adj[v] = {}
                row[v] = p
                col[u] = p
    graph._invalidate_caches()
    return graph


def parse_edge_list(
    text: str, name: str = "", source: str = "<string>", engine: str = "auto"
) -> UncertainGraph:
    """Parse edge-list *text* into an :class:`UncertainGraph`.

    The in-memory counterpart of :func:`read_edge_list` — callers that
    already hold the file's bytes (and have digested them) parse the
    same content instead of re-reading a file that may have changed.
    ``source`` labels error messages.

    ``engine`` selects the implementation: ``"scalar"`` (the
    line-at-a-time reference), ``"fast"`` (chunked bulk conversion), or
    ``"auto"`` (default: fast beyond a line-count threshold).  The two
    engines are bit-identical — same graph, same insertion order, same
    errors — so the knob only exists for testing and benchmarks.

    Raises
    ------
    GraphError
        On malformed lines or out-of-range probabilities.
    """
    if engine not in ("auto", "scalar", "fast"):
        raise ValueError(
            f"engine must be 'auto', 'scalar' or 'fast', got {engine!r}"
        )
    if engine == "auto":
        engine = (
            "fast" if text.count("\n") >= _FAST_PARSE_THRESHOLD else "scalar"
        )
    if engine == "fast":
        return _parse_edge_list_fast(text, name=name, source=source)
    return _parse_edge_list_scalar(text, name=name, source=source)


def read_edge_list(path: "str | os.PathLike", name: str = "") -> UncertainGraph:
    """Parse a ``u v p`` edge list back into an :class:`UncertainGraph`.

    Raises
    ------
    GraphError
        On malformed lines or out-of-range probabilities.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    return parse_edge_list(
        text,
        name=name or os.path.basename(os.fspath(path)),
        source=os.fspath(path),
    )
