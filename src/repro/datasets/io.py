"""Edge-list I/O for uncertain graphs.

The on-disk format mirrors the public releases of uncertain-graph
datasets (Flickr/Twitter style): one edge per line, whitespace-separated
``u v p``, ``#`` comments, vertices as arbitrary tokens.  Isolated
vertices can be declared with a single-token line.

Round-trip contract
-------------------
``write_edge_list`` followed by ``read_edge_list`` is *lossless up to
vertex stringification*: probabilities are serialised with ``repr``
(the shortest decimal string that parses back to the exact same
float), so ``float(token)`` recovers the original value bit for bit,
and vertex tokens that the line format cannot represent (empty,
containing whitespace or ``#``) are rejected at write time with a
:class:`~repro.exceptions.GraphError` instead of producing a file the
reader mis-parses.  This contract is what makes content digests
(:func:`dataset_digest`, :func:`graph_digest`) sound cache keys: the
serialisation of a graph is a pure function of its content.
"""

from __future__ import annotations

import hashlib
import os

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import GraphError


def _serialisable_token(vertex) -> str:
    """Render a vertex as its on-disk token, rejecting unrepresentable ones.

    The line format is whitespace-split with ``#`` starting a comment, so
    a token containing either — or an empty token — would be silently
    mis-parsed (or rejected) on read.  Fail at write time instead.
    """
    token = str(vertex)
    if not token or "#" in token or any(ch.isspace() for ch in token):
        raise GraphError(
            f"vertex {vertex!r} cannot be serialised as an edge-list token: "
            f"tokens must be non-empty and contain no whitespace or '#'"
        )
    return token


def format_edge_list(graph: UncertainGraph, header: bool = True) -> str:
    """Serialise a graph to the edge-list text format.

    This is the exact content :func:`write_edge_list` writes; exposing it
    as a string lets callers (the artifact server, digests) serialise
    without touching disk.  Probabilities use ``repr`` so the write →
    read round trip is bit-identical.
    """
    lines = []
    if header:
        lines.append(
            f"# uncertain graph {graph.name!r}: "
            f"{graph.number_of_vertices()} vertices, "
            f"{graph.number_of_edges()} edges\n"
        )
    touched = set()
    for u, v, p in graph.edges():
        lines.append(f"{_serialisable_token(u)} {_serialisable_token(v)} {p!r}\n")
        touched.add(u)
        touched.add(v)
    for vertex in graph.vertices():
        if vertex not in touched:
            lines.append(f"{_serialisable_token(vertex)}\n")
    return "".join(lines)


def write_edge_list(graph: UncertainGraph, path: "str | os.PathLike") -> None:
    """Write a graph as ``u v p`` lines (isolated vertices as bare tokens)."""
    content = format_edge_list(graph)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)


def content_digest(data: bytes) -> str:
    """SHA-256 hex digest of in-memory dataset bytes.

    Callers that must bind a digest to the *exact* content they parse
    (the artifact server) read the file once and feed the same bytes to
    both this function and :func:`parse_edge_list`, closing the
    read/digest race a separate :func:`dataset_digest` call would leave.
    """
    return hashlib.sha256(data).hexdigest()


def dataset_digest(path: "str | os.PathLike") -> str:
    """SHA-256 hex digest of a dataset file's bytes.

    The artifact cache keys on this: two requests naming files with the
    same bytes share cached artifacts, and rewriting a file invalidates
    every entry derived from its old content.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def graph_digest(graph: UncertainGraph) -> str:
    """SHA-256 hex digest of a graph's canonical serialisation.

    Name-independent (the header comment carries the name and is
    excluded), so two graphs with identical vertices/edges/probabilities
    digest identically regardless of how they were labelled.
    """
    content = format_edge_list(graph, header=False)
    return hashlib.sha256(content.encode("utf-8")).hexdigest()


def parse_edge_list(
    text: str, name: str = "", source: str = "<string>"
) -> UncertainGraph:
    """Parse edge-list *text* into an :class:`UncertainGraph`.

    The in-memory counterpart of :func:`read_edge_list` — callers that
    already hold the file's bytes (and have digested them) parse the
    same content instead of re-reading a file that may have changed.
    ``source`` labels error messages.

    Raises
    ------
    GraphError
        On malformed lines or out-of-range probabilities.
    """
    graph = UncertainGraph(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            graph.add_vertex(parts[0])
            continue
        if len(parts) != 3:
            raise GraphError(
                f"{source}:{lineno}: expected 'u v p' or a bare vertex, "
                f"got {raw.rstrip()!r}"
            )
        u, v, p_raw = parts
        try:
            p = float(p_raw)
        except ValueError:
            raise GraphError(
                f"{source}:{lineno}: probability is not a number: {p_raw!r}"
            ) from None
        graph.add_edge(u, v, p)
    return graph


def read_edge_list(path: "str | os.PathLike", name: str = "") -> UncertainGraph:
    """Parse a ``u v p`` edge list back into an :class:`UncertainGraph`.

    Raises
    ------
    GraphError
        On malformed lines or out-of-range probabilities.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    return parse_edge_list(
        text,
        name=name or os.path.basename(os.fspath(path)),
        source=os.fspath(path),
    )
