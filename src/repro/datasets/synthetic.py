"""Synthetic uncertain-graph generators (paper section 6, Table 1).

The paper's datasets are proprietary snapshots (Flickr, Twitter); this
module builds laptop-scale proxies that preserve the two properties the
evaluation turns on — degree skew and the edge-probability level — plus
the paper's own synthetic density-sweep construction.  See DESIGN.md's
substitution note.

Generators
----------
- :func:`flickr_like` — dense power-law topology, E[p] ≈ 0.09,
- :func:`twitter_like` — sparser power-law topology, E[p] ≈ 0.15,
- :func:`erdos_renyi_uncertain`, :func:`barabasi_albert_uncertain` —
  building blocks,
- :func:`densify` — the paper's synthetic construction: add uniform
  random edges to an induced subgraph until a density target,
- :func:`grid_uncertain` — a mesh "router network" for the examples,
- :func:`figure1_graph` / :func:`figure1_sparsified` — the paper's
  introductory example (Pr[connected] = 0.219 vs 0.216).
"""

from __future__ import annotations

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def beta_probability_sampler(p_mean: float, rng: np.random.Generator):
    """Sampler of edge probabilities with mean ``p_mean``.

    ``Beta(1, (1 - p) / p)`` — an exponential-shaped distribution on
    (0, 1] whose mean is ``p_mean``, mimicking the heavy-tailed-low
    probabilities of similarity-derived social edges.  Values are
    floored at 1e-3 (probabilities must be positive).
    """
    if not (0.0 < p_mean < 1.0):
        raise ValueError(f"p_mean must be in (0, 1), got {p_mean}")
    b = (1.0 - p_mean) / p_mean

    def draw(count: int) -> np.ndarray:
        return np.clip(rng.beta(1.0, b, size=count), 1e-3, 1.0)

    return draw


def erdos_renyi_uncertain(
    n: int,
    avg_degree: float,
    p_mean: float = 0.1,
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
) -> UncertainGraph:
    """G(n, m) random topology with Beta probabilities."""
    rng = ensure_rng(rng)
    m_target = int(round(n * avg_degree / 2))
    max_edges = n * (n - 1) // 2
    m_target = min(m_target, max_edges)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m_target:
        need = m_target - len(chosen)
        u = rng.integers(0, n, size=2 * need + 8)
        v = rng.integers(0, n, size=2 * need + 8)
        for a, b in zip(u, v):
            if a == b:
                continue
            key = (min(int(a), int(b)), max(int(a), int(b)))
            chosen.add(key)
            if len(chosen) >= m_target:
                break
    draw = beta_probability_sampler(p_mean, rng)
    probs = draw(len(chosen))
    graph = UncertainGraph(vertices=range(n), name=name or f"er(n={n})")
    for (u, v), p in zip(sorted(chosen), probs):
        graph.add_edge(u, v, float(p))
    return graph


def barabasi_albert_uncertain(
    n: int,
    attach: int,
    p_mean: float = 0.1,
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
) -> UncertainGraph:
    """Preferential-attachment (power-law degree) topology.

    Each arriving vertex attaches to ``attach`` distinct existing
    vertices chosen proportionally to degree (repeated-endpoint list
    trick), giving average degree ~``2 * attach``.
    """
    if attach < 1:
        raise ValueError(f"attach must be >= 1, got {attach}")
    if n <= attach:
        raise ValueError(f"need n > attach, got n={n}, attach={attach}")
    rng = ensure_rng(rng)
    edges: list[tuple[int, int]] = []
    # Seed: a small clique over the first attach+1 vertices.
    seed_size = attach + 1
    repeated: list[int] = []
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            edges.append((u, v))
            repeated.extend((u, v))
    for new in range(seed_size, n):
        targets: set[int] = set()
        while len(targets) < attach:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            targets.add(pick)
        for t in targets:
            edges.append((min(new, t), max(new, t)))
            repeated.extend((new, t))
    draw = beta_probability_sampler(p_mean, rng)
    probs = draw(len(edges))
    graph = UncertainGraph(vertices=range(n), name=name or f"ba(n={n})")
    for (u, v), p in zip(edges, probs):
        graph.add_edge(u, v, float(p))
    return graph


def flickr_like(
    n: int = 800,
    avg_degree: int = 24,
    p_mean: float = 0.09,
    seed: "int | np.random.Generator | None" = None,
) -> UncertainGraph:
    """Flickr proxy: dense power-law graph with low-mean probabilities.

    The real Flickr has |E|/|V| ≈ 130 and E[p] = 0.09; the proxy keeps
    the probability level and degree skew at a laptop-friendly density
    (|E|/|V| ≈ 12 by default — scale ``avg_degree`` up to stress-test).
    """
    return barabasi_albert_uncertain(
        n, attach=max(avg_degree // 2, 1), p_mean=p_mean, rng=seed,
        name=f"flickr_like(n={n})",
    )


def twitter_like(
    n: int = 800,
    avg_degree: int = 8,
    p_mean: float = 0.15,
    seed: "int | np.random.Generator | None" = None,
) -> UncertainGraph:
    """Twitter proxy: sparser power-law graph, higher-mean probabilities."""
    return barabasi_albert_uncertain(
        n, attach=max(avg_degree // 2, 1), p_mean=p_mean, rng=seed,
        name=f"twitter_like(n={n})",
    )


def densify(
    graph: UncertainGraph,
    density: float,
    p_mean: float = 0.09,
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
) -> UncertainGraph:
    """The paper's synthetic construction: random edges up to a density.

    Adds uniformly random non-edges (probabilities drawn from the same
    Beta family) until ``|E| = density * n(n-1)/2``.  ``density`` is a
    fraction of the complete graph in (0, 1].
    """
    if not (0.0 < density <= 1.0):
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = ensure_rng(rng)
    out, mapping = graph.relabel_to_integers()
    n = out.number_of_vertices()
    max_edges = n * (n - 1) // 2
    target = int(round(density * max_edges))
    if target < out.number_of_edges():
        raise ValueError(
            f"density target {target} below current edge count "
            f"{out.number_of_edges()}"
        )
    draw = beta_probability_sampler(p_mean, rng)
    missing = target - out.number_of_edges()
    while missing > 0:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or out.has_edge(u, v):
            continue
        out.add_edge(u, v, float(draw(1)[0]))
        missing -= 1
    out.name = name or f"densified({density:.0%})"
    return out


def forest_fire_like_arrays(
    n: int,
    avg_degree: float = 20.0,
    p_mean: float = 0.2,
    gamma: float = 2.0,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Array-native forest-fire-style generator: ``(n, src, dst, prob)``.

    The scale path for the out-of-core benchmarks: a 10M+ edge graph is
    produced as three dense arrays in O(m) vectorised work, never
    touching a dict adjacency.  Growth model (forest-fire flavoured):
    vertices arrive in id order and each new vertex ``u`` links to
    earlier vertices ``floor(u * r^gamma)`` with ``r ~ U[0, 1)`` — the
    ``gamma``-biased copy step concentrates endpoints on early vertices,
    giving the heavy-tailed degree profile of forest-fire/preferential
    growth.  The first ``n - 1`` draws give every vertex one link to an
    earlier vertex, so the support graph is connected by construction;
    further draws densify to ``avg_degree``.  Probabilities follow the
    ``Beta(1, (1 - p) / p)`` distribution of
    :func:`beta_probability_sampler`.

    Returns edges in canonical order (``src < dst`` rows sorted
    lexicographically) so :meth:`UncertainGraph.from_edge_arrays`
    pre-seeds its edge views, and deterministically for a fixed seed
    regardless of how many top-up rounds the dedup loop needs.  Feed
    the arrays to :func:`repro.datasets.binary_io.write_binary_arrays`
    or wrap them in an :class:`~repro.core.array_graph.EdgeArrayGraph`.
    """
    if n < 2:
        raise ValueError(f"need at least 2 vertices, got {n}")
    rng = ensure_rng(rng)
    m_target = max(n - 1, int(round(n * avg_degree / 2)))
    draw_p = beta_probability_sampler(p_mean, rng)

    def attach(hi: np.ndarray) -> np.ndarray:
        """Biased earlier-vertex endpoints: ``floor(hi * r^gamma) < hi``."""
        r = rng.random(len(hi))
        return (hi * (r ** gamma)).astype(np.int64)

    # Connectivity spine: one parent link per arriving vertex.
    hi = np.arange(1, n, dtype=np.int64)
    lo = attach(hi)
    keys = hi * np.int64(n) + lo
    seen, order = np.unique(keys, return_index=True)
    # Keep first occurrences in draw order (np.unique sorts by key).
    kept = keys[np.sort(order)]
    while len(kept) < m_target:
        want = m_target - len(kept)
        batch = max(int(want * 1.3) + 16, 1024)
        hi = rng.integers(1, n, size=batch, dtype=np.int64)
        lo = attach(hi)
        keys = hi * np.int64(n) + lo
        fresh_mask = ~np.isin(keys, seen, assume_unique=False)
        fresh = keys[fresh_mask]
        _, first = np.unique(fresh, return_index=True)
        fresh = fresh[np.sort(first)][:want]
        if len(fresh):
            kept = np.concatenate([kept, fresh])
            seen = np.union1d(seen, fresh)
    hi = kept // n
    lo = kept % n
    # Canonical rows: src < dst, sorted lexicographically by (src, dst).
    src = lo
    dst = hi
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    prob = draw_p(len(src))
    return n, src, dst, prob


def grid_uncertain(
    rows: int,
    cols: int,
    p_mean: float = 0.9,
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
) -> UncertainGraph:
    """Mesh topology (router-network example): 4-neighbour grid.

    Edge probabilities model link reliabilities, drawn uniformly in
    ``[2 p_mean - 1, 1]`` when ``p_mean > 0.5`` (else Beta).
    """
    rng = ensure_rng(rng)
    graph = UncertainGraph(name=name or f"grid({rows}x{cols})")

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    def draw() -> float:
        if p_mean > 0.5:
            low = 2 * p_mean - 1
            return float(rng.uniform(low, 1.0))
        return float(np.clip(rng.beta(1.0, (1 - p_mean) / p_mean), 1e-3, 1.0))

    for r in range(rows):
        for c in range(cols):
            graph.add_vertex(vertex(r, c))
            if r + 1 < rows:
                graph.add_edge(vertex(r, c), vertex(r + 1, c), draw())
            if c + 1 < cols:
                graph.add_edge(vertex(r, c), vertex(r, c + 1), draw())
    return graph


def figure1_graph() -> UncertainGraph:
    """The paper's Fig. 1(a): K4 with every edge at probability 0.3.

    Exact Pr[connected] = 0.219 (reproduced by
    :func:`repro.sampling.exact.exact_connectivity_probability`).
    """
    vertices = ["u1", "u2", "u3", "u4"]
    graph = UncertainGraph(vertices=vertices, name="figure1a")
    for i, u in enumerate(vertices):
        for v in vertices[i + 1:]:
            graph.add_edge(u, v, 0.3)
    return graph


def figure1_sparsified() -> UncertainGraph:
    """The paper's Fig. 1(b): a 3-edge spanning tree at probability 0.6.

    Exact Pr[connected] = 0.6^3 = 0.216.
    """
    graph = UncertainGraph(name="figure1b")
    for u, v in (("u1", "u2"), ("u2", "u4"), ("u4", "u3")):
        graph.add_edge(u, v, 0.6)
    return graph
