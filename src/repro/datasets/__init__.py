"""Dataset generators, subgraph samplers and edge-list I/O.

Flickr/Twitter proxies (see DESIGN.md's substitution note), the paper's
synthetic densification, Forest Fire sampling [22], the Fig. 1 worked
example, a plain-text edge-list reader/writer, and the out-of-core
binary edge-array format (``binary_io``) whose ``mmap`` mode loads
multi-million-edge graphs in O(header) time.
"""

from repro.datasets.binary_io import (
    BinaryDataset,
    BinaryHeader,
    binary_digest,
    is_binary_file,
    read_binary,
    read_header,
    write_binary,
    write_binary_arrays,
)
from repro.datasets.drift import DriftWorkload
from repro.datasets.forest_fire import forest_fire_sample
from repro.datasets.io import (
    content_digest,
    dataset_digest,
    format_edge_list,
    graph_digest,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.datasets.synthetic import (
    barabasi_albert_uncertain,
    beta_probability_sampler,
    densify,
    erdos_renyi_uncertain,
    figure1_graph,
    figure1_sparsified,
    flickr_like,
    forest_fire_like_arrays,
    grid_uncertain,
    twitter_like,
)

__all__ = [
    "BinaryDataset",
    "BinaryHeader",
    "DriftWorkload",
    "barabasi_albert_uncertain",
    "beta_probability_sampler",
    "binary_digest",
    "content_digest",
    "dataset_digest",
    "densify",
    "erdos_renyi_uncertain",
    "figure1_graph",
    "figure1_sparsified",
    "flickr_like",
    "forest_fire_like_arrays",
    "forest_fire_sample",
    "format_edge_list",
    "graph_digest",
    "grid_uncertain",
    "is_binary_file",
    "parse_edge_list",
    "read_binary",
    "read_edge_list",
    "read_header",
    "twitter_like",
    "write_binary",
    "write_binary_arrays",
    "write_edge_list",
]
