"""Dataset generators, subgraph samplers and edge-list I/O.

Flickr/Twitter proxies (see DESIGN.md's substitution note), the paper's
synthetic densification, Forest Fire sampling [22], the Fig. 1 worked
example, and a plain-text edge-list reader/writer.
"""

from repro.datasets.forest_fire import forest_fire_sample
from repro.datasets.io import (
    content_digest,
    dataset_digest,
    format_edge_list,
    graph_digest,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.datasets.synthetic import (
    barabasi_albert_uncertain,
    beta_probability_sampler,
    densify,
    erdos_renyi_uncertain,
    figure1_graph,
    figure1_sparsified,
    flickr_like,
    grid_uncertain,
    twitter_like,
)

__all__ = [
    "barabasi_albert_uncertain",
    "beta_probability_sampler",
    "content_digest",
    "dataset_digest",
    "densify",
    "erdos_renyi_uncertain",
    "figure1_graph",
    "figure1_sparsified",
    "flickr_like",
    "forest_fire_sample",
    "format_edge_list",
    "graph_digest",
    "grid_uncertain",
    "parse_edge_list",
    "read_edge_list",
    "twitter_like",
    "write_edge_list",
]
