"""Forest Fire subgraph sampling (Leskovec & Faloutsos [22]).

The paper uses Forest Fire to cut its 78k-vertex Flickr graph down to a
5000-vertex "Flickr reduced" on which LP is feasible (section 6.1) and
to seed the synthetic density sweep.  The sampler "burns" outward from
random seeds: at each burned vertex a geometrically-distributed number
of unburned neighbours catches fire, biasing the sample towards dense,
community-like regions (unlike uniform vertex sampling).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def forest_fire_sample(
    graph: UncertainGraph,
    target_vertices: int,
    forward_probability: float = 0.7,
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
) -> UncertainGraph:
    """Induced subgraph on ~``target_vertices`` Forest-Fire-burned vertices.

    Parameters
    ----------
    graph:
        Source uncertain graph.
    target_vertices:
        Number of vertices to collect (capped at ``|V|``).
    forward_probability:
        Burning probability ``p_f``; each burned vertex ignites
        ``Geometric(1 - p_f) - 1`` of its unburned neighbours (mean
        ``p_f / (1 - p_f)``).
    """
    if not (0.0 < forward_probability < 1.0):
        raise ValueError(
            f"forward_probability must be in (0, 1), got {forward_probability}"
        )
    rng = ensure_rng(rng)
    vertices = graph.vertices()
    target = min(target_vertices, len(vertices))
    burned: set = set()
    while len(burned) < target:
        seed = vertices[int(rng.integers(0, len(vertices)))]
        if seed in burned:
            continue
        queue = deque([seed])
        burned.add(seed)
        while queue and len(burned) < target:
            u = queue.popleft()
            unburned = [v for v in graph.neighbors(u) if v not in burned]
            if not unburned:
                continue
            # Geometric(1 - p_f) - 1 ignitions, capped at the frontier size.
            ignitions = rng.geometric(1.0 - forward_probability) - 1
            ignitions = min(int(ignitions), len(unburned))
            if ignitions <= 0:
                continue
            picks = rng.choice(len(unburned), size=ignitions, replace=False)
            for idx in picks:
                v = unburned[int(idx)]
                if v not in burned:
                    burned.add(v)
                    queue.append(v)
                    if len(burned) >= target:
                        break
    return graph.induced_subgraph(
        burned, name=name or f"forest_fire({target})<{graph.name}>"
    )
