"""Compact binary edge-array dataset format (out-of-core I/O).

Layout (little-endian, 64-byte header + three contiguous sections)::

    offset  size  field
    0       4     magic  b"RPBG"
    4       2     format version (currently 1)
    6       2     flags (reserved, 0)
    8       8     vertex count  n   (uint64)
    16      8     edge count    m   (uint64)
    24      1     src  dtype code (1 = int64)
    25      1     dst  dtype code (1 = int64)
    26      1     prob dtype code (2 = float64)
    27      5     reserved (zero)
    32      32    SHA-256 of the payload (raw bytes)
    64      8m    src   int64[m]
    64+8m   8m    dst   int64[m]
    64+16m  8m    prob  float64[m]

The header digest covers exactly the three payload sections, so

- :func:`binary_digest` recovers a content digest in O(header) — the
  artifact server keys its caches on it without hashing gigabytes per
  request, and
- :meth:`BinaryDataset.verify` (or ``read_binary(..., verify=True)``)
  re-hashes the payload against it, detecting any torn write or
  corruption.

``read_binary(path, mmap=True)`` returns ``np.memmap``-backed arrays:
the file is *not* copied into RAM — pages fault in lazily as the
algorithms touch them, and concurrent processes mapping the same file
share the pages read-only.  ``BinaryDataset.graph()`` wraps the arrays
in an :class:`~repro.core.array_graph.EdgeArrayGraph`, which feeds
``SparsificationState`` / ``BackbonePlan`` / ``WorldSampler`` directly.

Vertices are dense ids ``0 .. n-1``: the binary format stores topology,
not labels.  ``write_binary`` therefore insists the graph's vertices
*are* ``0 .. n-1`` in indexer order unless ``allow_relabel=True``, in
which case labels are mapped through ``vertex_indexer()`` (the CLI
``convert`` subcommand does this, with a notice).

All structural failures — bad magic, unknown version/dtypes, truncated
or oversized files, digest mismatches — raise
:class:`~repro.exceptions.GraphError`.
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass

import numpy as np

from repro.core.array_graph import EdgeArrayGraph
from repro.exceptions import GraphError

MAGIC = b"RPBG"
VERSION = 1
HEADER_SIZE = 64
_HEADER_STRUCT = struct.Struct("<4sHHQQBBB5s32s")
assert _HEADER_STRUCT.size == HEADER_SIZE

#: dtype codes the header records (room for compressed variants later).
DTYPE_INT64 = 1
DTYPE_FLOAT64 = 2

_BYTES_PER_EDGE = 24  # int64 src + int64 dst + float64 prob


@dataclass(frozen=True)
class BinaryHeader:
    """Decoded header of a binary dataset file."""

    n_vertices: int
    n_edges: int
    digest: str  # sha256 hex of the payload sections
    version: int = VERSION

    @property
    def payload_size(self) -> int:
        return self.n_edges * _BYTES_PER_EDGE

    @property
    def file_size(self) -> int:
        return HEADER_SIZE + self.payload_size


def pack_header(n_vertices: int, n_edges: int, digest: bytes) -> bytes:
    """Encode the 64-byte header (``digest`` is the raw 32-byte hash)."""
    return _HEADER_STRUCT.pack(
        MAGIC, VERSION, 0, n_vertices, n_edges,
        DTYPE_INT64, DTYPE_INT64, DTYPE_FLOAT64, b"\0" * 5, digest,
    )


def parse_header(raw: bytes, source: str = "<bytes>") -> BinaryHeader:
    """Decode and validate a header; raises :class:`GraphError` when malformed."""
    if len(raw) < HEADER_SIZE:
        raise GraphError(
            f"{source}: truncated binary dataset header "
            f"({len(raw)} bytes, need {HEADER_SIZE})"
        )
    (magic, version, _flags, n_vertices, n_edges,
     src_dtype, dst_dtype, prob_dtype, _reserved, digest) = \
        _HEADER_STRUCT.unpack(raw[:HEADER_SIZE])
    if magic != MAGIC:
        raise GraphError(
            f"{source}: not a binary dataset (bad magic {magic!r})"
        )
    if version != VERSION:
        raise GraphError(
            f"{source}: unsupported binary dataset version {version} "
            f"(this build reads version {VERSION})"
        )
    if (src_dtype, dst_dtype, prob_dtype) != \
            (DTYPE_INT64, DTYPE_INT64, DTYPE_FLOAT64):
        raise GraphError(
            f"{source}: unsupported dtype codes "
            f"({src_dtype}, {dst_dtype}, {prob_dtype})"
        )
    return BinaryHeader(
        n_vertices=int(n_vertices), n_edges=int(n_edges),
        digest=digest.hex(), version=int(version),
    )


def is_binary_data(raw: bytes) -> bool:
    """Sniff: do these bytes start a binary dataset?"""
    return raw[:4] == MAGIC


def is_binary_file(path: "str | os.PathLike") -> bool:
    """Sniff a file on disk by its magic (False for unreadable/short files)."""
    try:
        with open(path, "rb") as fh:
            return is_binary_data(fh.read(4))
    except OSError:
        return False


def read_header(path: "str | os.PathLike") -> BinaryHeader:
    """Read and validate a file's header, including the size invariant.

    O(header): reads 64 bytes and one ``stat``.  A file whose size
    disagrees with ``m`` is reported as truncated/corrupt here, before
    any payload access.
    """
    source = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read(HEADER_SIZE)
    except OSError as error:
        raise GraphError(f"cannot read binary dataset {source}: {error}") \
            from error
    header = parse_header(raw, source=source)
    actual = os.path.getsize(path)
    if actual != header.file_size:
        raise GraphError(
            f"{source}: binary dataset truncated or corrupt: "
            f"{actual} bytes on disk, header implies {header.file_size}"
        )
    return header


def binary_digest(path: "str | os.PathLike") -> str:
    """Content digest of a binary dataset in O(header) time.

    Returns the header's payload SHA-256 — the digest
    :func:`write_binary` computed over the sections it wrote.  Callers
    that must *trust* the digest (first registration in the artifact
    server) verify it against the payload once via
    :meth:`BinaryDataset.verify`; afterwards this header read suffices.
    """
    return read_header(path).digest


def _payload_digest(src: np.ndarray, dst: np.ndarray,
                    prob: np.ndarray) -> bytes:
    digest = hashlib.sha256()
    for section in (src, dst, prob):
        digest.update(np.ascontiguousarray(section).data)
    return digest.digest()


class BinaryDataset:
    """A loaded binary dataset: header plus the three edge arrays.

    ``src`` / ``dst`` / ``probabilities`` are ``np.memmap`` views when
    the dataset was opened with ``mmap=True`` (read-only, lazily paged,
    page-shared between processes) and plain arrays otherwise.
    """

    def __init__(
        self,
        header: BinaryHeader,
        src: np.ndarray,
        dst: np.ndarray,
        probabilities: np.ndarray,
        path: "str | None" = None,
        name: str = "",
    ) -> None:
        self.header = header
        self.src = src
        self.dst = dst
        self.probabilities = probabilities
        self.path = path
        self.name = name or (os.path.basename(path) if path else "")

    @property
    def n_vertices(self) -> int:
        return self.header.n_vertices

    @property
    def n_edges(self) -> int:
        return self.header.n_edges

    @property
    def digest(self) -> str:
        """The header's payload SHA-256 (hex) — the cache-key digest."""
        return self.header.digest

    def verify(self) -> None:
        """Re-hash the payload against the header digest.

        Raises :class:`GraphError` on mismatch.  Costs one sequential
        pass over the sections (pages each in once under ``mmap``).
        """
        actual = _payload_digest(self.src, self.dst, self.probabilities).hex()
        if actual != self.header.digest:
            where = self.path or "<memory>"
            raise GraphError(
                f"{where}: binary dataset payload does not match its header "
                f"digest (file corrupt or rewritten): "
                f"header {self.header.digest[:12]}…, payload {actual[:12]}…"
            )

    def graph(self, materialise: bool = False, name: "str | None" = None):
        """The dataset as a graph.

        Default: an :class:`EdgeArrayGraph` *view* over the arrays — no
        copy, out-of-core when mmap-backed.  ``materialise=True`` builds
        a full dict-adjacency :class:`UncertainGraph` (only sensible for
        graphs that fit comfortably in RAM).
        """
        view = EdgeArrayGraph(
            self.n_vertices, self.src, self.dst, self.probabilities,
            name=self.name if name is None else name,
            validate=False,  # writer validated; digest pins the bytes
        )
        return view.materialise() if materialise else view


def write_binary_arrays(
    path: "str | os.PathLike",
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    probabilities: np.ndarray,
    validate: bool = True,
) -> BinaryHeader:
    """Write edge arrays as a binary dataset; returns the header written.

    ``validate=True`` runs the :class:`EdgeArrayGraph` well-formedness
    checks first, so no malformed file is ever produced with a valid
    digest.
    """
    src = np.ascontiguousarray(src, dtype="<i8").reshape(-1)
    dst = np.ascontiguousarray(dst, dtype="<i8").reshape(-1)
    prob = np.ascontiguousarray(probabilities, dtype="<f8").reshape(-1)
    if validate:
        EdgeArrayGraph(n_vertices, src, dst, prob, validate=True)
    if not (len(src) == len(dst) == len(prob)):
        raise GraphError(
            f"edge array lengths disagree: src={len(src)} dst={len(dst)} "
            f"prob={len(prob)}"
        )
    digest = _payload_digest(src, dst, prob)
    header = BinaryHeader(
        n_vertices=int(n_vertices), n_edges=len(prob), digest=digest.hex(),
    )
    with open(path, "wb") as fh:
        fh.write(pack_header(header.n_vertices, header.n_edges, digest))
        fh.write(src.data)
        fh.write(dst.data)
        fh.write(prob.data)
    return header


def write_binary(
    graph,
    path: "str | os.PathLike",
    allow_relabel: bool = False,
) -> BinaryHeader:
    """Write a graph (``UncertainGraph`` or ``EdgeArrayGraph``) to ``path``.

    The format stores dense integer ids only.  When the graph's labels
    are exactly the ints ``0 .. n-1`` (in any iteration order) they are
    written as-is — a lossless round trip.  Any other label set is
    *lossy* (labels are replaced by their dense indexer positions) and
    requires an explicit ``allow_relabel=True``; otherwise
    :class:`GraphError` is raised.
    """
    n = graph.number_of_vertices()
    endpoints = graph.edge_index_array()
    labels = list(graph.vertices())
    if labels == list(range(n)):
        src, dst = endpoints[:, 0], endpoints[:, 1]
    else:
        # Labels may still be the dense ints in scrambled order (e.g. a
        # generator inserting vertices in edge-creation order): map the
        # indexer positions back to the true labels so ids round-trip.
        try:
            label_array = np.asarray(labels, dtype=np.int64)
            dense_set = len(labels) == n and np.array_equal(
                np.sort(label_array), np.arange(n, dtype=np.int64)
            )
        except (TypeError, ValueError, OverflowError):
            dense_set = False
        if dense_set:
            src = label_array[endpoints[:, 0]]
            dst = label_array[endpoints[:, 1]]
        elif allow_relabel:
            src, dst = endpoints[:, 0], endpoints[:, 1]
        else:
            raise GraphError(
                "binary datasets store dense integer vertices 0..n-1; "
                "this graph has other labels — pass allow_relabel=True "
                "to map them through vertex_indexer() (lossy: labels "
                "are dropped)"
            )
    return write_binary_arrays(
        path, n, src, dst,
        graph.probability_array(),
        validate=False,  # edge views of a live graph are well-formed
    )


def read_binary(
    path: "str | os.PathLike",
    mmap: bool = False,
    verify: bool = False,
    name: str = "",
) -> BinaryDataset:
    """Load a binary dataset.

    Parameters
    ----------
    path:
        Dataset file.
    mmap:
        ``True`` returns read-only ``np.memmap`` sections — O(header)
        load time, lazy paging, cross-process page sharing.  ``False``
        reads the sections into RAM (still one bulk ``fromfile`` per
        section, no Python-level loop).
    verify:
        Re-hash the payload against the header digest before returning
        (one sequential pass; raises :class:`GraphError` on mismatch).
    name:
        Optional dataset label (defaults to the file's basename).

    Raises
    ------
    GraphError
        On bad magic, unsupported version/dtypes, size mismatch
        (truncation), or — with ``verify=True`` — digest mismatch.
    """
    header = read_header(path)
    m = header.n_edges
    offsets = (HEADER_SIZE, HEADER_SIZE + 8 * m, HEADER_SIZE + 16 * m)
    if m == 0:
        # mmap cannot map zero bytes; an edgeless dataset is just arrays.
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
        prob = np.empty(0, dtype=np.float64)
    elif mmap:
        src = np.memmap(path, dtype="<i8", mode="r", offset=offsets[0],
                        shape=(m,))
        dst = np.memmap(path, dtype="<i8", mode="r", offset=offsets[1],
                        shape=(m,))
        prob = np.memmap(path, dtype="<f8", mode="r", offset=offsets[2],
                         shape=(m,))
    else:
        with open(path, "rb") as fh:
            fh.seek(HEADER_SIZE)
            src = np.fromfile(fh, dtype="<i8", count=m)
            dst = np.fromfile(fh, dtype="<i8", count=m)
            prob = np.fromfile(fh, dtype="<f8", count=m)
        if len(prob) != m:  # pragma: no cover - read_header checks size
            raise GraphError(f"{os.fspath(path)}: binary dataset truncated")
    dataset = BinaryDataset(
        header, src, dst, prob, path=os.fspath(path), name=name,
    )
    if verify:
        dataset.verify()
    return dataset
