"""repro — Uncertain Graph Sparsification.

Reproduction of Parchas, Papailiou, Papadias & Bonchi, *Uncertain Graph
Sparsification* (ICDE 2019 extended abstract / arXiv:1611.04308).

Quickstart
----------
>>> from repro import datasets, sparsify
>>> from repro.metrics import degree_discrepancy_mae
>>> g = datasets.twitter_like(n=200, seed=1)
>>> g_sparse = sparsify(g, alpha=0.3, variant="EMD^R-t", rng=1)
>>> degree_discrepancy_mae(g, g_sparse) < 0.5
True

Package layout
--------------
- :mod:`repro.core` — the uncertain-graph model and the paper's
  sparsifiers (GDB, EMD, LP, backbones, entropy, discrepancies),
- :mod:`repro.baselines` — NI cut-sparsifier and Baswana–Sen spanner
  adaptations, plus random / representative baselines,
- :mod:`repro.sampling` — possible-world samplers, exact enumeration,
  Monte-Carlo and stratified estimators,
- :mod:`repro.queries` — PR / SP / RL / CC / connectivity queries,
- :mod:`repro.metrics` — earth mover's distance, structural MAEs,
  relative entropy, variance protocol,
- :mod:`repro.datasets` — synthetic generators, Forest Fire sampling,
  edge-list I/O,
- :mod:`repro.experiments` — one module per paper table / figure.
"""

from repro import backend, baselines, core, datasets, metrics, queries, sampling, utils
from repro.backend import available_backends, resolve_backend
from repro.core import (
    EMDConfig,
    GDBConfig,
    UncertainGraph,
    available_variants,
    emd,
    gdb,
    graph_entropy,
    lp_sparsify,
    parse_variant,
    relative_entropy,
    sparsify,
)
from repro.exceptions import (
    CalibrationError,
    EstimationError,
    GraphError,
    NotConnectedError,
    ProbabilityError,
    ReproError,
    SparsificationError,
)
from repro.sampling import MonteCarloEstimator, WorldSampler

__version__ = "1.0.0"

__all__ = [
    "CalibrationError",
    "EMDConfig",
    "EstimationError",
    "GDBConfig",
    "GraphError",
    "MonteCarloEstimator",
    "NotConnectedError",
    "ProbabilityError",
    "ReproError",
    "SparsificationError",
    "UncertainGraph",
    "WorldSampler",
    "__version__",
    "available_backends",
    "available_variants",
    "backend",
    "baselines",
    "core",
    "datasets",
    "emd",
    "gdb",
    "graph_entropy",
    "lp_sparsify",
    "metrics",
    "parse_variant",
    "queries",
    "relative_entropy",
    "resolve_backend",
    "sampling",
    "sparsify",
    "utils",
]
