"""Batched world ensembles: all Monte-Carlo worlds as one array program.

:class:`~repro.sampling.worlds.World` materialises a fresh CSR per
sample, and every query walks worlds one at a time — ``N`` passes
through the Python interpreter.  This module flips the layout: a
:class:`WorldBatch` holds an ``(N, m)`` Bernoulli mask matrix over one
shared parent CSR (:class:`BatchTopology`), and each graph primitive
runs over *all* worlds simultaneously as dense NumPy kernels —

- batched degrees via masked prefix sums over the shared CSR,
- batched BFS through the swappable ensemble kernels of
  :mod:`repro.sampling.kernels` (bit-packed uint64 frontiers by
  default; the original boolean-frontier kernel stays selectable and
  bit-identical),
- batched *weighted* distances (the ``-log p`` most-probable-path
  transform) via the bucketed delta-stepping kernel,
- batched connected components via min-label propagation with pointer
  jumping,
- batched triangle counting from a precomputed parent triangle table.

Every kernel is *bit-identical* to its per-world counterpart in
:class:`~repro.sampling.worlds.World`: the alive directed edges of a
world appear in the shared CSR in exactly the order the per-world CSR
lists them (a stable sort restricted to a subsequence preserves order),
and dead edges only ever contribute exact no-ops (``+0.0``, ``| False``,
``min(.., n)``).  The equivalence is enforced by the seeded property
tests in ``tests/test_batch.py``.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

import numpy as np

from repro.backend import resolve_backend
from repro.sampling import kernels
from repro.sampling.worlds import World

#: Default memory budget (bytes) for one batch chunk's working arrays.
DEFAULT_BATCH_BYTES = 64 * 1024 * 1024

#: Environment override for the default chunk working-set budget (bytes).
#: Only consulted when no explicit ``budget_bytes`` is passed.
BATCH_BYTES_ENV = "REPRO_BATCH_BYTES"


def kernel_world_bytes(n_edges: int, n_vertices: int, kernel: str | None = None) -> int:
    """Per-world working-set estimate (bytes) of a host BFS kernel.

    The historical model assumed the dense *boolean* kernel's scratch —
    one ``(B, 2m)`` float64-equivalent activation row — which
    overestimates the default packed-uint64 kernel ~8x: packed frontiers
    carry 1 *bit* per (world, directed edge) plus the uint64 word
    matrices, so its edge term is ``4m`` bytes/world (packed liveness +
    packed mask layout) against the boolean kernel's ``32m``.  Both
    models share the ``(B, n)`` vertex-state term (distance matrix,
    reached/frontier rows, bincount scratch).
    """
    name = kernels.DEFAULT_BFS_KERNEL if kernel is None else kernel
    kernels.resolve_bfs_kernel(name)  # fail fast on typos
    vertex_term = 32 * max(n_vertices, 1)
    if name == "packed":
        return 2 * max(2 * n_edges, 1) + vertex_term
    return 16 * max(2 * n_edges, 1) + vertex_term


def auto_chunk_size(
    n_samples: int,
    n_edges: int,
    n_vertices: int = 0,
    budget_bytes: int | None = None,
    kernel: str | None = None,
    backend=None,
) -> int:
    """Chunk size keeping one chunk's working set near the byte budget.

    Budget resolution, in priority order: an explicit ``budget_bytes``;
    the ``REPRO_BATCH_BYTES`` environment variable; for a non-reference
    backend, half the device's reported free memory
    (:meth:`~repro.backend.base.ArrayBackend.free_memory`); else
    :data:`DEFAULT_BATCH_BYTES`.

    The per-world footprint is kernel-aware on the host
    (:func:`kernel_world_bytes` — the packed-uint64 default moves ~8x
    fewer bytes than the dense boolean kernel) and backend-supplied for
    device backends (:meth:`~repro.backend.base.ArrayBackend.world_bytes`
    — the portable xp kernels run dense, dtype-correct float64/bool
    matrices).

    Chunk boundaries remain a pure function of the problem shape and the
    resolved budget — sequential-mode estimates are chunk-invariant by
    the row-major stream contract, so re-budgeting never changes results.
    """
    if budget_bytes is None:
        env = os.environ.get(BATCH_BYTES_ENV)
        if env:
            budget_bytes = int(env)
    per_world = None
    if backend is not None:
        xp = resolve_backend(backend)
        if not xp.is_reference:
            per_world = xp.world_bytes(n_edges, n_vertices)
            if budget_bytes is None:
                free = xp.free_memory()
                if free:
                    budget_bytes = free // 2
    if budget_bytes is None:
        budget_bytes = DEFAULT_BATCH_BYTES
    if per_world is None:
        per_world = kernel_world_bytes(n_edges, n_vertices, kernel)
    return int(max(1, min(n_samples, budget_bytes // max(per_world, 1))))


def auto_batch_size(
    n_samples: int,
    n_edges: int,
    n_vertices: int = 0,
    budget_bytes: int | None = None,
    kernel: str | None = None,
) -> int:
    """Compatibility alias for :func:`auto_chunk_size` (host kernels only).

    Kept as the stable public name; sizes for the *default* BFS kernel
    unless ``kernel=`` names another, so the packed kernel now gets
    chunks ~8x larger than the historical boolean-scratch model allowed.
    """
    return auto_chunk_size(
        n_samples,
        n_edges,
        n_vertices=n_vertices,
        budget_bytes=budget_bytes,
        kernel=kernel,
    )


class BatchTopology:
    """Shared parent-graph CSR reused by every chunk of a sampling run.

    Directed edges are sorted by source with a stable sort — the same
    construction :class:`~repro.sampling.worlds.World` applies to its
    alive subset — so restricting the directed arrays to one world's
    alive edges reproduces that world's CSR order exactly.

    Attributes
    ----------
    indptr, indices:
        Parent CSR over all ``2m`` directed edges.
    dir_source:
        Source vertex of each directed edge (sorted, ascending).
    dir_edge:
        Undirected parent-edge id of each directed edge — the column to
        consult in a mask matrix.
    """

    __slots__ = (
        "n", "m", "edge_vertices", "indptr", "indices", "dir_source",
        "dir_edge", "_triangles", "_target_grouping",
    )

    def __init__(self, n: int, edge_vertices: np.ndarray) -> None:
        self.n = int(n)
        edge_vertices = np.asarray(edge_vertices, dtype=np.int64)
        self.edge_vertices = edge_vertices
        self.m = len(edge_vertices)
        u = edge_vertices[:, 0]
        v = edge_vertices[:, 1]
        sources = np.concatenate([u, v])
        targets = np.concatenate([v, u])
        order = np.argsort(sources, kind="stable")
        self.dir_source = sources[order]
        self.indices = targets[order]
        self.dir_edge = np.concatenate(
            [np.arange(self.m), np.arange(self.m)]
        )[order]
        counts = np.bincount(sources, minlength=n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._triangles: tuple[np.ndarray, np.ndarray] | None = None
        self._target_grouping: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def target_grouping(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed edges grouped by *target*: ``(order, starts, empty)``.

        ``order`` stably sorts the directed edges by target vertex,
        ``starts`` gives each vertex's segment offset (for ``reduceat``
        over arrays padded with one identity column), and ``empty``
        flags vertices with no incident edges (whose ``reduceat`` slot
        must be overwritten with the identity).  Built lazily and
        cached — the traversal kernels scatter into targets every
        level/relaxation.
        """
        if self._target_grouping is None:
            order = np.argsort(self.indices, kind="stable")
            counts = np.bincount(self.indices, minlength=self.n)
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
            self._target_grouping = (order, starts, counts == 0)
        return self._target_grouping

    def triangle_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Parent triangles as ``(corners (T, 3), edge_ids (T, 3))``.

        Each triangle is listed once (``u < v < w``); built lazily and
        cached since it only depends on the parent graph.
        """
        if self._triangles is None:
            n, m = self.n, self.m
            u, v = self.edge_vertices[:, 0], self.edge_vertices[:, 1]
            lo, hi = np.minimum(u, v), np.maximum(u, v)
            # Sorted key table for (endpoint pair) -> undirected edge id.
            keys = lo * n + hi
            key_order = np.argsort(keys, kind="stable")
            sorted_keys = keys[key_order]
            corners: list[np.ndarray] = []
            edge_ids: list[np.ndarray] = []
            indptr, indices, dir_edge = self.indptr, self.indices, self.dir_edge
            for eid in range(m):
                a, b = int(lo[eid]), int(hi[eid])
                nbrs_b = indices[indptr[b]:indptr[b + 1]]
                eids_b = dir_edge[indptr[b]:indptr[b + 1]]
                # Close the wedge a-b-w with w > b so each triangle
                # anchors at its lexicographically smallest edge.
                grow = nbrs_b > b
                if not grow.any():
                    continue
                cand_w = nbrs_b[grow]
                probe = np.searchsorted(sorted_keys, a * n + cand_w)
                probe = np.minimum(probe, m - 1)
                closed = sorted_keys[probe] == a * n + cand_w
                if not closed.any():
                    continue
                w_ids = cand_w[closed]
                corners.append(
                    np.stack([
                        np.full(len(w_ids), a), np.full(len(w_ids), b), w_ids,
                    ], axis=1)
                )
                edge_ids.append(
                    np.stack([
                        np.full(len(w_ids), eid),
                        key_order[probe[closed]],
                        eids_b[grow][closed],
                    ], axis=1)
                )
            if corners:
                self._triangles = (
                    np.concatenate(corners).astype(np.int64),
                    np.concatenate(edge_ids).astype(np.int64),
                )
            else:
                self._triangles = (
                    np.empty((0, 3), dtype=np.int64),
                    np.empty((0, 3), dtype=np.int64),
                )
        return self._triangles


class WorldBatch:
    """An ensemble of ``N`` possible worlds evaluated as array programs.

    Parameters
    ----------
    n:
        Vertex count of the parent graph.
    edge_vertices:
        ``(m, 2)`` dense endpoint ids of the parent edges.
    masks:
        ``(N, m)`` boolean matrix; row ``i`` selects the alive edges of
        world ``i``.
    topology:
        Optional precomputed :class:`BatchTopology` (one per graph —
        the samplers cache and share it across chunks).
    edge_weights:
        Optional ``(m,)`` non-negative weights per parent edge (the
        samplers attach the ``-log p`` most-probable-path transform);
        required by :meth:`weighted_distances`.
    bfs_kernel:
        Frontier kernel name for :meth:`bfs_distances` (``"packed"`` /
        ``"boolean"``); ``None`` uses
        :data:`repro.sampling.kernels.DEFAULT_BFS_KERNEL`.  All kernels
        return bit-identical distances — the knob trades memory traffic,
        never answers.
    backend:
        Array backend for the traversal methods — ``None`` / ``"numpy"``
        (the reference, running the specialised host kernels above,
        bit-identical to always), or any name from
        :func:`repro.backend.available_backends` to run the portable
        ``xp`` kernel formulations on that namespace.  Non-traversal
        batch ops (degrees, components, pagerank, triangles) stay host
        NumPy regardless.

    Examples
    --------
    >>> from repro.core import UncertainGraph
    >>> from repro.sampling import WorldSampler
    >>> g = UncertainGraph([(0, 1, 0.5), (1, 2, 1.0)])
    >>> batch = WorldSampler(g).sample_batch(8, rng=0)
    >>> batch.degrees().shape
    (8, 3)
    """

    __slots__ = (
        "n", "m", "n_worlds", "masks", "topology", "edge_weights",
        "bfs_kernel", "backend", "_alive_directed", "_labels",
        "_packed_masks", "_packed_alive", "_alive_ordered", "_xp_plan",
    )

    def __init__(
        self,
        n: int,
        edge_vertices: np.ndarray,
        masks: np.ndarray,
        topology: BatchTopology | None = None,
        edge_weights: np.ndarray | None = None,
        bfs_kernel: str | None = None,
        backend=None,
    ) -> None:
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim != 2:
            raise ValueError(f"masks must be 2-D (worlds, edges), got {masks.shape}")
        self.n = int(n)
        self.n_worlds, self.m = masks.shape
        if len(edge_vertices) != self.m:
            raise ValueError(
                f"masks have {self.m} columns but the graph has "
                f"{len(edge_vertices)} edges"
            )
        if edge_weights is not None:
            edge_weights = np.asarray(edge_weights, dtype=np.float64)
            if edge_weights.shape != (self.m,):
                raise ValueError(
                    f"edge_weights must have shape ({self.m},), "
                    f"got {edge_weights.shape}"
                )
        if bfs_kernel is not None:
            kernels.resolve_bfs_kernel(bfs_kernel)  # fail fast on typos
        self.masks = masks
        self.topology = topology if topology is not None else BatchTopology(
            n, edge_vertices
        )
        self.edge_weights = edge_weights
        self.bfs_kernel = bfs_kernel
        self.backend = resolve_backend(backend)
        self._alive_directed: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._packed_masks = None
        self._packed_alive = None
        self._alive_ordered = None
        self._xp_plan = None

    # -- per-world views ----------------------------------------------------
    def world(self, index: int) -> World:
        """Materialise world ``index`` as a legacy :class:`World`."""
        return World(
            self.n, self.topology.edge_vertices, self.masks[index],
            edge_weights=self.edge_weights,
        )

    def iter_worlds(self) -> Iterator[World]:
        """Yield every world of the ensemble as a legacy :class:`World`."""
        for i in range(self.n_worlds):
            yield self.world(i)

    # -- basic structure ----------------------------------------------------
    def alive_directed(self) -> np.ndarray:
        """``(N, 2m)`` liveness of each directed CSR edge per world (cached)."""
        if self._alive_directed is None:
            self._alive_directed = self.masks[:, self.topology.dir_edge]
        return self._alive_directed

    def edge_counts(self) -> np.ndarray:
        """``(N,)`` alive-edge count per world."""
        return self.masks.sum(axis=1)

    def degrees(self) -> np.ndarray:
        """``(N, n)`` degree matrix (masked prefix sums over the CSR)."""
        alive = self.alive_directed()
        prefix = np.zeros((self.n_worlds, alive.shape[1] + 1), dtype=np.int64)
        np.cumsum(alive, axis=1, out=prefix[:, 1:])
        indptr = self.topology.indptr
        return prefix[:, indptr[1:]] - prefix[:, indptr[:-1]]

    # -- traversal -----------------------------------------------------------
    def bfs_distances(
        self,
        source: int,
        targets: "np.ndarray | list[int] | None" = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """``(N, n)`` BFS distances from ``source`` in every world (-1 unreachable).

        Dispatches to an ensemble kernel from
        :mod:`repro.sampling.kernels` — bit-packed uint64 frontiers by
        default, the boolean-frontier original via
        ``kernel="boolean"`` — every kernel returning bit-identical
        distances.

        With ``targets``, a world retires as soon as every listed
        vertex has a distance — its other entries may then still read
        ``-1``, so only consume the target columns (the point-to-point
        query optimisation; BFS levels are deterministic, so the target
        distances are unaffected by the early exit).

        On a non-reference ``backend`` the portable xp formulation runs
        instead (``kernel`` does not apply there — the device kernel is
        its own frontier representation); BFS levels are representation-
        independent, so distances stay exactly equal.
        """
        if not self.backend.is_reference:
            return kernels.bfs_distances_xp(
                self, source, targets, backend=self.backend
            )
        run = kernels.resolve_bfs_kernel(
            kernel if kernel is not None else self.bfs_kernel
        )
        return run(self, source, targets)

    def weighted_distances(
        self,
        source: int,
        targets: "np.ndarray | list[int] | None" = None,
        weights: np.ndarray | None = None,
        delta: "float | None" = None,
    ) -> np.ndarray:
        """``(N, n)`` weighted distances in every world (``inf`` unreachable).

        Weights default to the batch's attached ``edge_weights`` (the
        samplers supply the ``-log p`` most-probable-path transform, so
        the result is ``-log`` of each pair's most probable path
        probability).  Computed by the batched delta-stepping kernel
        (:func:`repro.sampling.kernels.delta_stepping_distances`);
        ``targets`` enables the same per-world early exit as
        :meth:`bfs_distances` — only consume the target columns then.
        """
        if weights is None:
            weights = self.edge_weights
        if weights is None:
            raise ValueError(
                "no edge weights: pass weights= or build the batch through "
                "a WorldSampler (which attaches the -log p transform)"
            )
        if not self.backend.is_reference:
            return kernels.delta_stepping_distances_xp(
                self, source, weights, delta=delta, targets=targets,
                backend=self.backend,
            )
        return kernels.delta_stepping_distances(
            self, source, weights, delta=delta, targets=targets
        )

    def reachable_from(self, source: int) -> np.ndarray:
        """``(N, n)`` boolean reachability from ``source`` per world.

        Reachability is component membership, so one (cached) label
        propagation answers every source — much cheaper than a BFS per
        source for multi-pair reliability workloads.
        """
        labels = self.component_labels()
        return labels == labels[:, source][:, None]

    def is_connected(self) -> np.ndarray:
        """``(N,)`` booleans: world forms a single connected component."""
        if self.n <= 1:
            return np.ones(self.n_worlds, dtype=bool)
        return self.connected_component_count() == 1

    def component_labels(self) -> np.ndarray:
        """``(N, n)`` labels: each vertex mapped to its component's min id.

        Min-label propagation over the shared CSR with pointer jumping
        (``label <- label[label]``) between rounds, so convergence takes
        roughly log-diameter rounds instead of diameter.  Converged
        worlds drop out of the working set each round.  Cached: every
        connectivity-flavoured query on the batch shares one pass.
        """
        if self._labels is not None:
            return self._labels
        N, n = self.n_worlds, self.n
        labels = np.tile(np.arange(n, dtype=np.int32), (N, 1))
        if self.m == 0 or n == 0:
            self._labels = labels
            return labels
        alive = self.alive_directed()
        indptr, dst = self.topology.indptr, self.topology.indices
        empty = np.diff(indptr) == 0
        starts = indptr[:-1]
        sentinel = np.int32(n)
        rows = np.arange(N)
        while rows.size:
            current = labels[rows]
            # Min neighbour label per vertex: the CSR groups each
            # vertex's incident edges contiguously; a sentinel column
            # keeps reduceat well-defined for the trailing segment.
            cand = np.where(alive[rows], current[:, dst], sentinel)
            padded = np.concatenate(
                [cand, np.full((rows.size, 1), sentinel, dtype=np.int32)],
                axis=1,
            )
            mins = np.minimum.reduceat(padded, starts, axis=1)
            mins[:, empty] = sentinel
            new = np.minimum(current, mins)
            # Pointer jumping: labels are vertex ids of the same
            # component, so chasing them compresses chains.
            new = np.take_along_axis(new, new, axis=1)
            new = np.take_along_axis(new, new, axis=1)
            changed = (new != current).any(axis=1)
            labels[rows] = new
            rows = rows[changed]
        self._labels = labels
        return labels

    def connected_component_count(self) -> np.ndarray:
        """``(N,)`` number of connected components per world."""
        labels = self.component_labels()
        roots = labels == np.arange(self.n, dtype=np.int32)
        return roots.sum(axis=1)

    # -- local structure -----------------------------------------------------
    def triangle_counts(self) -> np.ndarray:
        """``(N, n)`` triangles through each vertex in each world."""
        N, n = self.n_worlds, self.n
        corners, edge_ids = self.topology.triangle_table()
        counts = np.zeros((N, n), dtype=np.int64)
        if len(corners) == 0:
            return counts
        masks = self.masks
        tri_alive = (
            masks[:, edge_ids[:, 0]]
            & masks[:, edge_ids[:, 1]]
            & masks[:, edge_ids[:, 2]]
        )
        w_idx, t_idx = np.nonzero(tri_alive)
        if w_idx.size == 0:
            return counts
        for corner in range(3):
            flat = w_idx * n + corners[t_idx, corner]
            counts += np.bincount(flat, minlength=N * n).reshape(N, n)
        return counts

    def clustering_coefficients(self) -> np.ndarray:
        """``(N, n)`` local clustering coefficients (0 for degree < 2)."""
        degrees = self.degrees()
        triangles = self.triangle_counts()
        denom = degrees * (degrees - 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            coefficients = (2 * triangles) / denom
        return np.where(denom > 0, coefficients, 0.0)
