"""Parallel batch execution: fan Monte-Carlo chunks over a process pool.

The batched engine (:mod:`repro.sampling.batch`) already splits an
estimation run into memory-bounded chunks, and chunks are embarrassingly
parallel: each one is a ``(B, m)`` mask matrix evaluated independently
through the ensemble kernels.  :class:`ParallelBatchExecutor` exploits
that — it keeps the exact chunk boundaries :func:`auto_chunk_size`
produces, ships chunks to a :class:`concurrent.futures.ProcessPoolExecutor`,
and stitches the outcome matrices back in submission order, so the
parallel schedule can never change the answer (the deterministic-
partitioning contract: fixed split points, order-preserving merge).

Two RNG regimes are supported, both independent of the worker count:

``rng_mode="sequential"`` (default)
    The parent draws every chunk's masks from the single RNG stream in
    chunk order — exactly the uniforms today's serial path consumes —
    and workers only evaluate.  Results are *bit-identical* to the
    serial batched path (and hence to the legacy per-world loop) under
    a fixed seed, for any ``workers``.
``rng_mode="spawn"``
    One independent child generator per chunk, derived up front via
    ``SeedSequence.spawn`` (through :meth:`numpy.random.Generator.spawn`).
    Workers sample their own masks, so no mask bytes cross the process
    boundary; results differ from the sequential stream but are still a
    pure function of ``(seed, chunk boundaries)`` — never of the pool
    schedule or worker count.

Workers rebuild the shared :class:`~repro.sampling.batch.BatchTopology`
once per process from the read-only parent arrays (pool initializer),
not once per chunk.  When ``workers <= 1``, the pool cannot start, or it
breaks mid-run, evaluation gracefully falls back in-process — same
chunks, same masks, same answer — with a single :class:`RuntimeWarning`
on failure.
"""

from __future__ import annotations

import os
import warnings
import weakref
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.backend import resolve_backend
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import EstimationError
from repro.sampling.batch import auto_chunk_size
from repro.sampling.worlds import WorldSampler
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.base import Query

#: Supported per-chunk RNG derivation strategies.
RNG_MODES = ("sequential", "spawn")

#: Every live process pool, tracked so long-lived processes (the job
#: server) can assert that no pool outlives its executor's close().
#: Weak references only: an executor dropped without close() still
#: lets its pool be collected.
_LIVE_POOLS: "weakref.WeakSet[ProcessPoolExecutor]" = weakref.WeakSet()


def active_pool_count() -> int:
    """Number of process pools currently held open by executors.

    The lifecycle invariant a long-lived process relies on: after every
    :meth:`ParallelBatchExecutor.close` (or context-manager exit) this
    returns to its prior value — no pool outlives a completed batch.
    """
    return len(_LIVE_POOLS)


def resolve_workers(workers: "int | None") -> int:
    """Normalise a ``workers`` knob: ``None`` means one per CPU."""
    if workers is None:
        return os.cpu_count() or 1
    return int(workers)


def chunk_counts(n_samples: int, chunk: int) -> list[int]:
    """Canonical chunk boundaries: full chunks, then the remainder.

    These are the split points the serial batched path already uses, so
    sequential-mode masks (and spawn-mode child generators) line up with
    it chunk for chunk.
    """
    if n_samples < 0:
        raise EstimationError(f"n_samples must be non-negative, got {n_samples}")
    if chunk < 1:
        raise EstimationError(f"chunk must be positive, got {chunk}")
    counts = [chunk] * (n_samples // chunk)
    if n_samples % chunk:
        counts.append(n_samples % chunk)
    return counts


# -- worker-process side -----------------------------------------------------
#: Per-process state installed by the pool initializer: the parent
#: arrays (read-only) and the BatchTopology rebuilt once per worker.
_WORKER_STATE: dict = {}


def _init_worker(
    n: int,
    edge_vertices: np.ndarray,
    probabilities: np.ndarray,
    query: "Query",
    backend: "str | None" = None,
) -> None:
    """Pool initializer: cache arrays + topology once per worker process.

    ``backend`` travels as its registry *spec string* — backend objects
    hold library handles that may not pickle — and each worker resolves
    its own instance once here.
    """
    from repro.sampling.batch import BatchTopology
    from repro.sampling.kernels import most_probable_path_weights

    edge_vertices = np.asarray(edge_vertices)
    probabilities = np.asarray(probabilities)
    for array in (edge_vertices, probabilities):
        if array.flags.owndata:
            array.setflags(write=False)
    _WORKER_STATE["n"] = int(n)
    _WORKER_STATE["edge_vertices"] = edge_vertices
    _WORKER_STATE["probabilities"] = probabilities
    _WORKER_STATE["query"] = query
    _WORKER_STATE["topology"] = BatchTopology(int(n), edge_vertices)
    _WORKER_STATE["backend"] = resolve_backend(backend)
    # The -log p transform rides the initializer (derived from the
    # probabilities already shipped), so weighted queries never pay
    # per-chunk weight IPC.
    _WORKER_STATE["edge_weights"] = most_probable_path_weights(probabilities)


def _init_worker_from_dataset(
    path: str, query: "Query", backend: "str | None" = None
) -> None:
    """Pool initializer for binary datasets: mmap instead of pickling.

    Each worker maps the ``src``/``dst``/``prob`` sections read-only
    (:func:`repro.datasets.binary_io.read_binary` with ``mmap=True``) and
    builds its state from the mapped arrays — the same values
    :func:`_init_worker` would have received over IPC, but shared
    through the page cache instead of copied per process.
    """
    from repro.datasets.binary_io import read_binary

    dataset = read_binary(path, mmap=True)
    graph = dataset.graph()
    _init_worker(
        graph.number_of_vertices(),
        graph.edge_index_array(),
        graph.probability_array(),
        query,
        backend=backend,
    )


def _pool_evaluate_masks(masks: np.ndarray) -> np.ndarray:
    """Worker task: evaluate one pre-drawn mask chunk."""
    from repro.queries.base import evaluate_query_batch
    from repro.sampling.batch import WorldBatch

    state = _WORKER_STATE
    batch = WorldBatch(
        state["n"], state["edge_vertices"], masks, topology=state["topology"],
        edge_weights=state["edge_weights"], backend=state.get("backend"),
    )
    return evaluate_query_batch(state["query"], batch)


def _draw_masks(
    chunk_rng: np.random.Generator, count: int, probabilities: np.ndarray
) -> np.ndarray:
    """Spawn-mode Bernoulli draw, shared by pool workers and the
    in-process fallback — one definition so the two sides of the
    worker-count-invariance contract cannot drift apart."""
    return chunk_rng.random((count, len(probabilities))) < probabilities


def _pool_sample_and_evaluate(chunk_rng: np.random.Generator, count: int) -> np.ndarray:
    """Worker task: draw ``count`` worlds from the chunk's own generator."""
    return _pool_evaluate_masks(
        _draw_masks(chunk_rng, count, _WORKER_STATE["probabilities"])
    )


class ParallelBatchExecutor:
    """Evaluate Monte-Carlo batch chunks concurrently on a process pool.

    Parameters
    ----------
    graph:
        The uncertain graph, or an existing :class:`WorldSampler` for it
        (the estimators pass their sampler so the cached topology is
        shared with any in-process evaluation).
    query:
        The query to evaluate; shipped to each worker once via the pool
        initializer, never per chunk.
    workers:
        Process count.  ``<= 1`` evaluates in-process (no pool at all);
        ``None`` means one worker per CPU.
    chunk_size:
        Worlds per chunk; ``None`` auto-sizes from the memory budget
        exactly like the serial batched path
        (:func:`repro.sampling.batch.auto_chunk_size`, which is
        backend- and kernel-footprint-aware).
    backend:
        Array backend for chunk evaluation (``None`` = the bit-identical
        NumPy reference).  The registry spec string rides the pool
        initializer, so every worker resolves its own instance; in
        sequential RNG mode results remain a pure function of the seed
        for any worker count *per backend* (bit-identical on the
        reference, tolerance-gated across backends).
    rng_mode:
        ``"sequential"`` (default) or ``"spawn"`` — see the module
        docstring for the determinism contract of each.
    dataset:
        Optional path to the binary dataset backing ``graph`` (or a
        :class:`~repro.datasets.binary_io.BinaryDataset` with one).
        When given, pool workers ``mmap`` the edge arrays from disk
        instead of receiving them pickled over IPC — the out-of-core
        path for large graphs.  The header's vertex/edge counts are
        checked against the sampler at construction; the values must be
        the graph's (the answer is a pure function of the arrays, so a
        matching dataset keeps results bit-identical to the in-IPC
        path).

    The pool is created lazily on first use and reused across runs (the
    adaptive estimator issues many small draws; the variance protocol
    many runs).  Call :meth:`close` — or use the instance as a context
    manager — to release it.

    Examples
    --------
    >>> from repro.core import UncertainGraph
    >>> from repro.queries import DegreeQuery
    >>> g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0)])
    >>> with ParallelBatchExecutor(g, DegreeQuery(3), workers=1) as ex:
    ...     ex.run(4, rng=0).shape
    (4, 3)
    """

    def __init__(
        self,
        graph: "UncertainGraph | WorldSampler",
        query: "Query",
        workers: "int | None" = 1,
        chunk_size: "int | None" = None,
        rng_mode: str = "sequential",
        dataset=None,
        backend=None,
    ) -> None:
        if rng_mode not in RNG_MODES:
            raise EstimationError(
                f"rng_mode must be one of {RNG_MODES}, got {rng_mode!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise EstimationError(f"chunk_size must be positive, got {chunk_size}")
        self.sampler = (
            graph if isinstance(graph, WorldSampler) else WorldSampler(graph)
        )
        self.query = query
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.rng_mode = rng_mode
        self.backend = resolve_backend(backend)
        self.dataset_path = self._resolve_dataset(dataset)
        self._pool: "ProcessPoolExecutor | None" = None
        self._pool_failed = False

    def _resolve_dataset(self, dataset) -> "str | None":
        if dataset is None:
            return None
        from repro.datasets.binary_io import BinaryDataset, read_header

        if isinstance(dataset, BinaryDataset):
            if dataset.path is None:
                raise EstimationError(
                    "dataset-backed execution needs an on-disk binary "
                    "dataset (this BinaryDataset has no path)"
                )
            path, header = dataset.path, dataset.header
        else:
            path = str(dataset)
            header = read_header(path)
        if header.n_vertices != self.sampler.n or header.n_edges != self.sampler.m:
            raise EstimationError(
                f"dataset {path!r} ({header.n_vertices} vertices, "
                f"{header.n_edges} edges) does not match the sampler "
                f"({self.sampler.n} vertices, {self.sampler.m} edges)"
            )
        return path

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "ParallelBatchExecutor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut the pool down (idempotent; serial executors are a no-op).

        Blocks until the worker processes are reaped, so on return
        :func:`active_pool_count` no longer counts this executor — the
        contract long-lived callers (the job server) shut down through.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True, cancel_futures=True)
            _LIVE_POOLS.discard(pool)

    # -- public API ----------------------------------------------------------
    def run(
        self, n_samples: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Sample and evaluate ``n_samples`` worlds: the ``(N, units)`` matrix.

        In sequential mode this consumes ``rng`` exactly like the serial
        batched path; in spawn mode it only advances the generator's
        spawn counter (child streams are derived, the parent stream is
        untouched).
        """
        if n_samples < 0:
            raise EstimationError(
                f"n_samples must be non-negative, got {n_samples}"
            )
        rng = ensure_rng(rng)
        if n_samples == 0:
            return np.empty((0, self.query.unit_count()), dtype=np.float64)
        counts = chunk_counts(n_samples, self._chunk_for(n_samples))
        if self.rng_mode == "spawn":
            tasks = self._spawn_tasks(rng, counts)
        else:
            tasks = self._sequential_tasks(rng, counts)
        return np.concatenate(self._evaluate_stream(tasks), axis=0)

    def map_masks(self, mask_chunks: Iterable[np.ndarray]) -> np.ndarray:
        """Evaluate pre-drawn mask chunks, rows stitched in chunk order.

        The escape hatch for callers that need custom mask construction
        (the stratified estimator overwrites its conditioned columns):
        chunks stream through the pool with bounded look-ahead, so a
        lazy generator keeps parent memory at a few chunks.
        """
        def tasks() -> Iterator[tuple]:
            for masks in mask_chunks:
                masks = np.asarray(masks, dtype=bool)
                yield (
                    _pool_evaluate_masks,
                    (masks,),
                    lambda m=masks: self._evaluate_local(m),
                )

        results = self._evaluate_stream(tasks())
        if not results:
            return np.empty((0, self.query.unit_count()), dtype=np.float64)
        return np.concatenate(results, axis=0)

    # -- task construction ---------------------------------------------------
    def _chunk_for(self, n_samples: int) -> int:
        if self.chunk_size is not None:
            return min(self.chunk_size, max(n_samples, 1))
        return auto_chunk_size(
            n_samples, self.sampler.m, n_vertices=self.sampler.n,
            backend=self.backend,
        )

    def _sequential_tasks(
        self, rng: np.random.Generator, counts: list[int]
    ) -> Iterator[tuple]:
        # Masks are drawn lazily at submission time, in chunk order, so
        # the single stream is consumed exactly as the serial path does
        # and in-flight memory stays bounded by the look-ahead window.
        for count in counts:
            masks = self.sampler.sample_mask_matrix(count, rng)
            yield (
                _pool_evaluate_masks,
                (masks,),
                lambda m=masks: self._evaluate_local(m),
            )

    def _spawn_tasks(
        self, rng: np.random.Generator, counts: list[int]
    ) -> Iterator[tuple]:
        # All children derived up front: chunk i always gets child i, so
        # results depend on the boundaries, never on the pool schedule.
        children = rng.spawn(len(counts))
        for child, count in zip(children, counts):
            yield (
                _pool_sample_and_evaluate,
                (child, count),
                lambda c=child, k=count: self._sample_and_evaluate_local(c, k),
            )

    def _evaluate_local(self, masks: np.ndarray) -> np.ndarray:
        from repro.queries.base import evaluate_query_batch

        return evaluate_query_batch(
            self.query, self.sampler.batch_from_masks(masks, backend=self.backend)
        )

    def _sample_and_evaluate_local(
        self, chunk_rng: np.random.Generator, count: int
    ) -> np.ndarray:
        return self._evaluate_local(
            _draw_masks(chunk_rng, count, self.sampler.probabilities)
        )

    # -- pool plumbing -------------------------------------------------------
    def _acquire_pool(self) -> "ProcessPoolExecutor | None":
        if self._pool is not None:
            return self._pool
        if self._pool_failed or self.workers <= 1:
            return None
        sampler = self.sampler
        # Ship the backend's registry spec, not the instance: workers
        # re-resolve it so unpicklable library handles never cross IPC.
        backend_spec = self.backend.spec
        if self.dataset_path is not None:
            initializer, initargs = (
                _init_worker_from_dataset,
                (self.dataset_path, self.query, backend_spec),
            )
        else:
            initializer, initargs = (
                _init_worker,
                (
                    sampler.n,
                    sampler.edge_vertices,
                    sampler.probabilities,
                    self.query,
                    backend_spec,
                ),
            )
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=initializer,
                initargs=initargs,
            )
        except Exception as error:
            self._mark_pool_failed(error)
            return None
        _LIVE_POOLS.add(self._pool)
        return self._pool

    def _mark_pool_failed(self, error: Exception) -> None:
        if not self._pool_failed:
            self._pool_failed = True
            warnings.warn(
                f"process pool unavailable ({type(error).__name__}: {error}); "
                "evaluating Monte-Carlo chunks in-process",
                RuntimeWarning,
                stacklevel=4,
            )
        if self._pool is not None:
            pool, self._pool = self._pool, None
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            _LIVE_POOLS.discard(pool)

    def _evaluate_stream(self, tasks: Iterable[tuple]) -> list[np.ndarray]:
        """Run tasks through the pool, results in submission order.

        Submission keeps a bounded look-ahead (``2 * workers + 2``
        in-flight chunks) so the pipeline stays full without drawing
        every chunk's masks up front.  Any pool failure — at
        construction, submission, or completion — downgrades the rest of
        the stream to in-process fallbacks; chunk inputs are retained
        while in flight, so the answer is unchanged.
        """
        pool = self._acquire_pool()
        if pool is None:
            return [
                np.asarray(fallback(), dtype=np.float64)
                for _task, _args, fallback in tasks
            ]
        results: list[np.ndarray] = []
        pending: deque = deque()
        max_pending = 2 * self.workers + 2
        for task, args, fallback in tasks:
            if self._pool_failed:
                pending.append((None, fallback))
            else:
                try:
                    pending.append((self._pool.submit(task, *args), fallback))
                except Exception as error:
                    self._mark_pool_failed(error)
                    pending.append((None, fallback))
            while len(pending) >= max_pending:
                results.append(self._finish(*pending.popleft()))
        while pending:
            results.append(self._finish(*pending.popleft()))
        return results

    def _finish(self, future, fallback: Callable[[], np.ndarray]) -> np.ndarray:
        if future is not None:
            try:
                return np.asarray(future.result(), dtype=np.float64)
            except Exception as error:
                self._mark_pool_failed(error)
        return np.asarray(fallback(), dtype=np.float64)
