"""Ensemble traversal kernels: the swappable compute layer under WorldBatch.

:class:`~repro.sampling.batch.WorldBatch` is the *data* layout of a
world ensemble — an ``(N, m)`` mask matrix over one shared parent CSR.
This module holds the *traversal* kernels that run over that layout, so
the batch object stays a thin facade and alternative backends (packed
CPU words today, a GPU array library tomorrow) plug in behind the same
interface:

- :func:`bfs_distances_boolean` — the original ``(worlds, vertices)``
  boolean-frontier BFS, one scatter per level across every world;
- :func:`bfs_distances_packed` — the same BFS with worlds bit-packed
  into uint64 words: frontier / visited sets are ``(vertices, words)``
  matrices (~8x less memory traffic) and each level expands all 64
  worlds of a word with single bitwise AND/OR passes over the shared
  CSR.  Distances are **bit-identical** to the boolean kernel — BFS
  levels do not depend on the frontier representation — which the
  seeded property tests in ``tests/test_kernels.py`` enforce;
- :func:`delta_stepping_distances` — batched bucketed delta-stepping
  for *weighted* distances (the paper's ``-log p`` most-probable-path
  transform, after Potamias et al. [32]): one shared bucket schedule,
  a per-world tentative-distance matrix, and settled worlds dropping
  out of the working set;
- :func:`dijkstra_distances` — the per-world binary-heap reference
  (``repro.utils.heap.IndexedMaxHeap`` with negated keys) used by the
  legacy ``Query.evaluate`` protocol and as the test oracle for the
  batched kernel.

Kernels are deliberately ignorant of :class:`WorldBatch` itself; they
consume the duck-typed surface (``n``, ``n_worlds``, ``masks``,
``topology``, ``alive_directed()``) so they never import the batch
module and the dependency points one way only.
"""

from __future__ import annotations

import numpy as np

from repro.utils.heap import IndexedMaxHeap

#: Kernel used by :meth:`WorldBatch.bfs_distances` when none is named.
DEFAULT_BFS_KERNEL = "packed"

#: Bits per packed frontier word.
WORD_BITS = 64


# ----------------------------------------------------------------------
# Weight transform
# ----------------------------------------------------------------------
def most_probable_path_weights(probabilities: np.ndarray) -> np.ndarray:
    """``w_e = -log p_e``: most-probable paths become shortest paths [32].

    Probabilities above 1 are clipped (``w >= 0`` always, and ``p = 1``
    maps to exactly ``+0.0``); non-positive probabilities — impossible
    in an :class:`UncertainGraph` but representable in raw arrays — map
    to ``inf``, i.e. an edge no shortest path may use.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    weights = np.full(p.shape, np.inf, dtype=np.float64)
    positive = p > 0.0
    weights[positive] = -np.log(np.minimum(p[positive], 1.0))
    return np.maximum(weights, 0.0)


# ----------------------------------------------------------------------
# Shared frontier plumbing
# ----------------------------------------------------------------------
def _csr_segment_indices(
    indptr: np.ndarray, cols: np.ndarray, lengths: np.ndarray, total: int
) -> np.ndarray:
    """Directed-edge positions of the CSR segments of vertices ``cols``.

    The narrow-frontier gather every kernel shares: concatenate the
    half-open CSR ranges ``[indptr[c], indptr[c+1])`` of the frontier
    vertices without a Python loop.
    """
    return np.repeat(
        indptr[cols] - np.concatenate([[0], np.cumsum(lengths)[:-1]]),
        lengths,
    ) + np.arange(total)


# ----------------------------------------------------------------------
# Boolean-frontier BFS (the original WorldBatch kernel, moved here)
# ----------------------------------------------------------------------
def bfs_distances_boolean(
    batch, source: int, targets: "np.ndarray | list[int] | None" = None
) -> np.ndarray:
    """``(N, n)`` BFS distances from ``source`` in every world (-1 unreachable).

    Each level expands the frontier of *all still-growing worlds* at
    once: activate the directed edges leaving any frontier vertex,
    scatter their targets through one flat ``bincount``, and retire
    worlds whose frontier emptied.

    With ``targets``, a world also retires as soon as every listed
    vertex has a distance — its other entries may then still read
    ``-1``, so only consume the target columns (the point-to-point
    query optimisation; BFS levels are deterministic, so the target
    distances are unaffected by the early exit).
    """
    N, n = batch.n_worlds, batch.n
    dist = np.full((N, n), -1, dtype=np.int64)
    dist[:, source] = 0
    reached = np.zeros((N, n), dtype=bool)
    reached[:, source] = True
    alive = batch.alive_directed()
    src, dst = batch.topology.dir_source, batch.topology.indices
    if targets is not None:
        targets = np.asarray(targets, dtype=np.int64)
    indptr = batch.topology.indptr
    rows = np.arange(N)
    if targets is not None and targets.size:
        rows = rows[~reached[:, targets].all(axis=1)]
    frontier = np.zeros((N, n), dtype=bool)
    frontier[:, source] = True
    frontier = frontier[rows]
    level = 0
    while rows.size:
        level += 1
        # Hybrid expansion: wide frontiers activate edges with one
        # contiguous pass; narrow ones gather only the CSR segments
        # of vertices that front in *some* world, so the long tail
        # of levels costs almost nothing.
        cols = np.flatnonzero(frontier.any(axis=0))
        lengths = indptr[cols + 1] - indptr[cols]
        total = int(lengths.sum())
        if total == 0:
            break
        if total * 4 >= alive.shape[1]:
            active = alive[rows] & frontier[:, src]
            w_loc, e_loc = np.nonzero(active)
            if w_loc.size == 0:
                break
            flat = w_loc * n + dst[e_loc]
        else:
            e_sub = _csr_segment_indices(indptr, cols, lengths, total)
            src_sub = np.repeat(cols, lengths)
            active = alive[np.ix_(rows, e_sub)] & frontier[:, src_sub]
            w_loc, e_loc = np.nonzero(active)
            if w_loc.size == 0:
                break
            flat = w_loc * n + dst[e_sub[e_loc]]
        hit = np.bincount(flat, minlength=rows.size * n)
        hit = hit.reshape(rows.size, n).astype(bool)
        new = hit & ~reached[rows]
        w_new, v_new = np.nonzero(new)
        if w_new.size == 0:
            break
        dist[rows[w_new], v_new] = level
        reached[rows[w_new], v_new] = True
        keep = new.any(axis=1)
        if targets is not None and targets.size:
            keep &= ~reached[np.ix_(rows, targets)].all(axis=1)
        rows = rows[keep]
        frontier = new[keep]
    return dist


# ----------------------------------------------------------------------
# Bit-packed BFS
# ----------------------------------------------------------------------
def _pack_world_columns(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(N, cols)`` boolean matrix into ``(cols, W)`` uint64 words.

    World ``i`` lands in bit ``i % 8`` of byte ``i // 8`` of each
    column; viewing 8 consecutive bytes as one machine word keeps the
    pack/unpack mapping consistent on any endianness (all kernel
    operations in between are pure bitwise AND/OR, which never look at
    bit positions).
    """
    packed = np.packbits(
        np.ascontiguousarray(matrix.T), axis=1, bitorder="little"
    )
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros((packed.shape[0], pad), dtype=np.uint8)], axis=1
        )
    return packed.view(np.uint64)


def _world_word_mask(n_worlds: int) -> np.ndarray:
    """``(W,)`` uint64 with exactly the worlds ``0..n_worlds-1`` set.

    Built through the same packbits pipeline as the data matrices so
    the bit <-> world mapping matches on any endianness.
    """
    return _pack_world_columns(np.ones((n_worlds, 1), dtype=bool))[0]


#: Cache key of the host-layout transforms below.  Every ``_batch_cached``
#: slot stores ``(key, value)`` so arrays built for one array namespace
#: can never be served to another (e.g. after flipping ``backend=`` on a
#: live batch — the xp plan cache uses the backend's ``key`` here).
_HOST_KEY = "numpy"


def _batch_cached(batch, slot: str, key: str, build):
    """Per-batch kernel cache: queries traverse from many sources, so
    layout transforms of the (immutable) mask matrix are built once.
    A slot holds ``(key, value)``; a key mismatch rebuilds, so switching
    backends on a live batch invalidates instead of serving stale
    arrays from another namespace."""
    cached = getattr(batch, slot, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    value = build()
    try:
        setattr(batch, slot, (key, value))
    except AttributeError:  # duck-typed batch without the cache slot
        pass
    return value


def _packed_masks(batch) -> np.ndarray:
    """The batch's ``(m, W)`` packed mask matrix (cached on the batch)."""
    return _batch_cached(
        batch, "_packed_masks", _HOST_KEY, lambda: _pack_world_columns(batch.masks)
    )


def _packed_alive_directed(batch) -> np.ndarray:
    """``(2m, W)`` packed liveness per directed edge (cached on the batch)."""
    return _batch_cached(
        batch,
        "_packed_alive",
        _HOST_KEY,
        lambda: _packed_masks(batch)[batch.topology.dir_edge],
    )


def _alive_target_ordered(batch, order: np.ndarray) -> np.ndarray:
    """``(N, 2m)`` boolean liveness in target-sorted order (cached)."""
    return _batch_cached(
        batch, "_alive_ordered", _HOST_KEY, lambda: batch.alive_directed()[:, order]
    )


def _xp_plan(batch, xp):
    """Device-resident ensemble plan: liveness + directed-edge indices.

    The host builds the ``(N, 2m)`` liveness matrix and the CSR index
    vectors once; they are uploaded once per (batch, backend ``key``)
    and reused across every traversal from every source.
    """

    def build():
        topology = batch.topology
        return {
            "alive": xp.asarray(batch.alive_directed(), xp.bool_),
            "src": xp.asarray(topology.dir_source, xp.int64),
            "dst": xp.asarray(topology.indices, xp.int64),
        }

    return _batch_cached(batch, "_xp_plan", xp.key, build)


def _unpack_word_entries(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode ``(k,)`` uint64 words into (entry index, bit position) pairs."""
    bits = np.unpackbits(
        words[:, None].view(np.uint8), axis=1, bitorder="little"
    )
    return np.nonzero(bits)


def bfs_distances_packed(
    batch, source: int, targets: "np.ndarray | list[int] | None" = None
) -> np.ndarray:
    """Bit-packed twin of :func:`bfs_distances_boolean` — same distances.

    Frontier and visited sets live as ``(vertices, W)`` uint64 matrices
    with the ensemble's worlds packed along the bits (``W = ceil(N/64)``
    words), so one AND over the alive-edge words expands a level for 64
    worlds at a time and the level loop moves ~8x fewer bytes than the
    boolean kernel.  Wide frontiers group the activated edge words by
    target vertex with a single ``bitwise_or.reduceat`` over the
    target-sorted CSR; narrow frontiers gather only the touched CSR
    segments and scatter with ``bitwise_or.at``.  BFS levels are a
    property of the graph, not of the frontier encoding, so the
    returned matrix — including the ``-1`` pattern left by the
    ``targets`` early exit, which retires worlds under exactly the same
    per-level condition — is bit-identical to the boolean kernel's.
    """
    N, n = batch.n_worlds, batch.n
    dist = np.full((N, n), -1, dtype=np.int64)
    if N == 0:
        return dist
    dist[:, source] = 0
    topology = batch.topology
    indptr, src, dst = topology.indptr, topology.dir_source, topology.indices
    order, starts, empty = topology.target_grouping()
    alive_packed = _packed_alive_directed(batch)
    words = (N + WORD_BITS - 1) // WORD_BITS
    world_mask = _world_word_mask(N)

    visited = np.zeros((n, words), dtype=np.uint64)
    visited[source] = world_mask
    active = world_mask.copy()
    if targets is not None:
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size:
            active &= ~np.bitwise_and.reduce(visited[targets], axis=0)
    frontier = np.zeros((n, words), dtype=np.uint64)
    frontier[source] = active
    two_m = len(dst)
    level = 0
    while active.any():
        level += 1
        cols = np.flatnonzero(frontier.any(axis=1))
        lengths = indptr[cols + 1] - indptr[cols]
        total = int(lengths.sum())
        if total == 0:
            break
        if total * 4 >= two_m:
            activated = alive_packed & frontier[src]
            padded = np.concatenate(
                [activated[order], np.zeros((1, words), dtype=np.uint64)],
                axis=0,
            )
            hit = np.bitwise_or.reduceat(padded, starts, axis=0)
            hit[empty] = 0
        else:
            e_sub = _csr_segment_indices(indptr, cols, lengths, total)
            activated = alive_packed[e_sub] & frontier[np.repeat(cols, lengths)]
            hit = np.zeros((n, words), dtype=np.uint64)
            np.bitwise_or.at(hit, dst[e_sub], activated)
        new = hit & ~visited & active
        if not new.any():
            break
        visited |= new
        vertex_idx, word_idx = np.nonzero(new)
        entry, bit = _unpack_word_entries(new[vertex_idx, word_idx])
        dist[word_idx[entry] * WORD_BITS + bit, vertex_idx[entry]] = level
        active &= np.bitwise_or.reduce(new, axis=0)
        if targets is not None and targets.size:
            active &= ~np.bitwise_and.reduce(visited[targets], axis=0)
        frontier = new & active
    return dist


#: Registry of frontier kernels selectable per batch or per call.
BFS_KERNELS = {
    "boolean": bfs_distances_boolean,
    "packed": bfs_distances_packed,
}


def resolve_bfs_kernel(name: "str | None"):
    """Map a kernel name (or ``None`` for the default) to its function."""
    key = DEFAULT_BFS_KERNEL if name is None else name
    try:
        return BFS_KERNELS[key]
    except KeyError:
        raise ValueError(
            f"unknown BFS kernel {key!r}; choose from {sorted(BFS_KERNELS)}"
        ) from None


# ----------------------------------------------------------------------
# Batched weighted distances: bucketed delta-stepping
# ----------------------------------------------------------------------
def default_bucket_width(weights: np.ndarray) -> float:
    """Coarse default: the maximum finite edge weight.

    Any positive width is correct (the tests sweep several); the choice
    only moves work between the bucket schedule and the light-phase
    re-relaxations.  The classic scalar heuristic
    (``max_w / avg_degree``) minimises *re-relaxation work*, but for a
    vectorised ensemble the dominant cost is the number of full-width
    relaxation passes, so coarse buckets win decisively: on a 5k-edge /
    256-world benchmark, ``max_w`` runs ~5x faster than
    ``max_w / avg_degree`` (95 buckets collapse to ~5).  ``max_w``
    keeps every edge light while still producing a real multi-bucket
    schedule whenever distances exceed one edge weight — which is what
    the settled-world / target early exits prune on.  Graphs whose
    finite weights are all zero (every ``p = 1``) get width 1: a single
    bucket, degenerating to frontier-based batched relaxation.
    """
    weights = np.asarray(weights, dtype=np.float64)
    finite = weights[np.isfinite(weights) & (weights > 0)]
    if finite.size == 0:
        return 1.0
    return float(finite.max())


def delta_stepping_distances(
    batch,
    source: int,
    weights: np.ndarray,
    delta: "float | None" = None,
    targets: "np.ndarray | list[int] | None" = None,
) -> np.ndarray:
    """``(N, n)`` weighted shortest-path distances in every world at once.

    ``weights`` holds one non-negative weight per *parent* undirected
    edge (``inf`` marks an unusable edge, e.g. the ``-log p`` image of a
    zero-probability edge); unreachable vertices score ``inf``.

    The kernel is classic delta-stepping lifted to the ensemble: a
    ``(N, n)`` tentative-distance matrix, light/heavy edge classes split
    at the bucket width ``delta``, and one **shared bucket schedule** —
    the outer loop jumps to the smallest nonempty bucket over all still-
    running worlds, and each relaxation is a masked gather + per-target
    ``minimum.reduceat`` over the shared CSR.  Worlds contribute only
    their own rows to every relaxation, so a world's result never
    depends on its chunk-mates (rounds where a world's bucket is empty
    reduce with ``inf`` and are exact no-ops); worlds whose pending set
    empties — or, with ``targets``, whose target distances are all
    final — retire from the working set.  As with the BFS early exit,
    only consume the target columns of a targeted call.

    Relaxation order differs from Dijkstra's, so agreement with the
    per-world reference is up to float addition reordering (the seeded
    property tests bound it at ``rtol = 1e-9``).
    """
    N, n = batch.n_worlds, batch.n
    topology = batch.topology
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (batch.m,):
        raise ValueError(
            f"weights must have shape ({batch.m},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise ValueError("edge weights must be non-negative")
    if delta is None:
        delta = default_bucket_width(weights)
    delta = float(delta)
    if not delta > 0:
        raise ValueError(f"delta must be positive, got {delta}")

    tent = np.full((N, n), np.inf, dtype=np.float64)
    tent[:, source] = 0.0
    if N == 0 or n == 0:
        return tent
    order, starts, empty = topology.target_grouping()
    indptr, src, dst = topology.indptr, topology.dir_source, topology.indices
    weight_dir = weights[topology.dir_edge]
    alive = batch.alive_directed()
    # Directed-edge arrays pre-permuted into target-sorted order so a
    # wide relaxation is gather -> add -> one reduceat, no per-round
    # reshuffle.
    weight_ordered = weight_dir[order]
    source_ordered = src[order]
    alive_ordered = _alive_target_ordered(batch, order)
    light_dir = weight_dir <= delta
    light_ordered = light_dir[order]
    two_m = len(weight_dir)
    if targets is not None:
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size == 0:
            targets = None

    def relax(rows: np.ndarray, frontier: np.ndarray, want_light: bool) -> np.ndarray:
        """Min candidate distance per (world row, vertex) via ``frontier``.

        Hybrid like the BFS kernels: wide frontiers take one contiguous
        pass over all directed edges (per-target ``minimum.reduceat``);
        narrow ones gather only the frontier vertices' CSR segments and
        scatter with ``minimum.at``.  Minimum is exact in floating
        point, so both branches return bitwise-identical rows — the
        branch choice can never leak between worlds.
        """
        cols = np.flatnonzero(frontier.any(axis=0))
        lengths = indptr[cols + 1] - indptr[cols]
        total = int(lengths.sum())
        relaxed = np.full((len(rows), n), np.inf)
        if total == 0:
            return relaxed
        if total * 4 >= two_m:
            edge_class = light_ordered if want_light else ~light_ordered
            activated = alive_ordered[rows] & frontier[:, source_ordered] & edge_class
            candidates = np.where(
                activated, tent[rows][:, source_ordered] + weight_ordered, np.inf
            )
            padded = np.concatenate(
                [candidates, np.full((len(rows), 1), np.inf)], axis=1
            )
            relaxed = np.minimum.reduceat(padded, starts, axis=1)
            relaxed[:, empty] = np.inf
            return relaxed
        e_sub = _csr_segment_indices(indptr, cols, lengths, total)
        edge_class = light_dir[e_sub] if want_light else ~light_dir[e_sub]
        activated = (
            alive[np.ix_(rows, e_sub)]
            & frontier[:, np.repeat(cols, lengths)]
            & edge_class
        )
        w_loc, e_loc = np.nonzero(activated)
        if w_loc.size == 0:
            return relaxed
        hits = e_sub[e_loc]
        values = tent[rows[w_loc], src[hits]] + weight_dir[hits]
        np.minimum.at(relaxed, (w_loc, dst[hits]), values)
        return relaxed

    rows = np.arange(N)
    bucket = 0
    while rows.size:
        tentative = tent[rows]
        lower = bucket * delta
        pending = np.isfinite(tentative) & (tentative >= lower)
        keep = pending.any(axis=1)
        if targets is not None:
            keep &= ~(tentative[:, targets] < lower).all(axis=1)
        rows = rows[keep]
        if rows.size == 0:
            break
        tentative = tentative[keep]
        pending = pending[keep]
        # Shared schedule: jump to the smallest nonempty bucket anywhere.
        bucket = int(np.where(pending, tentative, np.inf).min() // delta)
        upper = (bucket + 1) * delta
        current = pending & (tentative < upper)
        settled = np.zeros_like(current)
        while current.any():
            settled |= current
            relaxed = relax(rows, current, want_light=True)
            tentative = tent[rows]
            improved = relaxed < tentative
            tentative = np.minimum(tentative, relaxed)
            tent[rows] = tentative
            # Re-insertions: improvements always land at >= bucket*delta
            # (weights are non-negative), so < upper pins them to this
            # bucket — including vertices already settled this phase.
            current = improved & (tentative < upper)
        tent[rows] = np.minimum(tent[rows], relax(rows, settled, want_light=False))
        bucket += 1
    return tent


# ----------------------------------------------------------------------
# Portable xp kernels: the device formulations behind non-reference
# backends (see repro.backend).  Host builds the plan; the backend runs
# one dense array program per level / bucket phase.  They are the
# *same algorithms* as the specialised kernels above — identical
# per-level / per-bucket retirement conditions — so integer BFS levels
# are exactly equal on any backend, and weighted distances agree to
# float-min exactness (minimum is order-exact, so only the candidate
# additions can differ, bounded by the usual 1e-9 gate on devices).
# ----------------------------------------------------------------------
def bfs_distances_xp(
    batch,
    source: int,
    targets: "np.ndarray | list[int] | None" = None,
    backend=None,
) -> np.ndarray:
    """``(N, n)`` BFS distances through the ``xp`` shim (-1 unreachable).

    Dense boolean-frontier formulation without the host kernels' row
    compaction: retired worlds keep a cleared frontier row (their
    ``active`` bit masks every update), which is the branch-free shape
    devices want.  Retirement — empty new frontier, or all ``targets``
    reached — mirrors :func:`bfs_distances_boolean` level for level, so
    the returned matrix (including the ``-1`` pattern of the targeted
    early exit) is bit-identical to the host kernels'.
    """
    from repro.backend import resolve_backend

    xp = resolve_backend(backend)
    N, n = batch.n_worlds, batch.n
    host_dist = np.full((N, n), -1, dtype=np.int64)
    host_dist[:, source] = 0
    if N == 0:
        return host_dist
    plan = _xp_plan(batch, xp)
    alive, src, dst = plan["alive"], plan["src"], plan["dst"]

    host_reached = np.zeros((N, n), dtype=bool)
    host_reached[:, source] = True
    dist = xp.asarray(host_dist, xp.int64)
    reached = xp.asarray(host_reached, xp.bool_)
    target_idx = None
    if targets is not None:
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size:
            target_idx = xp.asarray(targets, xp.int64)
    active = xp.asarray(np.ones(N, dtype=bool), xp.bool_)
    if target_idx is not None:
        active = active & ~xp.all(xp.take(reached, target_idx, axis=1), axis=1)
    # host_reached doubles as the initial frontier: only the source set.
    frontier = xp.asarray(host_reached, xp.bool_) & xp.expand_cols(active)
    level = 0
    while xp.bool_scalar(xp.any(frontier)):
        level += 1
        activated = alive & xp.take(frontier, src, axis=1)
        hit = xp.scatter_or_cols((N, n), dst, activated)
        new = hit & ~reached & xp.expand_cols(active)
        if not xp.bool_scalar(xp.any(new)):
            break
        reached = reached | new
        dist = xp.where(new, level, dist)
        active = active & xp.any(new, axis=1)
        if target_idx is not None:
            active = active & ~xp.all(xp.take(reached, target_idx, axis=1), axis=1)
        frontier = new & xp.expand_cols(active)
    return np.asarray(xp.to_host(dist), dtype=np.int64)


def delta_stepping_distances_xp(
    batch,
    source: int,
    weights: np.ndarray,
    delta: "float | None" = None,
    targets: "np.ndarray | list[int] | None" = None,
    backend=None,
) -> np.ndarray:
    """``(N, n)`` weighted distances through the ``xp`` shim.

    Same shared bucket schedule as :func:`delta_stepping_distances` —
    validation, default ``delta``, light/heavy split, bucket jump, and
    every retirement condition are identical — but dense: instead of
    compacting retired world rows out of the working set, a per-world
    ``active`` mask silences them (their frontier rows contribute only
    ``inf`` candidates, so their tentative rows provably never change
    once retired, exactly like the compacted kernel).  One
    ``scatter_min_cols`` per relaxation replaces the host's
    ``reduceat`` / ``minimum.at`` hybrid; min is order-exact, so this
    cannot introduce divergence by itself.
    """
    from repro.backend import resolve_backend

    xp = resolve_backend(backend)
    N, n = batch.n_worlds, batch.n
    topology = batch.topology
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (batch.m,):
        raise ValueError(
            f"weights must have shape ({batch.m},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise ValueError("edge weights must be non-negative")
    if delta is None:
        delta = default_bucket_width(weights)
    delta = float(delta)
    if not delta > 0:
        raise ValueError(f"delta must be positive, got {delta}")

    host_tent = np.full((N, n), np.inf, dtype=np.float64)
    host_tent[:, source] = 0.0
    if N == 0 or n == 0:
        return host_tent
    plan = _xp_plan(batch, xp)
    alive, src, dst = plan["alive"], plan["src"], plan["dst"]
    weight_dir = weights[topology.dir_edge]
    light_host = weight_dir <= delta
    w_dir = xp.asarray(weight_dir, xp.float64)
    light = xp.asarray(light_host, xp.bool_)
    heavy = xp.asarray(~light_host, xp.bool_)
    tent = xp.asarray(host_tent, xp.float64)
    target_idx = None
    if targets is not None:
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size:
            target_idx = xp.asarray(targets, xp.int64)
    inf = float("inf")

    def relax(tent, frontier, edge_class):
        candidates = xp.where(
            alive & xp.take(frontier, src, axis=1) & edge_class,
            xp.take(tent, src, axis=1) + w_dir,
            inf,
        )
        return xp.scatter_min_cols((N, n), dst, candidates)

    bucket = 0
    while True:
        lower = bucket * delta
        pending = xp.isfinite(tent) & (tent >= lower)
        world_active = xp.any(pending, axis=1)
        if target_idx is not None:
            world_active = world_active & ~xp.all(
                xp.take(tent, target_idx, axis=1) < lower, axis=1
            )
        if not xp.bool_scalar(xp.any(world_active)):
            break
        pending = pending & xp.expand_cols(world_active)
        # Shared schedule: jump to the smallest nonempty bucket anywhere.
        masked = xp.where(pending, tent, inf)
        bucket = int(xp.float_scalar(xp.min(masked)) // delta)
        upper = (bucket + 1) * delta
        current = pending & (tent < upper)
        settled = xp.asarray(np.zeros((N, n), dtype=bool), xp.bool_)
        while xp.bool_scalar(xp.any(current)):
            settled = settled | current
            relaxed = relax(tent, current, light)
            improved = relaxed < tent
            tent = xp.minimum(tent, relaxed)
            current = improved & (tent < upper) & xp.expand_cols(world_active)
        tent = xp.minimum(tent, relax(tent, settled, heavy))
        bucket += 1
    return np.asarray(xp.to_host(tent), dtype=np.float64)


# ----------------------------------------------------------------------
# Per-world reference: binary-heap Dijkstra
# ----------------------------------------------------------------------
def dijkstra_distances(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    source: int,
) -> np.ndarray:
    """Single-source weighted distances on one world's CSR (``inf`` = cut off).

    The reference implementation behind ``Query.evaluate`` for weighted
    queries and the oracle the batched delta-stepping kernel is tested
    against: Dijkstra on an indexed binary heap
    (:class:`~repro.utils.heap.IndexedMaxHeap` with negated keys, so
    decrease-key is a real ``update`` instead of lazy deletion).
    ``weights`` is aligned with the CSR's directed edges.
    """
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap = IndexedMaxHeap({int(source): 0.0})
    while heap:
        u, negative = heap.pop()
        d = -negative
        for slot in range(int(indptr[u]), int(indptr[u + 1])):
            v = int(indices[slot])
            candidate = d + float(weights[slot])
            if candidate < dist[v]:
                dist[v] = candidate
                heap.update(v, -candidate)
    return dist
