"""Adaptive sample-size determination (the paper's N'/N argument, §6.3).

The practical payoff of entropy-reducing sparsification is that the
Monte-Carlo estimator on ``G'`` reaches a target confidence width with
fewer samples: ``N'/N = (sigma(G')/sigma(G))^2``.  This module makes
that claim executable:

- :func:`adaptive_estimate` — sequential MC that stops as soon as the
  95% confidence width of the scalar estimate drops below a target
  (with a minimum batch to stabilise the width estimate), and
- :func:`samples_to_width` — the measured sample count, so experiments
  can report measured ``N'`` vs ``N`` next to the variance-ratio
  prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import EstimationError
from repro.sampling.worlds import WorldSampler
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.base import Query


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of a sequential estimation run.

    Attributes
    ----------
    estimate:
        Final scalar estimate (mean of per-sample scalar outcomes).
    samples_used:
        Worlds drawn before the stopping rule fired.
    confidence_width:
        Final 95% CI width ``3.92 sigma / sqrt(N)``.
    converged:
        ``False`` when the sample cap was hit before the target width.
    """

    estimate: float
    samples_used: int
    confidence_width: float
    converged: bool


def adaptive_estimate(
    graph: UncertainGraph,
    query: "Query",
    target_width: float,
    rng: "int | np.random.Generator | None" = None,
    min_samples: int = 30,
    max_samples: int = 20_000,
    batch: int = 10,
    batched: bool = True,
    workers: int | None = 1,
) -> AdaptiveResult:
    """Sample worlds until the 95% CI width falls below ``target_width``.

    The scalar outcome of each world is the nan-mean of the query's unit
    vector (consistent with
    :meth:`repro.sampling.monte_carlo.EstimationResult.scalar_estimate`).

    Parameters
    ----------
    graph:
        The uncertain graph to estimate on.
    query:
        Any :class:`~repro.queries.base.Query`.
    target_width:
        Desired 95% confidence width of the scalar estimate.
    min_samples:
        Samples drawn before the width is first checked (a width
        estimated from too few samples is unreliable).
    max_samples:
        Hard cap; the result reports ``converged=False`` when hit.
    batch:
        Worlds per stopping-rule check.
    batched:
        Evaluate each draw through the ensemble kernels (default); the
        sequential stopping rule sees the exact same per-world scalars
        either way, so this only changes speed.
    workers:
        Process count for batched draws
        (:class:`~repro.sampling.parallel.ParallelBatchExecutor` in
        sequential-compatibility mode — the stopping rule sees the same
        scalars for any worker count).  ``<= 1`` stays in-process.

    Raises
    ------
    EstimationError
        If ``target_width`` is not positive or bounds are inconsistent.
    """
    if target_width <= 0:
        raise EstimationError(f"target_width must be positive, got {target_width}")
    if min_samples < 2 or max_samples < min_samples:
        raise EstimationError("need max_samples >= min_samples >= 2")
    rng = ensure_rng(rng)
    sampler = WorldSampler(graph)

    executor = None
    if batched:
        from repro.sampling.parallel import ParallelBatchExecutor

        # One executor (and process pool, when workers > 1) serves every
        # draw of the stopping loop; sequential mode consumes the RNG
        # stream exactly like sample_batch would, so the per-world
        # scalars — and hence the stopping point — are unchanged.
        executor = ParallelBatchExecutor(
            sampler, query, workers=workers, rng_mode="sequential"
        )

    values: list[float] = []

    def draw(count: int) -> None:
        from repro.sampling.monte_carlo import warnings_suppressed

        if executor is not None:
            outcomes = executor.run(count, rng)
            with warnings_suppressed():
                values.extend(float(v) for v in np.nanmean(outcomes, axis=1))
            return
        for world in sampler.sample_many(count, rng):
            outcome = query.evaluate(world)
            with warnings_suppressed():
                values.append(float(np.nanmean(outcome)))

    try:
        draw(min_samples)
        while True:
            arr = np.asarray(values, dtype=np.float64)
            defined = arr[~np.isnan(arr)]
            if len(defined) >= 2:
                sigma = float(np.std(defined, ddof=1))
                width = 3.92 * sigma / np.sqrt(len(defined))
                if width <= target_width:
                    return AdaptiveResult(
                        estimate=float(defined.mean()),
                        samples_used=len(values),
                        confidence_width=width,
                        converged=True,
                    )
            if len(values) >= max_samples:
                defined = arr[~np.isnan(arr)]
                sigma = float(np.std(defined, ddof=1)) if len(defined) >= 2 else float("nan")
                return AdaptiveResult(
                    estimate=float(defined.mean()) if len(defined) else float("nan"),
                    samples_used=len(values),
                    confidence_width=(
                        3.92 * sigma / np.sqrt(len(defined)) if len(defined) >= 2
                        else float("nan")
                    ),
                    converged=False,
                )
            draw(min(batch, max_samples - len(values)))
    finally:
        if executor is not None:
            executor.close()


def samples_to_width(
    graph: UncertainGraph,
    query: "Query",
    target_width: float,
    rng: "int | np.random.Generator | None" = None,
    **kwargs,
) -> int:
    """Measured number of worlds needed to reach ``target_width``."""
    return adaptive_estimate(
        graph, query, target_width, rng=rng, **kwargs
    ).samples_used
