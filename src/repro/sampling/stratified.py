"""Stratified possible-world sampling (after Li et al. [23], cited in 6.3).

The paper's variance discussion leans on the recursive stratified
sampling literature: conditioning a few high-entropy edges and
allocating samples per stratum is an unbiased estimator with provably
lower variance than plain Monte-Carlo.  We implement one recursion level
(which is where most of the benefit is): the ``r`` highest-entropy edges
define ``2^r`` strata; each stratum fixes those edges, samples the rest,
and the estimates combine weighted by stratum probability.

This serves two purposes in the repo: (a) an independently-implemented
estimator to cross-check :class:`MonteCarloEstimator`, and (b) a
demonstration that the paper's entropy-reduction goal and the stratified
literature attack the same variance term from two directions.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.entropy import entropy_array
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import EstimationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.base import Query
from repro.sampling.worlds import WorldSampler
from repro.utils.rng import ensure_rng


class StratifiedEstimator:
    """One-level stratified Monte-Carlo estimator.

    Parameters
    ----------
    graph:
        The uncertain graph.
    n_samples:
        Total sample budget across strata.
    r:
        Number of conditioned edges (``2^r`` strata); the ``r`` edges
        with the highest binary entropy are chosen, following [23]'s
        heuristic of stratifying where the uncertainty is.
    """

    def __init__(self, graph: UncertainGraph, n_samples: int = 500, r: int = 4) -> None:
        if r < 0 or r > 12:
            raise EstimationError(f"r must be in [0, 12], got {r}")
        if n_samples < 2 ** r:
            raise EstimationError(
                f"budget {n_samples} cannot cover 2^{r} strata"
            )
        self.graph = graph
        self.n_samples = n_samples
        self.r = r
        self.sampler = WorldSampler(graph)
        entropies = entropy_array(self.sampler.probabilities)
        self.conditioned = np.argsort(-entropies)[:r]
        self._weights: "dict[tuple[bool, ...], float]" = {}
        self._executor = None
        self._executor_key = None

    def _stratum_probability(self, assignment: tuple[bool, ...]) -> float:
        """Probability mass of one stratum (cached per assignment).

        The conditioned edges are fixed at construction, so each
        assignment's weight is computed once and memoised — ``run`` used
        to recompute all ``2^r`` products on every call.
        """
        assignment = tuple(bool(keep) for keep in assignment)
        cached = self._weights.get(assignment)
        if cached is None:
            p = self.sampler.probabilities[self.conditioned]
            probability = 1.0
            for keep, pe in zip(assignment, p):
                probability *= pe if keep else (1.0 - pe)
            cached = self._weights[assignment] = float(probability)
        return cached

    def stratum_assignments(self) -> list[tuple[bool, ...]]:
        """The ``2^r`` conditioned-edge assignments in canonical order."""
        return list(itertools.product((False, True), repeat=self.r))

    def stratum_weights(self) -> np.ndarray:
        """Stratum probabilities aligned with :meth:`stratum_assignments`."""
        return np.array(
            [self._stratum_probability(a) for a in self.stratum_assignments()]
        )

    def run(
        self,
        query: "Query",
        rng: "int | np.random.Generator | None" = None,
        batched: bool = True,
        workers: "int | None" = 1,
    ) -> float:
        """Stratified scalar estimate of the query.

        With ``batched=True`` (default) each stratum's worlds are drawn
        as one mask matrix — the conditioned columns overwritten in one
        assignment — and evaluated through the ensemble kernels; the
        per-world scalars are identical to the legacy loop.  With
        ``workers > 1`` the chunks of every stratum fan out over one
        shared process pool; masks are still drawn by the parent from
        the single stream, so the estimate does not depend on the worker
        count.
        """
        rng = ensure_rng(rng)
        total = 0.0
        assignments = self.stratum_assignments()
        weights = self.stratum_weights()
        # Proportional allocation with at least 1 sample per non-null stratum.
        allocation = np.maximum(1, np.rint(weights * self.n_samples).astype(int))
        executor = self._executor_for(query, workers) if batched else None
        for assignment, weight, budget in zip(assignments, weights, allocation):
            if weight == 0.0:
                continue
            if executor is not None:
                stratum_values = self._batched_stratum_values(
                    executor, assignment, budget, rng
                )
            else:
                stratum_values = np.empty(budget, dtype=np.float64)
                for i in range(budget):
                    mask = self.sampler.sample_mask(rng)
                    mask[self.conditioned] = assignment
                    world = self.sampler.world_from_mask(mask)
                    outcome = query.evaluate(world)
                    defined = outcome[~np.isnan(outcome)]
                    stratum_values[i] = defined.mean() if len(defined) else np.nan
            defined_values = stratum_values[~np.isnan(stratum_values)]
            if len(defined_values) == 0:
                continue
            total += weight * float(defined_values.mean())
        return total

    def _executor_for(self, query: "Query", workers: "int | None"):
        """The (cached) batch executor, one pool across repeated runs.

        Mirrors :meth:`MonteCarloEstimator._executor_for`: variance
        protocols call ``run`` in a loop, so the pool must survive
        between calls; :meth:`close` releases it.
        """
        from repro.sampling.parallel import ParallelBatchExecutor, resolve_workers

        key = (query, resolve_workers(workers))
        if self._executor is not None and self._executor_key == key:
            return self._executor
        self.close()
        self._executor = ParallelBatchExecutor(
            self.sampler, query, workers=workers, rng_mode="sequential"
        )
        self._executor_key = key
        return self._executor

    def close(self) -> None:
        """Release the cached process pool (no-op for serial runs)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
            self._executor_key = None

    def _batched_stratum_values(
        self,
        executor,
        assignment: tuple[bool, ...],
        budget: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-world scalars of one stratum via the batch executor."""
        from repro.sampling.batch import auto_batch_size

        chunk = auto_batch_size(
            budget, self.sampler.m, n_vertices=self.sampler.n
        )

        def stratum_chunks():
            start = 0
            while start < budget:
                count = min(chunk, budget - start)
                masks = self.sampler.sample_mask_matrix(count, rng)
                masks[:, self.conditioned] = assignment
                yield masks
                start += count

        outcomes = executor.map_masks(stratum_chunks())
        # Reduce each row exactly like the legacy per-world loop (mean of
        # the compacted defined entries — not nanmean over the full row,
        # whose different summation partition can differ in the last ulp).
        stratum_values = np.empty(budget, dtype=np.float64)
        for i, outcome in enumerate(outcomes):
            defined = outcome[~np.isnan(outcome)]
            stratum_values[i] = defined.mean() if len(defined) else np.nan
        return stratum_values
