"""Stratified possible-world sampling (after Li et al. [23], cited in 6.3).

The paper's variance discussion leans on the recursive stratified
sampling literature: conditioning a few high-entropy edges and
allocating samples per stratum is an unbiased estimator with provably
lower variance than plain Monte-Carlo.  We implement one recursion level
(which is where most of the benefit is): the ``r`` highest-entropy edges
define ``2^r`` strata; each stratum fixes those edges, samples the rest,
and the estimates combine weighted by stratum probability.

This serves two purposes in the repo: (a) an independently-implemented
estimator to cross-check :class:`MonteCarloEstimator`, and (b) a
demonstration that the paper's entropy-reduction goal and the stratified
literature attack the same variance term from two directions.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.entropy import entropy_array
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import EstimationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.base import Query
from repro.sampling.worlds import WorldSampler
from repro.utils.rng import ensure_rng


class StratifiedEstimator:
    """One-level stratified Monte-Carlo estimator.

    Parameters
    ----------
    graph:
        The uncertain graph.
    n_samples:
        Total sample budget across strata.
    r:
        Number of conditioned edges (``2^r`` strata); the ``r`` edges
        with the highest binary entropy are chosen, following [23]'s
        heuristic of stratifying where the uncertainty is.
    """

    def __init__(self, graph: UncertainGraph, n_samples: int = 500, r: int = 4) -> None:
        if r < 0 or r > 12:
            raise EstimationError(f"r must be in [0, 12], got {r}")
        if n_samples < 2 ** r:
            raise EstimationError(
                f"budget {n_samples} cannot cover 2^{r} strata"
            )
        self.graph = graph
        self.n_samples = n_samples
        self.r = r
        self.sampler = WorldSampler(graph)
        entropies = entropy_array(self.sampler.probabilities)
        self.conditioned = np.argsort(-entropies)[:r]

    def _stratum_probability(self, assignment: tuple[bool, ...]) -> float:
        p = self.sampler.probabilities[self.conditioned]
        probability = 1.0
        for keep, pe in zip(assignment, p):
            probability *= pe if keep else (1.0 - pe)
        return probability

    def run(
        self,
        query: "Query",
        rng: "int | np.random.Generator | None" = None,
        batched: bool = True,
    ) -> float:
        """Stratified scalar estimate of the query.

        With ``batched=True`` (default) each stratum's worlds are drawn
        as one mask matrix — the conditioned columns overwritten in one
        assignment — and evaluated through the ensemble kernels; the
        per-world scalars are identical to the legacy loop.
        """
        rng = ensure_rng(rng)
        total = 0.0
        assignments = list(itertools.product((False, True), repeat=self.r))
        weights = np.array([self._stratum_probability(a) for a in assignments])
        # Proportional allocation with at least 1 sample per non-null stratum.
        allocation = np.maximum(1, np.rint(weights * self.n_samples).astype(int))
        for assignment, weight, budget in zip(assignments, weights, allocation):
            if weight == 0.0:
                continue
            stratum_values = np.empty(budget, dtype=np.float64)
            if batched:
                from repro.queries.base import evaluate_query_batch
                from repro.sampling.batch import auto_batch_size

                chunk = auto_batch_size(
                    budget, self.sampler.m, n_vertices=self.sampler.n
                )
                start = 0
                while start < budget:
                    count = min(chunk, budget - start)
                    masks = self.sampler.sample_mask_matrix(count, rng)
                    masks[:, self.conditioned] = assignment
                    outcomes = evaluate_query_batch(
                        query, self.sampler.batch_from_masks(masks)
                    )
                    for i, outcome in enumerate(outcomes):
                        defined = outcome[~np.isnan(outcome)]
                        stratum_values[start + i] = (
                            defined.mean() if len(defined) else np.nan
                        )
                    start += count
            else:
                for i in range(budget):
                    mask = self.sampler.sample_mask(rng)
                    mask[self.conditioned] = assignment
                    world = self.sampler.world_from_mask(mask)
                    outcome = query.evaluate(world)
                    defined = outcome[~np.isnan(outcome)]
                    stratum_values[i] = defined.mean() if len(defined) else np.nan
            defined_values = stratum_values[~np.isnan(stratum_values)]
            if len(defined_values) == 0:
                continue
            total += weight * float(defined_values.mean())
        return total
