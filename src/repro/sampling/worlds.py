"""Possible-world sampling (the Monte-Carlo substrate, paper section 1).

An uncertain graph denotes ``2^|E|`` deterministic *possible worlds*;
every query is an expectation over them.  This module provides:

- :class:`WorldSampler` — samples worlds by flipping all edge coins at
  once (one vectorised ``rng.random(m) < p`` per world, the O(|E|)
  sampling cost the paper's running-time argument is built on), and
- :class:`World` — a deterministic instantiation with a compact CSR
  adjacency and the graph primitives every query needs (BFS distances,
  reachability, connectivity, degrees, clustering coefficients).

Worlds index vertices densely ``0..n-1`` in the order of
``graph.vertex_indexer()``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


class World:
    """One deterministic possible world in CSR form.

    Parameters
    ----------
    n:
        Vertex count.
    edge_vertices:
        ``(m, 2)`` endpoints of the *parent* uncertain graph.
    mask:
        Boolean array choosing which parent edges exist here.
    edge_weights:
        Optional ``(m,)`` weights per *parent* edge (the samplers pass
        the ``-log p`` most-probable-path transform); stored aligned
        with this world's CSR so :meth:`weighted_distances` works.
    """

    __slots__ = ("n", "mask", "indptr", "indices", "edge_weights", "_edge_count")

    def __init__(
        self,
        n: int,
        edge_vertices: np.ndarray,
        mask: np.ndarray,
        edge_weights: np.ndarray | None = None,
    ) -> None:
        self.n = n
        self.mask = mask
        alive = np.flatnonzero(mask)
        self._edge_count = len(alive)
        u = edge_vertices[alive, 0]
        v = edge_vertices[alive, 1]
        sources = np.concatenate([u, v])
        targets = np.concatenate([v, u])
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        self.indices = targets[order]
        counts = np.bincount(sources, minlength=n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        if edge_weights is None:
            self.edge_weights = None
        else:
            self.edge_weights = np.asarray(edge_weights, dtype=np.float64)[
                np.concatenate([alive, alive])[order]
            ]

    # -- basic structure ----------------------------------------------------
    def number_of_edges(self) -> int:
        """Edges present in this world."""
        return self._edge_count

    def degrees(self) -> np.ndarray:
        """Degree vector of the world."""
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbour ids of ``vertex``."""
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    # -- traversal -----------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Unweighted shortest-path distances from ``source`` (-1 unreachable)."""
        dist = np.full(self.n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        indptr, indices = self.indptr, self.indices
        while len(frontier):
            level += 1
            # Gather all neighbours of the frontier in one shot.
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            total = int((ends - starts).sum())
            if total == 0:
                break
            nxt = np.empty(total, dtype=np.int64)
            pos = 0
            for s, e in zip(starts, ends):
                nxt[pos:pos + (e - s)] = indices[s:e]
                pos += e - s
            nxt = nxt[dist[nxt] == -1]
            if len(nxt) == 0:
                break
            nxt = np.unique(nxt)
            dist[nxt] = level
            frontier = nxt
        return dist

    def weighted_distances(self, source: int) -> np.ndarray:
        """Weighted shortest-path distances from ``source`` (``inf`` unreachable).

        Binary-heap Dijkstra over this world's CSR using the attached
        parent-edge weights (the ``-log p`` transform when the world
        came from a :class:`WorldSampler`): the per-world reference for
        the batched delta-stepping kernel.
        """
        if self.edge_weights is None:
            raise ValueError(
                "world has no edge weights: build it through a WorldSampler "
                "or pass edge_weights= to World()"
            )
        from repro.sampling.kernels import dijkstra_distances

        return dijkstra_distances(
            self.n, self.indptr, self.indices, self.edge_weights, source
        )

    def reachable_from(self, source: int) -> np.ndarray:
        """Boolean reachability vector from ``source``."""
        return self.bfs_distances(source) >= 0

    def is_connected(self) -> bool:
        """True when the world forms a single connected component."""
        if self.n <= 1:
            return True
        return bool(self.reachable_from(0).all())

    def connected_component_count(self) -> int:
        """Number of connected components."""
        remaining = np.ones(self.n, dtype=bool)
        components = 0
        while remaining.any():
            source = int(np.argmax(remaining))
            reach = self.reachable_from(source)
            remaining &= ~reach
            components += 1
        return components

    # -- local structure -------------------------------------------------------
    def clustering_coefficients(self) -> np.ndarray:
        """Local clustering coefficient of every vertex (0 for degree < 2)."""
        n = self.n
        coefficients = np.zeros(n, dtype=np.float64)
        indptr, indices = self.indptr, self.indices
        marker = np.zeros(n, dtype=bool)
        for u in range(n):
            nbrs = indices[indptr[u]:indptr[u + 1]]
            d = len(nbrs)
            if d < 2:
                continue
            marker[nbrs] = True
            links = 0
            for w in nbrs:
                w_nbrs = indices[indptr[w]:indptr[w + 1]]
                links += int(marker[w_nbrs].sum())
            marker[nbrs] = False
            # Each triangle edge counted twice (once from each endpoint).
            coefficients[u] = links / (d * (d - 1))
        return coefficients


class WorldSampler:
    """Vectorised Monte-Carlo possible-world sampler for a graph.

    Precomputes the edge arrays once; each draw costs one ``m``-vector
    of uniforms plus the CSR build.

    Examples
    --------
    >>> from repro.core import UncertainGraph
    >>> g = UncertainGraph([(0, 1, 0.5), (1, 2, 1.0)])
    >>> sampler = WorldSampler(g)
    >>> world = sampler.sample(rng=0)
    >>> world.n
    3
    """

    def __init__(self, graph: UncertainGraph) -> None:
        self.graph = graph
        self.n = graph.number_of_vertices()
        self.edge_vertices = graph.edge_index_array()
        self.probabilities = np.array(graph.probability_array())
        self.m = len(self.probabilities)
        self._topology = None  # shared BatchTopology, built on first batch
        self._edge_weights = None  # -log p transform, built on first use

    @property
    def edge_weights(self) -> np.ndarray:
        """``(m,)`` most-probable-path weights ``-log p`` (cached, read-only).

        Attached to every sampled :class:`World` / batch so weighted
        queries work on any evaluation path without extra plumbing.
        """
        if self._edge_weights is None:
            from repro.sampling.kernels import most_probable_path_weights

            self._edge_weights = most_probable_path_weights(self.probabilities)
            self._edge_weights.setflags(write=False)
        return self._edge_weights

    def sample_mask(self, rng: "int | np.random.Generator | None" = None) -> np.ndarray:
        """One boolean edge-presence mask."""
        rng = ensure_rng(rng)
        return rng.random(self.m) < self.probabilities

    def sample(self, rng: "int | np.random.Generator | None" = None) -> World:
        """One possible world."""
        return World(
            self.n, self.edge_vertices, self.sample_mask(rng),
            edge_weights=self.edge_weights,
        )

    def sample_many(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> Iterator[World]:
        """Yield ``count`` independent worlds from one generator."""
        rng = ensure_rng(rng)
        weights = self.edge_weights
        for _ in range(count):
            yield World(
                self.n, self.edge_vertices, self.sample_mask(rng),
                edge_weights=weights,
            )

    def sample_mask_matrix(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """``(count, m)`` Bernoulli mask matrix from one vectorised RNG call.

        Row ``i`` consumes exactly the uniforms that the ``i``-th
        sequential :meth:`sample_mask` call would — ``Generator.random``
        fills row-major from the same stream — so batched and per-world
        sampling are seeded-identical.
        """
        rng = ensure_rng(rng)
        return rng.random((count, self.m)) < self.probabilities

    def sample_batch(
        self,
        count: int,
        rng: "int | np.random.Generator | None" = None,
        backend=None,
    ) -> "WorldBatch":
        """Sample ``count`` worlds as one :class:`~repro.sampling.batch.WorldBatch`.

        ``backend`` selects the traversal array backend of the batch
        (``None`` = the bit-identical NumPy reference); sampling itself
        always draws on the host so the seeded mask stream is invariant.
        """
        return self.batch_from_masks(
            self.sample_mask_matrix(count, rng), backend=backend
        )

    def batch_from_masks(self, masks: np.ndarray, backend=None) -> "WorldBatch":
        """Wrap an explicit ``(N, m)`` mask matrix, sharing the parent CSR."""
        from repro.sampling.batch import BatchTopology, WorldBatch

        masks = np.asarray(masks, dtype=bool)
        if masks.ndim != 2 or masks.shape[1] != self.m:
            raise ValueError(
                f"masks must have shape (N, {self.m}), got {masks.shape}"
            )
        if self._topology is None:
            self._topology = BatchTopology(self.n, self.edge_vertices)
        return WorldBatch(
            self.n, self.edge_vertices, masks, topology=self._topology,
            edge_weights=self.edge_weights, backend=backend,
        )

    def world_from_mask(self, mask: np.ndarray) -> World:
        """Materialise a specific world (used by exact enumeration / strata)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValueError(f"mask must have shape ({self.m},), got {mask.shape}")
        return World(
            self.n, self.edge_vertices, mask, edge_weights=self.edge_weights
        )

    def log_world_probability(self, mask: np.ndarray) -> float:
        """Log-probability of a specific world under edge independence."""
        p = self.probabilities
        mask = np.asarray(mask, dtype=bool)
        with np.errstate(divide="ignore"):
            present = np.log(p[mask]).sum()
            absent = np.log1p(-p[~mask]).sum()
        return float(present + absent)
