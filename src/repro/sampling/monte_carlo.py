"""Monte-Carlo estimation framework (paper sections 1 and 6.3).

:class:`MonteCarloEstimator` runs a query over ``N`` sampled worlds and
returns the full ``(N, units)`` outcome matrix — the raw material for

- point estimates (nan-mean per unit: the paper's query answers),
- empirical outcome distributions (input to the earth mover's distance
  quality metric, Eq. 17), and
- the *variance protocol*: re-running the estimator ``R`` times with
  independent randomness and reporting the unbiased variance of the
  scalar estimates — the paper's footnote-10 "variance of G", which
  drives its sample-complexity argument
  ``N'/N = (sigma(G')/sigma(G))^2``.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import EstimationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.base import Query
from repro.sampling.worlds import WorldSampler
from repro.utils.rng import ensure_rng, spawn_rngs


@contextlib.contextmanager
def warnings_suppressed():
    """Silence the all-nan RuntimeWarnings of the nan-aware reductions."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        yield


@dataclass(frozen=True)
class EstimationResult:
    """Output of one Monte-Carlo run.

    Attributes
    ----------
    outcomes:
        ``(n_samples, units)`` matrix of per-world outcomes (may contain
        nan where a unit is undefined in a world — e.g. SP on a
        disconnected pair).
    """

    outcomes: np.ndarray

    @property
    def n_samples(self) -> int:
        return self.outcomes.shape[0]

    def unit_estimates(self) -> np.ndarray:
        """Per-unit nan-mean point estimates (nan for all-nan units)."""
        with warnings_suppressed():
            return np.nanmean(self.outcomes, axis=0)

    def scalar_estimate(self) -> float:
        """Mean of the defined unit estimates (the Phi(G) of section 6.3)."""
        units = self.unit_estimates()
        defined = units[~np.isnan(units)]
        if len(defined) == 0:
            raise EstimationError("every unit was undefined in every sample")
        return float(defined.mean())

    def unit_standard_deviations(self) -> np.ndarray:
        """Per-unit nan standard deviation of outcomes across worlds."""
        with np.errstate(invalid="ignore"):
            return np.nanstd(self.outcomes, axis=0, ddof=1)

    def confidence_width(self, unit: int | None = None) -> float:
        """95% CI width ``3.92 sigma / sqrt(N)`` (paper section 6.3).

        With ``unit=None`` the scalar-summary width is returned.
        """
        if unit is None:
            with warnings_suppressed():
                per_sample = np.nanmean(self.outcomes, axis=1)
            sigma = float(np.nanstd(per_sample, ddof=1))
            return 3.92 * sigma / np.sqrt(self.n_samples)
        sigma = float(self.unit_standard_deviations()[unit])
        n_defined = int(np.sum(~np.isnan(self.outcomes[:, unit])))
        if n_defined == 0:
            return float("nan")
        return 3.92 * sigma / np.sqrt(n_defined)


class MonteCarloEstimator:
    """Evaluate a query on ``n_samples`` possible worlds of a graph.

    By default the run is *batched*: worlds are sampled as ``(B, m)``
    mask matrices and evaluated through the queries' ensemble kernels
    (:func:`repro.queries.base.evaluate_query_batch`), chunked so one
    chunk's working set stays memory-bounded.  The batched path consumes
    the RNG stream exactly like the legacy per-world loop and the
    kernels are bit-identical, so results do not depend on ``batched``
    or ``batch_size``.

    With ``workers > 1`` the chunks are evaluated concurrently on a
    process pool (:class:`repro.sampling.parallel.ParallelBatchExecutor`
    in sequential-compatibility mode): the parent draws every chunk's
    masks from the single RNG stream in chunk order and workers only
    evaluate, so results are *also* independent of ``workers`` — the
    outcome matrix is bit-identical for any worker count under a fixed
    seed.  If the pool cannot start, evaluation falls back in-process
    with a warning but the same answer.

    Parameters
    ----------
    graph:
        The uncertain graph.
    n_samples:
        Number of worlds per run (the paper uses 500 for quality plots).
    batch_size:
        Worlds per chunk; ``None`` auto-sizes from ``N * m`` against a
        fixed memory budget (:func:`repro.sampling.batch.auto_batch_size`).
    batched:
        ``False`` restores the legacy world-at-a-time loop (escape
        hatch, e.g. for queries whose per-world path is under test).
    workers:
        Process count for chunk evaluation; ``<= 1`` stays in-process,
        ``None`` uses one worker per CPU.  Ignored when ``batched`` is
        ``False``.
    dataset:
        Optional binary dataset path (or
        :class:`~repro.datasets.binary_io.BinaryDataset`) backing
        ``graph``: with ``workers > 1`` the pool workers ``mmap`` the
        edge arrays from it instead of receiving them pickled.  Results
        are unchanged — the sharded answer stays bit-identical.
    backend:
        Array backend for the batched traversal kernels (``None`` =
        the bit-identical NumPy reference; see
        :func:`repro.backend.available_backends`).  Requires the
        batched path — the legacy per-world loop has no array seam to
        dispatch through, so ``batched=False`` with a non-reference
        backend raises.

    Examples
    --------
    >>> from repro.core import UncertainGraph
    >>> from repro.queries import ReliabilityQuery
    >>> g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0)])
    >>> est = MonteCarloEstimator(g, n_samples=10)
    >>> result = est.run(ReliabilityQuery([(0, 2)]), rng=0)
    >>> float(result.scalar_estimate())
    1.0
    """

    def __init__(
        self,
        graph: UncertainGraph,
        n_samples: int = 500,
        batch_size: int | None = None,
        batched: bool = True,
        workers: int | None = 1,
        dataset=None,
        backend=None,
    ) -> None:
        from repro.backend import resolve_backend

        if n_samples < 1:
            raise EstimationError(f"n_samples must be positive, got {n_samples}")
        if batch_size is not None and batch_size < 1:
            raise EstimationError(f"batch_size must be positive, got {batch_size}")
        if workers is not None and workers < 0:
            raise EstimationError(f"workers must be non-negative, got {workers}")
        self.backend = resolve_backend(backend)
        if not batched and not self.backend.is_reference:
            raise EstimationError(
                f"backend={self.backend.name!r} needs the batched path; the "
                "legacy per-world loop (batched=False) has no array seam"
            )
        self.graph = graph
        self.n_samples = n_samples
        self.batch_size = batch_size
        self.batched = batched
        self.workers = workers
        self.dataset = dataset
        self.sampler = WorldSampler(graph)
        self._executor = None
        self._executor_query = None

    def _executor_for(self, query: "Query"):
        """The (cached) batch executor for ``query``.

        One executor — and hence one process pool — is reused across
        runs of the same query object, which is what the variance
        protocol and the adaptive stopping rule do in a loop.
        """
        from repro.sampling.parallel import ParallelBatchExecutor

        if self._executor is not None and self._executor_query is query:
            return self._executor
        self.close()
        self._executor = ParallelBatchExecutor(
            self.sampler,
            query,
            workers=self.workers,
            chunk_size=self.batch_size,
            rng_mode="sequential",
            dataset=self.dataset,
            backend=self.backend,
        )
        self._executor_query = query
        return self._executor

    def close(self) -> None:
        """Release the cached process pool (no-op for serial estimators)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
            self._executor_query = None

    def __enter__(self) -> "MonteCarloEstimator":
        return self

    def __exit__(self, *exc_info) -> bool:
        # Long-lived processes (the job server) scope each estimator to
        # one job batch; exit closes the cached pool deterministically
        # instead of leaning on __del__/GC timing.
        self.close()
        return False

    def run(self, query: "Query", rng: "int | np.random.Generator | None" = None) -> EstimationResult:
        """One Monte-Carlo run: the ``(N, units)`` outcome matrix."""
        rng = ensure_rng(rng)
        if not self.batched:
            outcomes = np.empty(
                (self.n_samples, query.unit_count()), dtype=np.float64
            )
            for i, world in enumerate(self.sampler.sample_many(self.n_samples, rng)):
                outcomes[i] = query.evaluate(world)
            return EstimationResult(outcomes=outcomes)
        return EstimationResult(
            outcomes=self._executor_for(query).run(self.n_samples, rng)
        )

    def estimate(self, query: "Query", rng: "int | np.random.Generator | None" = None) -> np.ndarray:
        """Convenience: per-unit point estimates of one run."""
        return self.run(query, rng=rng).unit_estimates()


def repeated_estimates(
    graph: UncertainGraph,
    query: "Query",
    runs: int = 100,
    n_samples: int = 200,
    rng: "int | np.random.Generator | None" = None,
    batch_size: int | None = None,
    batched: bool = True,
    workers: int | None = 1,
    dataset=None,
    backend=None,
) -> np.ndarray:
    """Variance protocol: ``runs`` independent scalar estimates Phi_i(G).

    Paper section 6.3 re-runs each estimator 100 times and reports the
    unbiased variance of the results.  With ``workers > 1`` every run's
    chunks fan out over one shared process pool; per-run RNG streams are
    unchanged, so the estimates match the serial protocol bit for bit.
    """
    generators = spawn_rngs(rng, runs)
    estimator = MonteCarloEstimator(
        graph, n_samples=n_samples, batch_size=batch_size, batched=batched,
        workers=workers, dataset=dataset, backend=backend,
    )
    try:
        return np.array([
            estimator.run(query, rng=g).scalar_estimate() for g in generators
        ])
    finally:
        estimator.close()


def unbiased_variance(estimates: np.ndarray) -> float:
    """``sigma-hat = sum (Phi_i - mean)^2 / (R - 1)`` (section 6.3)."""
    estimates = np.asarray(estimates, dtype=np.float64)
    if len(estimates) < 2:
        raise EstimationError("variance needs at least two repeated estimates")
    return float(np.var(estimates, ddof=1))


def required_sample_ratio(variance_sparse: float, variance_original: float) -> float:
    """``N'/N = (sigma(G')/sigma(G))^2`` — the sample-budget implication."""
    if variance_original <= 0.0:
        return float("inf") if variance_sparse > 0 else 1.0
    return variance_sparse / variance_original
