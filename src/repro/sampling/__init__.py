"""Possible-world semantics: sampling, exact enumeration, estimation.

- :class:`~repro.sampling.worlds.WorldSampler` /
  :class:`~repro.sampling.worlds.World` — vectorised world sampling,
- :class:`~repro.sampling.batch.WorldBatch` — world *ensembles*: all
  sampled worlds evaluated at once as dense array programs,
- :mod:`~repro.sampling.kernels` — the swappable traversal kernels
  underneath (bit-packed BFS, batched delta-stepping for ``-log p``
  most-probable-path distances, the per-world Dijkstra reference),
- :mod:`~repro.sampling.exact` — exhaustive enumeration (Eq. 1),
- :class:`~repro.sampling.monte_carlo.MonteCarloEstimator` — the MC
  query engine + variance protocol (batched by default),
- :class:`~repro.sampling.parallel.ParallelBatchExecutor` — batch
  chunks fanned over a process pool, deterministic for any worker
  count (``workers=`` on every estimator),
- :class:`~repro.sampling.stratified.StratifiedEstimator` — stratified
  variant after [23].
"""

from repro.sampling.adaptive import AdaptiveResult, adaptive_estimate, samples_to_width
from repro.sampling.batch import (
    BatchTopology,
    WorldBatch,
    auto_batch_size,
    auto_chunk_size,
    kernel_world_bytes,
)
from repro.sampling.kernels import (
    BFS_KERNELS,
    DEFAULT_BFS_KERNEL,
    delta_stepping_distances,
    dijkstra_distances,
    most_probable_path_weights,
)
from repro.sampling.parallel import ParallelBatchExecutor, chunk_counts, resolve_workers
from repro.sampling.exact import (
    exact_connectivity_probability,
    exact_expectation,
    exact_query_probability,
    exact_reliability,
    iter_worlds,
)
from repro.sampling.monte_carlo import (
    EstimationResult,
    MonteCarloEstimator,
    repeated_estimates,
    required_sample_ratio,
    unbiased_variance,
)
from repro.sampling.stratified import StratifiedEstimator
from repro.sampling.worlds import World, WorldSampler

__all__ = [
    "AdaptiveResult",
    "BFS_KERNELS",
    "BatchTopology",
    "DEFAULT_BFS_KERNEL",
    "delta_stepping_distances",
    "dijkstra_distances",
    "most_probable_path_weights",
    "EstimationResult",
    "adaptive_estimate",
    "auto_batch_size",
    "auto_chunk_size",
    "kernel_world_bytes",
    "samples_to_width",
    "MonteCarloEstimator",
    "ParallelBatchExecutor",
    "StratifiedEstimator",
    "World",
    "WorldBatch",
    "WorldSampler",
    "chunk_counts",
    "resolve_workers",
    "exact_connectivity_probability",
    "exact_expectation",
    "exact_query_probability",
    "exact_reliability",
    "iter_worlds",
    "repeated_estimates",
    "required_sample_ratio",
    "unbiased_variance",
]
