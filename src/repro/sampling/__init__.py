"""Possible-world semantics: sampling, exact enumeration, estimation.

- :class:`~repro.sampling.worlds.WorldSampler` /
  :class:`~repro.sampling.worlds.World` — vectorised world sampling,
- :mod:`~repro.sampling.exact` — exhaustive enumeration (Eq. 1),
- :class:`~repro.sampling.monte_carlo.MonteCarloEstimator` — the MC
  query engine + variance protocol,
- :class:`~repro.sampling.stratified.StratifiedEstimator` — stratified
  variant after [23].
"""

from repro.sampling.adaptive import AdaptiveResult, adaptive_estimate, samples_to_width
from repro.sampling.exact import (
    exact_connectivity_probability,
    exact_expectation,
    exact_query_probability,
    exact_reliability,
    iter_worlds,
)
from repro.sampling.monte_carlo import (
    EstimationResult,
    MonteCarloEstimator,
    repeated_estimates,
    required_sample_ratio,
    unbiased_variance,
)
from repro.sampling.stratified import StratifiedEstimator
from repro.sampling.worlds import World, WorldSampler

__all__ = [
    "AdaptiveResult",
    "EstimationResult",
    "adaptive_estimate",
    "samples_to_width",
    "MonteCarloEstimator",
    "StratifiedEstimator",
    "World",
    "WorldSampler",
    "exact_connectivity_probability",
    "exact_expectation",
    "exact_query_probability",
    "exact_reliability",
    "iter_worlds",
    "repeated_estimates",
    "required_sample_ratio",
    "unbiased_variance",
]
