"""Exact possible-world enumeration (paper Eq. 1).

Only feasible for tiny graphs (``2^|E|`` worlds), but indispensable for
testing: every Monte-Carlo estimator in the package is validated against
these exact values, and the paper's introductory example
(Pr[G of Fig. 1(a) is connected] = 0.219) is reproduced this way.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import EstimationError
from repro.sampling.worlds import World, WorldSampler

_MAX_EXACT_EDGES = 25


def iter_worlds(graph: UncertainGraph) -> Iterator[tuple[World, float]]:
    """Yield every possible world with its probability.

    Raises
    ------
    EstimationError
        If the graph has more than 25 edges (2^25 worlds ~ 33M).
    """
    sampler = WorldSampler(graph)
    m = sampler.m
    if m > _MAX_EXACT_EDGES:
        raise EstimationError(
            f"exact enumeration needs <= {_MAX_EXACT_EDGES} edges, got {m}"
        )
    p = sampler.probabilities
    for bits in itertools.product((False, True), repeat=m):
        mask = np.array(bits, dtype=bool)
        probability = float(np.prod(np.where(mask, p, 1.0 - p)))
        if probability == 0.0:
            continue
        yield sampler.world_from_mask(mask), probability


def exact_query_probability(
    graph: UncertainGraph, predicate: Callable[[World], bool]
) -> float:
    """Eq. (1): total probability of worlds satisfying ``predicate``."""
    return sum(
        probability
        for world, probability in iter_worlds(graph)
        if predicate(world)
    )


def exact_connectivity_probability(graph: UncertainGraph) -> float:
    """Exact ``Pr[G is connected]`` (the Fig. 1 example query)."""
    return exact_query_probability(graph, lambda world: world.is_connected())


def exact_expectation(
    graph: UncertainGraph, value: Callable[[World], float]
) -> float:
    """Exact expectation of a scalar world statistic."""
    return sum(
        probability * value(world) for world, probability in iter_worlds(graph)
    )


def exact_reliability(graph: UncertainGraph, source, target) -> float:
    """Exact two-terminal reliability ``Pr[target reachable from source]``."""
    indexer = graph.vertex_indexer()
    s, t = indexer[source], indexer[target]
    return exact_query_probability(
        graph, lambda world: bool(world.reachable_from(s)[t])
    )
