"""Baswana–Sen spanner adapted to uncertain graphs (benchmark ``SP``).

Section 3.2 + appendix Algorithm 5: transform probabilities into weights
``w_e = -log p_e`` (so light spanner paths are the most-probable paths,
after [32]), compute a ``(2t - 1)``-spanner with the randomised
clustering algorithm of Baswana & Sen, and keep the *original*
probabilities on the surviving edges — spanners never reweight, which is
precisely why the paper finds them a weak uncertain sparsifier.

The stretch ``t`` is seeded by solving ``alpha |E| = t n^(1 + 1/t)`` and
calibrated by +-1 (it is an integer) until the spanner first fits the
budget; the deficit is topped up by Monte-Carlo sampling.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backbone import target_edge_count
from repro.core.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def _initial_stretch(n: int, m: int, alpha: float, t_max: int) -> int:
    """Smallest integer ``t >= 2`` whose expected spanner size fits the budget.

    Expected size of a ``(2t - 1)``-spanner is ``O(t n^(1 + 1/t))``; we
    pick the smallest ``t`` with ``t n^(1+1/t) <= alpha m``, defaulting
    to ``t_max`` when even that is too big (very aggressive budgets).
    """
    target = alpha * m
    for t in range(2, t_max + 1):
        if t * n ** (1.0 + 1.0 / t) <= target:
            return t
    return t_max


def baswana_sen_spanner(
    n: int,
    edge_vertices: np.ndarray,
    weights: np.ndarray,
    t: int,
    rng: np.random.Generator,
) -> list[int]:
    """Algorithm 5: randomised ``(2t - 1)``-spanner; returns edge ids.

    Phase 1 runs ``t - 1`` clustering rounds; phase 2 joins each vertex
    to every adjacent surviving cluster with the lightest edge
    (Algorithm 5 lines 26-28, vertex-centric form).
    """
    m = len(weights)
    # Residual adjacency: vertex -> {neighbor: (weight, eid)} of edges not
    # yet decided (added to the spanner or discarded).
    adjacency: list[dict[int, tuple[float, int]]] = [{} for _ in range(n)]
    for eid in range(m):
        u, v = int(edge_vertices[eid, 0]), int(edge_vertices[eid, 1])
        adjacency[u][v] = (float(weights[eid]), eid)
        adjacency[v][u] = (float(weights[eid]), eid)

    spanner: set[int] = set()
    cluster = {v: v for v in range(n)}  # C0: singleton clusters
    sample_probability = n ** (-1.0 / t) if t > 0 else 1.0

    def discard_edges(u: int, targets: list[int]) -> None:
        for w in targets:
            adjacency[u].pop(w, None)
            adjacency[w].pop(u, None)

    for _ in range(max(t - 1, 0)):
        centers = set(cluster.values())
        sampled_centers = {c for c in centers if rng.random() < sample_probability}
        new_cluster: dict[int, int] = {
            v: c for v, c in cluster.items() if c in sampled_centers
        }
        for u in range(n):
            if u in new_cluster:
                continue
            if u not in cluster:
                continue  # already declustered in an earlier round
            # Group u's residual edges by the neighbour's current cluster.
            best_per_cluster: dict[int, tuple[float, int, int]] = {}
            for v, (w, eid) in adjacency[u].items():
                c = cluster.get(v)
                if c is None:
                    continue
                entry = (w, eid, v)
                if c not in best_per_cluster or entry < best_per_cluster[c]:
                    best_per_cluster[c] = entry
            if not best_per_cluster:
                continue
            sampled_adjacent = {
                c: entry for c, entry in best_per_cluster.items()
                if c in sampled_centers
            }
            if sampled_adjacent:
                # Join the closest sampled cluster (Algorithm 5 lines 9-13).
                join_cluster, (join_w, join_eid, _) = min(
                    sampled_adjacent.items(), key=lambda item: item[1]
                )
                spanner.add(join_eid)
                new_cluster[u] = join_cluster
                to_discard = []
                for v, (w, eid) in adjacency[u].items():
                    c = cluster.get(v)
                    if c == join_cluster:
                        to_discard.append(v)
                # Lighter neighbouring clusters contribute their best edge
                # (lines 14-19).
                for c, (w, eid, v) in best_per_cluster.items():
                    if c == join_cluster:
                        continue
                    if w < join_w:
                        spanner.add(eid)
                        to_discard.extend(
                            nbr for nbr, (_, _e) in adjacency[u].items()
                            if cluster.get(nbr) == c
                        )
                discard_edges(u, list(set(to_discard)))
            else:
                # No sampled neighbour: connect to every adjacent cluster
                # and decluster u (lines 20-25).
                to_discard = []
                for c, (w, eid, v) in best_per_cluster.items():
                    spanner.add(eid)
                    to_discard.extend(
                        nbr for nbr, _ in adjacency[u].items()
                        if cluster.get(nbr) == c
                    )
                discard_edges(u, list(set(to_discard)))
        cluster = new_cluster

    # Phase 2: join every vertex to each adjacent surviving cluster with
    # the lightest residual edge (lines 26-28).
    for u in range(n):
        best_per_cluster: dict[int, tuple[float, int]] = {}
        for v, (w, eid) in adjacency[u].items():
            c = cluster.get(v)
            if c is None:
                continue
            if c not in best_per_cluster or (w, eid) < best_per_cluster[c]:
                best_per_cluster[c] = (w, eid)
        for _, eid in best_per_cluster.values():
            spanner.add(eid)

    return sorted(spanner)


def spanner_sparsify(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    t_max: int = 24,
    max_calibration_steps: int = 24,
    name: str = "",
) -> UncertainGraph:
    """``SP`` benchmark: calibrated Baswana–Sen spanner + MC top-up.

    Edges keep their original probabilities (no redistribution).

    When no stretch up to ``t_max`` fits the budget (sparse graphs with
    small ``alpha``), the lightest spanner edges are kept up to the
    budget — see the inline note.
    """
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    n = graph.number_of_vertices()
    target = target_edge_count(m, alpha)
    edge_vertices = graph.edge_index_array()
    probabilities = np.array(graph.probability_array())
    # -log p weights: most-probable paths become shortest paths [32].
    weights = -np.log(np.clip(probabilities, 1e-15, 1.0))

    t = _initial_stretch(n, m, alpha, t_max)
    chosen = baswana_sen_spanner(n, edge_vertices, weights, t, rng)
    best = chosen
    steps = 0
    while len(chosen) > target:
        steps += 1
        if t >= t_max or steps > max_calibration_steps:
            # A spanner cannot go below roughly one edge per
            # vertex-cluster pair, so tiny budgets on sparse graphs are
            # unreachable for any stretch (the paper's datasets are two
            # orders of magnitude denser).  Fall back to keeping the
            # lightest (most probable) spanner edges — the spanner's own
            # selection criterion — so the benchmark stays runnable.
            best.sort(key=lambda eid: (weights[eid], eid))
            chosen = best[:target]
            break
        t += 1
        chosen = baswana_sen_spanner(n, edge_vertices, weights, t, rng)
        if len(chosen) < len(best):
            best = chosen

    edge_list = graph.edge_list()
    edges = [
        (edge_list[eid][0], edge_list[eid][1], float(probabilities[eid]))
        for eid in chosen
    ]
    chosen_set = set(chosen)
    deficit = target - len(edges)
    if deficit > 0:
        pool = [eid for eid in range(m) if eid not in chosen_set]
        while deficit > 0 and pool:
            order = rng.permutation(len(pool))
            next_pool = []
            for idx in order:
                eid = pool[idx]
                if deficit > 0 and rng.random() < probabilities[eid]:
                    edges.append(
                        (edge_list[eid][0], edge_list[eid][1], float(probabilities[eid]))
                    )
                    deficit -= 1
                else:
                    next_pool.append(eid)
            pool = next_pool
    label = name or f"SP@{alpha:g}({graph.name})"
    return graph.subgraph_with_edges(edges, name=label)
