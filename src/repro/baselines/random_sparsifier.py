"""Random Monte-Carlo sparsifier (sanity baseline).

Samples edges proportionally to their probabilities until the budget is
met and keeps the original probabilities — the "simple approach" the
paper dismisses at the start of section 3.3 (no connectivity guarantee,
no probability redistribution).  Useful as a floor in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.core.backbone import random_backbone
from repro.core.uncertain_graph import UncertainGraph


def random_sparsify(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    name: str = "",
) -> UncertainGraph:
    """Keep ``alpha |E|`` MC-sampled edges at their original probabilities."""
    chosen = random_backbone(graph, alpha, rng=rng)
    edge_list = graph.edge_list()
    probabilities = graph.probability_array()
    edges = [
        (edge_list[eid][0], edge_list[eid][1], float(probabilities[eid]))
        for eid in chosen
    ]
    label = name or f"RANDOM@{alpha:g}({graph.name})"
    return graph.subgraph_with_edges(edges, name=label)
