"""Deterministic representative instances (related work [29, 30]).

Parchas et al.'s earlier line of work extracts a single *deterministic*
graph approximating the expected vertex degrees of the uncertain graph.
The paper's section 2.3 frames this as "zero-entropy sparsification" and
points out its limits: no control over the edge budget, and no ability
to answer inherently probabilistic queries.  We include a greedy
expected-degree-rounding extractor so the experiments can demonstrate
both observations.
"""

from __future__ import annotations

import numpy as np

from repro.core.uncertain_graph import UncertainGraph


def representative_instance(
    graph: UncertainGraph,
    name: str = "",
) -> UncertainGraph:
    """Greedy expected-degree representative (in the spirit of ADR [29]).

    Edges are processed in descending probability; an edge is accepted
    when it strictly reduces the squared expected-degree error
    ``sum_u (d_G(u) - deg(u))^2`` of the partial instance.  The result
    is deterministic: every kept edge has probability 1.

    Returns
    -------
    UncertainGraph
        A zero-entropy graph on the full vertex set.
    """
    indexer = graph.vertex_indexer()
    target = graph.expected_degree_array()
    current = np.zeros_like(target)
    edges: list[tuple] = []
    order = sorted(graph.edges(), key=lambda e: -e[2])
    for u, v, p in order:
        iu, iv = indexer[u], indexer[v]
        # Accepting the edge moves both endpoint degrees up by 1; the
        # squared error improves iff the residual demand is large enough.
        gain = 0.0
        for idx in (iu, iv):
            residual = target[idx] - current[idx]
            gain += residual * residual - (residual - 1.0) ** 2
        if gain > 0.0:
            edges.append((u, v, 1.0))
            current[iu] += 1.0
            current[iv] += 1.0
    label = name or f"representative({graph.name})"
    return graph.subgraph_with_edges(edges, name=label)
