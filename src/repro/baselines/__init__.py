"""Benchmark sparsifiers adapted from the deterministic-graph literature.

- :func:`repro.baselines.ni.ni_sparsify` — Nagamochi–Ibaraki cut
  sparsifier (paper Algorithm 4 + section 3.2 adaptation).
- :func:`repro.baselines.spanner.spanner_sparsify` — Baswana–Sen
  ``(2t-1)``-spanner (Algorithm 5 + ``-log p`` weight transform).
- :func:`repro.baselines.effective_resistance.effective_resistance_sparsify`
  — Spielman–Srivastava leverage-score sparsifier (section 2.2).
- :func:`repro.baselines.random_sparsifier.random_sparsify` — plain MC
  edge sampling.
- :func:`repro.baselines.representative.representative_instance` —
  deterministic expected-degree representative ([29, 30], section 2.3).
"""

from repro.baselines.effective_resistance import (
    effective_resistance_sparsify,
    effective_resistances,
)
from repro.baselines.ni import integer_weights, ni_core, ni_sparsify
from repro.baselines.random_sparsifier import random_sparsify
from repro.baselines.representative import representative_instance
from repro.baselines.spanner import baswana_sen_spanner, spanner_sparsify

__all__ = [
    "baswana_sen_spanner",
    "effective_resistance_sparsify",
    "effective_resistances",
    "integer_weights",
    "ni_core",
    "ni_sparsify",
    "random_sparsify",
    "representative_instance",
    "spanner_sparsify",
]
