"""Nagamochi–Ibaraki cut-sparsifier adapted to uncertain graphs.

Benchmark ``NI`` of the paper (section 3.2 + appendix Algorithm 4):

1. **Transform** the uncertain graph into an integer-weighted
   deterministic graph: ``w_e = round(p_e / p_min)`` (probabilities are
   analogous to weights for expected cut sizes).
2. **Core NI** (Algorithm 4): iteratively peel spanning forests; an edge
   with weight ``w`` participates in ``w`` contiguous forests; when its
   weight is exhausted at round ``r`` it is sampled with probability
   ``l_e = min(log|V| / (eps^2 r), 1)`` and, if kept, re-weighted
   ``w'_e = w_e / l_e``.  Edges in dense regions survive many rounds and
   are sampled with low probability — the cut-sparsifier intuition.
3. **Calibrate** ``eps`` (seed ``sqrt(|V| log^2|V| / (alpha |E|))``,
   multiplied/divided by ``theta`` per retry) until the output first
   drops to at most ``alpha |E|`` edges; top up the deficit by
   Monte-Carlo sampling with the original probabilities.
4. **Back-transform** ``p'_e = min(w'_e * p_min, 1)`` — the bounded
   probability domain is exactly what the paper blames for NI's mild
   redistribution and poor degree/cut preservation.

Implementation note: raw ``p_e / p_min`` weights can be enormous when
one probability is tiny, making the forest-peeling loop quadratic.  We
clamp the weight scale at ``max_weight`` (default 128) — this only
coarsens the weight quantisation, not the method's structure — and
record the choice in DESIGN.md's deviations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backbone import target_edge_count
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import CalibrationError
from repro.utils.rng import ensure_rng
from repro.utils.unionfind import UnionFind


def integer_weights(probabilities: np.ndarray, max_weight: int = 128) -> tuple[np.ndarray, float]:
    """Map probabilities to integer weights ``round(p / p_min)``.

    Returns ``(weights, scale)`` where ``scale`` is the effective
    ``p_min`` used for the inverse transform.  The scale is floored at
    ``p_max / max_weight`` to bound the largest weight.
    """
    if len(probabilities) == 0:
        return np.zeros(0, dtype=np.int64), 1.0
    p_min = float(probabilities.min())
    p_max = float(probabilities.max())
    scale = max(p_min, p_max / max_weight)
    weights = np.maximum(1, np.rint(probabilities / scale).astype(np.int64))
    return weights, scale


def ni_core(
    n: int,
    edge_vertices: np.ndarray,
    weights: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
) -> dict[int, float]:
    """Algorithm 4: returns ``{edge_id: sampled_weight}`` for kept edges.

    The contiguity requirement — an edge of the previous forest that is
    still alive must stay in the next forest — is honoured by seeding
    each round's union-find pass with the previous forest's surviving
    edges before scanning the rest.
    """
    m = len(weights)
    remaining = weights.astype(np.int64).copy()
    alive = set(range(m))
    log_n = math.log(max(n, 2))
    kept: dict[int, float] = {}
    previous_forest: list[int] = []
    r = 0
    while alive:
        r += 1
        uf = UnionFind(n)
        forest: list[int] = []
        # Contiguous forests: previous forest edges first (Algorithm 4 line 5).
        for eid in previous_forest:
            if eid in alive:
                u, v = edge_vertices[eid]
                if uf.union(int(u), int(v)):
                    forest.append(eid)
        for eid in list(alive):
            u, v = edge_vertices[eid]
            if uf.union(int(u), int(v)):
                forest.append(eid)
        if not forest:
            # Alive edges are all intra-component duplicates, which cannot
            # happen in a simple graph; guard against infinite loops anyway.
            break
        for eid in forest:
            remaining[eid] -= 1
            if remaining[eid] == 0:
                sampling_probability = min(log_n / (epsilon * epsilon * r), 1.0)
                if rng.random() < sampling_probability:
                    kept[eid] = float(weights[eid]) / sampling_probability
                alive.discard(eid)
        previous_forest = forest
    return kept


def ni_sparsify(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    theta: float = 1.2,
    max_calibration_steps: int = 60,
    max_weight: int = 128,
    name: str = "",
) -> UncertainGraph:
    """NI benchmark sparsifier: calibrated Algorithm 4 + MC top-up.

    Parameters
    ----------
    graph:
        The uncertain graph.
    alpha:
        Sparsification ratio in ``(0, 1)``.
    rng:
        Seed / generator.
    theta:
        Multiplicative calibration step for ``epsilon``.
    max_calibration_steps:
        Upper bound on calibration retries before giving up.
    max_weight:
        Weight-quantisation cap (see module docstring).

    Raises
    ------
    CalibrationError
        If no ``epsilon`` within the retry budget yields at most
        ``alpha |E|`` edges (practically unreachable: ``epsilon`` large
        enough keeps nothing).
    """
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    n = graph.number_of_vertices()
    target = target_edge_count(m, alpha)
    edge_vertices = graph.edge_index_array()
    probabilities = np.array(graph.probability_array())
    weights, scale = integer_weights(probabilities, max_weight=max_weight)

    log_n = math.log(max(n, 2))
    epsilon = math.sqrt(max(n * log_n * log_n / (alpha * m), 1e-12))

    kept = ni_core(n, edge_vertices, weights, epsilon, rng)
    steps = 0
    if len(kept) > target:
        # Too many edges: grow epsilon until the output first fits.
        while len(kept) > target:
            steps += 1
            if steps > max_calibration_steps:
                raise CalibrationError(
                    f"NI failed to calibrate epsilon below budget {target}"
                )
            epsilon *= theta
            kept = ni_core(n, edge_vertices, weights, epsilon, rng)
    else:
        # Fewer: shrink epsilon while the output still fits; keep the last fit.
        best = kept
        while steps < max_calibration_steps:
            steps += 1
            epsilon /= theta
            candidate = ni_core(n, edge_vertices, weights, epsilon, rng)
            if len(candidate) > target:
                break
            best = candidate
        kept = best

    # Back-transform weights to probabilities, capped at 1 (section 3.2).
    edge_list = graph.edge_list()
    edges = [
        (edge_list[eid][0], edge_list[eid][1], min(w * scale, 1.0))
        for eid, w in kept.items()
    ]

    # Top up the deficit by MC sampling with original probabilities.
    chosen = set(kept)
    deficit = target - len(edges)
    if deficit > 0:
        pool = [eid for eid in range(m) if eid not in chosen]
        while deficit > 0 and pool:
            order = rng.permutation(len(pool))
            next_pool = []
            for idx in order:
                eid = pool[idx]
                if deficit > 0 and rng.random() < probabilities[eid]:
                    edges.append(
                        (edge_list[eid][0], edge_list[eid][1], float(probabilities[eid]))
                    )
                    deficit -= 1
                else:
                    next_pool.append(eid)
            pool = next_pool
    label = name or f"NI@{alpha:g}({graph.name})"
    return graph.subgraph_with_edges(edges, name=label)
