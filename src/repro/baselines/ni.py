"""Nagamochi–Ibaraki cut-sparsifier adapted to uncertain graphs.

Benchmark ``NI`` of the paper (section 3.2 + appendix Algorithm 4):

1. **Transform** the uncertain graph into an integer-weighted
   deterministic graph: ``w_e = round(p_e / p_min)`` (probabilities are
   analogous to weights for expected cut sizes).
2. **Core NI** (Algorithm 4): iteratively peel spanning forests; an edge
   with weight ``w`` participates in ``w`` contiguous forests; when its
   weight is exhausted at round ``r`` it is sampled with probability
   ``l_e = min(log|V| / (eps^2 r), 1)`` and, if kept, re-weighted
   ``w'_e = w_e / l_e``.  Edges in dense regions survive many rounds and
   are sampled with low probability — the cut-sparsifier intuition.
3. **Calibrate** ``eps`` (seed ``sqrt(|V| log^2|V| / (alpha |E|))``,
   multiplied/divided by ``theta`` per retry) until the output first
   drops to at most ``alpha |E|`` edges; top up the deficit by
   Monte-Carlo sampling with the original probabilities.
4. **Back-transform** ``p'_e = min(w'_e * p_min, 1)`` — the bounded
   probability domain is exactly what the paper blames for NI's mild
   redistribution and poor degree/cut preservation.

Implementation note: raw ``p_e / p_min`` weights can be enormous when
one probability is tiny, making the forest-peeling loop quadratic.  We
clamp the weight scale at ``max_weight`` (default 128) — this only
coarsens the weight quantisation, not the method's structure — and
record the choice in DESIGN.md's deviations.

Plan-riding peeler
------------------
The forest-peeling trajectory of Algorithm 4 — which edges form each
forest, and the round at which each edge's weight exhausts — depends
only on the weights, *not* on ``epsilon`` or the RNG: sampling happens
at exhaustion time and never alters which edges stay alive.  The
default ``peeler="plan"`` therefore splits the algorithm into

1. :func:`ni_peel_structure` — one structural pass running every peel as
   a batched Kruskal sweep on
   :class:`~repro.utils.unionfind.ArrayUnionFind`, producing the
   exhaustion order and per-edge exhaustion round; memoised on a
   :class:`~repro.core.backbone.BackbonePlan` (key
   ``("ni_peel", max_weight)``), so NI shares its plan cache with BGI
   and repeated calls (the epsilon calibration loop, alpha ladders) pay
   for the peels once; and
2. :func:`ni_core_planned` — per calibration step, one vectorised
   sampling pass over the exhaustion order.

The planned peeler is bit-identical to the scalar reference
(``peeler="legacy"``, :func:`ni_core`): the batched Kruskal accepts
exactly the sequential forest, a block ``rng.random(k)`` draw consumes
the PCG64 stream exactly like ``k`` scalar draws, and the kept-edge
dict preserves exhaustion order.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backbone import BackbonePlan, target_edge_count
from repro.core.uncertain_graph import UncertainGraph
from repro.exceptions import CalibrationError
from repro.utils.rng import ensure_rng
from repro.utils.unionfind import ArrayUnionFind, UnionFind

NI_PEELERS = ("plan", "legacy")


def integer_weights(probabilities: np.ndarray, max_weight: int = 128) -> tuple[np.ndarray, float]:
    """Map probabilities to integer weights ``round(p / p_min)``.

    Returns ``(weights, scale)`` where ``scale`` is the effective
    ``p_min`` used for the inverse transform.  The scale is floored at
    ``p_max / max_weight`` to bound the largest weight.
    """
    if len(probabilities) == 0:
        return np.zeros(0, dtype=np.int64), 1.0
    p_min = float(probabilities.min())
    p_max = float(probabilities.max())
    scale = max(p_min, p_max / max_weight)
    weights = np.maximum(1, np.rint(probabilities / scale).astype(np.int64))
    return weights, scale


def ni_core(
    n: int,
    edge_vertices: np.ndarray,
    weights: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
) -> dict[int, float]:
    """Algorithm 4: returns ``{edge_id: sampled_weight}`` for kept edges.

    The contiguity requirement — an edge of the previous forest that is
    still alive must stay in the next forest — is honoured by seeding
    each round's union-find pass with the previous forest's surviving
    edges before scanning the rest.
    """
    m = len(weights)
    remaining = weights.astype(np.int64).copy()
    alive = set(range(m))
    log_n = math.log(max(n, 2))
    kept: dict[int, float] = {}
    previous_forest: list[int] = []
    r = 0
    while alive:
        r += 1
        uf = UnionFind(n)
        forest: list[int] = []
        # Contiguous forests: previous forest edges first (Algorithm 4 line 5).
        for eid in previous_forest:
            if eid in alive:
                u, v = edge_vertices[eid]
                if uf.union(int(u), int(v)):
                    forest.append(eid)
        for eid in list(alive):
            u, v = edge_vertices[eid]
            if uf.union(int(u), int(v)):
                forest.append(eid)
        if not forest:
            # Alive edges are all intra-component duplicates, which cannot
            # happen in a simple graph; guard against infinite loops anyway.
            break
        for eid in forest:
            remaining[eid] -= 1
            if remaining[eid] == 0:
                sampling_probability = min(log_n / (epsilon * epsilon * r), 1.0)
                if rng.random() < sampling_probability:
                    kept[eid] = float(weights[eid]) / sampling_probability
                alive.discard(eid)
        previous_forest = forest
    return kept


def ni_peel_structure(
    n: int,
    edge_vertices: np.ndarray,
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Epsilon/RNG-free peel trajectory of Algorithm 4.

    Runs the forest-peeling rounds of :func:`ni_core` with every
    union-find pass batched (:meth:`ArrayUnionFind.union_batch` accepts
    exactly the sequential Kruskal forest, previous-forest candidates
    first, then the alive edges in ascending id — the reference's
    ``set`` iteration order; duplicates are rejected as cycles).

    Returns
    -------
    (order, rounds):
        ``order`` — edge ids in exhaustion order (the order the
        reference draws its sampling randoms); ``rounds`` — the 1-based
        round at which each edge of ``order`` exhausted.
    """
    m = len(weights)
    remaining = weights.astype(np.int64).copy()
    alive = np.ones(m, dtype=bool)
    us = edge_vertices[:, 0]
    vs = edge_vertices[:, 1]
    order_parts: list[np.ndarray] = []
    round_parts: list[np.ndarray] = []
    previous_forest = np.empty(0, dtype=np.int64)
    uf = ArrayUnionFind(n)
    r = 0
    while alive.any():
        r += 1
        uf.reset()
        candidates = np.concatenate(
            [previous_forest[alive[previous_forest]], np.flatnonzero(alive)]
        )
        accepted = uf.union_batch(us[candidates], vs[candidates])
        forest = candidates[accepted]
        if not len(forest):
            # Mirrors the reference guard: cannot happen in a simple
            # graph, but never loop forever.
            break
        remaining[forest] -= 1
        exhausted = forest[remaining[forest] == 0]
        if len(exhausted):
            order_parts.append(exhausted)
            round_parts.append(np.full(len(exhausted), r, dtype=np.int64))
            alive[exhausted] = False
        previous_forest = forest
    order = (
        np.concatenate(order_parts) if order_parts
        else np.empty(0, dtype=np.int64)
    )
    rounds = (
        np.concatenate(round_parts) if round_parts
        else np.empty(0, dtype=np.int64)
    )
    order.setflags(write=False)
    rounds.setflags(write=False)
    return order, rounds


def ni_core_planned(
    n: int,
    weights: np.ndarray,
    structure: tuple[np.ndarray, np.ndarray],
    epsilon: float,
    rng: np.random.Generator,
) -> dict[int, float]:
    """One vectorised sampling pass over a precomputed peel structure.

    Bit-identical to :func:`ni_core` for the same ``rng`` state: the
    block ``rng.random(len(order))`` draw consumes the generator stream
    exactly like the reference's per-edge scalar draws (same order —
    edges exhaust in ``order``), the sampling probabilities repeat the
    scalar float arithmetic elementwise, and the returned dict lists
    kept edges in exhaustion order.
    """
    order, rounds = structure
    log_n = math.log(max(n, 2))
    epsilon_sq = epsilon * epsilon
    probabilities = np.minimum(log_n / (epsilon_sq * rounds), 1.0)
    draws = rng.random(len(order))
    keep = draws < probabilities
    kept_ids = order[keep]
    kept_weights = weights[kept_ids] / probabilities[keep]
    return dict(zip(kept_ids.tolist(), kept_weights.tolist()))


def ni_sparsify(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    theta: float = 1.2,
    max_calibration_steps: int = 60,
    max_weight: int = 128,
    name: str = "",
    peeler: str = "plan",
    backbone_plan: "BackbonePlan | None" = None,
) -> UncertainGraph:
    """NI benchmark sparsifier: calibrated Algorithm 4 + MC top-up.

    Parameters
    ----------
    graph:
        The uncertain graph.
    alpha:
        Sparsification ratio in ``(0, 1)``.
    rng:
        Seed / generator.
    theta:
        Multiplicative calibration step for ``epsilon``.
    max_calibration_steps:
        Upper bound on calibration retries before giving up.
    max_weight:
        Weight-quantisation cap (see module docstring).
    peeler:
        ``"plan"`` (default) computes the peel structure once and runs
        every calibration step as a vectorised sampling pass;
        ``"legacy"`` re-peels scalar forests per step (the reference).
        Both produce bit-identical output for the same seed.
    backbone_plan:
        Optional :class:`BackbonePlan` for ``graph``; with
        ``peeler="plan"`` the peel structure is memoised on it, so NI
        shares the cache the BGI-seeded sparsifiers already use.

    Raises
    ------
    CalibrationError
        If no ``epsilon`` within the retry budget yields at most
        ``alpha |E|`` edges (practically unreachable: ``epsilon`` large
        enough keeps nothing).
    """
    if peeler not in NI_PEELERS:
        raise ValueError(
            f"unknown peeler {peeler!r}; expected one of {NI_PEELERS}"
        )
    if backbone_plan is not None and backbone_plan.graph is not graph:
        raise ValueError("backbone plan was built for a different graph")
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    n = graph.number_of_vertices()
    target = target_edge_count(m, alpha)
    edge_vertices = graph.edge_index_array()
    probabilities = np.array(graph.probability_array())
    weights, scale = integer_weights(probabilities, max_weight=max_weight)

    if peeler == "plan":
        plan = backbone_plan if backbone_plan is not None else BackbonePlan(graph)
        structure = plan.cached(
            ("ni_peel", max_weight),
            lambda: ni_peel_structure(n, edge_vertices, weights),
        )

        def run_core(eps: float) -> dict[int, float]:
            return ni_core_planned(n, weights, structure, eps, rng)
    else:
        def run_core(eps: float) -> dict[int, float]:
            return ni_core(n, edge_vertices, weights, eps, rng)

    log_n = math.log(max(n, 2))
    epsilon = math.sqrt(max(n * log_n * log_n / (alpha * m), 1e-12))

    kept = run_core(epsilon)
    steps = 0
    if len(kept) > target:
        # Too many edges: grow epsilon until the output first fits.
        while len(kept) > target:
            steps += 1
            if steps > max_calibration_steps:
                raise CalibrationError(
                    f"NI failed to calibrate epsilon below budget {target}"
                )
            epsilon *= theta
            kept = run_core(epsilon)
    else:
        # Fewer: shrink epsilon while the output still fits; keep the last fit.
        best = kept
        while steps < max_calibration_steps:
            steps += 1
            epsilon /= theta
            candidate = run_core(epsilon)
            if len(candidate) > target:
                break
            best = candidate
        kept = best

    # Back-transform weights to probabilities, capped at 1 (section 3.2).
    edge_list = graph.edge_list()
    edges = [
        (edge_list[eid][0], edge_list[eid][1], min(w * scale, 1.0))
        for eid, w in kept.items()
    ]

    # Top up the deficit by MC sampling with original probabilities.
    chosen = set(kept)
    deficit = target - len(edges)
    if deficit > 0:
        pool = [eid for eid in range(m) if eid not in chosen]
        while deficit > 0 and pool:
            order = rng.permutation(len(pool))
            next_pool = []
            for idx in order:
                eid = pool[idx]
                if deficit > 0 and rng.random() < probabilities[eid]:
                    edges.append(
                        (edge_list[eid][0], edge_list[eid][1], float(probabilities[eid]))
                    )
                    deficit -= 1
                else:
                    next_pool.append(eid)
            pool = next_pool
    label = name or f"NI@{alpha:g}({graph.name})"
    return graph.subgraph_with_edges(edges, name=label)
