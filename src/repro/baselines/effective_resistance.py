"""Effective-resistance (spectral) sparsifier adaptation (Spielman &
Srivastava [37], paper section 2.2).

The paper adapts one cut sparsifier (NI) as its benchmark and notes that
"any method of Section 2.2 can be applied similarly."  This module
supplies a second one for ablations: sample edges with probability
proportional to ``w_e * R_eff(e)`` — leverage scores — and reweight kept
edges by the inverse sampling probability, which preserves every cut
*and* eigenvalue of the Laplacian with high probability.

Adaptation to uncertain graphs mirrors the NI wrapper: probabilities act
as weights, the kept edges' weights are converted back through
``p' = min(w', 1)`` (the bounded domain again limits redistribution —
the point the paper makes about all deterministic sparsifiers), and a
Monte-Carlo top-up fills the exact ``alpha |E|`` budget.

Effective resistances are computed exactly via the pseudo-inverse of the
graph Laplacian (dense, O(n^3)) — fine at the evaluation scales of this
repository; the original paper uses fast Laplacian solvers for the same
quantity.
"""

from __future__ import annotations

import numpy as np

from repro.core.backbone import target_edge_count
from repro.core.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def effective_resistances(graph: UncertainGraph) -> np.ndarray:
    """Exact per-edge effective resistance with probabilities as conductances.

    ``R_eff(u, v) = (e_u - e_v)^T L^+ (e_u - e_v)`` where ``L`` is the
    weighted Laplacian.  For a tree edge the product ``w_e * R_eff`` is
    exactly 1 (the edge is irreplaceable); in dense regions it drops
    towards ``1 / parallel-paths``.
    """
    n = graph.number_of_vertices()
    edges = graph.edge_index_array()
    weights = np.array(graph.probability_array())
    laplacian = np.zeros((n, n), dtype=np.float64)
    for (u, v), w in zip(edges, weights):
        laplacian[u, u] += w
        laplacian[v, v] += w
        laplacian[u, v] -= w
        laplacian[v, u] -= w
    pinv = np.linalg.pinv(laplacian)
    u_idx = edges[:, 0]
    v_idx = edges[:, 1]
    return (
        pinv[u_idx, u_idx] + pinv[v_idx, v_idx] - 2.0 * pinv[u_idx, v_idx]
    )


def effective_resistance_sparsify(
    graph: UncertainGraph,
    alpha: float,
    rng: "int | np.random.Generator | None" = None,
    oversample: float = 1.0,
    name: str = "",
) -> UncertainGraph:
    """Spectral-sparsifier benchmark: leverage-score sampling + top-up.

    Each edge is kept with probability proportional to its leverage
    score ``w_e * R_eff(e)`` scaled so the expected number of kept edges
    matches the budget; kept edges are reweighted ``w / min(q, 1)`` and
    converted back to probabilities capped at 1.

    Parameters
    ----------
    oversample:
        Multiplier on the sampling rate before the exact-budget
        enforcement (1.0 targets the budget directly).
    """
    rng = ensure_rng(rng)
    m = graph.number_of_edges()
    target = target_edge_count(m, alpha)
    weights = np.array(graph.probability_array())
    leverage = np.clip(weights * effective_resistances(graph), 1e-12, None)

    rate = oversample * target / leverage.sum()
    q = np.minimum(rate * leverage, 1.0)
    keep = rng.random(m) < q

    kept_ids = list(np.flatnonzero(keep))
    if len(kept_ids) > target:
        # Too many: drop the lowest-leverage kept edges.
        kept_ids.sort(key=lambda e: -leverage[e])
        kept_ids = kept_ids[:target]

    edge_list = graph.edge_list()
    edges = [
        (
            edge_list[eid][0],
            edge_list[eid][1],
            float(min(weights[eid] / q[eid], 1.0)),
        )
        for eid in kept_ids
    ]

    chosen = set(kept_ids)
    deficit = target - len(edges)
    if deficit > 0:
        pool = [eid for eid in range(m) if eid not in chosen]
        while deficit > 0 and pool:
            order = rng.permutation(len(pool))
            next_pool = []
            for idx in order:
                eid = pool[idx]
                if deficit > 0 and rng.random() < weights[eid]:
                    edges.append(
                        (edge_list[eid][0], edge_list[eid][1], float(weights[eid]))
                    )
                    deficit -= 1
                else:
                    next_pool.append(eid)
            pool = next_pool
    label = name or f"ER@{alpha:g}({graph.name})"
    return graph.subgraph_with_edges(edges, name=label)
