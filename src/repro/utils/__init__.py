"""Small self-contained data structures and numeric helpers.

Contents
--------
- :class:`repro.utils.heap.IndexedMaxHeap` — binary max-heap with
  update-key, the structure behind EMD's vertex heap (paper section 4.3).
- :class:`repro.utils.unionfind.UnionFind` — disjoint sets with union by
  rank and path compression, used by every spanning-forest routine.
- :func:`repro.utils.binomials.binomial_prefix_sum` — the paper's
  Sigma-binomial enumeration function (section 5).
- :func:`repro.utils.rng.ensure_rng` — normalises seeds / generators.
"""

from repro.utils.binomials import binomial_prefix_sum, cut_rule_coefficients
from repro.utils.heap import IndexedMaxHeap
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.unionfind import UnionFind

__all__ = [
    "IndexedMaxHeap",
    "UnionFind",
    "binomial_prefix_sum",
    "cut_rule_coefficients",
    "ensure_rng",
    "spawn_rngs",
]
