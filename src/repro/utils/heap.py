"""Indexed binary max-heap with update-key, plus a lazy variant.

EMD (paper Algorithm 3) keeps the vertices of the graph in a max-heap
ordered by the magnitude of their degree discrepancy ``|delta_A(v)|`` and
repeatedly (a) peeks at the top vertex and (b) updates the keys of the two
endpoints of an edge after a swap.  ``heapq`` cannot update keys in place,
so this module provides a classic array-based binary heap with a
position index, giving O(log n) ``update`` / ``push`` / ``pop`` and O(1)
``peek``.

:class:`LazyMaxHeap` is the deferred-update twin used by EMD's lazy
E-phase engine: priorities live in a numpy array owned by the caller,
heap entries are stale *upper bounds* cleaned out lazily at peek time,
and several updates are batched into one vectorised rescan of the dirty
items instead of one eager sift per change.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, Iterator

import numpy as np


class IndexedMaxHeap:
    """Binary max-heap over hashable items with float priorities.

    Ties are broken arbitrarily but deterministically (heap order).

    Examples
    --------
    >>> heap = IndexedMaxHeap({"a": 1.0, "b": 3.0})
    >>> heap.peek()
    ('b', 3.0)
    >>> heap.update("a", 10.0)
    >>> heap.pop()
    ('a', 10.0)
    """

    __slots__ = ("_items", "_priorities", "_positions")

    def __init__(self, initial: dict[Hashable, float] | None = None) -> None:
        self._items: list[Hashable] = []
        self._priorities: list[float] = []
        self._positions: dict[Hashable, int] = {}
        if initial:
            # Bulk build: append everything, then heapify bottom-up (O(n)).
            for item, priority in initial.items():
                if item in self._positions:
                    raise ValueError(f"duplicate heap item: {item!r}")
                self._positions[item] = len(self._items)
                self._items.append(item)
                self._priorities.append(float(priority))
            for i in range(len(self._items) // 2 - 1, -1, -1):
                self._sift_down(i)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._positions

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate over items in arbitrary (heap array) order."""
        return iter(list(self._items))

    def priority(self, item: Hashable) -> float:
        """Return the current priority of ``item``."""
        return self._priorities[self._positions[item]]

    def peek(self) -> tuple[Hashable, float]:
        """Return ``(item, priority)`` with the maximum priority."""
        if not self._items:
            raise IndexError("peek on empty heap")
        return self._items[0], self._priorities[0]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, item: Hashable, priority: float) -> None:
        """Insert a new item; raises if the item is already present."""
        if item in self._positions:
            raise ValueError(f"item already in heap: {item!r}")
        self._positions[item] = len(self._items)
        self._items.append(item)
        self._priorities.append(float(priority))
        self._sift_up(len(self._items) - 1)

    def pop(self) -> tuple[Hashable, float]:
        """Remove and return the maximum ``(item, priority)`` pair."""
        if not self._items:
            raise IndexError("pop from empty heap")
        top_item, top_priority = self._items[0], self._priorities[0]
        self._swap(0, len(self._items) - 1)
        self._items.pop()
        self._priorities.pop()
        del self._positions[top_item]
        if self._items:
            self._sift_down(0)
        return top_item, top_priority

    def update(self, item: Hashable, priority: float) -> None:
        """Change the priority of an existing item (push if absent)."""
        pos = self._positions.get(item)
        if pos is None:
            self.push(item, priority)
            return
        old = self._priorities[pos]
        self._priorities[pos] = float(priority)
        if priority > old:
            self._sift_up(pos)
        elif priority < old:
            self._sift_down(pos)

    def remove(self, item: Hashable) -> float:
        """Remove an arbitrary item, returning its priority."""
        pos = self._positions.get(item)
        if pos is None:
            raise KeyError(item)
        priority = self._priorities[pos]
        last = len(self._items) - 1
        self._swap(pos, last)
        self._items.pop()
        self._priorities.pop()
        del self._positions[item]
        if pos < len(self._items):
            self._sift_down(pos)
            self._sift_up(pos)
        return priority

    def update_many(self, updates: Iterable[tuple[Hashable, float]]) -> None:
        """Apply several ``(item, priority)`` updates."""
        for item, priority in updates:
            self.update(item, priority)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _swap(self, i: int, j: int) -> None:
        items, priorities, positions = self._items, self._priorities, self._positions
        items[i], items[j] = items[j], items[i]
        priorities[i], priorities[j] = priorities[j], priorities[i]
        positions[items[i]] = i
        positions[items[j]] = j

    def _sift_up(self, pos: int) -> None:
        priorities = self._priorities
        while pos > 0:
            parent = (pos - 1) >> 1
            if priorities[pos] <= priorities[parent]:
                break
            self._swap(pos, parent)
            pos = parent

    def _sift_down(self, pos: int) -> None:
        priorities = self._priorities
        size = len(priorities)
        while True:
            left = 2 * pos + 1
            right = left + 1
            largest = pos
            if left < size and priorities[left] > priorities[largest]:
                largest = left
            if right < size and priorities[right] > priorities[largest]:
                largest = right
            if largest == pos:
                return
            self._swap(pos, largest)
            pos = largest

    def validate(self) -> None:
        """Assert the heap invariant (used by tests)."""
        priorities = self._priorities
        for i in range(1, len(priorities)):
            parent = (i - 1) >> 1
            if priorities[parent] < priorities[i]:
                raise AssertionError(f"heap violated at index {i}")
        for item, pos in self._positions.items():
            if self._items[pos] != item:
                raise AssertionError(f"position index stale for {item!r}")


class LazyMaxHeap:
    """Deferred-update max-heap over ``|values[i]|`` for dense int items.

    The caller owns ``values`` (e.g. ``SparsificationState.delta``) and
    mutates it freely; the heap tracks the *magnitudes* ``|values[i]|``.
    Instead of eagerly re-sifting on every change, the caller marks the
    touched items with :meth:`defer`; :meth:`peek` first flushes all
    pending items with **one** vectorised magnitude rescan (so several
    edge removals/insertions share a single ``np.abs`` gather), then
    lazily discards stale heap entries.

    Entries are kept as upper bounds: a deferred *decrease* leaves its
    old (larger) entry in the heap to be popped and refreshed at peek
    time; an *increase* pushes a new entry.  ``bound[i]`` is always the
    largest entry for ``i`` still in the heap and ``bound[i] >=
    |values[i]|``, so the first heap top whose entry matches its current
    magnitude is the true argmax.

    Ties break towards the smallest item id (heapq tuple order) —
    deterministic, but *different* from :class:`IndexedMaxHeap`'s
    heap-order tie-breaking, which is why the lazy EMD engine is gated
    on converged-objective equivalence rather than bit identity.
    """

    __slots__ = ("_values", "_bound", "_entries", "_pending")

    def __init__(self, values: np.ndarray) -> None:
        self._values = values
        self._bound = np.abs(values).astype(np.float64)
        # (-magnitude, item) tuples; heapq pops the largest magnitude,
        # then the smallest item id.
        self._entries = list(zip((-self._bound).tolist(), range(len(values))))
        heapq.heapify(self._entries)
        self._pending: list[int] = []

    def __len__(self) -> int:
        return len(self._values)

    def defer(self, *items: int) -> None:
        """Mark items whose value changed; processed at the next peek."""
        self._pending.extend(items)

    def _flush(self) -> None:
        pending = self._pending
        if not pending:
            return
        if len(pending) <= 32:
            # Tiny batches (EMD defers ~4 endpoints between peeks): the
            # fixed cost of the numpy path exceeds a scalar walk.
            values = self._values
            bound = self._bound
            entries = self._entries
            for item in pending:
                magnitude = abs(float(values[item]))
                if magnitude > bound[item]:
                    bound[item] = magnitude
                    heapq.heappush(entries, (-magnitude, item))
            pending.clear()
            return
        idx = np.array(pending, dtype=np.int64)
        pending.clear()
        magnitudes = np.abs(self._values[idx])
        grew = magnitudes > self._bound[idx]
        if np.any(grew):
            entries = self._entries
            bound = self._bound
            for item, magnitude in zip(
                idx[grew].tolist(), magnitudes[grew].tolist()
            ):
                bound[item] = magnitude
                heapq.heappush(entries, (-magnitude, item))
        # Deferred decreases keep their stale upper-bound entries; peek
        # cleans them out lazily.

    def peek(self) -> int:
        """Item with the maximum ``|values[item]|`` (exact argmax)."""
        self._flush()
        entries = self._entries
        values = self._values
        bound = self._bound
        while True:
            negated, item = entries[0]
            magnitude = abs(values[item])
            if -negated == magnitude:
                return item
            # Stale upper bound: refresh this item's entry and retry.
            heapq.heapreplace(entries, (-magnitude, item))
            bound[item] = magnitude

    def validate(self) -> None:
        """Assert the upper-bound invariant (used by tests)."""
        if self._pending:
            raise AssertionError("validate() with pending updates")
        magnitudes = np.abs(self._values)
        if np.any(self._bound < magnitudes):
            raise AssertionError("bound fell below a current magnitude")
        entry_values: dict[int, set[float]] = {}
        for negated, item in self._entries:
            entry_values.setdefault(item, set()).add(-negated)
        for item in range(len(self._values)):
            if self._bound[item] not in entry_values.get(item, ()):
                raise AssertionError(f"no entry backing bound of item {item}")
