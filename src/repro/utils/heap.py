"""Indexed binary max-heap with update-key.

EMD (paper Algorithm 3) keeps the vertices of the graph in a max-heap
ordered by the magnitude of their degree discrepancy ``|delta_A(v)|`` and
repeatedly (a) peeks at the top vertex and (b) updates the keys of the two
endpoints of an edge after a swap.  ``heapq`` cannot update keys in place,
so this module provides a classic array-based binary heap with a
position index, giving O(log n) ``update`` / ``push`` / ``pop`` and O(1)
``peek``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator


class IndexedMaxHeap:
    """Binary max-heap over hashable items with float priorities.

    Ties are broken arbitrarily but deterministically (heap order).

    Examples
    --------
    >>> heap = IndexedMaxHeap({"a": 1.0, "b": 3.0})
    >>> heap.peek()
    ('b', 3.0)
    >>> heap.update("a", 10.0)
    >>> heap.pop()
    ('a', 10.0)
    """

    __slots__ = ("_items", "_priorities", "_positions")

    def __init__(self, initial: dict[Hashable, float] | None = None) -> None:
        self._items: list[Hashable] = []
        self._priorities: list[float] = []
        self._positions: dict[Hashable, int] = {}
        if initial:
            # Bulk build: append everything, then heapify bottom-up (O(n)).
            for item, priority in initial.items():
                if item in self._positions:
                    raise ValueError(f"duplicate heap item: {item!r}")
                self._positions[item] = len(self._items)
                self._items.append(item)
                self._priorities.append(float(priority))
            for i in range(len(self._items) // 2 - 1, -1, -1):
                self._sift_down(i)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._positions

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate over items in arbitrary (heap array) order."""
        return iter(list(self._items))

    def priority(self, item: Hashable) -> float:
        """Return the current priority of ``item``."""
        return self._priorities[self._positions[item]]

    def peek(self) -> tuple[Hashable, float]:
        """Return ``(item, priority)`` with the maximum priority."""
        if not self._items:
            raise IndexError("peek on empty heap")
        return self._items[0], self._priorities[0]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, item: Hashable, priority: float) -> None:
        """Insert a new item; raises if the item is already present."""
        if item in self._positions:
            raise ValueError(f"item already in heap: {item!r}")
        self._positions[item] = len(self._items)
        self._items.append(item)
        self._priorities.append(float(priority))
        self._sift_up(len(self._items) - 1)

    def pop(self) -> tuple[Hashable, float]:
        """Remove and return the maximum ``(item, priority)`` pair."""
        if not self._items:
            raise IndexError("pop from empty heap")
        top_item, top_priority = self._items[0], self._priorities[0]
        self._swap(0, len(self._items) - 1)
        self._items.pop()
        self._priorities.pop()
        del self._positions[top_item]
        if self._items:
            self._sift_down(0)
        return top_item, top_priority

    def update(self, item: Hashable, priority: float) -> None:
        """Change the priority of an existing item (push if absent)."""
        pos = self._positions.get(item)
        if pos is None:
            self.push(item, priority)
            return
        old = self._priorities[pos]
        self._priorities[pos] = float(priority)
        if priority > old:
            self._sift_up(pos)
        elif priority < old:
            self._sift_down(pos)

    def remove(self, item: Hashable) -> float:
        """Remove an arbitrary item, returning its priority."""
        pos = self._positions.get(item)
        if pos is None:
            raise KeyError(item)
        priority = self._priorities[pos]
        last = len(self._items) - 1
        self._swap(pos, last)
        self._items.pop()
        self._priorities.pop()
        del self._positions[item]
        if pos < len(self._items):
            self._sift_down(pos)
            self._sift_up(pos)
        return priority

    def update_many(self, updates: Iterable[tuple[Hashable, float]]) -> None:
        """Apply several ``(item, priority)`` updates."""
        for item, priority in updates:
            self.update(item, priority)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _swap(self, i: int, j: int) -> None:
        items, priorities, positions = self._items, self._priorities, self._positions
        items[i], items[j] = items[j], items[i]
        priorities[i], priorities[j] = priorities[j], priorities[i]
        positions[items[i]] = i
        positions[items[j]] = j

    def _sift_up(self, pos: int) -> None:
        priorities = self._priorities
        while pos > 0:
            parent = (pos - 1) >> 1
            if priorities[pos] <= priorities[parent]:
                break
            self._swap(pos, parent)
            pos = parent

    def _sift_down(self, pos: int) -> None:
        priorities = self._priorities
        size = len(priorities)
        while True:
            left = 2 * pos + 1
            right = left + 1
            largest = pos
            if left < size and priorities[left] > priorities[largest]:
                largest = left
            if right < size and priorities[right] > priorities[largest]:
                largest = right
            if largest == pos:
                return
            self._swap(pos, largest)
            pos = largest

    def validate(self) -> None:
        """Assert the heap invariant (used by tests)."""
        priorities = self._priorities
        for i in range(1, len(priorities)):
            parent = (i - 1) >> 1
            if priorities[parent] < priorities[i]:
                raise AssertionError(f"heap violated at index {i}")
        for item, pos in self._positions.items():
            if self._items[pos] != item:
                raise AssertionError(f"position index stale for {item!r}")
