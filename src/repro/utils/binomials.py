"""The paper's Sigma-binomial enumeration function (section 5).

The general cut-preservation rule (Eq. 14) weights the degree
discrepancies against the global edge discrepancy with ratios of

.. math::

    \\binom{n}{k}_\\Sigma = \\sum_{i=0}^{k} \\binom{n}{i}

These sums explode combinatorially, but only their *ratios* enter the
update rule and the ratios depend only on ``(n, k)`` — never on the edge.
We therefore evaluate them once per sparsification run with exact Python
integers and convert the two required ratios to floats through
:class:`fractions.Fraction`, which is exact for arbitrarily large
integers.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache


def binomial_prefix_sum(n: int, k: int) -> int:
    """Return ``sum_{i=0}^{k} C(n, i)``, the paper's ``(n over k)_Sigma``.

    Follows the paper's convention: the value is 0 whenever ``k < 0``.
    ``k`` is truncated to ``n`` (all terms beyond ``i = n`` vanish), and
    ``n < 0`` is rejected.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if k < 0:
        return 0
    k = min(k, n)
    total = 0
    term = 1  # C(n, 0)
    for i in range(k + 1):
        total += term
        term = term * (n - i) // (i + 1)  # C(n, i+1) from C(n, i)
    return total


@lru_cache(maxsize=1024)
def cut_rule_coefficients(n: int, k: int) -> tuple[float, float]:
    """Pre-compute the two float coefficients of the Eq. (14) update rule.

    Equation (14) sets the gradient step for edge ``e = (u, v)`` to::

        stp = [ S(n-3, k-1) * (delta(u) + delta(v)) + 4 * S(n-4, k-2) * Delta(e) ]
              / (2 * S(n-2, k-1))

    where ``S`` is :func:`binomial_prefix_sum`.  This function returns
    the pair ``(degree_coeff, global_coeff)`` with::

        degree_coeff = S(n-3, k-1) / (2 * S(n-2, k-1))
        global_coeff = 4 * S(n-4, k-2) / (2 * S(n-2, k-1))

    For ``k = 1`` the pair is exactly ``(0.5, 0.0)`` — Eq. (9).
    For ``k = 2`` it is ``((n-2)/(2n-2), 4/(2n-2))`` — Eq. (15).

    Parameters
    ----------
    n:
        Number of vertices; must be at least 3 so that the denominator
        ``S(n-2, k-1)`` is positive.
    k:
        Maximum cut cardinality to preserve, ``1 <= k``.
    """
    if n < 3:
        raise ValueError(f"cut rule requires at least 3 vertices, got n={n}")
    if k < 1:
        raise ValueError(f"cut cardinality k must be >= 1, got {k}")
    denominator = 2 * binomial_prefix_sum(n - 2, k - 1)
    degree_numerator = binomial_prefix_sum(n - 3, k - 1)
    global_numerator = 4 * binomial_prefix_sum(max(n - 4, 0), k - 2)
    degree_coeff = float(Fraction(degree_numerator, denominator))
    global_coeff = float(Fraction(global_numerator, denominator))
    return degree_coeff, global_coeff


def log_binomial(n: int, k: int) -> float:
    """Natural log of ``C(n, k)`` via lgamma (handy for diagnostics)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
