"""Disjoint-set (union-find) structures.

Used by every spanning-tree / spanning-forest routine in the package:
the BGI backbone initialisation (Algorithm 1), the Nagamochi-Ibaraki
forest decomposition (Algorithm 4) and connectivity checks.

Two implementations with the same set semantics:

- :class:`UnionFind` — the scalar list-based reference (union by rank,
  path halving).
- :class:`ArrayUnionFind` — array-native state with the batched
  primitives :meth:`~ArrayUnionFind.find_many` (vectorised
  grandparent-jumping with full path compression of the queried
  elements) and :meth:`~ArrayUnionFind.union_batch` (order-respecting
  batched unions: the merged set is exactly what sequential
  :meth:`~ArrayUnionFind.union` calls in index order would produce).
  The backbone planner's nested Kruskal peels run on it.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Union-find over the integers ``0 .. n-1``.

    Implements union by rank and path halving; both ``find`` and
    ``union`` run in effectively-constant amortised time.

    Parameters
    ----------
    n:
        Number of elements.  Elements are the integers ``0 .. n-1``.
    """

    __slots__ = ("_parent", "_rank", "_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"element count must be non-negative, got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def components(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._components

    def find(self, x: int) -> int:
        """Return the representative of the set containing ``x``."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge the sets containing ``x`` and ``y``.

        Returns
        -------
        bool
            ``True`` if a merge happened, ``False`` if the two elements
            were already in the same set.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """Return ``True`` when ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def reset(self) -> None:
        """Return the structure to ``n`` singleton sets."""
        n = len(self._parent)
        self._parent = list(range(n))
        self._rank = [0] * n
        self._components = n


class ArrayUnionFind:
    """Array-native union-find over the integers ``0 .. n-1``.

    Set semantics match :class:`UnionFind` exactly (union by rank with
    path compression); on top of the scalar ``find`` / ``union`` it adds
    the batched primitives ``find_many`` and ``union_batch`` that the
    vectorised Kruskal peels of :class:`repro.core.backbone.BackbonePlan`
    are built on.
    """

    __slots__ = ("_parent", "_rank", "_components", "_scratch")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"element count must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int64)
        self._components = n
        # Scratch buffer for union_batch's min-owner scatter.
        self._scratch = np.empty(n, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def components(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._components

    def find(self, x: int) -> int:
        """Return the representative of the set containing ``x``."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        # Full path compression for the traversed chain.
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def find_many(self, xs) -> np.ndarray:
        """Representatives of a batch of elements, vectorised.

        Grandparent-jumping converges in ``O(log height)`` rounds of
        whole-array gathers; the queried elements are then compressed
        straight onto their roots.
        """
        xs = np.asarray(xs, dtype=np.int64)
        parent = self._parent
        roots = parent[xs]
        while True:
            nxt = parent[roots]
            if np.array_equal(nxt, roots):
                break
            roots = parent[nxt]
        parent[xs] = roots
        return roots

    def union(self, x: int, y: int) -> bool:
        """Merge the sets containing ``x`` and ``y`` (rank heuristic)."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._components -= 1
        return True

    def union_batch(self, us, vs) -> np.ndarray:
        """Merge a batch of pairs; returns the per-pair merged mask.

        The result is *order-respecting*: pair ``i`` merges if and only
        if sequential ``union(us[i], vs[i])`` calls in index order would
        have merged it — so Kruskal over a sorted edge array accepts the
        same forest whether it unions one edge at a time or in batches.

        Each vectorised round hooks, for every live root, its
        minimum-index pending pair (Boruvka-style): a pair applies when
        it is the earliest pair touching at least one of its two current
        roots, and the hook is directed away from the root it is minimal
        for.  The hooks of one round form a forest on roots (the
        max-index pair of any would-be cycle would have to be minimal
        for a root an earlier cycle pair also touches), and no applied
        pair can be one that sequential order would have rejected — a
        connecting path of pending pairs would need a smaller index
        touching the root the pair is minimal for.  Stars and chains
        therefore collapse in ``O(log n)`` rounds with no scalar tail.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError(
                f"endpoint shapes differ: {us.shape} vs {vs.shape}"
            )
        merged = np.zeros(len(us), dtype=bool)
        pending = np.arange(len(us), dtype=np.int64)
        parent = self._parent
        while len(pending):
            ru = self.find_many(us[pending])
            rv = self.find_many(vs[pending])
            alive = ru != rv
            pending, ru, rv = pending[alive], ru[alive], rv[alive]
            if not len(pending):
                break
            # min_owner[root] = earliest pending pair touching that root.
            idx = np.arange(len(pending), dtype=np.int64)
            min_owner = self._scratch
            min_owner[ru] = len(pending)
            min_owner[rv] = len(pending)
            np.minimum.at(min_owner, ru, idx)
            np.minimum.at(min_owner, rv, idx)
            min_u = min_owner[ru] == idx
            min_v = min_owner[rv] == idx
            selected = min_u | min_v
            ru_s, rv_s = ru[selected], rv[selected]
            # Hook away from the root the pair is minimal for; a pair
            # minimal for both roots hooks its larger root onto the
            # smaller (breaking the only possible 2-cycles).  Every root
            # is the source of at most one hook (its min pair is
            # unique), so the scatter below has no write conflicts.
            both = min_u[selected] & min_v[selected]
            src = np.where(min_u[selected], ru_s, rv_s)
            dst = np.where(min_u[selected], rv_s, ru_s)
            src = np.where(both, np.maximum(ru_s, rv_s), src)
            dst = np.where(both, np.minimum(ru_s, rv_s), dst)
            parent[src] = dst
            self._components -= len(src)
            merged[pending[selected]] = True
            pending = pending[~selected]
        return merged

    def connected(self, x: int, y: int) -> bool:
        """Return ``True`` when ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def reset(self) -> None:
        """Return the structure to ``n`` singleton sets."""
        n = len(self._parent)
        self._parent = np.arange(n, dtype=np.int64)
        self._rank[:] = 0
        self._components = n
