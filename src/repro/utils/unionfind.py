"""Disjoint-set (union-find) structure.

Used by every spanning-tree / spanning-forest routine in the package:
the BGI backbone initialisation (Algorithm 1), the Nagamochi-Ibaraki
forest decomposition (Algorithm 4) and connectivity checks.
"""

from __future__ import annotations


class UnionFind:
    """Union-find over the integers ``0 .. n-1``.

    Implements union by rank and path halving; both ``find`` and
    ``union`` run in effectively-constant amortised time.

    Parameters
    ----------
    n:
        Number of elements.  Elements are the integers ``0 .. n-1``.
    """

    __slots__ = ("_parent", "_rank", "_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"element count must be non-negative, got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def components(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._components

    def find(self, x: int) -> int:
        """Return the representative of the set containing ``x``."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge the sets containing ``x`` and ``y``.

        Returns
        -------
        bool
            ``True`` if a merge happened, ``False`` if the two elements
            were already in the same set.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """Return ``True`` when ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def reset(self) -> None:
        """Return the structure to ``n`` singleton sets."""
        n = len(self._parent)
        self._parent = list(range(n))
        self._rank = [0] * n
        self._components = n
