"""Random-number-generator plumbing.

Every stochastic routine in the package accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).
This module centralises that normalisation so experiment scripts can fix
a single integer seed and get reproducible tables.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    - ``None`` → a fresh generator seeded from OS entropy,
    - an ``int`` → ``np.random.default_rng(seed)``,
    - a ``Generator`` → returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected seed, Generator or None, got {type(rng).__name__}")


def spawn_rngs(rng: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by the variance protocol (paper section 6.3), where the same
    estimator is re-run many times with independent randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
