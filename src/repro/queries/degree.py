"""Degree query — the structural sanity check.

Per-world vertex degrees; their expectation equals the analytic expected
degrees ``sum of incident probabilities``, which gives the estimator
stack a closed-form target to validate against (used heavily in tests).
"""

from __future__ import annotations

import numpy as np

from repro.sampling.worlds import World


class DegreeQuery:
    """Per-vertex degree in each world."""

    name = "DEG"

    def __init__(self, n: int) -> None:
        self.n = n

    def unit_count(self) -> int:
        return self.n

    def evaluate(self, world: World) -> np.ndarray:
        return world.degrees().astype(np.float64)
