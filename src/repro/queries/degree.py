"""Degree query — the structural sanity check.

Per-world vertex degrees; their expectation equals the analytic expected
degrees ``sum of incident probabilities``, which gives the estimator
stack a closed-form target to validate against (used heavily in tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch


class DegreeQuery:
    """Per-vertex degree in each world."""

    name = "DEG"

    def __init__(self, n: int) -> None:
        self.n = n

    def unit_count(self) -> int:
        return self.n

    def evaluate(self, world: World) -> np.ndarray:
        return world.degrees().astype(np.float64)

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """The whole degree matrix from one masked prefix-sum pass."""
        return batch.degrees().astype(np.float64)
