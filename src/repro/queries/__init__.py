"""Monte-Carlo graph queries evaluated over possible worlds.

The four queries of the paper's section 6.3 — pagerank (PR), shortest
path distance (SP), reliability (RL), clustering coefficient (CC) — plus
connectivity (the introductory example) and degrees (test oracle).
"""

from repro.queries.base import BatchQuery, Query, evaluate_query_batch
from repro.queries.clustering import ClusteringCoefficientQuery
from repro.queries.connectivity import ComponentCountQuery, ConnectivityQuery
from repro.queries.degree import DegreeQuery
from repro.queries.knn import (
    SourceDistanceQuery,
    k_nearest_neighbors,
    majority_distances,
    median_distances,
)
from repro.queries.pagerank import PageRankQuery, batch_pagerank, world_pagerank
from repro.queries.reliability import ReliabilityQuery
from repro.queries.shortest_path import ShortestPathQuery, sample_vertex_pairs

__all__ = [
    "BatchQuery",
    "ClusteringCoefficientQuery",
    "ComponentCountQuery",
    "ConnectivityQuery",
    "DegreeQuery",
    "PageRankQuery",
    "Query",
    "ReliabilityQuery",
    "ShortestPathQuery",
    "SourceDistanceQuery",
    "batch_pagerank",
    "evaluate_query_batch",
    "k_nearest_neighbors",
    "majority_distances",
    "median_distances",
    "sample_vertex_pairs",
    "world_pagerank",
]
