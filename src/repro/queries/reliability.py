"""Two-terminal reliability query (paper section 6.3, query RL).

Reliability of a pair is the probability that the two vertices are
connected — the classic network-resilience metric.  The per-world
outcome is the 0/1 reachability indicator of each pair; its expectation
across worlds is the reliability.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch


class ReliabilityQuery:
    """Per-pair reachability indicators (0/1)."""

    name = "RL"

    def __init__(self, pairs: list[tuple[int, int]]) -> None:
        if not pairs:
            raise ValueError("at least one vertex pair is required")
        self.pairs = list(pairs)
        self._by_source: dict[int, list[tuple[int, int]]] = {}
        for idx, (s, t) in enumerate(self.pairs):
            self._by_source.setdefault(s, []).append((idx, t))

    def unit_count(self) -> int:
        return len(self.pairs)

    def evaluate(self, world: World) -> np.ndarray:
        out = np.zeros(len(self.pairs))
        for source, targets in self._by_source.items():
            reach = world.reachable_from(source)
            for idx, t in targets:
                out[idx] = 1.0 if reach[t] else 0.0
        return out

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """All pairs over all worlds: one batched BFS per distinct source."""
        out = np.zeros((batch.n_worlds, len(self.pairs)))
        for source, targets in self._by_source.items():
            reach = batch.reachable_from(source)
            for idx, t in targets:
                out[:, idx] = reach[:, t]
        return out
