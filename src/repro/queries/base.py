"""Query protocol for Monte-Carlo evaluation (paper section 6.3).

A *query* maps one possible :class:`~repro.sampling.worlds.World` to a
vector of per-unit outcomes — one entry per vertex (pagerank, clustering
coefficient) or per vertex pair (shortest-path distance, reliability).
Outcomes may be ``nan`` when undefined in that world (e.g. the distance
of a disconnected pair), which the estimator machinery handles by
exclusion, matching the paper's SP protocol.

Queries are stateless with respect to worlds and reusable across graphs
*with the same vertex indexing* (the sparsified graphs keep the vertex
set, so one query object serves both ``G`` and ``G'``).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.sampling.worlds import World


@runtime_checkable
class Query(Protocol):
    """Anything that evaluates a world into a per-unit outcome vector."""

    #: human-readable name used in experiment tables
    name: str

    def evaluate(self, world: World) -> np.ndarray:
        """Return the outcome vector (shape ``(units,)``, may contain nan)."""
        ...

    def unit_count(self) -> int:
        """Number of evaluation units (vertices, pairs, or 1 for scalars)."""
        ...
