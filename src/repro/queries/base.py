"""Query protocol for Monte-Carlo evaluation (paper section 6.3).

A *query* maps one possible :class:`~repro.sampling.worlds.World` to a
vector of per-unit outcomes — one entry per vertex (pagerank, clustering
coefficient) or per vertex pair (shortest-path distance, reliability).
Outcomes may be ``nan`` when undefined in that world (e.g. the distance
of a disconnected pair), which the estimator machinery handles by
exclusion, matching the paper's SP protocol.

Queries are stateless with respect to worlds and reusable across graphs
*with the same vertex indexing* (the sparsified graphs keep the vertex
set, so one query object serves both ``G`` and ``G'``).

Batched evaluation
------------------
The estimators hand queries a whole
:class:`~repro.sampling.batch.WorldBatch` at a time.  Queries that
implement :class:`BatchQuery` evaluate the ensemble with dense array
kernels; for anything else :func:`evaluate_query_batch` falls back to
the per-world protocol, so third-party queries keep working unchanged.
Native batch kernels must return exactly what stacking the per-world
``evaluate`` results would — the seeded property tests in
``tests/test_batch.py`` hold every built-in query to that contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.sampling.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch


@runtime_checkable
class Query(Protocol):
    """Anything that evaluates a world into a per-unit outcome vector."""

    #: human-readable name used in experiment tables
    name: str

    def evaluate(self, world: World) -> np.ndarray:
        """Return the outcome vector (shape ``(units,)``, may contain nan)."""
        ...

    def unit_count(self) -> int:
        """Number of evaluation units (vertices, pairs, or 1 for scalars)."""
        ...


@runtime_checkable
class BatchQuery(Query, Protocol):
    """A query with a native world-ensemble kernel."""

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """Return the ``(n_worlds, units)`` outcome matrix of the ensemble."""
        ...


def evaluate_query_batch(query: Query, batch: "WorldBatch") -> np.ndarray:
    """Evaluate ``query`` on every world of ``batch`` as ``(N, units)``.

    Dispatches to the query's native :meth:`BatchQuery.evaluate_batch`
    kernel when present; otherwise adapts the per-world protocol by
    materialising each world of the ensemble in turn (correct for any
    :class:`Query`, but pays the legacy per-world interpreter cost).
    """
    native = getattr(query, "evaluate_batch", None)
    if callable(native):
        return np.asarray(native(batch), dtype=np.float64)
    outcomes = np.empty((batch.n_worlds, query.unit_count()), dtype=np.float64)
    for i, world in enumerate(batch.iter_worlds()):
        outcomes[i] = query.evaluate(world)
    return outcomes
