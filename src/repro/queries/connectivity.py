"""Graph-connectivity query (the paper's introductory example).

``Pr[G is connected]`` — the probability that a possible world forms a
single connected component.  Fig. 1 of the paper sparsifies a 6-edge
graph from Pr=0.219 to Pr=0.216 with half the edges; the exact values
are reproduced in the tests and the ``fig01`` benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch


class ConnectivityQuery:
    """Scalar 0/1 indicator: the world is one connected component."""

    name = "CONN"

    def unit_count(self) -> int:
        return 1

    def evaluate(self, world: World) -> np.ndarray:
        return np.array([1.0 if world.is_connected() else 0.0])

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """One batched BFS from vertex 0 answers every world at once."""
        return batch.is_connected().astype(np.float64)[:, None]


class ComponentCountQuery:
    """Scalar outcome: number of connected components of the world."""

    name = "NCOMP"

    def unit_count(self) -> int:
        return 1

    def evaluate(self, world: World) -> np.ndarray:
        return np.array([float(world.connected_component_count())])

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """Component counts of all worlds via batched label propagation."""
        return batch.connected_component_count().astype(np.float64)[:, None]
