"""Clustering-coefficient query (paper section 6.3, query CC).

Per-world local clustering coefficient of every vertex: the ratio of
links among a vertex's neighbours to the maximum possible.  Vertices of
degree < 2 score 0 in that world.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch


class ClusteringCoefficientQuery:
    """Per-vertex local clustering coefficients."""

    name = "CC"

    def __init__(self, n: int) -> None:
        self.n = n

    def unit_count(self) -> int:
        return self.n

    def evaluate(self, world: World) -> np.ndarray:
        return world.clustering_coefficients()

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """Batched triangle counting over the parent triangle table."""
        return batch.clustering_coefficients()
