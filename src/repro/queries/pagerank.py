"""Pagerank query (paper section 6.3, query PR).

Per-world pagerank by power iteration on the world's CSR adjacency.
Dangling vertices (degree 0 in the world) redistribute their mass
uniformly, the standard convention.  The uncertain-graph pagerank of a
vertex is the expectation of its per-world score.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.worlds import World


def world_pagerank(
    world: World,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 100,
) -> np.ndarray:
    """Pagerank vector of one deterministic world."""
    n = world.n
    if n == 0:
        return np.zeros(0)
    degrees = world.degrees().astype(np.float64)
    dangling = degrees == 0
    safe_degrees = np.where(dangling, 1.0, degrees)
    pr = np.full(n, 1.0 / n)
    indptr, indices = world.indptr, world.indices
    # Directed-edge source ids for the bincount push (symmetric graph).
    sources = np.repeat(np.arange(n), np.diff(indptr))
    for _ in range(max_iterations):
        shares = pr / safe_degrees
        pushed = np.bincount(indices, weights=shares[sources], minlength=n)
        dangling_mass = pr[dangling].sum()
        new_pr = (1.0 - damping) / n + damping * (pushed + dangling_mass / n)
        if np.abs(new_pr - pr).sum() < tol:
            pr = new_pr
            break
        pr = new_pr
    return pr


class PageRankQuery:
    """Per-vertex pagerank outcomes across possible worlds."""

    name = "PR"

    def __init__(self, n: int, damping: float = 0.85, max_iterations: int = 60) -> None:
        self.n = n
        self.damping = damping
        self.max_iterations = max_iterations

    def unit_count(self) -> int:
        return self.n

    def evaluate(self, world: World) -> np.ndarray:
        return world_pagerank(
            world, damping=self.damping, max_iterations=self.max_iterations
        )
